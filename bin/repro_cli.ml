(* Command-line front-end to the partial-replication DSM library.

   repro protocols                     list protocol implementations
   repro analyze --dist ring:5         share-graph / hoop / Theorem-1 analysis
   repro run --protocol pram-partial   run a workload, check every criterion
   repro check file.hist               check a textual history
   repro bellman-ford --nodes 8        the paper's case study
   repro experiment E1                 regenerate an experiment table
   repro cluster --nodes 3             fork a live loopback cluster, run + check
   repro serve --node 0 ...            one replica daemon of a live cluster
   repro wal DIR                       inspect / verify a write-ahead log
   repro placement hash:n=5,k=2        inspect a consistent-hash placement
   repro reconfig --nodes 5 ...        live cluster with membership changes
*)

module Distribution = Repro_sharegraph.Distribution
module Share_graph = Repro_sharegraph.Share_graph
module Ring = Repro_sharegraph.Ring
module Checker = Repro_history.Checker
module History = Repro_history.History
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Workload = Repro_core.Workload
module Bellman_ford = Repro_apps.Bellman_ford
module Wgraph = Repro_apps.Wgraph
module Experiment = Repro_experiments.Experiment
module Cluster = Repro_cluster.Cluster
module Cluster_node = Repro_cluster.Node
module Member = Repro_cluster.Member
module Reconfig = Repro_cluster.Reconfig
module Oplog = Repro_cluster.Oplog
module Workload_spec = Repro_cluster.Workload_spec
module Wal = Repro_durable.Wal
module Live = Repro_transport.Live
module Transport = Repro_transport.Transport
module Chaos = Repro_transport.Chaos
module Session = Repro_transport.Session
module Fault = Repro_msgpass.Fault
module Latency = Repro_msgpass.Latency
module Mix = Repro_loadgen.Mix
module Load_harness = Repro_loadgen.Harness
module Table = Repro_util.Table
module Bitset = Repro_util.Bitset
module Rng = Repro_util.Rng
module Pool = Repro_util.Pool
module Jsonout = Repro_util.Jsonout

open Cmdliner

(* --- distribution specs ------------------------------------------------------ *)

let parse_int_args name spec expected =
  match String.split_on_char ':' spec with
  | [ _ ] when expected = 0 -> Ok []
  | [ _; args ] -> (
      let parts = String.split_on_char ',' args in
      if List.length parts <> expected then
        Error
          (Printf.sprintf "%s expects %d comma-separated parameters" name expected)
      else
        try Ok (List.map int_of_string parts)
        with Failure _ -> Error (Printf.sprintf "%s: non-numeric parameter" name))
  | _ -> Error (Printf.sprintf "malformed distribution spec %S" spec)

let distribution_of_spec spec =
  let name = List.hd (String.split_on_char ':' spec) in
  match name with
  | "fig1" -> Ok (Distribution.of_lists ~n_vars:2 [ [ 0; 1 ]; [ 0 ]; [ 1 ] ])
  | "cycle4" ->
      Ok (Distribution.of_lists ~n_vars:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ])
  | "ring" ->
      Result.map
        (fun args ->
          match args with [ n ] -> Distribution.ring ~n_procs:n | _ -> assert false)
        (parse_int_args "ring" spec 1)
  | "chain" ->
      Result.map
        (fun args ->
          match args with [ n ] -> Distribution.chain ~n_procs:n | _ -> assert false)
        (parse_int_args "chain" spec 1)
  | "star" ->
      Result.map
        (fun args ->
          match args with [ n ] -> Distribution.star ~n_procs:n | _ -> assert false)
        (parse_int_args "star" spec 1)
  | "grid" ->
      Result.map
        (fun args ->
          match args with
          | [ r; c ] -> Distribution.grid ~rows:r ~cols:c
          | _ -> assert false)
        (parse_int_args "grid" spec 2)
  | "clustered" ->
      Result.map
        (fun args ->
          match args with
          | [ p; v; c ] -> Distribution.clustered ~n_procs:p ~n_vars:v ~clusters:c
          | _ -> assert false)
        (parse_int_args "clustered" spec 3)
  | "full" ->
      Result.map
        (fun args ->
          match args with
          | [ p; v ] -> Distribution.full ~n_procs:p ~n_vars:v
          | _ -> assert false)
        (parse_int_args "full" spec 2)
  | "random" ->
      Result.map
        (fun args ->
          match args with
          | [ p; v; r; seed ] ->
              Distribution.random (Rng.create seed) ~n_procs:p ~n_vars:v
                ~replicas_per_var:r
          | _ -> assert false)
        (parse_int_args "random" spec 4)
  | "lists" -> (
      (* lists:0,1;1,2;2 — per-process variable lists, ';'-separated *)
      match String.index_opt spec ':' with
      | None -> Error "lists: expects per-process variable lists"
      | Some colon -> (
          let body = String.sub spec (colon + 1) (String.length spec - colon - 1) in
          try
            let per_proc =
              String.split_on_char ';' body
              |> List.map (fun group ->
                     String.split_on_char ',' group
                     |> List.filter (fun s -> String.trim s <> "")
                     |> List.map (fun s -> int_of_string (String.trim s)))
            in
            let n_vars =
              1 + List.fold_left (List.fold_left Stdlib.max) (-1) per_proc
            in
            if n_vars <= 0 then Error "lists: no variables"
            else Ok (Distribution.of_lists ~n_vars per_proc)
          with Failure _ | Invalid_argument _ ->
            Error (Printf.sprintf "malformed lists spec %S" spec)))
  | other -> Error (Printf.sprintf "unknown distribution %S" other)

let dist_conv =
  let parse spec =
    match distribution_of_spec spec with
    | Ok d -> Ok d
    | Error msg -> Error (`Msg msg)
  in
  let print ppf d =
    Format.fprintf ppf "<distribution %dp/%dv>" (Distribution.n_procs d)
      (Distribution.n_vars d)
  in
  Arg.conv (parse, print)

let dist_arg =
  let doc =
    "Variable distribution: fig1, cycle4, ring:N, chain:N, star:N, grid:R,C, \
     clustered:P,V,C, full:P,V, random:P,V,R,SEED or lists:0,1;1,2;2 (per-process\n     variable lists)."
  in
  Arg.(value & opt dist_conv (Result.get_ok (distribution_of_spec "cycle4"))
       & info [ "d"; "dist" ] ~docv:"DIST" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* [--jobs N] sizes the shared domain pool used by the parallel checker and
   the experiment harness; without it the pool follows $(b,REPRO_JOBS) or
   [Domain.recommended_domain_count].  Applying it is a side effect on the
   process-wide default pool, done before the command body runs. *)
let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for parallel checking/experiments (default: \
                 $(b,REPRO_JOBS) or the recommended domain count).")

let apply_jobs = function
  | None -> ()
  | Some n when n >= 1 -> Pool.set_default_jobs n
  | Some _ ->
      prerr_endline "jobs must be >= 1";
      exit 2

(* [--engine] selects the checker's decision procedure; like [--jobs] it is
   a side effect on the process-wide default, applied before the command
   body.  Without it the default follows $(b,REPRO_CHECK_ENGINE). *)
let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun name ->
          match String.lowercase_ascii name with
          | "search" -> Ok Checker.Search
          | "saturation" -> Ok Checker.Saturation
          | _ -> Error (`Msg "engine must be 'search' or 'saturation'")),
        fun ppf e -> Format.pp_print_string ppf (Checker.engine_name e) )
  in
  Arg.(value & opt (some engine_conv) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Checker engine: $(b,saturation) (polynomial front-end, the \
                 default) or $(b,search) (backtracking).")

let apply_engine = function
  | None -> ()
  | Some e -> Checker.set_default_engine e

(* --- chaos plans --------------------------------------------------------------- *)

let chaos_conv =
  Arg.conv
    ( (fun text ->
        match Fault.Plan.parse text with
        | Ok p -> Ok p
        | Error msg -> Error (`Msg msg)),
      fun ppf p -> Format.pp_print_string ppf (Fault.Plan.to_string p) )

let chaos_arg =
  Arg.(value & opt (some chaos_conv) None
       & info [ "chaos" ] ~docv:"PLAN"
           ~doc:"Deterministic fault plan, e.g. \
                 $(b,seed=5,drop=0.05,dup=0.01,crash=1\\@6+250). Clauses: \
                 $(b,seed=K), $(b,drop=P), $(b,dup=P), $(b,reorder=P), \
                 $(b,delay=D), $(b,link=S>D:drop=P:...), \
                 $(b,part=T1..T2:A+B), $(b,crash=N\\@K+R); under \
                 $(b,reconfig) also $(b,join=N\\@MS) and $(b,leave=N\\@MS) \
                 membership events. The same plan reproduces identically on \
                 the simulator and on live TCP.")

let session_arg =
  Arg.(value & flag
       & info [ "session" ]
           ~doc:"Layer the reliable session protocol (go-back-N, cumulative \
                 acks, retransmission backoff) over the transport even \
                 without a chaos plan; forced on whenever $(b,--chaos) is \
                 given.")

let gc_space_overhead_arg =
  Arg.(value & opt (some int) None
       & info [ "gc-space-overhead" ] ~docv:"PCT"
           ~doc:"Set OCaml's $(b,Gc.space_overhead) (percent, default 120) in \
                 every node and client process before traffic starts. Lower \
                 values trade CPU for a tighter heap; higher values collect \
                 less often — the GC-pressure knob for hot-path experiments \
                 ($(b,bench --hotpath) reports allocation per operation).")

(* sim transport stack mirroring a live node's: backend → chaos → session *)
let sim_chaos_factory ~chaos ~session ~seed =
  let chaos =
    match chaos with Some p when Fault.Plan.is_none p -> None | c -> c
  in
  let session = session || chaos <> None in
  if (not session) && chaos = None then None
  else begin
    let factory = Transport.sim ~latency:Latency.lan ~seed () in
    let factory =
      match chaos with
      | None -> factory
      | Some plan -> fst (Chaos.wrap ~plan factory)
    in
    let factory =
      if session then
        fst (Session.wrap ~config:{ Session.default with seed = seed + 1 } factory)
      else factory
    in
    Some factory
  end

(* --- protocols ---------------------------------------------------------------- *)

let protocols_cmd =
  let run () =
    let rows =
      List.map
        (fun spec ->
          [
            spec.Registry.name;
            Checker.criterion_name spec.Registry.guarantees;
            (if spec.Registry.requires_full_replication then "full" else "partial");
            (if spec.Registry.blocking then "blocking" else "wait-free");
            (if spec.Registry.efficient then "yes" else "no");
          ])
        Registry.all
    in
    Table.print
      ~header:[ "protocol"; "guarantees"; "replication"; "operations"; "efficient" ]
      ~rows ()
  in
  Cmd.v (Cmd.info "protocols" ~doc:"List the protocol implementations.")
    Term.(const run $ const ())

(* --- analyze ------------------------------------------------------------------- *)

let analyze_cmd =
  let run dist =
    Format.printf "%a" Distribution.pp dist;
    let sg = Share_graph.of_distribution dist in
    Format.printf "%a" Share_graph.pp sg;
    let rows =
      List.init (Distribution.n_vars dist) (fun x ->
          let hoops = Share_graph.hoops ~max_hoops:50 sg ~var:x in
          [
            Printf.sprintf "x%d" x;
            "{"
            ^ String.concat "," (List.map string_of_int (Distribution.holders dist x))
            ^ "}";
            string_of_int (List.length hoops);
            Format.asprintf "%a" Bitset.pp (Share_graph.x_relevant sg ~var:x);
          ])
    in
    Table.print ~header:[ "var"; "C(x)"; "#hoops"; "x-relevant (Thm 1)" ] ~rows ();
    Printf.printf "efficient causal partial replication possible: %b\n"
      (Share_graph.no_external_relevance sg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Share-graph analysis: cliques, hoops, Theorem 1 x-relevance.")
    Term.(const run $ dist_arg)

(* --- run ------------------------------------------------------------------------ *)

let protocol_arg =
  let protocol_conv =
    Arg.conv
      ( (fun name ->
          match Registry.find name with
          | Some spec -> Ok spec
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown protocol %s (known: %s)" name
                      (String.concat ", " Registry.names)))),
        fun ppf spec -> Format.pp_print_string ppf spec.Registry.name )
  in
  Arg.(value
       & opt protocol_conv (Option.get (Registry.find "pram-partial"))
       & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
           ~doc:"Protocol implementation (see $(b,protocols)).")

let run_cmd =
  let run spec dist seed ops read_ratio timed diagram chaos session jobs engine =
    apply_jobs jobs;
    apply_engine engine;
    let dist =
      if spec.Registry.requires_full_replication then
        Distribution.full ~n_procs:(Distribution.n_procs dist)
          ~n_vars:(Distribution.n_vars dist)
      else dist
    in
    let memory =
      match sim_chaos_factory ~chaos ~session ~seed with
      | None -> spec.Registry.make ~dist ~seed ()
      | Some transport -> spec.Registry.make ~transport ~dist ~seed ()
    in
    let profile = { Workload.ops_per_proc = ops; read_ratio; max_think = 3 } in
    let rng = Repro_util.Rng.create (seed + 1) in
    let programs = Workload.programs rng dist profile in
    let h =
      if timed then begin
        let t = Repro_core.Runner.run_timed memory ~programs in
        if diagram then print_string (Repro_history.Diagram.render_timed t)
        else Format.printf "%a" Repro_history.Timed.pp t;
        (match Repro_history.Timed.check_linearizable t with
        | Repro_history.Timed.Linearizable -> print_endline "atomic (linearizable): yes"
        | Repro_history.Timed.Not_linearizable ->
            print_endline "atomic (linearizable): no"
        | Repro_history.Timed.Undecidable _ ->
            print_endline "atomic (linearizable): undecidable");
        Repro_history.Timed.history t
      end
      else begin
        let h = Repro_core.Runner.run memory ~programs in
        if diagram then print_string (Repro_history.Diagram.render h)
        else print_string (History.to_string h);
        h
      end
    in
    print_newline ();
    let rows =
      List.map
        (fun criterion ->
          [
            Checker.criterion_name criterion;
            (match Checker.check_par criterion h with
            | Checker.Consistent -> "yes"
            | Checker.Inconsistent -> "no"
            | Checker.Undecidable _ -> "?");
          ])
        Checker.all_criteria
      @ List.map
          (fun guarantee ->
            [
              Repro_history.Session.guarantee_name guarantee;
              (match Repro_history.Session.check guarantee h with
              | Repro_history.Session.Holds -> "yes"
              | Repro_history.Session.Violated -> "no"
              | Repro_history.Session.Undecidable _ -> "?");
            ])
          Repro_history.Session.all_guarantees
    in
    Table.print ~header:[ "criterion"; "consistent" ] ~rows ();
    let m = memory.Memory.metrics () in
    Printf.printf
      "\nmessages: %d   control bytes: %d   payload bytes: %d   off-clique mentions: %d\n"
      m.Memory.messages_sent m.Memory.control_bytes m.Memory.payload_bytes
      (Memory.total_offclique_mentions memory);
    if m.Memory.overhead_bytes > 0 then
      Printf.printf
        "reliability overhead: %d bytes (headers, retransmissions, acks — \
         accounted apart from the paper's control bytes)\n"
        m.Memory.overhead_bytes
  in
  let ops_arg =
    Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Operations per process.")
  in
  let reads_arg =
    Arg.(value & opt float 0.5 & info [ "read-ratio" ] ~doc:"Fraction of reads.")
  in
  let timed_arg =
    Arg.(value & flag
         & info [ "timed" ] ~doc:"Record invocation/response times and decide atomicity.")
  in
  let diagram_arg =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render a space-time diagram.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a random workload on a protocol and check the recorded history.")
    Term.(const run $ protocol_arg $ dist_arg $ seed_arg $ ops_arg $ reads_arg
          $ timed_arg $ diagram_arg $ chaos_arg $ session_arg $ jobs_arg
          $ engine_arg)

(* --- check ------------------------------------------------------------------------ *)

let criterion_conv =
  Arg.conv
    ( (fun name ->
        let target = String.lowercase_ascii name in
        match
          List.find_opt
            (fun c ->
              String.lowercase_ascii (Checker.criterion_name c) = target)
            Checker.all_criteria
        with
        | Some c -> Ok c
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown criterion %s (known: %s)" name
                    (String.concat ", "
                       (List.map Checker.criterion_name Checker.all_criteria)))) ),
      fun ppf c -> Format.pp_print_string ppf (Checker.criterion_name c) )

let require_arg =
  Arg.(value & opt (some criterion_conv) None
       & info [ "require" ] ~docv:"CRITERION"
           ~doc:"Exit with status 2 unless the history satisfies $(docv) \
                 (e.g. $(b,pram), $(b,causal), $(b,sequential)).")

let check_cmd =
  let run path diagram require jobs engine =
    apply_jobs jobs;
    apply_engine engine;
    let text =
      match path with
      | "-" -> In_channel.input_all stdin
      | path -> In_channel.with_open_text path In_channel.input_all
    in
    match History.parse text with
    | Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
    | Ok h ->
        if diagram then print_string (Repro_history.Diagram.render h)
        else print_string (History.to_string h);
        print_newline ();
        let verdicts =
          List.map (fun c -> (c, Checker.check_par c h)) Checker.all_criteria
        in
        let rows =
          List.map
            (fun (criterion, verdict) ->
              [
                Checker.criterion_name criterion;
                (match verdict with
                | Checker.Consistent -> "yes"
                | Checker.Inconsistent -> "no"
                | Checker.Undecidable _ -> "undecidable (non-differentiated)");
              ])
            verdicts
          @ List.map
              (fun guarantee ->
                [
                  Repro_history.Session.guarantee_name guarantee;
                  (match Repro_history.Session.check guarantee h with
                  | Repro_history.Session.Holds -> "yes"
                  | Repro_history.Session.Violated -> "no"
                  | Repro_history.Session.Undecidable _ ->
                      "undecidable (non-differentiated)");
                ])
              Repro_history.Session.all_guarantees
        in
        Table.print ~header:[ "criterion"; "consistent" ] ~rows ();
        Option.iter
          (fun criterion ->
            match List.assoc criterion verdicts with
            | Checker.Consistent -> ()
            | Checker.Inconsistent | Checker.Undecidable _ ->
                Printf.eprintf "history violates %s\n"
                  (Checker.criterion_name criterion);
                exit 2)
          require
  in
  let path_arg =
    Arg.(value & pos 0 string "-"
         & info [] ~docv:"FILE" ~doc:"History file ('-' for stdin; format as printed by $(b,run)).")
  in
  let diagram_arg =
    Arg.(value & flag
         & info [ "diagram" ] ~doc:"Render a space-time diagram instead of plain text.")
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `I ("0", "History parsed; with $(b,--require), the criterion holds.");
      `I ("1", "Parse error or unreadable input.");
      `I ("2", "$(b,--require) criterion violated (or undecidable).");
      `S "GATING LIVE AND CHAOS RUNS";
      `P
        "A cluster run — chaotic or not — is gated in two steps.  First \
         $(b,repro cluster ... --chaos PLAN --parity --out-history H) \
         supervises the run and exits: 0 when accepted (crashes that were \
         respawned and recovered from checkpoints count as accepted), 1 on \
         an unrecovered node crash or harness error, 2 on a consistency or \
         finals violation, 3 on a sim-parity mismatch.  Then \
         $(b,repro check --require CRITERION H) re-derives the verdict from \
         the captured history with an independent checker invocation (exit \
         2 on violation).  CI's chaos-smoke job runs exactly this pipeline.";
    ]
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a textual history against every criterion."
       ~man)
    Term.(const run $ path_arg $ diagram_arg $ require_arg $ jobs_arg $ engine_arg)

(* --- bellman-ford ------------------------------------------------------------------ *)

let bellman_ford_cmd =
  let run spec nodes extra seed fig8 =
    let g =
      if fig8 then Wgraph.fig8
      else Wgraph.random (Rng.create seed) ~n:nodes ~extra_edges:extra ~max_weight:9
    in
    Format.printf "%a" Wgraph.pp g;
    let make ~dist ~seed = spec.Registry.make ~dist ~seed () in
    let result = Bellman_ford.run ~make ~seed:(seed + 1) g ~source:0 in
    let reference = Wgraph.reference_distances g ~source:0 in
    let rows =
      List.init (Wgraph.n_nodes g) (fun i ->
          let show v = if v >= Wgraph.infinity_cost then "inf" else string_of_int v in
          [
            string_of_int i;
            show result.Bellman_ford.distances.(i);
            show reference.(i);
          ])
    in
    Table.print ~header:[ "node"; "distributed"; "reference" ] ~rows ();
    Printf.printf "exact: %b\n" (result.Bellman_ford.distances = reference)
  in
  let nodes_arg = Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~doc:"Node count.") in
  let extra_arg = Arg.(value & opt int 10 & info [ "extra-edges" ] ~doc:"Extra random edges.") in
  let fig8_arg = Arg.(value & flag & info [ "fig8" ] ~doc:"Use the paper's Fig. 8 network.") in
  Cmd.v
    (Cmd.info "bellman-ford" ~doc:"Run the paper's §6 case study.")
    Term.(const run $ protocol_arg $ nodes_arg $ extra_arg $ seed_arg $ fig8_arg)

(* --- experiment --------------------------------------------------------------------- *)

let experiment_cmd =
  let table_json (t : Experiment.table) =
    Jsonout.Obj
      [
        ("id", Jsonout.String t.Experiment.id);
        ("title", Jsonout.String t.Experiment.title);
        ( "header",
          Jsonout.List (List.map (fun s -> Jsonout.String s) t.Experiment.header)
        );
        ( "rows",
          Jsonout.List
            (List.map
               (fun row -> Jsonout.List (List.map (fun s -> Jsonout.String s) row))
               t.Experiment.rows) );
        ( "notes",
          Jsonout.List (List.map (fun s -> Jsonout.String s) t.Experiment.notes)
        );
      ]
  in
  let emit json seed tables =
    List.iter
      (fun t ->
        print_string (Experiment.render t);
        print_newline ())
      tables;
    match json with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Jsonout.to_channel oc
              (Jsonout.Obj
                 [
                   ("schema", Jsonout.String "repro-experiments/1");
                   ("seed", Jsonout.Int seed);
                   ("tables", Jsonout.List (List.map table_json tables));
                 ]));
        Printf.printf "wrote %s\n" path
  in
  let run id seed jobs json =
    apply_jobs jobs;
    match id with
    | None -> emit json seed (Experiment.all ~seed ())
    | Some id -> (
        match Experiment.find id with
        | Some f -> emit json seed [ f ~seed () ]
        | None ->
            Printf.eprintf "unknown experiment %s (known: %s)\n" id
              (String.concat ", " Experiment.ids);
            exit 1)
  in
  let id_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (E1, T1, A2, E2, A1, C1); all when omitted.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also dump the rendered tables as a JSON record to $(docv).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate an experiment table from DESIGN.md.")
    Term.(const run $ id_arg $ seed_arg $ jobs_arg $ json_arg)

(* --- live cluster ------------------------------------------------------------------- *)

let workload_arg =
  Arg.(value & opt string "e1"
       & info [ "w"; "workload" ] ~docv:"WORKLOAD"
           ~doc:(Printf.sprintf "Cluster workload: %s."
                   (String.concat ", " Workload_spec.names)))

(* --- durability tier ---------------------------------------------------------- *)

let durable_flag_arg =
  Arg.(value & flag
       & info [ "durable" ]
           ~doc:"Engage the durability tier: every recorded op goes through a \
                 CRC-framed write-ahead log and checkpoints compact it. The \
                 default group-commit policy fsyncs every append \
                 ($(b,--fsync-every) 1).")

let fsync_every_arg =
  Arg.(value & opt (some int) None
       & info [ "fsync-every" ] ~docv:"K"
           ~doc:"Group commit: fsync the log after every $(docv)-th append \
                 (implies the durability tier).")

let fsync_interval_arg =
  Arg.(value & opt (some int) None
       & info [ "fsync-interval" ] ~docv:"MS"
           ~doc:"Group commit on a time budget: fsync when an append finds \
                 the last sync older than $(docv) ms (implies the durability \
                 tier).")

(* --- harness watchdog ---------------------------------------------------------- *)

let connect_timeout_arg =
  Arg.(value & opt (some int) None
       & info [ "connect-timeout-ms" ] ~docv:"MS"
           ~doc:"Cap each node's reconnection episodes: give up on a peer \
                 that accepted no connection for $(docv) ms instead of \
                 redialing until the run timeout (default: unbounded).")

let drain_quiet_arg =
  Arg.(value & opt (some int) None
       & info [ "drain-quiet-ms" ] ~docv:"MS"
           ~doc:"Quiet window after $(b,finish): a node closes once no \
                 frame has arrived for $(docv) ms (default 300).")

let deadline_arg =
  Arg.(value & opt (some int) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Supervisor watchdog: a run still not finished after \
                 $(docv) ms is put down and reported as wedged — exit 4, \
                 distinct from every acceptance failure (default: run \
                 timeout + 30 s).")

(* a run the watchdog had to put down gets its own exit code, so CI can
   tell "hung harness" apart from "real acceptance failure" *)
let exit_of_harness_error msg =
  if String.length msg >= 7 && String.sub msg 0 7 = "wedged:" then 4 else 1

let resolve_fsync_policy ~flag ~every ~interval ~fail =
  match (every, interval) with
  | Some _, Some _ -> fail "--fsync-every and --fsync-interval conflict"
  | Some k, None -> Some (Wal.Every k)
  | None, Some m -> Some (Wal.Interval_ms m)
  | None, None -> if flag then Some (Wal.Every 1) else None

let verdict_text = function
  | Checker.Consistent -> "consistent"
  | Checker.Inconsistent -> "VIOLATION"
  | Checker.Undecidable _ -> "undecidable"

let sockaddr_of_spec spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | None -> Error (Printf.sprintf "%S: bad port" spec)
      | Some port -> (
          let resolve () =
            if host = "" || host = "localhost" then Unix.inet_addr_loopback
            else
              try Unix.inet_addr_of_string host
              with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
          in
          try Ok (Unix.ADDR_INET (resolve (), port))
          with Not_found | Invalid_argument _ ->
            Error (Printf.sprintf "%S: cannot resolve host" spec)))

(* A node's recorded slice, printed in the format [repro check] parses:
   full process shape, with every other node's local history empty. *)
let slice_history ~n ~node ops =
  History.of_lists
    (List.init n (fun i ->
         if i <> node then []
         else List.map (fun (kind, var, value, _, _) -> (kind, var, value)) ops))

let serve_cmd =
  let run node nodes listen peers spec workload seed chaos session checkpoint
      checkpoint_ms incarnation gc_space_overhead out wal fsync_every
      fsync_interval =
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
    let durable =
      match wal with
      | None ->
          if fsync_every <> None || fsync_interval <> None then
            fail "an fsync policy needs --wal DIR"
          else None
      | Some dir ->
          Option.map
            (fun p -> (dir, p))
            (resolve_fsync_policy ~flag:true ~every:fsync_every
               ~interval:fsync_interval
               ~fail:(fun s -> fail "%s" s))
    in
    let spec_w =
      match Workload_spec.make ~name:workload ~n:nodes ~seed with
      | Ok w -> w
      | Error msg -> fail "%s" msg
    in
    if node < 0 || node >= nodes then fail "--node must be in [0, %d)" nodes;
    let peer_specs = String.split_on_char ',' peers in
    if List.length peer_specs <> nodes then
      fail "--peers needs exactly %d comma-separated HOST:PORT entries" nodes;
    let peer_addrs =
      List.map
        (fun s ->
          match sockaddr_of_spec (String.trim s) with
          | Ok a -> a
          | Error msg -> fail "%s" msg)
        peer_specs
      |> Array.of_list
    in
    let listen_addr =
      match sockaddr_of_spec listen with Ok a -> a | Error msg -> fail "%s" msg
    in
    let listen_fd =
      try Live.bind listen_addr
      with Unix.Unix_error (err, _, _) ->
        fail "cannot bind %s: %s" listen (Unix.error_message err)
    in
    match
      Cluster_node.run ~self:node ~listen_fd ~peers:peer_addrs ~protocol:spec
        ~workload:spec_w ~seed ?chaos ~session ?checkpoint
        ?checkpoint_every_ms:checkpoint_ms ~incarnation ?gc_space_overhead
        ?durable ()
    with
    | exception Cluster_node.Crash msg -> fail "node %d crashed: %s" node msg
    | exception Chaos.Injected_crash _ ->
        (* the chaos plan scheduled this crash; a supervisor watching for
           exit 42 respawns us with --incarnation bumped *)
        prerr_endline
          (Printf.sprintf "node %d: injected crash (respawn with --incarnation %d)"
             node (incarnation + 1));
        exit 42
    | result ->
        let m = result.Cluster_node.metrics in
        Printf.printf
          "node %d/%d done: %d ops, %d messages sent, %d control bytes, %d \
           payload bytes, %d ms\n"
          node nodes
          (List.length result.Cluster_node.ops)
          m.Memory.messages_sent m.Memory.control_bytes m.Memory.payload_bytes
          result.Cluster_node.wall_ms;
        (let w = result.Cluster_node.wire in
         if
           w.Repro_msgpass.Net.retransmits > 0
           || w.Repro_msgpass.Net.dropped > 0
           || w.Repro_msgpass.Net.reconnects > 0
           || result.Cluster_node.incarnation > 0
         then
           Printf.printf
             "  chaos: incarnation %d, %d dropped, %d retransmits, %d dup \
              suppressed, %d reconnects, %d overhead bytes\n"
             result.Cluster_node.incarnation w.Repro_msgpass.Net.dropped
             w.Repro_msgpass.Net.retransmits
             w.Repro_msgpass.Net.dups_suppressed
             w.Repro_msgpass.Net.reconnects w.Repro_msgpass.Net.overhead_bytes);
        List.iter
          (fun (var, value) ->
            Printf.printf "  final x%d = %s\n" var
              (match value with
              | Repro_history.Op.Init -> "init"
              | Repro_history.Op.Val v -> string_of_int v))
          result.Cluster_node.finals;
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc
                  (History.to_string
                     (slice_history ~n:nodes ~node result.Cluster_node.ops)));
            Printf.printf "wrote %s\n" path)
          out
  in
  let node_arg =
    Arg.(required & opt (some int) None
         & info [ "node" ] ~docv:"I" ~doc:"This daemon's node id.")
  in
  let nodes_arg =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let listen_spec_arg =
    Arg.(required & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT" ~doc:"Address to listen on.")
  in
  let peers_arg =
    Arg.(required & opt (some string) None
         & info [ "peers" ] ~docv:"ADDRS"
             ~doc:"All N nodes' listen addresses, comma-separated, in node \
                   order (entry $(b,--node) is ignored).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write this node's recorded history slice (readable by \
                   $(b,repro check)).")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Checkpoint file: written periodically during the run; \
                   restored (with op-log replay) when $(b,--incarnation) is \
                   positive.")
  in
  let checkpoint_ms_arg =
    Arg.(value & opt (some int) None
         & info [ "checkpoint-ms" ] ~docv:"MS"
             ~doc:"Checkpoint period (default 100 ms).")
  in
  let incarnation_arg =
    Arg.(value & opt int 0
         & info [ "incarnation" ] ~docv:"K"
             ~doc:"Restart count: 0 for a first launch; a supervisor respawning \
                   this node after an injected crash (exit 42) passes K+1, \
                   which restores the checkpoint and disables the crash \
                   schedule.")
  in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"DIR"
             ~doc:"Write-ahead log directory (the durability tier): every \
                   recorded op is appended with CRC framing and group commit; \
                   with $(b,--incarnation) positive the node recovers from \
                   checkpoint + log replay. Takes precedence over \
                   $(b,--checkpoint).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run one replica daemon of a live cluster over TCP sockets. Exit \
             status: 42 when the chaos plan's scheduled crash fires (respawn \
             with $(b,--incarnation) bumped to recover from the checkpoint or \
             write-ahead log).")
    Term.(const run $ node_arg $ nodes_arg $ listen_spec_arg $ peers_arg
          $ protocol_arg $ workload_arg $ seed_arg $ chaos_arg $ session_arg
          $ checkpoint_arg $ checkpoint_ms_arg $ incarnation_arg
          $ gc_space_overhead_arg $ out_arg $ wal_arg $ fsync_every_arg
          $ fsync_interval_arg)

(* --- WAL inspection ----------------------------------------------------------- *)

let wal_cmd =
  let run dir verify =
    match Wal.load ~dir with
    | Error msg ->
        Printf.eprintf "%s: %s\n" dir msg;
        exit 1
    | Ok r ->
        Printf.printf "%s: generation %d, seqnos [%d, %d)\n" dir r.Wal.r_gen
          r.Wal.r_base r.Wal.r_next;
        (match r.Wal.r_checkpoint with
        | None -> print_endline "checkpoint: none"
        | Some p ->
            Printf.printf "checkpoint: %d bytes, md5 %s\n" (String.length p)
              (Digest.to_hex (Digest.string p)));
        if r.Wal.r_log = "" then print_endline "log: none"
        else
          Printf.printf "log %s: %d record(s), %d damaged byte(s) dropped\n"
            r.Wal.r_log
            (List.length r.Wal.r_entries)
            r.Wal.r_dropped_bytes;
        List.iter (fun n -> Printf.printf "note: %s\n" n) r.Wal.r_notes;
        Printf.printf "digest: %s\n" (Wal.digest r);
        if verify then begin
          (* records written by a cluster node must decode as op records,
             consecutively sequenced from the base *)
          let bad =
            List.filter
              (fun (_, p) -> Result.is_error (Oplog.decode p))
              r.Wal.r_entries
          in
          if bad <> [] then begin
            List.iter
              (fun (seq, p) ->
                Printf.eprintf "record %d: %s\n" seq
                  (Result.get_error (Oplog.decode p)))
              bad;
            exit 1
          end;
          Printf.printf "verify: %d op record(s) decode cleanly\n"
            (List.length r.Wal.r_entries)
        end;
        if r.Wal.r_dropped_bytes > 0 || r.Wal.r_notes <> [] then exit 2
  in
  let dir_arg =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR" ~doc:"A node's write-ahead log directory.")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Additionally decode every recovered record as a cluster op \
                   record (exit 1 if any fails).")
  in
  Cmd.v
    (Cmd.info "wal"
       ~doc:"Inspect a write-ahead log directory: generation, checkpoint, \
             recovered records, dropped tail, recovery digest. Exit status: 0 \
             when the log is clean, 1 when it is unreadable (or $(b,--verify) \
             fails), 2 when it loads but recovery had to repair something \
             (dropped tail, missing generation file).")
    Term.(const run $ dir_arg $ verify_arg)

(* --- consistent-hash placement inspector --------------------------------------- *)

let placement_cmd =
  let run spec_text vars joins leaves max_ratio =
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
    let spec =
      match Ring.spec_of_string spec_text with
      | Ok s -> s
      | Error msg -> fail "%s" msg
    in
    if vars < 1 then fail "--vars must be >= 1";
    let ring = Ring.of_spec spec in
    let k = spec.Ring.s_k in
    Printf.printf "placement %s over %d variable(s)\n"
      (Ring.spec_to_string spec) vars;
    let b = Ring.balance ring ~k ~n_vars:vars in
    Table.print ~header:[ "member"; "assignments"; "x mean" ]
      ~rows:
        (List.map
           (fun (m, c) ->
             [
               string_of_int m;
               string_of_int c;
               Printf.sprintf "%.2f" (float_of_int c /. b.Ring.b_mean);
             ])
           (Ring.load ring ~k ~n_vars:vars))
      ();
    Printf.printf
      "balance: min %d, max %d, mean %.1f, ratio %.3f (1.0 = perfect)\n"
      b.Ring.b_min b.Ring.b_max b.Ring.b_mean b.Ring.b_ratio;
    (* materialise the replica sets and run the paper's share-graph
       analysis over them: hoops per variable, Theorem-1 efficiency *)
    let dist =
      Ring.to_distribution ring ~k ~n_procs:spec.Ring.s_n ~n_vars:vars
    in
    let sg = Share_graph.of_distribution dist in
    Table.print ~header:[ "var"; "owner"; "replicas"; "#hoops" ]
      ~rows:
        (List.init vars (fun x ->
             [
               Printf.sprintf "x%d" x;
               string_of_int (Ring.owner ring x);
               "{"
               ^ String.concat ","
                   (List.map string_of_int (Ring.replicas ring ~k x))
               ^ "}";
               string_of_int
                 (List.length (Share_graph.hoops ~max_hoops:50 sg ~var:x));
             ]))
      ();
    Printf.printf "efficient causal partial replication possible: %b\n"
      (Share_graph.no_external_relevance sg);
    let gate = 2 * k * vars / Ring.n_members ring in
    let change kind node =
      let after =
        try
          match kind with
          | `Join -> Ring.add_member ring node
          | `Leave -> Ring.remove_member ring node
        with Invalid_argument m ->
          fail "%s %d: %s"
            (match kind with `Join -> "join" | `Leave -> "leave")
            node m
      in
      let moved = Ring.moved ~before:ring ~after ~k ~n_vars:vars in
      let b' = Ring.balance after ~k ~n_vars:vars in
      Printf.printf
        "%s %d: %d of %d assignment(s) move (gate 2kK/n = %d)%s; balance \
         ratio %.3f -> %.3f\n"
        (match kind with `Join -> "join" | `Leave -> "leave")
        node moved (k * vars) gate
        (if moved <= gate then "" else " EXCEEDED")
        b.Ring.b_ratio b'.Ring.b_ratio;
      moved <= gate
    in
    let moved_ok =
      List.for_all Fun.id
        (List.map (change `Join) joins @ List.map (change `Leave) leaves)
    in
    let ratio_ok =
      match max_ratio with None -> true | Some r -> b.Ring.b_ratio <= r
    in
    (match max_ratio with
    | Some r when not ratio_ok ->
        Printf.printf "balance ratio %.3f exceeds --max-ratio %.3f\n"
          b.Ring.b_ratio r
    | _ -> ());
    if not (moved_ok && ratio_ok) then exit 2
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC"
             ~doc:"Ring spec: $(b,hash:n=5,k=2,vnodes=64,seed=7) ($(b,n) \
                   mandatory, the rest default).")
  in
  let vars_arg =
    Arg.(value & opt int 32
         & info [ "vars" ] ~docv:"K" ~doc:"Number of variables placed.")
  in
  let join_arg =
    Arg.(value & opt_all int []
         & info [ "join" ] ~docv:"NODE"
             ~doc:"Also show what adding $(docv) moves (repeatable; each \
                   change is measured against the initial ring).")
  in
  let leave_arg =
    Arg.(value & opt_all int []
         & info [ "leave" ] ~docv:"NODE"
             ~doc:"Also show what removing $(docv) moves (repeatable).")
  in
  let max_ratio_arg =
    Arg.(value & opt (some float) None
         & info [ "max-ratio" ] ~docv:"R"
             ~doc:"Gate the balance ratio: exit 2 when max/mean load \
                   exceeds $(docv).")
  in
  Cmd.v
    (Cmd.info "placement"
       ~doc:"Inspect a consistent-hash placement: per-member load, balance \
             stats, per-variable replica sets, share-graph hoop counts, and \
             what a membership change would move. Deterministic — two \
             invocations with the same spec print byte-identical output. \
             Exit status: 0 clean, 1 on a malformed spec or impossible \
             membership change, 2 when a $(b,--join)/$(b,--leave) moves \
             more than the 2kK/n minimal-movement gate or $(b,--max-ratio) \
             is exceeded.")
    Term.(const run $ spec_arg $ vars_arg $ join_arg $ leave_arg
          $ max_ratio_arg)

(* --- live membership ------------------------------------------------------------ *)

let reconfig_cmd =
  let run nodes k vnodes vars seed writes write_period demote_after chaos
      connect_timeout drain_quiet deadline wal_dir out_history json engine =
    apply_engine engine;
    match
      Reconfig.run ~n:nodes ~k ~vnodes ~n_vars:vars ~seed ~writes
        ~write_period_ms:write_period ~demote_after_ms:demote_after ?chaos
        ?connect_timeout_ms:connect_timeout ?quiet_ms:drain_quiet
        ?deadline_ms:deadline ?wal_dir ()
    with
    | Error msg ->
        prerr_endline msg;
        exit (exit_of_harness_error msg)
    | Ok o ->
        let members l =
          "{" ^ String.concat "," (List.map string_of_int l) ^ "}"
        in
        Printf.printf "reconfig: %d nodes, k=%d, vnodes=%d, %d vars, seed %d%s\n"
          o.Reconfig.n o.Reconfig.k o.Reconfig.vnodes o.Reconfig.n_vars
          o.Reconfig.seed
          (if o.Reconfig.chaos = "" then ""
           else Printf.sprintf ", chaos [%s]" o.Reconfig.chaos);
        if o.Reconfig.events <> [] then
          Table.print
            ~header:[ "epoch"; "event"; "node"; "members"; "moved"; "ms" ]
            ~rows:
              (List.map
                 (fun e ->
                   [
                     string_of_int e.Reconfig.ev_epoch;
                     e.Reconfig.ev_kind;
                     string_of_int e.Reconfig.ev_node;
                     members e.Reconfig.ev_members;
                     string_of_int e.Reconfig.ev_keys_moved;
                     string_of_int e.Reconfig.ev_rebalance_ms;
                   ])
                 o.Reconfig.events)
            ();
        Table.print
          ~header:
            [ "node"; "inc"; "ops"; "w"; "r"; "epoch"; "stale"; "in"; "out";
              "retry"; "initfb"; "unavail"; "ms" ]
          ~rows:
            (Array.to_list o.Reconfig.node_results
            |> List.map (fun r ->
                   [
                     string_of_int r.Member.node;
                     string_of_int r.Member.incarnation;
                     string_of_int (List.length r.Member.ops);
                     string_of_int r.Member.writes_done;
                     string_of_int r.Member.reads_done;
                     string_of_int r.Member.committed_epoch;
                     string_of_int r.Member.stale_epochs;
                     string_of_int r.Member.transfers_in;
                     string_of_int r.Member.transfers_out;
                     string_of_int r.Member.retries;
                     string_of_int r.Member.init_fallbacks;
                     string_of_int r.Member.unavail_ms;
                     string_of_int r.Member.wall_ms;
                   ]))
          ();
        Printf.printf
          "epoch %d committed, members %s; %d stale frame(s) fenced, %d \
           restart(s), %d migration record(s) applied, %d init fallback(s)\n"
          o.Reconfig.committed_epoch (members o.Reconfig.members)
          o.Reconfig.stale_epochs o.Reconfig.restarts o.Reconfig.transfers
          o.Reconfig.init_fallbacks;
        if o.Reconfig.salvaged <> [] then
          Printf.printf "ops salvaged from surviving WALs: %s\n"
            (members o.Reconfig.salvaged);
        Printf.printf
          "keys moved: %d total, worst single change %d (gate 2kK/n = %d): \
           %s\n"
          o.Reconfig.keys_moved_total o.Reconfig.max_keys_moved
          o.Reconfig.moved_gate
          (if o.Reconfig.moved_ok then "ok" else "EXCEEDED");
        Printf.printf "unavailability window: %d ms (worst node)\n"
          o.Reconfig.unavail_ms;
        Printf.printf "cache (advertised) across reconfiguration: %s\n"
          (verdict_text o.Reconfig.verdict);
        Printf.printf "pram (informational): %s\n"
          (verdict_text o.Reconfig.pram);
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc
                  (History.to_string o.Reconfig.history));
            Printf.printf "wrote %s\n" path)
          out_history;
        Option.iter
          (fun path ->
            let ints l = Jsonout.List (List.map (fun i -> Jsonout.Int i) l) in
            Out_channel.with_open_text path @@ fun oc ->
            Jsonout.to_channel oc
              (Jsonout.Obj
                 [
                   ("schema", Jsonout.String "repro-reconfig/1");
                   ("nodes", Jsonout.Int o.Reconfig.n);
                   ("k", Jsonout.Int o.Reconfig.k);
                   ("vnodes", Jsonout.Int o.Reconfig.vnodes);
                   ("vars", Jsonout.Int o.Reconfig.n_vars);
                   ("seed", Jsonout.Int o.Reconfig.seed);
                   ("committed_epoch", Jsonout.Int o.Reconfig.committed_epoch);
                   ("members", ints o.Reconfig.members);
                   ( "events",
                     Jsonout.List
                       (List.map
                          (fun e ->
                            Jsonout.Obj
                              [
                                ("epoch", Jsonout.Int e.Reconfig.ev_epoch);
                                ("kind", Jsonout.String e.Reconfig.ev_kind);
                                ("node", Jsonout.Int e.Reconfig.ev_node);
                                ("members", ints e.Reconfig.ev_members);
                                ( "keys_moved",
                                  Jsonout.Int e.Reconfig.ev_keys_moved );
                                ( "rebalance_ms",
                                  Jsonout.Int e.Reconfig.ev_rebalance_ms );
                              ])
                          o.Reconfig.events) );
                   ( "verdict",
                     Jsonout.String (verdict_text o.Reconfig.verdict) );
                   ("pram", Jsonout.String (verdict_text o.Reconfig.pram));
                   ("stale_epochs", Jsonout.Int o.Reconfig.stale_epochs);
                   ("restarts", Jsonout.Int o.Reconfig.restarts);
                   ("salvaged", ints o.Reconfig.salvaged);
                   ("keys_moved_total", Jsonout.Int o.Reconfig.keys_moved_total);
                   ("max_keys_moved", Jsonout.Int o.Reconfig.max_keys_moved);
                   ("moved_gate", Jsonout.Int o.Reconfig.moved_gate);
                   ("moved_ok", Jsonout.Bool o.Reconfig.moved_ok);
                   ("unavail_ms", Jsonout.Int o.Reconfig.unavail_ms);
                   ("transfers", Jsonout.Int o.Reconfig.transfers);
                   ("init_fallbacks", Jsonout.Int o.Reconfig.init_fallbacks);
                   ("writes", Jsonout.Int o.Reconfig.writes_total);
                   ("reads", Jsonout.Int o.Reconfig.reads_total);
                   ("chaos", Jsonout.String o.Reconfig.chaos);
                   ("wall_ms", Jsonout.Int o.Reconfig.wall_ms);
                 ]);
            Printf.printf "wrote %s\n" path)
          json;
        if o.Reconfig.verdict <> Checker.Consistent then exit 2;
        if not o.Reconfig.moved_ok then exit 3
  in
  let nodes_arg =
    Arg.(value & opt int 5
         & info [ "n"; "nodes" ] ~docv:"N"
             ~doc:"Process count; initial ring membership is every node not \
                   scheduled to $(b,join=) by the chaos plan.")
  in
  let k_arg =
    Arg.(value & opt int 2
         & info [ "k" ] ~docv:"K" ~doc:"Replication degree per variable.")
  in
  let vnodes_arg =
    Arg.(value & opt int 64
         & info [ "vnodes" ] ~docv:"V"
             ~doc:"Virtual nodes per member on the hash ring.")
  in
  let vars_arg =
    Arg.(value & opt int 32
         & info [ "vars" ] ~docv:"K" ~doc:"Number of shared variables.")
  in
  let writes_arg =
    Arg.(value & opt int 40
         & info [ "writes" ] ~docv:"W"
             ~doc:"Paced writes each process issues to its own variables.")
  in
  let write_period_arg =
    Arg.(value & opt int 5
         & info [ "write-period-ms" ] ~docv:"MS"
             ~doc:"Pacing between a process's writes.")
  in
  let demote_after_arg =
    Arg.(value & opt int 2500
         & info [ "demote-after-ms" ] ~docv:"MS"
             ~doc:"Failure detector: a member silent for $(docv) ms is \
                   demoted by a superseding proposal.")
  in
  let wal_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "wal-dir" ] ~docv:"DIR"
             ~doc:"Root for the per-member WAL directories, kept after the \
                   run for $(b,repro wal) inspection. Default: a temporary \
                   root, removed afterwards (the WAL tier itself is always \
                   on).")
  in
  let out_history_arg =
    Arg.(value & opt (some string) None
         & info [ "out-history" ] ~docv:"FILE"
             ~doc:"Write the assembled history (readable by $(b,repro \
                   check)).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON outcome record.")
  in
  Cmd.v
    (Cmd.info "reconfig"
       ~doc:"Fork a live cluster whose ring membership changes while it \
             runs: scripted $(b,join=)/$(b,leave=) events and crashes from \
             the chaos plan, epoch-fenced reconfiguration with WAL-resumable \
             state transfer, heartbeat demotion of silent members. The \
             reassembled history is checked against the tier's advertised \
             criterion (cache consistency; PRAM is reported informationally \
             — see DESIGN.md). Exit status: 1 on harness or unrecovered node \
             error, 2 when the history violates cache consistency, 3 when a \
             single membership change moved more than the 2kK/n gate, 4 \
             when the $(b,--deadline-ms) watchdog had to put down a wedged \
             run.")
    Term.(const run $ nodes_arg $ k_arg $ vnodes_arg $ vars_arg $ seed_arg
          $ writes_arg $ write_period_arg $ demote_after_arg $ chaos_arg
          $ connect_timeout_arg $ drain_quiet_arg $ deadline_arg $ wal_dir_arg
          $ out_history_arg $ json_arg $ engine_arg)

let cluster_cmd =
  let run nodes spec workload seed chaos session checkpoint_ms parity json
      out_history gc_space_overhead engine durable_flag fsync_every
      fsync_interval wal_dir connect_timeout drain_quiet deadline =
    apply_engine engine;
    let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt in
    let durable =
      resolve_fsync_policy ~flag:(durable_flag || wal_dir <> None)
        ~every:fsync_every ~interval:fsync_interval
        ~fail:(fun s -> fail "%s" s)
    in
    match
      Cluster.run ~n:nodes ~protocol:spec ~workload ~seed ?chaos ~session
        ?checkpoint_every_ms:checkpoint_ms ?gc_space_overhead ?durable ?wal_dir
        ?connect_timeout_ms:connect_timeout ?quiet_ms:drain_quiet
        ?deadline_ms:deadline ()
    with
    | Error msg ->
        prerr_endline msg;
        exit (exit_of_harness_error msg)
    | Ok o ->
        let verdict = verdict_text o.Cluster.verdict in
        Printf.printf
          "cluster: %d nodes, protocol %s, workload %s, seed %d%s\n"
          o.Cluster.n o.Cluster.protocol o.Cluster.workload o.Cluster.seed
          (if o.Cluster.chaos = "" then ""
           else Printf.sprintf ", chaos [%s]" o.Cluster.chaos);
        let chaotic = o.Cluster.session in
        let rows =
          Array.to_list o.Cluster.node_results
          |> List.map (fun r ->
                 let m = r.Cluster_node.metrics in
                 let w = r.Cluster_node.wire in
                 [
                   string_of_int r.Cluster_node.node;
                   string_of_int (List.length r.Cluster_node.ops);
                   string_of_int m.Memory.messages_sent;
                   string_of_int m.Memory.control_bytes;
                   string_of_int m.Memory.payload_bytes;
                   string_of_int r.Cluster_node.wall_ms;
                 ]
                 @ (if not chaotic then []
                    else
                      [
                        string_of_int r.Cluster_node.incarnation;
                        string_of_int w.Repro_msgpass.Net.dropped;
                        string_of_int w.Repro_msgpass.Net.retransmits;
                        string_of_int w.Repro_msgpass.Net.overhead_bytes;
                      ])
                 @ (if not o.Cluster.durable then []
                    else
                      match r.Cluster_node.wal_stats with
                      | None -> [ "-"; "-"; "-" ]
                      | Some s ->
                          [
                            string_of_int s.Wal.appends;
                            string_of_int s.Wal.syncs;
                            string_of_int s.Wal.rotations;
                          ]))
        in
        Table.print
          ~header:
            ([ "node"; "ops"; "sent"; "ctl bytes"; "pay bytes"; "ms" ]
            @ (if not chaotic then []
               else [ "inc"; "drop"; "retr"; "ovh bytes" ])
            @ if not o.Cluster.durable then [] else [ "wal"; "fsync"; "rot" ])
          ~rows ();
        if chaotic then
          Printf.printf
            "chaos: %d dropped, %d retransmits, %d dup suppressed, %d \
             reconnects, %d restarts; overhead %d bytes (apart from the \
             paper's control bytes)\n"
            o.Cluster.dropped_frames o.Cluster.retransmits
            o.Cluster.dups_suppressed o.Cluster.reconnects o.Cluster.restarts
            o.Cluster.overhead_bytes;
        if o.Cluster.durable then
          Printf.printf "durable: WAL digest parity %s%s\n"
            (if o.Cluster.wal_parity then "ok" else "MISMATCH")
            (match o.Cluster.wal_dir with
            | None -> ""
            | Some d -> Printf.sprintf "; logs kept in %s" d);
        Printf.printf "%s under %s: %s%s\n"
          (Checker.criterion_name o.Cluster.criterion)
          o.Cluster.protocol verdict
          (if (not o.Cluster.history_checked) && o.Cluster.verdict <> Checker.Consistent
           then " (non-differentiated history; acceptance is the finals check)"
           else "");
        (match o.Cluster.finals with
        | Ok () -> ()
        | Error msg -> Printf.printf "finals check FAILED: %s\n" msg);
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (History.to_string o.Cluster.history));
            Printf.printf "wrote %s\n" path)
          out_history;
        let parity_errors =
          if not parity then []
          else
            match
              Cluster.sim_baseline ~n:nodes ~protocol:spec ~workload ~seed ()
            with
            | Error msg -> [ Printf.sprintf "baseline failed: %s" msg ]
            | Ok b ->
                let m = b.Cluster.metrics in
                let compare what live sim =
                  if live = sim then begin
                    Printf.printf "parity: %s %d = sim %d\n" what live sim;
                    None
                  end
                  else Some (Printf.sprintf "%s: live %d, sim %d" what live sim)
                in
                List.filter_map Fun.id
                  [
                    compare "messages" o.Cluster.messages_sent
                      m.Memory.messages_sent;
                    compare "control bytes" o.Cluster.control_bytes
                      m.Memory.control_bytes;
                    compare "payload bytes" o.Cluster.payload_bytes
                      m.Memory.payload_bytes;
                  ]
        in
        List.iter (fun e -> Printf.printf "parity MISMATCH: %s\n" e) parity_errors;
        Option.iter
          (fun path ->
            Out_channel.with_open_text path @@ fun oc ->
            Jsonout.to_channel oc
              (Jsonout.Obj
                 [
                   ("schema", Jsonout.String "repro-cluster/1");
                   ("protocol", Jsonout.String o.Cluster.protocol);
                   ("workload", Jsonout.String o.Cluster.workload);
                   ("nodes", Jsonout.Int o.Cluster.n);
                   ("seed", Jsonout.Int o.Cluster.seed);
                   ( "criterion",
                     Jsonout.String (Checker.criterion_name o.Cluster.criterion)
                   );
                   ("verdict", Jsonout.String verdict);
                   ( "finals_ok",
                     Jsonout.Bool (Result.is_ok o.Cluster.finals) );
                   ("messages_sent", Jsonout.Int o.Cluster.messages_sent);
                   ("control_bytes", Jsonout.Int o.Cluster.control_bytes);
                   ("payload_bytes", Jsonout.Int o.Cluster.payload_bytes);
                   ("chaos", Jsonout.String o.Cluster.chaos);
                   ("session", Jsonout.Bool o.Cluster.session);
                   ("overhead_bytes", Jsonout.Int o.Cluster.overhead_bytes);
                   ("retransmits", Jsonout.Int o.Cluster.retransmits);
                   ("dups_suppressed", Jsonout.Int o.Cluster.dups_suppressed);
                   ("dropped_frames", Jsonout.Int o.Cluster.dropped_frames);
                   ("reconnects", Jsonout.Int o.Cluster.reconnects);
                   ("restarts", Jsonout.Int o.Cluster.restarts);
                   ("wall_ms", Jsonout.Int o.Cluster.wall_ms);
                   ( "parity",
                     if not parity then Jsonout.Null
                     else Jsonout.Bool (parity_errors = []) );
                   ("durable", Jsonout.Bool o.Cluster.durable);
                   ( "wal_parity",
                     if not o.Cluster.durable then Jsonout.Null
                     else Jsonout.Bool o.Cluster.wal_parity );
                 ]))
          json;
        let history_bad =
          match o.Cluster.verdict with
          | Checker.Consistent -> false
          | Checker.Inconsistent -> true
          | Checker.Undecidable _ -> o.Cluster.history_checked
        in
        if history_bad || Result.is_error o.Cluster.finals then exit 2;
        if parity_errors <> [] || (o.Cluster.durable && not o.Cluster.wal_parity)
        then exit 3
  in
  let nodes_arg =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let parity_arg =
    Arg.(value & flag
         & info [ "parity" ]
             ~doc:"Also run the same workload on the deterministic simulator \
                   and require identical message and declared-byte totals \
                   (exit 3 on mismatch).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON outcome record.")
  in
  let out_history_arg =
    Arg.(value & opt (some string) None
         & info [ "out-history" ] ~docv:"FILE"
             ~doc:"Write the assembled history (readable by $(b,repro check)).")
  in
  let checkpoint_ms_arg =
    Arg.(value & opt (some int) None
         & info [ "checkpoint-ms" ] ~docv:"MS"
             ~doc:"Node checkpoint period under a crash schedule (default 100 \
                   ms).")
  in
  let wal_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "wal-dir" ] ~docv:"DIR"
             ~doc:"Root for the per-node WAL directories, kept after the run \
                   for $(b,repro wal) inspection (implies the durability \
                   tier). Default: a temporary root, removed afterwards.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Fork a live loopback cluster (one OS process per node, real TCP \
             sockets), run a workload, and check the assembled history. With \
             $(b,--chaos) the harness supervises: injected crashes (exit 42) \
             are respawned from checkpoints and lossy links are made reliable \
             by the session layer; with $(b,--durable) each node runs a \
             write-ahead log and recovery is digest-verified against the \
             frozen post-crash files. Exit status: 1 on unrecovered node \
             crash, 2 on consistency/finals violation, 3 on sim-parity or \
             WAL-digest mismatch, 4 when the $(b,--deadline-ms) watchdog had \
             to put down a wedged run.")
    Term.(const run $ nodes_arg $ protocol_arg $ workload_arg $ seed_arg
          $ chaos_arg $ session_arg $ checkpoint_ms_arg $ parity_arg $ json_arg
          $ out_history_arg $ gc_space_overhead_arg $ engine_arg
          $ durable_flag_arg $ fsync_every_arg $ fsync_interval_arg
          $ wal_dir_arg $ connect_timeout_arg $ drain_quiet_arg $ deadline_arg)

(* --- open-loop load tier -------------------------------------------------------- *)

let load_cmd =
  let run spec nodes clients rate duration mix seed coalesce drain_plan
      gc_space_overhead json =
    let cfg =
      {
        Load_harness.protocol = spec;
        n = nodes;
        clients;
        rate;
        duration_ms = duration;
        mix;
        seed;
        coalesce;
        drain_plan;
        gc_space_overhead;
      }
    in
    match Load_harness.run cfg with
    | Error msg ->
        prerr_endline msg;
        exit 1
    | Ok r ->
        Format.printf "%a@." Load_harness.pp_result r;
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                Jsonout.to_channel oc
                  (match Load_harness.json_of_result r with
                  | Jsonout.Obj fields ->
                      Jsonout.Obj
                        (("schema", Jsonout.String "repro-load/1") :: fields)
                  | j -> j));
            Printf.printf "wrote %s\n" path)
          json;
        if r.Load_harness.completed_ops = 0 then begin
          prerr_endline "load: no operation completed";
          exit 2
        end
  in
  let mix_conv =
    Arg.conv
      ( (fun text ->
          match Mix.parse text with Ok m -> Ok m | Error msg -> Error (`Msg msg)),
        fun ppf m -> Format.pp_print_string ppf (Mix.to_string m) )
  in
  let nodes_arg =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let clients_arg =
    Arg.(value & opt int 2
         & info [ "clients" ] ~docv:"C" ~doc:"Load-generator fleet size.")
  in
  let rate_arg =
    Arg.(value & opt float 2000.0
         & info [ "rate" ] ~docv:"OPS"
             ~doc:"Aggregate offered rate, ops/sec (open loop: requests fire \
                   on schedule regardless of outstanding replies).")
  in
  let duration_arg =
    Arg.(value & opt int 1000
         & info [ "duration-ms" ] ~docv:"MS" ~doc:"Submission window.")
  in
  let mix_arg =
    Arg.(value & opt mix_conv Mix.read_heavy
         & info [ "mix" ] ~docv:"MIX"
             ~doc:(Printf.sprintf
                     "Operation mix: %s, or r=0.6,w=0.2,s=0.2,len=8."
                     (String.concat ", " (List.map fst Mix.named))))
  in
  let coalesce_arg =
    Arg.(value & opt int 8
         & info [ "coalesce" ] ~docv:"K"
             ~doc:"Session flush budget: up to $(docv) queued segments packed \
                   per frame (1 disables coalescing).")
  in
  let drain_arg =
    Arg.(value & flag
         & info [ "drain-plan" ]
             ~doc:"Submit every planned request however long it takes instead \
                   of cutting at $(b,--duration-ms) — makes the offered op \
                   multiset identical across runs (the coalescing comparison \
                   mode).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON outcome record.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Fork a live loopback cluster plus an open-loop client fleet: \
             pipelined read/write/scan RPCs against every replica, seeded \
             deterministic arrival schedules, throughput and latency \
             percentiles per operation kind. Exit status: 1 on harness \
             error, 2 when no operation completed.")
    Term.(const run $ protocol_arg $ nodes_arg $ clients_arg $ rate_arg
          $ duration_arg $ mix_arg $ seed_arg $ coalesce_arg $ drain_arg
          $ gc_space_overhead_arg $ json_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:
        "Partial replication for distributed shared memory (Hélary & Milani, \
         2005/2006): protocols, consistency checking, share-graph analysis and \
         experiments."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            protocols_cmd;
            analyze_cmd;
            run_cmd;
            check_cmd;
            bellman_ford_cmd;
            experiment_cmd;
            cluster_cmd;
            reconfig_cmd;
            serve_cmd;
            load_cmd;
            wal_cmd;
            placement_cmd;
          ]))

(* Consistency explorer: the paper's example histories (Figures 3-6)
   checked against the whole criterion lattice, plus witness
   serializations.

   Run with: dune exec examples/consistency_explorer.exe *)

module History = Repro_history.History
module Op = Repro_history.Op
module Checker = Repro_history.Checker
module Table = Repro_util.Table

let x = 0
and y = 1
and z = 2

let a = Op.Val 1
and b = Op.Val 2
and c = Op.Val 3
and d = Op.Val 4
and e = Op.Val 5

let r = Op.read
let w = Op.write

let histories =
  [
    ( "Fig. 3 (dependency chain along a hoop)",
      History.of_lists
        [
          [ w ~var:x a; w ~var:1 (Op.Val 11) ];
          [ r ~var:1 (Op.Val 11); w ~var:2 (Op.Val 12) ];
          [ r ~var:2 (Op.Val 12); w ~var:3 (Op.Val 13) ];
          [ r ~var:3 (Op.Val 13); r ~var:x a ];
        ] );
    ( "Fig. 4 (lazy causal, not causal)",
      History.of_lists
        [
          [ w ~var:x a; r ~var:x a; w ~var:y b ];
          [ r ~var:y b; w ~var:y c ];
          [ r ~var:y c; r ~var:x Op.Init ];
        ] );
    ( "Fig. 5 (not even lazy causal)",
      History.of_lists
        [
          [ w ~var:x a; r ~var:x a; w ~var:y b ];
          [ r ~var:y b; w ~var:y c ];
          [ r ~var:y c; w ~var:x d ];
          [ r ~var:x d; r ~var:x a ];
        ] );
    ( "Fig. 6 (not lazy semi-causal; see EXPERIMENTS.md on the extra read)",
      History.of_lists
        [
          [ w ~var:x a; r ~var:x a; w ~var:y b ];
          [ r ~var:y b; w ~var:y e; r ~var:y e; w ~var:z c ];
          [ r ~var:z c; w ~var:x d ];
          [ r ~var:x d; r ~var:x a ];
        ] );
    ( "store buffer (causal, not sequential)",
      History.of_lists
        [ [ w ~var:x a; r ~var:y Op.Init ]; [ w ~var:y b; r ~var:x Op.Init ] ] );
    ( "per-writer reordering (slow, not PRAM)",
      History.of_lists
        [ [ w ~var:x a; w ~var:y b ]; [ r ~var:y b; r ~var:x Op.Init ] ] );
  ]

let () =
  print_endline "checking the paper's example histories against every criterion\n";
  List.iter
    (fun (name, h) ->
      Printf.printf "--- %s ---\n" name;
      (* space-time layout: each operation to the right of its causal
         predecessors, read-from legend below *)
      print_string (Repro_history.Diagram.render h))
    histories;
  print_newline ();
  let rows =
    List.map
      (fun (name, h) ->
        name
        :: List.map
             (fun criterion ->
               match Checker.check criterion h with
               | Checker.Consistent -> "yes"
               | Checker.Inconsistent -> "no"
               | Checker.Undecidable _ -> "?")
             Checker.all_criteria)
      histories
  in
  Table.print
    ~header:("history" :: List.map Checker.criterion_name Checker.all_criteria)
    ~rows ();
  print_newline ();
  (* show a witness for Fig. 4 under lazy causality, like the paper's
     S1-S3 *)
  let fig4 = snd (List.nth histories 1) in
  match Checker.witness Checker.Lazy_causal fig4 with
  | None -> print_endline "no lazy-causal witness (unexpected)"
  | Some units ->
      print_endline "witness serializations for Fig. 4 under lazy causality:";
      List.iter
        (fun (key, order) ->
          let label =
            match key with
            | Checker.Proc p -> Printf.sprintf "S%d" (p + 1)
            | key -> Checker.unit_key_name key
          in
          Printf.printf "  %s = %s\n" label
            (String.concat "; "
               (List.map (fun gid -> Op.to_string (History.op fig4 gid)) order)))
        units

(* Tests for Repro_transport: the wire codec (round-trip, rejection of
   corrupt frames, streaming reassembly) and the transport abstraction
   (fail-fast fault validation, sim-backend equivalence with the direct
   network construction). *)

module Wire = Repro_transport.Wire
module Transport = Repro_transport.Transport
module Live = Repro_transport.Live
module Fault = Repro_msgpass.Fault
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution
module Registry = Repro_core.Registry
module Memory = Repro_core.Memory
module Workload = Repro_core.Workload
module History = Repro_history.History
module Rng = Repro_util.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- frame round-trip ------------------------------------------------------ *)

let frame_gen =
  QCheck.Gen.(
    let* kind =
      oneofl
        [
          Wire.Data; Wire.Hello; Wire.Done; Wire.Creq; Wire.Cresp; Wire.Join;
          Wire.Leave; Wire.Transfer; Wire.Epoch; Wire.Ping; Wire.Pong;
        ]
    in
    let* src = int_bound 0xFFFF in
    let* dst = int_bound 0xFFFF in
    let* epoch = int_bound 0xFFFF in
    let* control_bytes = int_bound 1_000_000 in
    let* payload_bytes = int_bound 1_000_000 in
    let* body = string_size (int_bound 512) in
    return { Wire.kind; src; dst; epoch; control_bytes; payload_bytes; body })

let frame_print (f : Wire.frame) =
  Printf.sprintf "{kind=%s src=%d dst=%d epoch=%d cb=%d pb=%d body=%S}"
    (match f.kind with
    | Data -> "data"
    | Hello -> "hello"
    | Done -> "done"
    | Creq -> "creq"
    | Cresp -> "cresp"
    | Join -> "join"
    | Leave -> "leave"
    | Transfer -> "transfer"
    | Epoch -> "epoch"
    | Ping -> "ping"
    | Pong -> "pong")
    f.src f.dst f.epoch f.control_bytes f.payload_bytes f.body

let frame_arb = QCheck.make ~print:frame_print frame_gen

let test_roundtrip =
  qcheck
    (QCheck.Test.make ~name:"wire_encode_decode_roundtrip" ~count:500 frame_arb
       (fun f -> Wire.of_bytes (Wire.encode f) = Ok f))

(* Protocol messages travel as marshalled bodies: a representative message
   value must survive encode -> decode -> unmarshal intact. *)
type fake_msg = Update of { var : int; value : int option; ts : int array }

let test_marshalled_message_roundtrip () =
  let msg = Update { var = 3; value = Some 42; ts = [| 7; 0; 9 |] } in
  let body = Marshal.to_string (123, msg) [] in
  let frame =
    { Wire.kind = Wire.Data; src = 1; dst = 2; epoch = 0; control_bytes = 24;
      payload_bytes = 8; body }
  in
  match Wire.of_bytes (Wire.encode frame) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok f ->
      let (stamp, (Update u as m)) : int * fake_msg =
        Marshal.from_string f.Wire.body 0
      in
      check Alcotest.int "stamp" 123 stamp;
      check Alcotest.int "var" 3 u.var;
      check Alcotest.bool "msg equal" true (m = msg)

(* --- rejection of corrupt input -------------------------------------------- *)

let encoded () =
  Wire.encode
    { Wire.kind = Wire.Data; src = 1; dst = 0; epoch = 3; control_bytes = 8;
      payload_bytes = 8; body = "payload" }

let expect_error name input =
  match Wire.of_bytes input with
  | Ok _ -> Alcotest.failf "%s: decoded a corrupt frame" name
  | Error _ -> ()

let test_truncated_rejected () =
  let buf = encoded () in
  for len = 0 to Bytes.length buf - 1 do
    expect_error "truncation" (Bytes.sub buf 0 len)
  done

let test_trailing_garbage_rejected () =
  let buf = encoded () in
  expect_error "trailing garbage" (Bytes.cat buf (Bytes.make 1 'x'))

let test_bad_magic_rejected () =
  let buf = encoded () in
  Bytes.set_uint8 buf 4 0x00;
  expect_error "bad magic" buf

let test_unknown_kind_rejected () =
  let buf = encoded () in
  Bytes.set_uint8 buf 5 11;
  expect_error "unknown kind" buf

let test_oversized_rejected () =
  let buf = encoded () in
  Bytes.set_int32_be buf 0 (Int32.of_int (Wire.max_frame_bytes + 1));
  expect_error "oversized declared length" buf;
  let buf = encoded () in
  Bytes.set_int32_be buf 0 5l;
  (* below the fixed header size *)
  expect_error "undersized declared length" (Bytes.sub buf 0 9)

let test_negative_byte_count_rejected () =
  let buf = encoded () in
  Bytes.set_int32_be buf 12 (-1l);
  expect_error "negative control bytes" buf

let test_encode_validates () =
  let frame body src =
    { Wire.kind = Wire.Data; src; dst = 0; epoch = 0; control_bytes = 0;
      payload_bytes = 0; body }
  in
  (* validation lives in [set_header] now, shared with the zero-copy path *)
  Alcotest.check_raises "src out of range"
    (Invalid_argument "Wire.set_header: bad src") (fun () ->
      ignore (Wire.encode (frame "" 0x10000)));
  Alcotest.check_raises "body too large"
    (Invalid_argument "Wire.set_header: frame too large") (fun () ->
      ignore (Wire.encode (frame (String.make (Wire.max_frame_bytes + 1) 'x') 0)))

(* --- streaming decoder ------------------------------------------------------ *)

let test_streaming_reassembly =
  qcheck
    (QCheck.Test.make ~name:"wire_streaming_reassembly" ~count:100
       QCheck.(pair (list_of_size Gen.(int_range 1 8) frame_arb) (int_range 1 7))
       (fun (frames, chunk) ->
         let stream =
           Bytes.concat Bytes.empty (List.map Wire.encode frames)
         in
         let d = Wire.decoder () in
         let got = ref [] in
         let pos = ref 0 in
         let total = Bytes.length stream in
         let drain () =
           let rec go () =
             match Wire.next d with
             | Ok (Some f) ->
                 got := f :: !got;
                 go ()
             | Ok None -> ()
             | Error e -> Alcotest.failf "streaming decode error: %s" e
           in
           go ()
         in
         while !pos < total do
           let len = Stdlib.min chunk (total - !pos) in
           Wire.feed d (Bytes.sub stream !pos len) len;
           pos := !pos + len;
           drain ()
         done;
         List.rev !got = frames && Wire.pending d = 0))

let test_streaming_poisoned () =
  let d = Wire.decoder () in
  let buf = encoded () in
  Bytes.set_uint8 buf 4 0x00;
  Wire.feed d buf (Bytes.length buf);
  (match Wire.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt stream not detected");
  (* poisoned for good: feeding valid bytes afterwards must not recover *)
  let ok = encoded () in
  Wire.feed d ok (Bytes.length ok);
  match Wire.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder recovered from poison"

(* --- client RPC codec -------------------------------------------------------- *)

module Rpc = Repro_transport.Rpc

let rpc_op_gen =
  QCheck.Gen.(
    let* var = int_bound 1_000_000 in
    oneof
      [
        return (Rpc.Read { var });
        (let* value = int in
         return (Rpc.Write { var; value }));
      ])

let rpc_request_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun op -> Rpc.Op op) rpc_op_gen;
        map (fun ops -> Rpc.Batch (Array.of_list ops))
          (list_size (int_bound 20) rpc_op_gen);
      ])

let rpc_request_print (id, req) =
  let op_str = function
    | Rpc.Read { var } -> Printf.sprintf "R x%d" var
    | Rpc.Write { var; value } -> Printf.sprintf "W x%d=%d" var value
  in
  Printf.sprintf "#%d %s" id
    (match req with
    | Rpc.Op op -> op_str op
    | Rpc.Batch ops ->
        "[" ^ String.concat "; " (Array.to_list (Array.map op_str ops)) ^ "]")

let test_rpc_request_roundtrip =
  qcheck
    (QCheck.Test.make ~name:"rpc_request_roundtrip" ~count:500
       (QCheck.make ~print:rpc_request_print
          QCheck.Gen.(pair (int_bound 0x7FFFFFFF) rpc_request_gen))
       (fun (id, req) ->
         Rpc.decode_request (Rpc.encode_request ~id req) = Ok (id, req)))

let rpc_outcome_gen =
  QCheck.Gen.(
    oneof
      [
        return (Rpc.Got None);
        map (fun v -> Rpc.Got (Some v)) int;
        return Rpc.Stored;
        map (fun s -> Rpc.Failed s) (string_size (int_bound 80));
      ])

let test_rpc_response_roundtrip =
  qcheck
    (QCheck.Test.make ~name:"rpc_response_roundtrip" ~count:500
       (QCheck.make
          QCheck.Gen.(
            pair (int_bound 0x7FFFFFFF)
              (map Array.of_list (list_size (int_bound 20) rpc_outcome_gen))))
       (fun (id, outcomes) ->
         Rpc.decode_response (Rpc.encode_response ~id outcomes)
         = Ok (id, outcomes)))

let test_rpc_truncation_rejected () =
  let reqs =
    [
      Rpc.Op (Rpc.Read { var = 7 });
      Rpc.Op (Rpc.Write { var = 3; value = -12345 });
      Rpc.Batch
        [| Rpc.Read { var = 0 }; Rpc.Write { var = 1; value = 99 };
           Rpc.Read { var = 2 } |];
    ]
  in
  List.iter
    (fun req ->
      let body = Rpc.encode_request ~id:42 req in
      for len = 0 to String.length body - 1 do
        match Rpc.decode_request (String.sub body 0 len) with
        | Ok _ -> Alcotest.failf "decoded a %d-byte truncation" len
        | Error _ -> ()
      done;
      match Rpc.decode_request (body ^ "\x00") with
      | Ok _ -> Alcotest.fail "decoded trailing garbage"
      | Error _ -> ())
    reqs;
  let resp = Rpc.encode_response ~id:7 [| Rpc.Got (Some 5); Rpc.Stored |] in
  for len = 0 to String.length resp - 1 do
    match Rpc.decode_response (String.sub resp 0 len) with
    | Ok _ -> Alcotest.failf "decoded a %d-byte response truncation" len
    | Error _ -> ()
  done

let test_rpc_corrupt_tags_rejected () =
  (* unknown request tag *)
  let body = Bytes.of_string (Rpc.encode_request ~id:1 (Rpc.Op (Rpc.Read { var = 0 }))) in
  Bytes.set_uint8 body 4 9;
  (match Rpc.decode_request (Bytes.to_string body) with
  | Ok _ -> Alcotest.fail "decoded unknown request tag"
  | Error _ -> ());
  (* unknown op tag inside a batch *)
  let body =
    Bytes.of_string
      (Rpc.encode_request ~id:1 (Rpc.Batch [| Rpc.Read { var = 0 } |]))
  in
  Bytes.set_uint8 body 7 9;
  (match Rpc.decode_request (Bytes.to_string body) with
  | Ok _ -> Alcotest.fail "decoded unknown op tag"
  | Error _ -> ());
  (* negative request id *)
  let body = Bytes.of_string (Rpc.encode_request ~id:1 (Rpc.Op (Rpc.Read { var = 0 }))) in
  Bytes.set_int32_be body 0 (-1l);
  (match Rpc.decode_request (Bytes.to_string body) with
  | Ok _ -> Alcotest.fail "decoded negative id"
  | Error _ -> ());
  (* unknown outcome tag *)
  let body = Bytes.of_string (Rpc.encode_response ~id:1 [| Rpc.Stored |]) in
  Bytes.set_uint8 body 6 9;
  match Rpc.decode_response (Bytes.to_string body) with
  | Ok _ -> Alcotest.fail "decoded unknown outcome tag"
  | Error _ -> ()

(* --- transport construction -------------------------------------------------- *)

let test_sim_validates_faults_fail_fast () =
  (* satellite: a bad fault probability must be rejected when the backend
     is configured, before any network exists or any message is sent *)
  let bad = { Fault.drop = 1.5; duplicate = 0.0; reorder = false } in
  match Transport.sim ~faults:bad ~latency:Latency.lan ~seed:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Transport.sim accepted drop probability 1.5"

(* The default (no-factory) path and an explicit Transport.sim factory must
   produce byte-identical runs: same history, same accounting. *)
let test_sim_factory_equivalence () =
  let spec = Option.get (Registry.find "causal-partial") in
  let dist =
    Distribution.random (Rng.create 5) ~n_procs:4 ~n_vars:8 ~replicas_per_var:3
  in
  let seed = 42 in
  let run memory =
    let h = Workload.run_random ~seed:(seed + 1) memory in
    (History.to_string h, (memory.Memory.metrics ()).Memory.control_bytes)
  in
  let direct = run (spec.Registry.make ~dist ~seed ()) in
  let via_factory =
    run
      (spec.Registry.make
         ~transport:(Transport.sim ~latency:Latency.lan ~seed ())
         ~dist ~seed ())
  in
  check Alcotest.(pair string int) "identical run" direct via_factory

(* --- chaos + session stack --------------------------------------------------- *)

module Chaos = Repro_transport.Chaos
module Session = Repro_transport.Session

let plan_of text =
  match Fault.Plan.parse text with
  | Ok p -> p
  | Error msg -> Alcotest.failf "bad plan %S: %s" text msg

(* The same stack a live node runs, on the sim backend: backend -> chaos ->
   session.  Returns the reliable factory plus both control handles. *)
let chaos_stack ?(config = Session.default) ~plan ~seed () =
  let base = Transport.sim ~latency:(Latency.constant 3) ~seed () in
  let chaotic, cctl = Chaos.wrap ~plan base in
  let reliable, sctl =
    Session.wrap ~config:{ config with Session.seed = seed + 1 } chaotic
  in
  (reliable, cctl, sctl)

let drive ?config ~plan ~seed ~count () =
  let reliable, cctl, sctl = chaos_stack ?config ~plan ~seed () in
  let t = reliable.Transport.create 2 in
  let got = ref [] in
  t.Transport.set_handler 1 (fun e ->
      got := (e.Repro_msgpass.Net.msg, t.Transport.now ()) :: !got);
  for k = 1 to count do
    t.Transport.send ~src:0 ~dst:1 ~control_bytes:4 ~payload_bytes:0 k
  done;
  t.Transport.quiesce ();
  (List.rev !got, t.Transport.stats (), cctl.Chaos.stats (), sctl.Session.stats ())

(* The session-layer guarantee: over any finite-probability mix of drops,
   duplications and reorder delays, the receiver sees exactly the sent
   sequence, once each, in order — and the outer stats still count first
   transmissions only, so protocol-level accounting is chaos-invariant. *)
let test_session_exactly_once_in_order =
  qcheck
    (QCheck.Test.make ~name:"session_exactly_once_in_order" ~count:40
       QCheck.(
         quad (int_bound 40) (int_bound 40) (int_bound 40) (int_bound 1000))
       (fun (d, u, r, seed) ->
         let plan =
           plan_of
             (Printf.sprintf "seed=%d,drop=0.%02d,dup=0.%02d,reorder=0.%02d"
                (seed + 1) d u r)
         in
         let count = 25 in
         let got, stats, _, _ = drive ~plan ~seed ~count () in
         List.map fst got = List.init count (fun i -> i + 1)
         && stats.Repro_msgpass.Net.sent = count
         && stats.Repro_msgpass.Net.delivered = count
         && stats.Repro_msgpass.Net.total_control_bytes = 4 * count))

let test_chaos_stack_deterministic () =
  (* one plan, one seed: bit-identical delivery trace and counters, run
     after run — the property that makes a chaos experiment replayable *)
  let run () =
    let plan = plan_of "seed=9,drop=0.2,dup=0.1,reorder=0.3" in
    let got, _, c, s = drive ~plan ~seed:4 ~count:20 () in
    (got, c.Chaos.drops, c.Chaos.duplicates, s.Session.retransmits,
     s.Session.overhead_bytes)
  in
  let g1, d1, u1, r1, o1 = run () in
  let g2, d2, u2, r2, o2 = run () in
  check Alcotest.(list (pair int int)) "delivery trace reproducible" g1 g2;
  check Alcotest.int "drops reproducible" d1 d2;
  check Alcotest.int "duplicates reproducible" u1 u2;
  check Alcotest.int "retransmits reproducible" r1 r2;
  check Alcotest.int "overhead reproducible" o1 o2;
  check Alcotest.bool "the plan actually bit" true (d1 > 0 && r1 > 0)

let test_session_overhead_accounting () =
  (* on a clean link the session layer's cost is pure bookkeeping: segment
     headers plus acks, no retransmissions, no suppressed duplicates *)
  let got, stats, _, s = drive ~plan:Fault.Plan.none ~seed:2 ~count:10 () in
  check Alcotest.int "all delivered" 10 (List.length got);
  check Alcotest.int "no retransmits" 0 s.Session.retransmits;
  check Alcotest.int "no dups suppressed" 0 s.Session.dups_suppressed;
  check Alcotest.int "overhead = headers + acks"
    ((10 * Session.seg_header_bytes) + (s.Session.acks_sent * Session.ack_bytes))
    s.Session.overhead_bytes;
  check Alcotest.int "protocol lane untouched" 40
    stats.Repro_msgpass.Net.total_control_bytes

(* Acks ride on reverse-direction data segments for free (the segment
   header reserves the slot); a standalone Ack frame is the idle-link
   fallback.  Request/reply traffic must therefore piggyback. *)
let test_session_ack_piggyback () =
  let reliable, _, sctl = chaos_stack ~plan:Fault.Plan.none ~seed:3 () in
  let t = reliable.Transport.create 2 in
  t.Transport.set_handler 0 (fun _ -> ());
  t.Transport.set_handler 1 (fun e ->
      (* synchronous reply, exactly the front-door shape *)
      t.Transport.send ~src:1 ~dst:0 ~control_bytes:4 ~payload_bytes:0
        (1000 + e.Repro_msgpass.Net.msg));
  for k = 1 to 10 do
    t.Transport.send ~src:0 ~dst:1 ~control_bytes:4 ~payload_bytes:0 k
  done;
  t.Transport.quiesce ();
  let s = sctl.Session.stats () in
  check Alcotest.int "all delivered" 20
    (t.Transport.stats ()).Repro_msgpass.Net.delivered;
  check Alcotest.bool "acks piggybacked" true (s.Session.acks_piggybacked > 0);
  (* every piggybacked ack is a standalone Ack frame (and its bytes) saved *)
  check Alcotest.int "overhead = headers + standalone acks only"
    ((s.Session.segs_sent * Session.seg_header_bytes)
    + (s.Session.acks_sent * Session.ack_bytes))
    s.Session.overhead_bytes

(* Coalescing is invisible to the protocol lane: same deliveries in the
   same order, same first-transmission accounting — only the overhead
   lane (frames, headers, standalone acks) shrinks. *)
let test_coalescing_equivalence () =
  let run coalesce plan =
    let got, stats, _, s =
      drive
        ~config:{ Session.default with Session.coalesce }
        ~plan ~seed:11 ~count:30 ()
    in
    (List.map fst got, stats, s)
  in
  (* clean link: strict frame/overhead reduction *)
  let g1, st1, s1 = run 1 Fault.Plan.none in
  let g8, st8, s8 = run 8 Fault.Plan.none in
  check Alcotest.(list int) "same deliveries (clean)" g1 g8;
  check Alcotest.int "same msgs sent" st1.Repro_msgpass.Net.sent
    st8.Repro_msgpass.Net.sent;
  check Alcotest.int "same control bytes" st1.Repro_msgpass.Net.total_control_bytes
    st8.Repro_msgpass.Net.total_control_bytes;
  check Alcotest.int "same payload bytes" st1.Repro_msgpass.Net.total_payload_bytes
    st8.Repro_msgpass.Net.total_payload_bytes;
  check Alcotest.bool "fewer frames" true
    (s8.Session.frames_sent < s1.Session.frames_sent);
  check Alcotest.bool "less overhead" true
    (s8.Session.overhead_bytes < s1.Session.overhead_bytes);
  check Alcotest.int "same segments" s1.Session.segs_sent s8.Session.segs_sent;
  (* chaotic link: exactly-once in-order delivery and protocol accounting
     still agree across budgets *)
  let plan = plan_of "seed=7,drop=0.15,dup=0.05,reorder=0.2" in
  let g1, st1, _ = run 1 plan in
  let g8, st8, _ = run 8 plan in
  check Alcotest.(list int) "same deliveries (chaos)" g1 g8;
  check Alcotest.int "same msgs sent (chaos)" st1.Repro_msgpass.Net.sent
    st8.Repro_msgpass.Net.sent;
  check Alcotest.int "same control bytes (chaos)"
    st1.Repro_msgpass.Net.total_control_bytes
    st8.Repro_msgpass.Net.total_control_bytes

(* --- epoch fence at the live seam ------------------------------------------ *)

(* Two real Live endpoints over loopback (the peer forked, as in the
   cluster harness).  The peer emits a [Transfer] while still at epoch 0
   after this node has committed epoch 2 — the fence must drop and count
   it; its [Ping] crosses freely (control kinds are how nodes learn of a
   newer epoch), and a [Transfer] re-stamped at the current epoch is
   delivered. *)
let test_epoch_fence () =
  let fd0 = Live.bind (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  let fd1 = Live.bind (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  let peers = [| Live.listen_addr fd0; Live.listen_addr fd1 |] in
  let config self =
    {
      Live.self;
      n = 2;
      peers;
      fingerprint = "epoch-fence-test";
      resilient = false;
      incarnation = 0;
      connect_timeout_ms = 0;
    }
  in
  match Unix.fork () with
  | 0 ->
      (* the stale peer: node 1 sends while still at epoch 0 *)
      let code =
        try
          Unix.close fd0;
          let t = Live.create (config 1) ~listen_fd:fd1 in
          Live.wait_peers t ~timeout_ms:5_000;
          (* let the parent raise its epoch first *)
          Unix.sleepf 0.3;
          Live.send_control t ~dst:0 ~kind:Wire.Transfer ~body:"stale";
          Live.send_control t ~dst:0 ~kind:Wire.Ping ~body:"ping";
          Live.set_epoch t 2;
          Live.send_control t ~dst:0 ~kind:Wire.Transfer ~body:"fresh";
          let deadline = Live.now_ms t + 1_000 in
          while Live.now_ms t < deadline do
            ignore (Live.step t ~block:true)
          done;
          Live.close t;
          0
        with _ -> 1
      in
      Unix._exit code
  | child ->
      Unix.close fd1;
      let t = Live.create (config 0) ~listen_fd:fd0 in
      let seen = ref [] in
      Live.set_control_handler t (fun ~reply:_ v ->
          seen := (v.Wire.v_kind, Wire.view_body v) :: !seen);
      Live.wait_peers t ~timeout_ms:5_000;
      Live.set_epoch t 2;
      let got k body = List.mem (k, body) !seen in
      let deadline = Live.now_ms t + 5_000 in
      while
        not (got Wire.Ping "ping" && got Wire.Transfer "fresh")
        && Live.now_ms t < deadline
      do
        ignore (Live.step t ~block:true)
      done;
      check Alcotest.bool "ping crossed the fence" true (got Wire.Ping "ping");
      check Alcotest.bool "current-epoch transfer delivered" true
        (got Wire.Transfer "fresh");
      check Alcotest.bool "stale transfer never dispatched" false
        (got Wire.Transfer "stale");
      check Alcotest.int "stale frame counted" 1 (Live.stale_epochs t);
      Live.close t;
      let _, status = Unix.waitpid [] child in
      check Alcotest.bool "peer exited cleanly" true
        (status = Unix.WEXITED 0)

let () =
  Alcotest.run "repro_transport"
    [
      ( "wire",
        [
          test_roundtrip;
          Alcotest.test_case "marshalled message round-trip" `Quick
            test_marshalled_message_roundtrip;
          Alcotest.test_case "truncated rejected" `Quick test_truncated_rejected;
          Alcotest.test_case "trailing garbage rejected" `Quick
            test_trailing_garbage_rejected;
          Alcotest.test_case "bad magic rejected" `Quick test_bad_magic_rejected;
          Alcotest.test_case "unknown kind rejected" `Quick
            test_unknown_kind_rejected;
          Alcotest.test_case "oversized/undersized rejected" `Quick
            test_oversized_rejected;
          Alcotest.test_case "negative byte count rejected" `Quick
            test_negative_byte_count_rejected;
          Alcotest.test_case "encode validates" `Quick test_encode_validates;
          test_streaming_reassembly;
          Alcotest.test_case "poisoned decoder stays poisoned" `Quick
            test_streaming_poisoned;
        ] );
      ( "rpc",
        [
          test_rpc_request_roundtrip;
          test_rpc_response_roundtrip;
          Alcotest.test_case "truncation rejected" `Quick
            test_rpc_truncation_rejected;
          Alcotest.test_case "corrupt tags rejected" `Quick
            test_rpc_corrupt_tags_rejected;
        ] );
      ( "transport",
        [
          Alcotest.test_case "sim validates faults fail-fast" `Quick
            test_sim_validates_faults_fail_fast;
          Alcotest.test_case "sim factory equals direct construction" `Quick
            test_sim_factory_equivalence;
        ] );
      ( "live",
        [ Alcotest.test_case "epoch fence at the seam" `Quick test_epoch_fence ] );
      ( "session",
        [
          test_session_exactly_once_in_order;
          Alcotest.test_case "chaos stack is deterministic" `Quick
            test_chaos_stack_deterministic;
          Alcotest.test_case "overhead accounted apart" `Quick
            test_session_overhead_accounting;
          Alcotest.test_case "acks piggyback on replies" `Quick
            test_session_ack_piggyback;
          Alcotest.test_case "coalescing equivalence" `Quick
            test_coalescing_equivalence;
        ] );
    ]

(* Tests for Repro_experiments: every table regenerates with the expected
   shape, and the adversarial scenario bank witnesses exactly the
   violations the paper's figures predict. *)

module Experiment = Repro_experiments.Experiment
module Registry = Repro_core.Registry
module Checker = Repro_history.Checker
module History = Repro_history.History

let check = Alcotest.check

let seed = 77

let consistent criterion h =
  match Checker.check criterion h with
  | Checker.Consistent -> true
  | Checker.Inconsistent -> false
  | Checker.Undecidable _ -> Alcotest.fail "undecidable history"

let find_spec name =
  match Registry.find name with
  | Some spec -> spec
  | None -> Alcotest.failf "unknown protocol %s" name

let scenario spec_name scenario_name =
  match List.assoc_opt scenario_name (Experiment.adversarial_histories (find_spec spec_name) ~seed) with
  | Some h -> h
  | None -> Alcotest.failf "scenario %s missing for %s" scenario_name spec_name

(* --- scenario bank ----------------------------------------------------------- *)

let test_hoop_leak_verdicts () =
  (* causal-partial pays the broadcast and stays causal; the efficient
     protocols violate causality exactly as Theorem 1 predicts *)
  check Alcotest.bool "causal-partial stays causal" true
    (consistent Checker.Causal (scenario "causal-partial" "hoop-leak"));
  List.iter
    (fun name ->
      let h = scenario name "hoop-leak" in
      check Alcotest.bool (name ^ " violates causal") false
        (consistent Checker.Causal h);
      check Alcotest.bool (name ^ " stays pram") true (consistent Checker.Pram h);
      (* the hoop-leak history is still lazy-causal: the two final reads
         are on different variables, hence li-unrelated *)
      check Alcotest.bool (name ^ " stays lazy-causal") true
        (consistent Checker.Lazy_causal h))
    [ "causal-adhoc"; "pram-partial"; "slow-partial" ]

let test_fig5_verdicts () =
  check Alcotest.bool "causal-partial stays lazy-causal" true
    (consistent Checker.Lazy_causal (scenario "causal-partial" "fig5"));
  List.iter
    (fun name ->
      let h = scenario name "fig5" in
      check Alcotest.bool (name ^ " violates lazy-causal") false
        (consistent Checker.Lazy_causal h);
      check Alcotest.bool (name ^ " stays pram") true (consistent Checker.Pram h);
      (* Fig. 5's chain needs a raw read-from hop, which lazy-semi-causal
         does not contain: the history is still lsc *)
      check Alcotest.bool (name ^ " stays lazy-semi-causal") true
        (consistent Checker.Lazy_semi_causal h))
    [ "causal-adhoc"; "pram-partial"; "slow-partial" ]

let test_fig6_verdicts () =
  check Alcotest.bool "causal-partial stays lsc" true
    (consistent Checker.Lazy_semi_causal (scenario "causal-partial" "fig6"));
  List.iter
    (fun name ->
      let h = scenario name "fig6" in
      check Alcotest.bool (name ^ " violates lazy-semi-causal") false
        (consistent Checker.Lazy_semi_causal h);
      check Alcotest.bool (name ^ " stays pram") true (consistent Checker.Pram h))
    [ "causal-adhoc"; "pram-partial"; "slow-partial" ]

let test_scenarios_empty_for_incompatible () =
  check Alcotest.int "blocking protocols skip scenarios" 0
    (List.length (Experiment.adversarial_histories (find_spec "atomic-primary") ~seed));
  check Alcotest.int "full-replication protocols skip scenarios" 0
    (List.length (Experiment.adversarial_histories (find_spec "causal-full") ~seed))

(* --- table shapes --------------------------------------------------------------- *)

let row_count table = List.length table.Experiment.rows

let cell table ~row ~col = List.nth (List.nth table.Experiment.rows row) col

let test_scaling_shape () =
  let t = Experiment.scaling ~sizes:[ 4; 8 ] ~seed () in
  check Alcotest.int "rows = sizes x protocols" 10 (row_count t);
  (* pram control bytes must not grow with n: column 4 is ctrl B/write *)
  let pram_rows =
    List.filter (fun row -> List.nth row 1 = "pram-partial") t.Experiment.rows
  in
  let per_write = List.map (fun row -> List.nth row 4) pram_rows in
  check Alcotest.bool "pram ctrl/write constant" true
    (List.sort_uniq compare per_write |> List.length = 1);
  (* causal-full control grows strictly *)
  let ctrl_of name =
    List.filter (fun row -> List.nth row 1 = name) t.Experiment.rows
    |> List.map (fun row -> int_of_string (List.nth row 3))
  in
  check Alcotest.bool "causal ctrl grows" true
    (match ctrl_of "causal-full" with [ a; b ] -> b > a | _ -> false);
  (* delta compression is strictly cheaper than full vectors, but still
     grows with n (it does not evade Theorem 1) *)
  (match (ctrl_of "causal-full", ctrl_of "causal-delta") with
  | [ f4; f8 ], [ d4; d8 ] ->
      check Alcotest.bool "delta < full (n=4)" true (d4 < f4);
      check Alcotest.bool "delta < full (n=8)" true (d8 < f8);
      check Alcotest.bool "delta grows" true (d8 > d4)
  | _ -> Alcotest.fail "missing causal rows")

let test_mention_audit_shape () =
  let t = Experiment.mention_audit ~seed () in
  check Alcotest.int "4 variables" 4 (row_count t);
  (* Theorem 1 column predicts everyone on the 4-cycle *)
  for row = 0 to 3 do
    check Alcotest.string "thm1 prediction" "{0, 1, 2, 3}" (cell t ~row ~col:2)
  done

let test_criterion_matrix_staircase () =
  let t = Experiment.criterion_matrix ~seed:20_240_601 () in
  let row_of name =
    List.find (fun row -> List.hd row = name) t.Experiment.rows
  in
  (* guarantee column is always yes *)
  let criteria = List.map Checker.criterion_name Checker.all_criteria in
  let col_of crit =
    match List.find_index (String.equal crit) criteria with
    | Some i -> i + 1
    | None -> Alcotest.fail "criterion column missing"
  in
  List.iter
    (fun spec ->
      let row = row_of spec.Registry.name in
      let guarantee = Checker.criterion_name spec.Registry.guarantees in
      check Alcotest.string
        (spec.Registry.name ^ " guarantee cell")
        "yes"
        (List.nth row (col_of guarantee)))
    Registry.all;
  (* slow-partial must fail everything stronger than slow *)
  let slow_row = row_of "slow-partial" in
  List.iter
    (fun crit ->
      check Alcotest.string ("slow fails " ^ crit) "no" (List.nth slow_row (col_of crit)))
    [ "sequential"; "causal"; "lazy-causal"; "lazy-semi-causal"; "pram" ]

let test_bellman_ford_table () =
  let t = Experiment.bellman_ford ~seed () in
  check Alcotest.bool "has rows" true (row_count t > 0);
  (* every pram-or-stronger row reports exact distances *)
  List.iter
    (fun row ->
      let protocol = List.nth row 1 and verdict = List.nth row 2 in
      if protocol <> "slow-partial" then
        check Alcotest.string (protocol ^ " exact") "exact" verdict)
    t.Experiment.rows

let test_adhoc_ablation_table () =
  let t = Experiment.adhoc_ablation ~seed () in
  check Alcotest.int "three rows" 3 (row_count t);
  (* off-clique traffic is always 0: the protocol is efficient *)
  List.iter
    (fun row -> check Alcotest.string "no off-clique traffic" "0" (List.nth row 2))
    t.Experiment.rows;
  (* the adversarial row witnesses the violation *)
  check Alcotest.bool "violation witnessed" true
    (String.length (List.nth (List.nth t.Experiment.rows 2) 3) > 0
    && List.nth (List.nth t.Experiment.rows 2) 3 <> "causal (unexpected)")

let test_op_costs_table () =
  let t = Experiment.op_costs ~seed () in
  check Alcotest.int "one row per protocol" (List.length Registry.all) (row_count t)

let test_loss_sweep_table () =
  let t = Experiment.loss_sweep ~seed () in
  check Alcotest.int "five drop rates" 5 (row_count t);
  List.iter
    (fun row ->
      (* delivery is always complete and every run is PRAM *)
      (match String.split_on_char '/' (List.nth row 3) with
      | [ got; want ] -> check Alcotest.string "all applied" want got
      | _ -> Alcotest.fail "bad applied/expected cell");
      check Alcotest.string "pram" "yes" (List.nth row 4))
    t.Experiment.rows

let test_bottleneck_table () =
  let t = Experiment.bottleneck ~seed () in
  check Alcotest.int "four sizes" 4 (row_count t);
  (* the sequencer's completion time grows monotonically with n *)
  let seq_times =
    List.map (fun row -> int_of_string (List.nth row 1)) t.Experiment.rows
  in
  check Alcotest.bool "sequencer time grows" true
    (List.sort compare seq_times = seq_times)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_render_smoke () =
  let t = Experiment.mention_audit ~seed () in
  let s = Experiment.render t in
  check Alcotest.bool "contains id" true (contains ~needle:"T1" s);
  check Alcotest.bool "contains a note" true (contains ~needle:"note:" s)

let test_find_and_ids () =
  check Alcotest.int "twelve experiments" 12 (List.length Experiment.ids);
  check Alcotest.bool "find case-insensitive" true (Experiment.find "e1" <> None);
  check Alcotest.bool "find scaled tier" true (Experiment.find "e1x" <> None);
  check Alcotest.bool "unknown" true (Experiment.find "Z9" = None)

let () =
  Alcotest.run "repro_experiments"
    [
      ( "scenarios",
        [
          Alcotest.test_case "hoop-leak verdicts" `Quick test_hoop_leak_verdicts;
          Alcotest.test_case "fig5 verdicts" `Quick test_fig5_verdicts;
          Alcotest.test_case "fig6 verdicts" `Quick test_fig6_verdicts;
          Alcotest.test_case "incompatible protocols skip" `Quick
            test_scenarios_empty_for_incompatible;
        ] );
      ( "tables",
        [
          Alcotest.test_case "E1 scaling shape" `Quick test_scaling_shape;
          Alcotest.test_case "T1 mention audit shape" `Quick test_mention_audit_shape;
          Alcotest.test_case "A2 staircase" `Slow test_criterion_matrix_staircase;
          Alcotest.test_case "E2 bellman-ford" `Quick test_bellman_ford_table;
          Alcotest.test_case "A1 adhoc ablation" `Quick test_adhoc_ablation_table;
          Alcotest.test_case "C1 op costs" `Quick test_op_costs_table;
          Alcotest.test_case "L1 loss sweep" `Quick test_loss_sweep_table;
          Alcotest.test_case "B1 bottleneck" `Quick test_bottleneck_table;
          Alcotest.test_case "render smoke" `Quick test_render_smoke;
          Alcotest.test_case "find and ids" `Quick test_find_and_ids;
        ] );
    ]

(* Golden determinism tests: every registry protocol, run on a fixed
   distribution and workload, must keep producing byte-identical histories
   and network statistics.  The digests below were captured from the seed
   event engine (tuple-keyed Pqueue scheduler, list-based causal pending
   buffers) immediately before the int-keyed/ring-buffer rewrite; the
   rewrite's behaviour contract is that none of them move.

   The lossy digests (and the experiment-table digest, whose L1 sweep
   injects loss) were re-pinned when fault decisions moved to a dedicated
   RNG stream split off the latency stream: only runs that actually flip
   fault coins could move, and the fault-free digests above prove the
   split left the latency draws untouched.

   Regenerate with:  GOLDEN_DUMP=1 dune exec test/test_golden.exe  *)

module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Workload = Repro_core.Workload
module Pram_reliable = Repro_core.Pram_reliable
module Distribution = Repro_sharegraph.Distribution
module History = Repro_history.History
module Experiment = Repro_experiments.Experiment
module Rng = Repro_util.Rng
module Bitset = Repro_util.Bitset

let seeds = [ 11; 22; 33 ]

let hoopy = Distribution.of_lists ~n_vars:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ]

let fingerprint name seed (memory : Memory.t) (h : History.t) =
  let m = memory.Memory.metrics () in
  let mentioned =
    Array.to_list m.Memory.mentioned_at
    |> List.map (fun set -> Format.asprintf "%a" Bitset.pp set)
    |> String.concat ";"
  in
  let payload =
    Printf.sprintf "%s/%d\n%s\nsent=%d delivered=%d ctrl=%d payload=%d applied=%d now=%d\nmentioned=%s"
      name seed (History.to_string h) m.Memory.messages_sent
      m.Memory.messages_delivered m.Memory.control_bytes m.Memory.payload_bytes
      m.Memory.applied_writes
      (memory.Memory.now ())
      mentioned
  in
  Digest.to_hex (Digest.string payload)

let run_spec (spec : Registry.spec) seed =
  let dist =
    if spec.Registry.requires_full_replication then
      Distribution.full ~n_procs:6 ~n_vars:8
    else
      Distribution.random (Rng.create (777 + seed)) ~n_procs:6 ~n_vars:8
        ~replicas_per_var:3
  in
  let memory = spec.Registry.make ~dist ~seed () in
  let h = Workload.run_random ~seed:(seed + 1) memory in
  fingerprint spec.Registry.name seed memory h

let run_lossy seed =
  (* the rewrite touches pram-reliable's go-back-N buffers; pin its lossy
     behaviour too (the registry entry runs it over clean channels) *)
  let memory = Pram_reliable.create ~dist:hoopy ~seed () in
  let h = Workload.run_random ~seed:(seed + 1) memory in
  fingerprint "pram-reliable-lossy" seed memory h

let cases () =
  List.concat_map
    (fun seed ->
      List.map
        (fun spec -> (spec.Registry.name, seed, run_spec spec seed))
        Registry.all
      @ [ ("pram-reliable-lossy", seed, run_lossy seed) ])
    seeds

let tables_digest () =
  let rendered =
    Experiment.all ~seed:20_240_601 ()
    |> List.map Experiment.render
    |> String.concat "\n"
  in
  Digest.to_hex (Digest.string rendered)

(* --- expected digests (seed engine, captured pre-rewrite) ----------------- *)

let expected =
  [
    ("atomic-primary", 11, "1aacd079ad6ffef6baec9d35715ebe09");
    ("seq-sequencer", 11, "a2b1eb67df5f1640674de077c377713f");
    ("causal-full", 11, "537acdadc809dba41c77b20505f929d6");
    ("causal-delta", 11, "198173d447d5337b13989ce7e2d4c52a");
    ("causal-partial", 11, "f6a283ec000d607e0a7f47409169d61d");
    ("causal-gossip", 11, "4dd47ad570962814cfe76c04a7cde69b");
    ("causal-adhoc", 11, "bb5ffe92e6a63fe65799cf51a1ca1420");
    ("pram-partial", 11, "dd9af8c742376361dc0b6c63ee69d435");
    ("pram-reliable", 11, "91c9ec6f726371d5f33225d215652d6e");
    ("slow-partial", 11, "96a07d3952847727f594ebfcc69b52dd");
    ("pram-reliable-lossy", 11, "446407f8969b7bfafe0bb446a827f7cd");
    ("atomic-primary", 22, "e82394d6cbdd9bde11aacc426de30b8e");
    ("seq-sequencer", 22, "26e2260a6ea50201b44d709441148d5a");
    ("causal-full", 22, "b620a1371aaf14099a3b22ff290601f1");
    ("causal-delta", 22, "813482e61bad8b9f735c84fbeef69c8f");
    ("causal-partial", 22, "c4e36db8f017498ef128dde68d995609");
    ("causal-gossip", 22, "1bbfcf5a9447e3f98083db451e5d1f2b");
    ("causal-adhoc", 22, "b8ac6ab77100a7d9cc09a5daddf2f8e6");
    ("pram-partial", 22, "6ff7b5c9d7bfe1dd2f9f967292062599");
    ("pram-reliable", 22, "3d8c97c01ee8bd9993bf32c65eca4bb2");
    ("slow-partial", 22, "7f81b8459dfed262e5800f3df13c39e3");
    ("pram-reliable-lossy", 22, "7c7724d25d02c4356232ec7658e0c805");
    ("atomic-primary", 33, "625b90fec005afc2f43d7960f59712a2");
    ("seq-sequencer", 33, "60c1ab47170eafdd8540af2923e87931");
    ("causal-full", 33, "862d32cca0a986903af1d8cb0f30e6dd");
    ("causal-delta", 33, "482d52ca41cd4cc854c2ee2d6148c8f6");
    ("causal-partial", 33, "42a37bbcc619a7b441951c5b57e8c4fc");
    ("causal-gossip", 33, "35d5bdaf1016491c87d0dcde6b1ad96e");
    ("causal-adhoc", 33, "815562b15314d0c87e493596cd4afa9e");
    ("pram-partial", 33, "1da96f1ffc0b97ff1e28548bb5faad66");
    ("pram-reliable", 33, "01ef458fa6e3a73b6abe1df478a1969f");
    ("slow-partial", 33, "0c86a7db19b0cb7f4617da214c4fd4c9");
    ("pram-reliable-lossy", 33, "4480e795526d778b5a243a264ad6e75e");
  ]

let expected_tables = "bd2ac0bf2b37c77684a8790eb4f6cb5b"

let dump () =
  List.iter
    (fun (name, seed, digest) ->
      Printf.printf "    (%S, %d, %S);\n" name seed digest)
    (cases ());
  Printf.printf "  tables: %S\n" (tables_digest ())

let test_protocol_digests () =
  List.iter
    (fun (name, seed, digest) ->
      let expect =
        List.find_opt (fun (n, s, _) -> n = name && s = seed) expected
      in
      match expect with
      | None -> Alcotest.failf "no golden digest recorded for %s/%d" name seed
      | Some (_, _, d) ->
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d history+stats digest" name seed)
            d digest)
    (cases ())

let test_tables_digest () =
  Alcotest.(check string) "experiment tables byte-identical" expected_tables
    (tables_digest ())

let () =
  if Sys.getenv_opt "GOLDEN_DUMP" <> None then dump ()
  else
    Alcotest.run "repro_golden"
      [
        ( "golden",
          [
            Alcotest.test_case "protocol histories and stats" `Quick
              test_protocol_digests;
            Alcotest.test_case "experiment tables" `Slow test_tables_digest;
          ] );
      ]

(* Tests for Repro_history: operations, histories, the paper's order
   relations, the consistency checkers — including the paper's Figures 3-6
   — and the generator-vs-checker properties. *)

module Op = Repro_history.Op
module History = Repro_history.History
module Orders = Repro_history.Orders
module Checker = Repro_history.Checker
module Generator = Repro_history.Generator
module Graph = Repro_util.Graph
module Rng = Repro_util.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* variables *)
let x = 0
let y = 1
let z = 2

(* values *)
let a = Op.Val 1
let b = Op.Val 2
let c = Op.Val 3
let d = Op.Val 4
let e = Op.Val 5

let r = Op.read
let w = Op.write

let consistent criterion h =
  match Checker.check criterion h with
  | Checker.Consistent -> true
  | Checker.Inconsistent -> false
  | Checker.Undecidable err ->
      Alcotest.failf "undecidable: %a" (fun ppf -> History.pp_rf_error ppf) err

(* --- op ------------------------------------------------------------------ *)

let test_op_pp () =
  let op = { Op.proc = 1; index = 0; kind = Op.Write; var = 2; value = Op.Val 5 } in
  check Alcotest.string "write" "w1(x2)5" (Op.to_string op);
  let op = { op with Op.kind = Op.Read; value = Op.Init } in
  check Alcotest.string "read bottom" "r1(x2)\xe2\x8a\xa5" (Op.to_string op)

let test_op_write_init_rejected () =
  Alcotest.check_raises "write bottom"
    (Invalid_argument "Op.write: cannot write the initial value") (fun () ->
      ignore (w ~var:0 Op.Init))

let test_op_value_compare () =
  check Alcotest.bool "init < val" true (Op.compare_value Op.Init (Op.Val 0) < 0);
  check Alcotest.bool "equal" true (Op.equal_value (Op.Val 3) (Op.Val 3));
  check Alcotest.bool "not equal" false (Op.equal_value (Op.Val 3) Op.Init)

(* --- history ------------------------------------------------------------- *)

let test_history_construction () =
  let h = History.of_lists [ [ w ~var:x a; r ~var:x a ]; [ r ~var:x Op.Init ] ] in
  check Alcotest.int "procs" 2 (History.n_procs h);
  check Alcotest.int "ops" 3 (History.n_ops h);
  check Alcotest.(list int) "vars" [ x ] (History.vars h);
  let o = History.op h 2 in
  check Alcotest.int "third op proc" 1 o.Op.proc;
  check Alcotest.int "global id roundtrip" 2 (History.id h o)

let test_history_sub_history () =
  let h =
    History.of_lists
      [ [ w ~var:x a; r ~var:y Op.Init ]; [ w ~var:y b ]; [ r ~var:x a ] ]
  in
  let subset = History.sub_history h 2 in
  (* all writes + p2's ops = w(x)a, w(y)b, r2(x)a *)
  check Alcotest.int "H_{2+w} size" 3 (List.length subset);
  check Alcotest.int "writes count" 2 (List.length (History.writes h))

let test_history_differentiated () =
  let good = History.of_lists [ [ w ~var:x a ]; [ w ~var:x b ] ] in
  check Alcotest.bool "differentiated" true (History.is_differentiated good);
  let bad = History.of_lists [ [ w ~var:x a ]; [ w ~var:x a ] ] in
  check Alcotest.bool "duplicate write value" false (History.is_differentiated bad)

let test_history_read_from () =
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a; r ~var:x Op.Init ] ] in
  match History.read_from h with
  | Error err -> Alcotest.failf "unexpected rf error: %a" History.pp_rf_error err
  | Ok rf ->
      check Alcotest.(option int) "read takes from write" (Some 0) rf.(1);
      check Alcotest.(option int) "bottom read has no source" None rf.(2)

let test_history_read_from_dangling () =
  let h = History.of_lists [ [ r ~var:x (Op.Val 9) ] ] in
  match History.read_from h with
  | Error (History.Dangling_read _) -> ()
  | _ -> Alcotest.fail "expected dangling read error"

let test_history_read_from_ambiguous () =
  let h = History.of_lists [ [ w ~var:x a ]; [ w ~var:x a ]; [ r ~var:x a ] ] in
  match History.read_from h with
  | Error (History.Ambiguous_read _) -> ()
  | _ -> Alcotest.fail "expected ambiguous read error"

let test_history_parse () =
  let text = "p0: w(x0)1 r(x0)1\np1: r1(x0)1 w1(x1)2\n\n# comment\np2:\n" in
  match History.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok h ->
      check Alcotest.int "procs" 3 (History.n_procs h);
      check Alcotest.int "ops" 4 (History.n_ops h);
      let o = History.op h 2 in
      check Alcotest.bool "p1 read" true (o.Op.proc = 1 && Op.is_read o)

let test_history_parse_roundtrip =
  qcheck
    (QCheck.Test.make ~name:"parse_roundtrips_with_to_string" ~count:200
       QCheck.small_int (fun seed ->
         let h =
           Generator.arbitrary (Rng.create seed)
             { Generator.procs = 3; vars = 3; ops_per_proc = 5; read_ratio = 0.5 }
         in
         match History.parse (History.to_string h) with
         | Error _ -> false
         | Ok h' -> History.to_string h = History.to_string h'))

let test_history_parse_errors () =
  let cases =
    [
      ("q0: w(x0)1", "bad process");
      ("p0: z(x0)1", "start with");
      ("p0: w(x0)", "bad value");
      ("p0: wx0)1", "missing '('");
      ("p0: w(x0)init", "cannot write");
      ("p0: w(x0)1\np0: r(x0)1", "duplicate process");
      ("p0: w1(x0)1", "annotated p1");
    ]
  in
  List.iter
    (fun (text, fragment) ->
      match History.parse text with
      | Ok _ -> Alcotest.failf "expected parse error for %S" text
      | Error msg ->
          let contains =
            let nl = String.length fragment and hl = String.length msg in
            let rec scan i =
              i + nl <= hl && (String.sub msg i nl = fragment || scan (i + 1))
            in
            scan 0
          in
          if not contains then
            Alcotest.failf "error %S does not mention %S" msg fragment)
    cases

let test_history_parse_bottom_forms () =
  List.iter
    (fun form ->
      match History.parse (Printf.sprintf "p0: r(x0)%s" form) with
      | Ok h -> check Alcotest.bool form true ((History.op h 0).Op.value = Op.Init)
      | Error msg -> Alcotest.fail msg)
    [ "\xe2\x8a\xa5"; "_"; "init"; "INIT" ]

let test_history_bad_indices () =
  let h = History.of_lists [ [ w ~var:x a ] ] in
  Alcotest.check_raises "bad gid" (Invalid_argument "History.op: bad global id")
    (fun () -> ignore (History.op h 5));
  Alcotest.check_raises "bad proc" (Invalid_argument "History.id_of_addr: bad process")
    (fun () -> ignore (History.id_of_addr h ~proc:3 ~index:0));
  Alcotest.check_raises "bad index" (Invalid_argument "History.id_of_addr: bad index")
    (fun () -> ignore (History.id_of_addr h ~proc:0 ~index:9))

let test_criterion_names_distinct () =
  let names = List.map Checker.criterion_name Checker.all_criteria in
  check Alcotest.int "eight criteria" 8 (List.length names);
  check Alcotest.int "all distinct" 8 (List.length (List.sort_uniq compare names))

(* --- orders -------------------------------------------------------------- *)

let test_program_order () =
  let h = History.of_lists [ [ w ~var:x a; r ~var:x a; w ~var:y b ] ] in
  let po = Orders.program_order h in
  check Alcotest.bool "0->1" true (Graph.mem_edge po 0 1);
  check Alcotest.bool "0->2 transitive" true (Graph.mem_edge po 0 2);
  check Alcotest.bool "no reverse" false (Graph.mem_edge po 2 0);
  let base = Orders.program_order_base h in
  check Alcotest.bool "base lacks 0->2" false (Graph.mem_edge base 0 2)

let test_lazy_program_order () =
  (* Definition 5: read->read same var, read->write any var,
     write->op same var; NOT write->write different vars. *)
  let h =
    History.of_lists
      [ [ w ~var:x a; w ~var:y b; r ~var:x a; r ~var:y b; w ~var:z c ] ]
  in
  let li = Orders.lazy_program_order h in
  check Alcotest.bool "w(x) li w(y) absent" false (Graph.mem_edge li 0 1);
  check Alcotest.bool "w(x) li r(x)" true (Graph.mem_edge li 0 2);
  check Alcotest.bool "w(y) li r(y)" true (Graph.mem_edge li 1 3);
  check Alcotest.bool "r(x) li w(z)" true (Graph.mem_edge li 2 4);
  check Alcotest.bool "r(x) li r(y) absent" false (Graph.mem_edge li 2 3);
  (* transitivity: w(x) li r(x) li w(z) *)
  check Alcotest.bool "w(x) li w(z) via read" true (Graph.mem_edge li 0 4)

let test_causal_order_via_rf () =
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a; w ~var:y b ]; [ r ~var:y b ] ] in
  let rf = Result.get_ok (History.read_from h) in
  let co = Orders.causal h rf in
  check Alcotest.bool "w(x)a co r(y)b transitively" true (Graph.mem_edge co 0 3);
  check Alcotest.bool "concurrent ops" true (Orders.concurrent co 0 0 = false || true)

let test_pram_not_transitive () =
  (* w1(x)a -> r2(x)a -> w2(y)b: pram relates w1(x)a to r2(x)a (rf) and
     r2(x)a to w2(y)b (po) but NOT w1(x)a to w2(y)b. *)
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a; w ~var:y b ] ] in
  let rf = Result.get_ok (History.read_from h) in
  let pram = Orders.pram h rf in
  check Alcotest.bool "rf edge" true (Graph.mem_edge pram 0 1);
  check Alcotest.bool "po edge" true (Graph.mem_edge pram 1 2);
  check Alcotest.bool "no transitive edge" false (Graph.mem_edge pram 0 2);
  let co = Orders.causal h rf in
  check Alcotest.bool "causal closes it" true (Graph.mem_edge co 0 2)

let test_lazy_writes_before () =
  (* w_i(x)v ->lwb r_j(y)u via o' = w_i(y)u with w_i(x)v ->li o'.
     p0: w(x)a, r(x)a, w(y)b  (so w(x)a li w(y)b through the read)
     p1: r(y)b *)
  let h = History.of_lists [ [ w ~var:x a; r ~var:x a; w ~var:y b ]; [ r ~var:y b ] ] in
  let rf = Result.get_ok (History.read_from h) in
  let lwb = Orders.lazy_writes_before h rf in
  check Alcotest.bool "w(x)a lwb r(y)b" true (Graph.mem_edge lwb 0 3);
  (* without the connecting read there is no li edge, hence no lwb *)
  let h2 = History.of_lists [ [ w ~var:x a; w ~var:y b ]; [ r ~var:y b ] ] in
  let rf2 = Result.get_ok (History.read_from h2) in
  let lwb2 = Orders.lazy_writes_before h2 rf2 in
  check Alcotest.bool "no li, no lwb" false (Graph.mem_edge lwb2 0 2)

let test_respects () =
  let h = History.of_lists [ [ w ~var:x a; w ~var:y b ] ] in
  let po = Orders.program_order h in
  check Alcotest.bool "good order" true (Orders.respects ~order:[ 0; 1 ] po);
  check Alcotest.bool "bad order" false (Orders.respects ~order:[ 1; 0 ] po);
  check Alcotest.bool "absent ops ignored" true (Orders.respects ~order:[ 1 ] po)

(* --- serialization primitives -------------------------------------------- *)

let test_validate_serialization () =
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a ] ] in
  let rf = Result.get_ok (History.read_from h) in
  let co = Orders.causal h rf in
  check Alcotest.bool "valid" true
    (Checker.validate_serialization h ~subset:[ 0; 1 ] ~relation:co ~order:[ 0; 1 ]);
  check Alcotest.bool "illegal read placement" false
    (Checker.validate_serialization h ~subset:[ 0; 1 ] ~relation:co ~order:[ 1; 0 ]);
  check Alcotest.bool "not a permutation" false
    (Checker.validate_serialization h ~subset:[ 0; 1 ] ~relation:co ~order:[ 0 ])

let test_find_serialization_legality () =
  (* r(x)bottom then w(x)a: serialization must place the read first *)
  let h = History.of_lists [ [ w ~var:x a ] ; [ r ~var:x Op.Init ] ] in
  let relation = Graph.create 2 in
  match Checker.find_serialization h ~subset:[ 0; 1 ] ~relation with
  | None -> Alcotest.fail "must find a serialization"
  | Some order -> check Alcotest.(list int) "read first" [ 1; 0 ] order

let test_find_serialization_impossible () =
  (* One process reads a then bottom on the same variable: impossible. *)
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a; r ~var:x Op.Init ] ] in
  let rf = Result.get_ok (History.read_from h) in
  let co = Orders.causal h rf in
  check Alcotest.bool "no serialization" true
    (Checker.find_serialization h ~subset:[ 0; 1; 2 ] ~relation:co = None)

(* Exhaustive cross-validation of the optimized search: for tiny op sets,
   enumerate every permutation and compare existence with
   find_serialization (which uses greedy reads, dead-window pruning and
   memoization). *)
let brute_force_exists h ~subset ~relation =
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
          l
  in
  List.exists
    (fun order -> Checker.validate_serialization h ~subset ~relation ~order)
    (permutations subset)

let test_search_vs_brute_force =
  qcheck
    (QCheck.Test.make ~name:"find_serialization_matches_brute_force" ~count:150
       QCheck.small_int (fun seed ->
         let h =
           Generator.arbitrary (Rng.create seed)
             { Generator.procs = 2; vars = 2; ops_per_proc = 3; read_ratio = 0.5 }
         in
         match History.read_from h with
         | Error _ -> QCheck.assume_fail ()
         | Ok rf ->
             let relation = Orders.causal h rf in
             let subset = List.init (History.n_ops h) Fun.id in
             let fast = Checker.find_serialization h ~subset ~relation <> None in
             let slow = brute_force_exists h ~subset ~relation in
             fast = slow))

let test_search_vs_brute_force_pram =
  qcheck
    (QCheck.Test.make ~name:"find_serialization_matches_brute_force_pram" ~count:100
       QCheck.small_int (fun seed ->
         let h =
           Generator.arbitrary (Rng.create (seed + 1000))
             { Generator.procs = 3; vars = 2; ops_per_proc = 2; read_ratio = 0.5 }
         in
         match History.read_from h with
         | Error _ -> QCheck.assume_fail ()
         | Ok rf ->
             (* the unclosed PRAM relation exercises restriction semantics *)
             let relation = Orders.pram h rf in
             let subset = List.map (History.id h) (History.sub_history h 0) in
             let fast = Checker.find_serialization h ~subset ~relation <> None in
             let slow = brute_force_exists h ~subset ~relation in
             fast = slow))

(* --- paper figures -------------------------------------------------------- *)

(* Figure 3: the x-dependency chain pattern, here with two intermediate
   processes.  p0: w(x)v, w(x1)v1; p1: r(x1)v1, w(x2)v2; p2: r(x2)v2,
   w(x3)v3; p3: r(x3)v3, r(x)v.  The final read is causally constrained by
   the initial write. *)
let fig3_history =
  let x1 = 1 and x2 = 2 and x3 = 3 in
  History.of_lists
    [
      [ w ~var:x a; w ~var:x1 (Op.Val 11) ];
      [ r ~var:x1 (Op.Val 11); w ~var:x2 (Op.Val 12) ];
      [ r ~var:x2 (Op.Val 12); w ~var:x3 (Op.Val 13) ];
      [ r ~var:x3 (Op.Val 13); r ~var:x a ];
    ]

let test_fig3_chain_dependency () =
  let h = fig3_history in
  let rf = Result.get_ok (History.read_from h) in
  let co = Orders.causal h rf in
  let wa = 0 (* w0(x)a *) and ob = History.n_ops h - 1 (* r3(x)a *) in
  check Alcotest.bool "w0(x)a co r3(x)a" true (Graph.mem_edge co wa ob);
  (* the history as given (read returns a) is causal … *)
  check Alcotest.bool "causal as written" true (consistent Checker.Causal h);
  (* … but returning bottom instead would violate causality *)
  let h_bad =
    History.of_lists
      [
        [ w ~var:x a; w ~var:1 (Op.Val 11) ];
        [ r ~var:1 (Op.Val 11); w ~var:2 (Op.Val 12) ];
        [ r ~var:2 (Op.Val 12); w ~var:3 (Op.Val 13) ];
        [ r ~var:3 (Op.Val 13); r ~var:x Op.Init ];
      ]
  in
  check Alcotest.bool "bottom read violates causal" false
    (consistent Checker.Causal h_bad);
  (* PRAM puts no constraint through the chain: the bottom read is fine *)
  check Alcotest.bool "PRAM tolerates it" true (consistent Checker.Pram h_bad)

(* Figure 4 (lazy causal but not causal).
   p0: w(x)a, r(x)a, w(y)b        — the read makes w(x)a li w(y)b
   p1: r(y)b, w(y)c
   p2: r(y)c, r(x)bottom *)
let fig4_history =
  History.of_lists
    [
      [ w ~var:x a; r ~var:x a; w ~var:y b ];
      [ r ~var:y b; w ~var:y c ];
      [ r ~var:y c; r ~var:x Op.Init ];
    ]

let test_fig4_lazy_causal_not_causal () =
  let h = fig4_history in
  check Alcotest.bool "not causal" false (consistent Checker.Causal h);
  check Alcotest.bool "lazy causal" true (consistent Checker.Lazy_causal h);
  (* the figure's point: r2(y)c and r2(x)bottom are lco-concurrent *)
  let rf = Result.get_ok (History.read_from h) in
  let lco = Orders.lazy_causal h rf in
  let rc = History.id_of_addr h ~proc:2 ~index:0 in
  let rbot = History.id_of_addr h ~proc:2 ~index:1 in
  check Alcotest.bool "lco-concurrent reads" true (Orders.concurrent lco rc rbot);
  let wa = History.id_of_addr h ~proc:0 ~index:0 in
  check Alcotest.bool "w(x)a does not lco-precede r(x)bottom" false
    (Graph.mem_edge lco wa rbot);
  (* paper note: the history is PRAM consistent as well *)
  check Alcotest.bool "pram" true (consistent Checker.Pram h)

let test_fig4_serializations_validate () =
  (* The serializations S1-S3 printed in the paper respect lco and are
     legal. *)
  let h = fig4_history in
  let rf = Result.get_ok (History.read_from h) in
  let lco = Orders.lazy_causal h rf in
  let id p i = History.id_of_addr h ~proc:p ~index:i in
  let w1xa = id 0 0 and r1xa = id 0 1 and w1yb = id 0 2 in
  let r2yb = id 1 0 and w2yc = id 1 1 in
  let r3yc = id 2 0 and r3x = id 2 1 in
  let subset p = List.map (History.id h) (History.sub_history h p) in
  (* S1 = w1(x)a r1(x)a w1(y)b w2(y)c *)
  check Alcotest.bool "S1" true
    (Checker.validate_serialization h ~subset:(subset 0) ~relation:lco
       ~order:[ w1xa; r1xa; w1yb; w2yc ]);
  (* S2 = w1(x)a w1(y)b r2(y)b w2(y)c *)
  check Alcotest.bool "S2" true
    (Checker.validate_serialization h ~subset:(subset 1) ~relation:lco
       ~order:[ w1xa; w1yb; r2yb; w2yc ]);
  (* S3 = r3(x)bottom w1(x)a w1(y)b w2(y)c r3(y)c *)
  check Alcotest.bool "S3" true
    (Checker.validate_serialization h ~subset:(subset 2) ~relation:lco
       ~order:[ r3x; w1xa; w1yb; w2yc; r3yc ])

(* Figure 5 (not even lazy causal): fig 4 plus p2 writes x=d after its read
   of y=c, and a fourth process reads d then a. *)
let fig5_history =
  History.of_lists
    [
      [ w ~var:x a; r ~var:x a; w ~var:y b ];
      [ r ~var:y b; w ~var:y c ];
      [ r ~var:y c; w ~var:x d ];
      [ r ~var:x d; r ~var:x a ];
    ]

let test_fig5_not_lazy_causal () =
  let h = fig5_history in
  check Alcotest.bool "not lazy causal" false (consistent Checker.Lazy_causal h);
  check Alcotest.bool "not causal either" false (consistent Checker.Causal h);
  (* the chain: w0(x)a lco w2(x)d via r2(y)c ->li w2(x)d *)
  let rf = Result.get_ok (History.read_from h) in
  let lco = Orders.lazy_causal h rf in
  let wa = History.id_of_addr h ~proc:0 ~index:0 in
  let wd = History.id_of_addr h ~proc:2 ~index:1 in
  check Alcotest.bool "w0(x)a lco w2(x)d" true (Graph.mem_edge lco wa wd);
  (* PRAM allows it: processes may disagree on writes by different
     processes *)
  check Alcotest.bool "pram" true (consistent Checker.Pram h)

(* Figure 6 (not lazy semi-causal).  As printed the figure's own derivation
   needs w2(y)e ->li w2(z)c, which Definition 5 only grants through an
   intervening read; we insert r2(y)e (reading the process's own write) to
   make the printed chain well-typed.  See EXPERIMENTS.md. *)
let fig6_history =
  History.of_lists
    [
      [ w ~var:x a; r ~var:x a; w ~var:y b ];
      [ r ~var:y b; w ~var:y e; r ~var:y e; w ~var:z c ];
      [ r ~var:z c; w ~var:x d ];
      [ r ~var:x d; r ~var:x a ];
    ]

let test_fig6_not_lazy_semi_causal () =
  let h = fig6_history in
  check Alcotest.bool "not lazy semi-causal" false
    (consistent Checker.Lazy_semi_causal h);
  (* the lsc chain exists: w0(x)a lsc w2(x)d *)
  let rf = Result.get_ok (History.read_from h) in
  let lsc = Orders.lazy_semi_causal h rf in
  let wa = History.id_of_addr h ~proc:0 ~index:0 in
  let wd = History.id_of_addr h ~proc:2 ~index:1 in
  check Alcotest.bool "w0(x)a lsc w2(x)d" true (Graph.mem_edge lsc wa wd);
  (* the individual lwb links from the paper's derivation *)
  let lwb = Orders.lazy_writes_before h rf in
  let r2yb = History.id_of_addr h ~proc:1 ~index:0 in
  check Alcotest.bool "w0(x)a lwb r1(y)b" true (Graph.mem_edge lwb wa r2yb);
  let w2ye = History.id_of_addr h ~proc:1 ~index:1 in
  let r3zc = History.id_of_addr h ~proc:2 ~index:0 in
  check Alcotest.bool "w1(y)e lwb r2(z)c" true (Graph.mem_edge lwb w2ye r3zc);
  (* still PRAM *)
  check Alcotest.bool "pram" true (consistent Checker.Pram h)

(* Fig. 6 *as printed* (no r2(y)e): the li-based lazy-writes-before cannot
   type the paper's own derivation, so the history is lazy-semi-causal —
   but under Ahamad et al.'s original weak-program-order writes-before
   (semi-causality, which the paper says is stronger) the chain exists and
   the history is rejected.  This reconciles the printed figure with
   Definition 8; see EXPERIMENTS.md. *)
let fig6_as_printed =
  History.of_lists
    [
      [ w ~var:x a; r ~var:x a; w ~var:y b ];
      [ r ~var:y b; w ~var:y e; w ~var:z c ];
      [ r ~var:z c; w ~var:x d ];
      [ r ~var:x d; r ~var:x a ];
    ]

let test_weak_program_order () =
  let h = History.of_lists [ [ w ~var:x a; r ~var:y Op.Init; w ~var:y b; r ~var:y b ] ] in
  let wpo = Orders.weak_program_order h in
  (* write -> read of a different variable is relaxed *)
  check Alcotest.bool "w(x) wpo r(y) relaxed" false (Graph.mem_edge wpo 0 1);
  (* write -> write is kept (unlike lazy program order) *)
  check Alcotest.bool "w(x) wpo w(y)" true (Graph.mem_edge wpo 0 2);
  (* write -> read same variable is kept *)
  check Alcotest.bool "w(y) wpo r(y)" true (Graph.mem_edge wpo 2 3);
  let li = Orders.lazy_program_order h in
  (* weak program order extends lazy program order *)
  List.iter
    (fun (u, v) ->
      check Alcotest.bool "li subset of wpo" true (Graph.mem_edge wpo u v))
    (Graph.edges li)

let test_fig6_as_printed_reconciliation () =
  let h = fig6_as_printed in
  check Alcotest.bool "lazy-semi-causal as printed" true
    (consistent Checker.Lazy_semi_causal h);
  check Alcotest.bool "not semi-causal" false (consistent Checker.Semi_causal h);
  check Alcotest.bool "still pram" true (consistent Checker.Pram h);
  (* the semi-causal chain from the paper's derivation *)
  let rf = Result.get_ok (History.read_from h) in
  let sc = Orders.semi_causal h rf in
  let wa = History.id_of_addr h ~proc:0 ~index:0 in
  let wd = History.id_of_addr h ~proc:2 ~index:1 in
  check Alcotest.bool "w0(x)a sc w2(x)d" true (Graph.mem_edge sc wa wd);
  (* and the individual wwb links *)
  let wwb = Orders.weak_writes_before h rf in
  let r1yb = History.id_of_addr h ~proc:1 ~index:0 in
  check Alcotest.bool "w0(x)a wwb r1(y)b" true (Graph.mem_edge wwb wa r1yb);
  let w1ye = History.id_of_addr h ~proc:1 ~index:1 in
  let r2zc = History.id_of_addr h ~proc:2 ~index:0 in
  check Alcotest.bool "w1(y)e wwb r2(z)c" true (Graph.mem_edge wwb w1ye r2zc)

let test_semi_causal_between_causal_and_lsc () =
  (* fig4 is not causal but is semi-causal?  Check the documented
     inclusions instead on known histories: fig6 (with the extra read) is
     rejected by both lsc and semi-causal; the store-buffer history is
     causal hence semi-causal. *)
  check Alcotest.bool "fig6 (amended) not semi-causal" false
    (consistent Checker.Semi_causal fig6_history);
  let store_buffer =
    History.of_lists
      [ [ w ~var:x a; r ~var:y Op.Init ]; [ w ~var:y b; r ~var:x Op.Init ] ]
  in
  check Alcotest.bool "store buffer semi-causal" true
    (consistent Checker.Semi_causal store_buffer)

(* --- criterion basics ----------------------------------------------------- *)

let test_sequential_positive () =
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a ] ] in
  check Alcotest.bool "sequential" true (consistent Checker.Sequential h)

let test_sequential_negative () =
  (* classic non-SC: two processes each write then read the other's
     variable, both reading bottom *)
  let h =
    History.of_lists
      [ [ w ~var:x a; r ~var:y Op.Init ]; [ w ~var:y b; r ~var:x Op.Init ] ]
  in
  check Alcotest.bool "not sequential" false (consistent Checker.Sequential h);
  (* but it is causal: the writes are concurrent *)
  check Alcotest.bool "causal" true (consistent Checker.Causal h)

let test_causal_negative_write_order () =
  (* p0 writes a then b to x; p1 reads b then a: violates causal (and
     PRAM). *)
  let h = History.of_lists [ [ w ~var:x a; w ~var:x b ]; [ r ~var:x b; r ~var:x a ] ] in
  check Alcotest.bool "not causal" false (consistent Checker.Causal h);
  check Alcotest.bool "not pram" false (consistent Checker.Pram h);
  (* not even slow: same writer, same variable *)
  check Alcotest.bool "not slow" false (consistent Checker.Slow h)

let test_pram_allows_disagreement () =
  (* Two readers observe two independent writes in opposite orders: not
     causal? actually causal allows it too (concurrent writes); but cache
     consistency forbids it on a single variable. *)
  let h =
    History.of_lists
      [
        [ w ~var:x a ];
        [ w ~var:x b ];
        [ r ~var:x a; r ~var:x b ];
        [ r ~var:x b; r ~var:x a ];
      ]
  in
  check Alcotest.bool "pram" true (consistent Checker.Pram h);
  check Alcotest.bool "causal" true (consistent Checker.Causal h);
  check Alcotest.bool "not cache consistent" false (consistent Checker.Cache h);
  check Alcotest.bool "not sequential" false (consistent Checker.Sequential h)

let test_slow_weaker_than_pram () =
  (* Same writer writes x then y; a reader sees the new y but the old x.
     PRAM forbids (program order across variables), slow allows. *)
  let h =
    History.of_lists
      [ [ w ~var:x a; w ~var:y b ]; [ r ~var:y b; r ~var:x Op.Init ] ]
  in
  check Alcotest.bool "not pram" false (consistent Checker.Pram h);
  check Alcotest.bool "slow" true (consistent Checker.Slow h)

let test_cache_per_variable () =
  let h =
    History.of_lists
      [ [ w ~var:x a; w ~var:y b ]; [ r ~var:y b; r ~var:x Op.Init ] ]
  in
  (* per-variable serializations exist even though PRAM fails *)
  check Alcotest.bool "cache consistent" true (consistent Checker.Cache h)

let test_dangling_read_inconsistent () =
  let h = History.of_lists [ [ r ~var:x (Op.Val 9) ] ] in
  check Alcotest.bool "dangling read" false (consistent Checker.Pram h)

let test_undecidable_raises () =
  let h = History.of_lists [ [ w ~var:x a ]; [ w ~var:x a ]; [ r ~var:x a ] ] in
  match Checker.check Checker.Causal h with
  | Checker.Undecidable _ -> ()
  | _ -> Alcotest.fail "expected undecidable"

let test_empty_history () =
  let h = History.of_lists [ []; [] ] in
  List.iter
    (fun criterion ->
      check Alcotest.bool (Checker.criterion_name criterion) true (consistent criterion h))
    Checker.all_criteria

let test_witness_roundtrip () =
  let h = fig4_history in
  match Checker.witness Checker.Lazy_causal h with
  | None -> Alcotest.fail "expected witness"
  | Some units ->
      let rf = Result.get_ok (History.read_from h) in
      let lco = Orders.lazy_causal h rf in
      List.iter
        (fun (key, order) ->
          let p =
            match key with
            | Checker.Proc p -> p
            | key -> Alcotest.failf "unexpected unit key %s" (Checker.unit_key_name key)
          in
          let subset = List.map (History.id h) (History.sub_history h p) in
          check Alcotest.bool "witness validates" true
            (Checker.validate_serialization h ~subset ~relation:lco ~order))
        units

(* Relation-level inclusions: the criterion lattice is driven by inclusion
   of the underlying order relations; check them edge by edge on random
   histories. *)
let subrelation a b =
  List.for_all (fun (u, v) -> Graph.mem_edge b u v) (Graph.edges a)

let test_relation_inclusions =
  qcheck
    (QCheck.Test.make ~name:"order_relation_inclusions" ~count:150 QCheck.small_int
       (fun seed ->
         let h =
           Generator.arbitrary (Rng.create seed)
             { Generator.procs = 3; vars = 3; ops_per_proc = 5; read_ratio = 0.5 }
         in
         match History.read_from h with
         | Error _ -> QCheck.assume_fail ()
         | Ok rf ->
             let po = Orders.program_order h in
             let li = Orders.lazy_program_order h in
             let wpo = Orders.weak_program_order h in
             let co = Orders.causal h rf in
             let lco = Orders.lazy_causal h rf in
             let lsc = Orders.lazy_semi_causal h rf in
             let sc = Orders.semi_causal h rf in
             let pram = Orders.pram h rf in
             (* program-order ladder: li ⊆ wpo ⊆ po *)
             subrelation li wpo && subrelation wpo po
             (* causality ladder: lco, lsc, sc, pram all inside co *)
             && subrelation lco co
             && subrelation lsc co
             && subrelation sc co
             && subrelation pram co
             (* lsc inside sc (the paper: semi-causality is stronger) *)
             && subrelation lsc sc))

let test_relation_acyclicity =
  qcheck
    (QCheck.Test.make ~name:"consistent_generated_relations_acyclic" ~count:100
       QCheck.small_int (fun seed ->
         (* on causally consistent histories the causality order is acyclic *)
         let h =
           Generator.causal_consistent (Rng.create seed)
             { Generator.procs = 3; vars = 2; ops_per_proc = 5; read_ratio = 0.5 }
         in
         let rf = Result.get_ok (History.read_from h) in
         Graph.is_acyclic (Orders.causal h rf)
         && Graph.is_acyclic (Orders.semi_causal h rf)
         && Graph.is_acyclic (Orders.lazy_semi_causal h rf)))

(* --- session guarantees -------------------------------------------------------- *)

module Session = Repro_history.Session

let test_session_ryw_violation () =
  (* reading bottom right after your own write *)
  let h = History.of_lists [ [ w ~var:x a; r ~var:x Op.Init ] ] in
  check Alcotest.bool "ryw violated" false (Session.holds Session.Read_your_writes h);
  (* the others don't care *)
  check Alcotest.bool "mr fine" true (Session.holds Session.Monotonic_reads h);
  check Alcotest.bool "mw fine" true (Session.holds Session.Monotonic_writes h)

let test_session_mr_violation () =
  (* a read of the new value followed by a read of the old one *)
  let h = History.of_lists [ [ w ~var:x a ]; [ r ~var:x a; r ~var:x Op.Init ] ] in
  check Alcotest.bool "mr violated" false (Session.holds Session.Monotonic_reads h);
  check Alcotest.bool "ryw fine" true (Session.holds Session.Read_your_writes h)

let test_session_mw_violation () =
  (* one writer's writes observed out of order *)
  let h = History.of_lists [ [ w ~var:x a; w ~var:x b ]; [ r ~var:x b; r ~var:x a ] ] in
  check Alcotest.bool "mw violated" false (Session.holds Session.Monotonic_writes h);
  check Alcotest.bool "mr fine" true (Session.holds Session.Monotonic_reads h)

let test_session_wfr_violation () =
  (* the fig3 chain: a write made after reading must carry the read's
     source along *)
  let h =
    History.of_lists
      [
        [ w ~var:x a ];
        [ r ~var:x a; w ~var:y b ];
        [ r ~var:y b; r ~var:x Op.Init ];
      ]
  in
  check Alcotest.bool "wfr violated" false
    (Session.holds Session.Writes_follow_reads h);
  (* PRAM tolerates exactly this (no transitivity) *)
  check Alcotest.bool "pram fine" true (consistent Checker.Pram h)

let test_session_pram_implies_ryw_mr_mw =
  qcheck
    (QCheck.Test.make ~name:"pram_implies_ryw_mr_mw" ~count:200 QCheck.small_int
       (fun seed ->
         let h =
           Generator.arbitrary (Rng.create seed)
             { Generator.procs = 3; vars = 2; ops_per_proc = 4; read_ratio = 0.5 }
         in
         match History.read_from h with
         | Error _ -> QCheck.assume_fail ()
         | Ok _ ->
             (not (consistent Checker.Pram h))
             || (Session.holds Session.Read_your_writes h
                && Session.holds Session.Monotonic_reads h
                && Session.holds Session.Monotonic_writes h)))

let test_session_causal_implies_all =
  qcheck
    (QCheck.Test.make ~name:"causal_implies_all_session_guarantees" ~count:200
       QCheck.small_int (fun seed ->
         let h =
           Generator.causal_consistent (Rng.create seed)
             { Generator.procs = 3; vars = 2; ops_per_proc = 5; read_ratio = 0.5 }
         in
         List.for_all (fun g -> Session.holds g h) Session.all_guarantees))

let test_session_conjunction_weaker_than_pram () =
  (* found by random search: RYW ∧ MR ∧ MW hold (separate witnesses) yet
     no single PRAM serialization exists *)
  let h =
    History.of_lists
      [
        [ r ~var:y (Op.Val 1); r ~var:x Op.Init; w ~var:y (Op.Val 1) ];
        [ w ~var:y (Op.Val 2); w ~var:x (Op.Val 3); r ~var:y (Op.Val 4) ];
        [ w ~var:y (Op.Val 4); r ~var:y (Op.Val 2); r ~var:y (Op.Val 4) ];
      ]
  in
  check Alcotest.bool "ryw" true (Session.holds Session.Read_your_writes h);
  check Alcotest.bool "mr" true (Session.holds Session.Monotonic_reads h);
  check Alcotest.bool "mw" true (Session.holds Session.Monotonic_writes h);
  check Alcotest.bool "but not pram" false (consistent Checker.Pram h)

let test_session_names () =
  check Alcotest.int "four guarantees" 4 (List.length Session.all_guarantees);
  check Alcotest.(list string) "names"
    [ "read-your-writes"; "monotonic-reads"; "monotonic-writes"; "writes-follow-reads" ]
    (List.map Session.guarantee_name Session.all_guarantees)

(* --- diagrams ---------------------------------------------------------------- *)

module Diagram = Repro_history.Diagram

let index_of ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else scan (i + 1)
  in
  scan 0

let test_diagram_layout () =
  let s = Diagram.render fig4_history in
  (* one row per process plus the rf legend *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check Alcotest.int "rows" 4 (List.length lines);
  check Alcotest.bool "rf legend" true
    (List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "rf:") lines);
  (* reads sit strictly right of their sources *)
  let w_pos = Option.get (index_of ~needle:"w0(x1)2" s) in
  let r_line_offset = Option.get (index_of ~needle:"p1 |" s) in
  let r_pos = Option.get (index_of ~needle:"r1(x1)2" s) in
  let col_of pos line_start = pos - line_start in
  let w_line_offset = Option.get (index_of ~needle:"p0 |" s) in
  check Alcotest.bool "read right of write" true
    (col_of r_pos r_line_offset > col_of w_pos w_line_offset)

let test_diagram_renders_every_op =
  qcheck
    (QCheck.Test.make ~name:"diagram_renders_every_operation" ~count:100
       QCheck.small_int (fun seed ->
         let h =
           Generator.pram_consistent (Rng.create seed) Generator.default_profile
         in
         let s = Diagram.render h in
         History.ops h |> Array.for_all (fun (o : Op.t) ->
             let needle =
               Printf.sprintf "%c%d(x%d)"
                 (match o.Op.kind with Op.Read -> 'r' | Op.Write -> 'w')
                 o.Op.proc o.Op.var
             in
             index_of ~needle s <> None)))

let test_diagram_timed () =
  let t =
    Repro_history.Timed.of_lists
      [
        [ (Op.Write, 0, Op.Val 1, 0, 10) ];
        [ (Op.Read, 0, Op.Val 1, 12, 14) ];
      ]
  in
  let s = Diagram.render_timed ~width:40 t in
  check Alcotest.bool "has interval bars" true (index_of ~needle:"|=" s <> None);
  check Alcotest.bool "has scale" true (index_of ~needle:"(sim time)" s <> None);
  Alcotest.check_raises "narrow width"
    (Invalid_argument "Diagram.render_timed: width too small") (fun () ->
      ignore (Diagram.render_timed ~width:5 t))

(* --- timed histories / linearizability -------------------------------------- *)

module Timed = Repro_history.Timed

let tr ~var value invoked responded = (Op.Read, var, value, invoked, responded)
let tw ~var value invoked responded = (Op.Write, var, value, invoked, responded)

let test_timed_validation () =
  Alcotest.check_raises "bad interval" (Invalid_argument "Timed.of_lists: bad interval")
    (fun () -> ignore (Timed.of_lists [ [ tw ~var:x a 5 3 ] ]));
  Alcotest.check_raises "overlap"
    (Invalid_argument "Timed.of_lists: overlapping intervals in a sequential process")
    (fun () -> ignore (Timed.of_lists [ [ tw ~var:x a 0 5; tr ~var:x a 3 6 ] ]))

let test_timed_projection () =
  let t = Timed.of_lists [ [ tw ~var:x a 0 2; tr ~var:x a 3 4 ] ] in
  check Alcotest.int "procs" 1 (Timed.n_procs t);
  check Alcotest.int "ops" 2 (Timed.n_ops t);
  check Alcotest.bool "history projects" true
    (History.n_ops (Timed.history t) = 2)

let test_linearizable_positive () =
  (* w(x)a completes at 2; a later read returns it: linearizable *)
  let t =
    Timed.of_lists [ [ tw ~var:x a 0 2 ]; [ tr ~var:x a 5 6; tr ~var:x a 7 8 ] ]
  in
  check Alcotest.bool "linearizable" true (Timed.check_linearizable t = Timed.Linearizable)

let test_linearizable_stale_read () =
  (* the write completed strictly before the read began, yet the read
     returns the initial value: not linearizable (though sequentially
     consistent) *)
  let t = Timed.of_lists [ [ tw ~var:x a 0 2 ]; [ tr ~var:x Op.Init 5 6 ] ] in
  check Alcotest.bool "not linearizable" true
    (Timed.check_linearizable t = Timed.Not_linearizable);
  check Alcotest.bool "but sequential" true
    (consistent Checker.Sequential (Timed.history t))

let test_linearizable_overlap_freedom () =
  (* overlapping operations may order either way *)
  let t = Timed.of_lists [ [ tw ~var:x a 0 10 ]; [ tr ~var:x Op.Init 2 5 ] ] in
  check Alcotest.bool "overlap allows Init" true
    (Timed.check_linearizable t = Timed.Linearizable);
  let t' = Timed.of_lists [ [ tw ~var:x a 0 10 ]; [ tr ~var:x a 2 5 ] ] in
  check Alcotest.bool "overlap allows a too" true
    (Timed.check_linearizable t' = Timed.Linearizable)

let test_linearizable_new_old_inversion () =
  (* classic non-linearizable pattern: reader 1 sees the new value, then
     reader 2 (starting after reader 1 finished) sees the old one *)
  let t =
    Timed.of_lists
      [
        [ tw ~var:x a 0 10 ];
        [ tr ~var:x a 2 4 ];
        [ tr ~var:x Op.Init 6 8 ];
      ]
  in
  check Alcotest.bool "new-old inversion rejected" true
    (Timed.check_linearizable t = Timed.Not_linearizable)

let test_timed_equal_instants_unordered () =
  (* responded == invoked of the next op does NOT create precedence *)
  let t = Timed.of_lists [ [ tw ~var:x a 0 5 ]; [ tr ~var:x Op.Init 5 6 ] ] in
  (* the read may linearize before the write *)
  check Alcotest.bool "boundary overlap tolerated" true
    (Timed.check_linearizable t = Timed.Linearizable)

let test_linearizable_implies_sequential =
  qcheck
    (QCheck.Test.make ~name:"linearizable_implies_sequential" ~count:150
       QCheck.small_int (fun seed ->
         (* build a random timed history by sequentializing a generated
            history with random interval paddings *)
         let rng = Rng.create seed in
         let h = Generator.sequential_consistent rng Generator.default_profile in
         (* give every op a distinct global instant so it is linearizable
            by construction when read legally... not guaranteed; instead
            just check the implication on whatever verdicts arise *)
         let clock = ref 0 in
         let specs =
           List.init (History.n_procs h) (fun p ->
               History.local h p |> Array.to_list
               |> List.map (fun (o : Op.t) ->
                      let invoked = !clock in
                      clock := !clock + 1 + Rng.int rng 3;
                      (o.Op.kind, o.Op.var, o.Op.value, invoked, !clock)))
         in
         let t = Timed.of_lists specs in
         match Timed.check_linearizable t with
         | Timed.Linearizable -> consistent Checker.Sequential (Timed.history t)
         | Timed.Not_linearizable | Timed.Undecidable _ -> true))

(* --- generator properties -------------------------------------------------- *)

let profile_gen =
  QCheck.Gen.(
    let* procs = int_range 2 4 in
    let* vars = int_range 1 3 in
    let* ops = int_range 1 6 in
    let* ratio = float_range 0.0 1.0 in
    return { Generator.procs; vars; ops_per_proc = ops; read_ratio = ratio })

let profile_arb =
  QCheck.make ~print:(fun p ->
      Printf.sprintf "{procs=%d; vars=%d; ops=%d; reads=%.2f}" p.Generator.procs
        p.Generator.vars p.Generator.ops_per_proc p.Generator.read_ratio)
    profile_gen

let seeded name f = QCheck.Test.make ~name ~count:150 QCheck.(pair small_int profile_arb) f

let test_gen_pram_is_pram =
  qcheck
    (seeded "generated_pram_histories_check_pram" (fun (seed, profile) ->
         let h = Generator.pram_consistent (Rng.create seed) profile in
         consistent Checker.Pram h))

let test_gen_causal_is_causal =
  qcheck
    (seeded "generated_causal_histories_check_causal" (fun (seed, profile) ->
         let h = Generator.causal_consistent (Rng.create seed) profile in
         consistent Checker.Causal h))

let test_gen_sequential_is_sequential =
  qcheck
    (seeded "generated_sequential_histories_check_sequential" (fun (seed, profile) ->
         let h = Generator.sequential_consistent (Rng.create seed) profile in
         consistent Checker.Sequential h))

let test_gen_differentiated =
  qcheck
    (seeded "generators_produce_differentiated_histories" (fun (seed, profile) ->
         let g = Rng.create seed in
         History.is_differentiated (Generator.pram_consistent g profile)
         && History.is_differentiated (Generator.causal_consistent g profile)
         && History.is_differentiated (Generator.sequential_consistent g profile)))

(* Lattice implications: sequential => causal => {lazy-causal,
   lazy-semi-causal, pram}; pram => slow.  Tested on arbitrary histories,
   where the premise sometimes holds and sometimes not. *)
let implies antecedent consequent h =
  match Checker.check antecedent h with
  | Checker.Consistent -> consistent consequent h
  | _ -> true

let test_lattice =
  qcheck
    (seeded "criterion_lattice_implications" (fun (seed, profile) ->
         let h = Generator.arbitrary (Rng.create seed) profile in
         match History.read_from h with
         | Error _ -> QCheck.assume_fail ()
         | Ok _ ->
             implies Checker.Sequential Checker.Causal h
             && implies Checker.Causal Checker.Lazy_causal h
             && implies Checker.Causal Checker.Semi_causal h
             && implies Checker.Semi_causal Checker.Lazy_semi_causal h
             && implies Checker.Causal Checker.Pram h
             && implies Checker.Pram Checker.Slow h
             && implies Checker.Sequential Checker.Cache h))

let test_lattice_strictness () =
  (* each inclusion is strict, witnessed by the histories above *)
  check Alcotest.bool "causal not sequential" true
    (let h =
       History.of_lists
         [ [ w ~var:x a; r ~var:y Op.Init ]; [ w ~var:y b; r ~var:x Op.Init ] ]
     in
     consistent Checker.Causal h && not (consistent Checker.Sequential h));
  check Alcotest.bool "lazy-causal not causal" true
    (consistent Checker.Lazy_causal fig4_history
    && not (consistent Checker.Causal fig4_history));
  check Alcotest.bool "pram not lazy-causal" true
    (consistent Checker.Pram fig5_history
    && not (consistent Checker.Lazy_causal fig5_history));
  check Alcotest.bool "slow not pram" true
    (let h =
       History.of_lists
         [ [ w ~var:x a; w ~var:y b ]; [ r ~var:y b; r ~var:x Op.Init ] ]
     in
     consistent Checker.Slow h && not (consistent Checker.Pram h))

let test_witnesses_validate =
  qcheck
    (seeded "witnesses_always_validate" (fun (seed, profile) ->
         let h = Generator.causal_consistent (Rng.create seed) profile in
         let rf = Result.get_ok (History.read_from h) in
         let co = Orders.causal h rf in
         match Checker.witness Checker.Causal h with
         | None -> false
         | Some units ->
             List.for_all
               (fun (key, order) ->
                 match key with
                 | Checker.Proc p ->
                     let subset =
                       List.map (History.id h) (History.sub_history h p)
                     in
                     Checker.validate_serialization h ~subset ~relation:co ~order
                 | _ -> false)
               units))

let () =
  Alcotest.run "repro_history"
    [
      ( "op",
        [
          Alcotest.test_case "pretty printing" `Quick test_op_pp;
          Alcotest.test_case "write init rejected" `Quick test_op_write_init_rejected;
          Alcotest.test_case "value compare" `Quick test_op_value_compare;
        ] );
      ( "history",
        [
          Alcotest.test_case "construction" `Quick test_history_construction;
          Alcotest.test_case "sub history" `Quick test_history_sub_history;
          Alcotest.test_case "differentiated" `Quick test_history_differentiated;
          Alcotest.test_case "read from" `Quick test_history_read_from;
          Alcotest.test_case "read from dangling" `Quick test_history_read_from_dangling;
          Alcotest.test_case "read from ambiguous" `Quick test_history_read_from_ambiguous;
          Alcotest.test_case "parse" `Quick test_history_parse;
          test_history_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_history_parse_errors;
          Alcotest.test_case "parse bottom forms" `Quick test_history_parse_bottom_forms;
          Alcotest.test_case "bad indices" `Quick test_history_bad_indices;
          Alcotest.test_case "criterion names" `Quick test_criterion_names_distinct;
        ] );
      ( "orders",
        [
          Alcotest.test_case "program order" `Quick test_program_order;
          Alcotest.test_case "lazy program order" `Quick test_lazy_program_order;
          Alcotest.test_case "causal via rf" `Quick test_causal_order_via_rf;
          Alcotest.test_case "pram not transitive" `Quick test_pram_not_transitive;
          Alcotest.test_case "lazy writes before" `Quick test_lazy_writes_before;
          Alcotest.test_case "respects" `Quick test_respects;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "validate" `Quick test_validate_serialization;
          Alcotest.test_case "find legality" `Quick test_find_serialization_legality;
          Alcotest.test_case "find impossible" `Quick test_find_serialization_impossible;
          test_search_vs_brute_force;
          test_search_vs_brute_force_pram;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig3 dependency chain" `Quick test_fig3_chain_dependency;
          Alcotest.test_case "fig4 lazy causal not causal" `Quick
            test_fig4_lazy_causal_not_causal;
          Alcotest.test_case "fig4 serializations S1-S3" `Quick
            test_fig4_serializations_validate;
          Alcotest.test_case "fig5 not lazy causal" `Quick test_fig5_not_lazy_causal;
          Alcotest.test_case "fig6 not lazy semi-causal" `Quick
            test_fig6_not_lazy_semi_causal;
          Alcotest.test_case "weak program order" `Quick test_weak_program_order;
          Alcotest.test_case "fig6 as printed (semi-causal)" `Quick
            test_fig6_as_printed_reconciliation;
          Alcotest.test_case "semi-causal inclusions" `Quick
            test_semi_causal_between_causal_and_lsc;
        ] );
      ( "criteria",
        [
          Alcotest.test_case "sequential positive" `Quick test_sequential_positive;
          Alcotest.test_case "sequential negative" `Quick test_sequential_negative;
          Alcotest.test_case "causal negative write order" `Quick
            test_causal_negative_write_order;
          Alcotest.test_case "pram allows disagreement" `Quick
            test_pram_allows_disagreement;
          Alcotest.test_case "slow weaker than pram" `Quick test_slow_weaker_than_pram;
          Alcotest.test_case "cache per variable" `Quick test_cache_per_variable;
          Alcotest.test_case "dangling read inconsistent" `Quick
            test_dangling_read_inconsistent;
          Alcotest.test_case "ambiguous undecidable" `Quick test_undecidable_raises;
          Alcotest.test_case "empty history" `Quick test_empty_history;
          Alcotest.test_case "witness roundtrip" `Quick test_witness_roundtrip;
        ] );
      ( "relations",
        [ test_relation_inclusions; test_relation_acyclicity ] );
      ( "session",
        [
          Alcotest.test_case "ryw violation" `Quick test_session_ryw_violation;
          Alcotest.test_case "mr violation" `Quick test_session_mr_violation;
          Alcotest.test_case "mw violation" `Quick test_session_mw_violation;
          Alcotest.test_case "wfr violation" `Quick test_session_wfr_violation;
          test_session_pram_implies_ryw_mr_mw;
          test_session_causal_implies_all;
          Alcotest.test_case "conjunction weaker than pram" `Quick
            test_session_conjunction_weaker_than_pram;
          Alcotest.test_case "names" `Quick test_session_names;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "layout" `Quick test_diagram_layout;
          test_diagram_renders_every_op;
          Alcotest.test_case "timed" `Quick test_diagram_timed;
        ] );
      ( "timed",
        [
          Alcotest.test_case "validation" `Quick test_timed_validation;
          Alcotest.test_case "projection" `Quick test_timed_projection;
          Alcotest.test_case "linearizable positive" `Quick test_linearizable_positive;
          Alcotest.test_case "stale read rejected" `Quick test_linearizable_stale_read;
          Alcotest.test_case "overlap freedom" `Quick test_linearizable_overlap_freedom;
          Alcotest.test_case "new-old inversion" `Quick
            test_linearizable_new_old_inversion;
          Alcotest.test_case "equal instants unordered" `Quick
            test_timed_equal_instants_unordered;
          test_linearizable_implies_sequential;
        ] );
      ( "properties",
        [
          test_gen_pram_is_pram;
          test_gen_causal_is_causal;
          test_gen_sequential_is_sequential;
          test_gen_differentiated;
          test_lattice;
          Alcotest.test_case "lattice strictness" `Quick test_lattice_strictness;
          test_witnesses_validate;
        ] );
    ]

(* Tests for Repro_msgpass: latency models, fault injection, the
   discrete-event network, and fibers. *)

module Rng = Repro_util.Rng
module Latency = Repro_msgpass.Latency
module Fault = Repro_msgpass.Fault
module Net = Repro_msgpass.Net
module Fiber = Repro_msgpass.Fiber

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- latency ------------------------------------------------------------- *)

let test_latency_constant () =
  let g = Rng.create 1 in
  for _ = 1 to 20 do
    check Alcotest.int "constant" 7 (Latency.sample (Latency.constant 7) g ~src:0 ~dst:1)
  done

let test_latency_uniform_bounds =
  qcheck
    (QCheck.Test.make ~name:"latency_uniform_in_bounds" ~count:300 QCheck.small_int
       (fun seed ->
         let g = Rng.create seed in
         let l = Latency.uniform ~lo:2 ~hi:9 in
         let v = Latency.sample l g ~src:0 ~dst:1 in
         v >= 2 && v <= 9))

let test_latency_exponential_capped () =
  let g = Rng.create 3 in
  let l = Latency.exponential ~mean:10.0 ~cap:15 in
  for _ = 1 to 200 do
    let v = Latency.sample l g ~src:0 ~dst:1 in
    if v < 1 || v > 15 then Alcotest.failf "latency %d out of [1,15]" v
  done

let test_latency_per_link () =
  let g = Rng.create 1 in
  let l =
    Latency.per_link (fun ~src ~dst:_ ->
        if src = 0 then Latency.constant 1 else Latency.constant 50)
  in
  check Alcotest.int "link 0" 1 (Latency.sample l g ~src:0 ~dst:1);
  check Alcotest.int "link 1" 50 (Latency.sample l g ~src:1 ~dst:0)

let test_latency_validation () =
  Alcotest.check_raises "negative constant"
    (Invalid_argument "Latency.constant: negative latency") (fun () ->
      ignore (Latency.constant (-1)));
  Alcotest.check_raises "bad uniform" (Invalid_argument "Latency.uniform: bad range")
    (fun () -> ignore (Latency.uniform ~lo:5 ~hi:2))

(* --- network basics ------------------------------------------------------ *)

let make_net ?faults ?(n = 3) ?(latency = Latency.constant 5) ?(seed = 42) () =
  Net.create ?faults ~n ~latency ~seed ()

let test_net_delivery () =
  let net = make_net () in
  let got = ref [] in
  Net.set_handler net 1 (fun e -> got := e.Net.msg :: !got);
  Net.send net ~src:0 ~dst:1 "hello";
  Net.run net;
  check Alcotest.(list string) "delivered" [ "hello" ] !got;
  check Alcotest.int "clock advanced" 5 (Net.now net)

let test_net_self_send () =
  let net = make_net () in
  let got = ref 0 in
  Net.set_handler net 0 (fun _ -> incr got);
  Net.send net ~src:0 ~dst:0 ();
  check Alcotest.int "not synchronous" 0 !got;
  Net.run net;
  check Alcotest.int "delivered" 1 !got

let test_net_fifo_per_channel () =
  (* With random latencies, per-channel delivery must still match send
     order. *)
  let net = Net.create ~n:2 ~latency:(Latency.uniform ~lo:1 ~hi:50) ~seed:7 () in
  let got = ref [] in
  Net.set_handler net 1 (fun e -> got := e.Net.msg :: !got);
  for k = 1 to 30 do
    Net.send net ~src:0 ~dst:1 k
  done;
  Net.run net;
  check Alcotest.(list int) "fifo order" (List.init 30 (fun i -> i + 1)) (List.rev !got)

let test_net_reorder_without_fifo () =
  (* Same experiment with reorder faults: some inversion should appear. *)
  let faults = { Fault.none with Fault.reorder = true } in
  let net = Net.create ~faults ~n:2 ~latency:(Latency.uniform ~lo:1 ~hi:50) ~seed:7 () in
  let got = ref [] in
  Net.set_handler net 1 (fun e -> got := e.Net.msg :: !got);
  for k = 1 to 30 do
    Net.send net ~src:0 ~dst:1 k
  done;
  Net.run net;
  let arrived = List.rev !got in
  check Alcotest.int "all delivered" 30 (List.length arrived);
  check Alcotest.bool "some inversion" true (arrived <> List.sort compare arrived)

let test_net_determinism () =
  let run_once () =
    let net = Net.create ~n:4 ~latency:(Latency.uniform ~lo:1 ~hi:20) ~seed:11 () in
    let log = ref [] in
    for p = 0 to 3 do
      Net.set_handler net p (fun e ->
          log :=
            Printf.sprintf "%d:%d->%d=%d" (Net.now net) e.Net.src e.Net.dst e.Net.msg
            :: !log)
    done;
    for i = 0 to 3 do
      for j = 0 to 3 do
        if i <> j then Net.send net ~src:i ~dst:j ((i * 10) + j)
      done
    done;
    Net.run net;
    List.rev !log
  in
  check Alcotest.(list string) "identical traces" (run_once ()) (run_once ())

let test_net_timer_ordering () =
  let net = make_net () in
  let log = ref [] in
  Net.at net ~delay:10 (fun () -> log := "b" :: !log);
  Net.at net ~delay:5 (fun () -> log := "a" :: !log);
  Net.at net ~delay:10 (fun () -> log := "c" :: !log);
  Net.run net;
  check Alcotest.(list string) "time then insertion order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_net_timer_negative () =
  let net = make_net () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Net.at: negative delay")
    (fun () -> Net.at net ~delay:(-1) (fun () -> ()))

let test_net_run_until () =
  let net = make_net () in
  let fired = ref 0 in
  Net.at net ~delay:5 (fun () -> incr fired);
  Net.at net ~delay:15 (fun () -> incr fired);
  Net.run_until net 10;
  check Alcotest.int "only first" 1 !fired;
  check Alcotest.int "clock at deadline" 10 (Net.now net);
  Net.run net;
  check Alcotest.int "second eventually" 2 !fired

let test_net_run_until_budget () =
  let net = make_net () in
  (* a poller that reschedules itself at the current instant never drains
     the queue; run_until must hit its budget rather than spin forever *)
  let rec poll () = Net.at net ~delay:0 (fun () -> poll ()) in
  poll ();
  Alcotest.check_raises "budget"
    (Failure "Net.run_until: event budget exhausted (livelock or unbounded polling?)")
    (fun () -> Net.run_until ~max_events:100 net 5)

let test_net_packed_key_overflow () =
  (* timers beyond 2^31 ticks force the scheduler off its packed int keys
     onto widened (time, seq) keys, migrating what is already queued *)
  let far = 1 lsl 31 in
  let net = make_net () in
  let log = ref [] in
  Net.at net ~delay:3 (fun () -> log := "a" :: !log);
  Net.at net ~delay:(far + 1) (fun () -> log := "c" :: !log);
  Net.at net ~delay:5 (fun () -> log := "b" :: !log);
  Net.at net ~delay:(far + 1) (fun () -> log := "d" :: !log);
  Net.run net;
  check Alcotest.(list string) "time then insertion order" [ "a"; "b"; "c"; "d" ]
    (List.rev !log);
  check Alcotest.int "clock past boundary" (far + 1) (Net.now net)

let test_net_drop_faults () =
  let net =
    Net.create ~faults:(Fault.lossy 1.0) ~n:2 ~latency:(Latency.constant 1) ~seed:3 ()
  in
  let got = ref 0 in
  Net.set_handler net 1 (fun _ -> incr got);
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Net.run net;
  check Alcotest.int "all dropped" 0 !got;
  let s = Net.stats net in
  check Alcotest.int "dropped counted" 20 s.Net.dropped

let test_net_duplicate_faults () =
  let faults = { Fault.none with Fault.duplicate = 1.0 } in
  let net = Net.create ~faults ~n:2 ~latency:(Latency.constant 1) ~seed:3 () in
  let got = ref 0 in
  Net.set_handler net 1 (fun _ -> incr got);
  for _ = 1 to 10 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Net.run net;
  check Alcotest.int "every message twice" 20 !got

let test_net_stats_accounting () =
  let net = make_net () in
  Net.set_handler net 1 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 ~control_bytes:16 ~payload_bytes:8 ();
  Net.send net ~src:2 ~dst:1 ~control_bytes:4 ~payload_bytes:0 ();
  Net.run net;
  let s = Net.stats net in
  check Alcotest.int "sent" 2 s.Net.sent;
  check Alcotest.int "delivered" 2 s.Net.delivered;
  check Alcotest.int "control" 20 s.Net.total_control_bytes;
  check Alcotest.int "payload" 8 s.Net.total_payload_bytes;
  check Alcotest.(array int) "per-node sent" [| 1; 0; 1 |] s.Net.per_node_sent;
  check Alcotest.(array int) "per-node received" [| 0; 2; 0 |] s.Net.per_node_received

let test_net_trace () =
  let net = make_net () in
  Net.set_tracing net true;
  Net.set_handler net 1 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 "m";
  Net.run net;
  match Net.trace net with
  | [ Net.Sent e1; Net.Delivered e2 ] ->
      check Alcotest.string "same message" e1.Net.msg e2.Net.msg
  | other -> Alcotest.failf "unexpected trace of length %d" (List.length other)

let test_net_handler_cascade () =
  (* handlers may send more messages: a 3-hop relay *)
  let net = make_net () in
  let arrived = ref false in
  Net.set_handler net 1 (fun e -> Net.send net ~src:1 ~dst:2 e.Net.msg);
  Net.set_handler net 2 (fun _ -> arrived := true);
  Net.send net ~src:0 ~dst:1 ();
  Net.run net;
  check Alcotest.bool "relayed" true !arrived;
  check Alcotest.int "two hops of 5" 10 (Net.now net)

let test_net_livelock_detection () =
  let net = make_net () in
  let rec rearm () = Net.at net ~delay:1 rearm in
  rearm ();
  Alcotest.check_raises "budget"
    (Failure "Net.run: event budget exhausted (livelock or unbounded polling?)")
    (fun () -> Net.run ~max_events:100 net)

let test_net_service_time () =
  (* 5 messages to one node with service time 10: arrivals at 1, then one
     per 10 ticks *)
  let net =
    Net.create ~service_time:10 ~n:2 ~latency:(Latency.constant 1) ~seed:1 ()
  in
  let times = ref [] in
  Net.set_handler net 1 (fun _ -> times := Net.now net :: !times);
  for _ = 1 to 5 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Net.run net;
  check Alcotest.(list int) "queued service" [ 1; 11; 21; 31; 41 ] (List.rev !times)

let test_net_service_time_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Net.create: negative service time")
    (fun () ->
      ignore (Net.create ~service_time:(-1) ~n:1 ~latency:(Latency.constant 1) ~seed:0 ()))

let test_net_bad_endpoint () =
  let net = make_net () in
  Alcotest.check_raises "bad dst" (Invalid_argument "Net.send: bad endpoint") (fun () ->
      Net.send net ~src:0 ~dst:9 ())

(* --- fault plans ----------------------------------------------------------- *)

let plan_of text =
  match Fault.Plan.parse text with
  | Ok p -> p
  | Error msg -> Alcotest.failf "bad plan %S: %s" text msg

let test_plan_parse_fields () =
  let p =
    plan_of
      "seed=5,drop=0.05,dup=0.01,reorder=0.2,delay=40,link=0>2:drop=0.5,part=100..400:0+2,crash=1@6+300"
  in
  check (Alcotest.float 1e-9) "default drop" 0.05 p.Fault.Plan.default_link.Fault.Plan.drop;
  check (Alcotest.float 1e-9) "default dup" 0.01
    p.Fault.Plan.default_link.Fault.Plan.duplicate;
  check Alcotest.int "delay cap" 40 p.Fault.Plan.delay_max;
  let l = Fault.Plan.link_for p ~src:0 ~dst:2 in
  check (Alcotest.float 1e-9) "link override" 0.5 l.Fault.Plan.drop;
  let l10 = Fault.Plan.link_for p ~src:1 ~dst:0 in
  check (Alcotest.float 1e-9) "other links default" 0.05 l10.Fault.Plan.drop;
  match Fault.Plan.crash_for p 1 with
  | Some c ->
      check Alcotest.int "crash after sends" 6 c.Fault.Plan.after_sends;
      check Alcotest.(option int) "restart delay" (Some 300) c.Fault.Plan.restart_after
  | None -> Alcotest.fail "crash entry lost"

let test_plan_to_string_roundtrip () =
  let texts =
    [
      "seed=5,drop=0.05,dup=0.01,crash=1@6+300";
      "drop=0.1,link=0>2:drop=0.5:reorder=0.3,part=100..400:0+2";
      "seed=11,reorder=0.25,delay=80,crash=0@3";
      "seed=1";
    ]
  in
  List.iter
    (fun text ->
      let p = plan_of text in
      let rendered = Fault.Plan.to_string p in
      let p2 = plan_of rendered in
      check Alcotest.string
        (Printf.sprintf "fixed point for %S" text)
        rendered (Fault.Plan.to_string p2))
    texts

let test_plan_parse_rejects () =
  let bad =
    [
      "drop=1.5";              (* probability out of range *)
      "drop=abc";              (* not a number *)
      "frobnicate=1";          (* unknown clause *)
      "crash=1@6,crash=1@9";   (* duplicate crash entry for one node *)
      "part=400..100:0+2";     (* inverted window *)
      "crash=1@-2";            (* negative send count *)
    ]
  in
  List.iter
    (fun text ->
      match Fault.Plan.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid plan %S" text)
    bad

let test_plan_validate_range_checks () =
  let p = plan_of "seed=1,crash=5@2+100" in
  Alcotest.(check bool) "fine without n" true
    (match Fault.Plan.validate p with () -> true);
  match Fault.Plan.validate ~n:3 p with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "crash node 5 accepted for n=3"

let test_plan_partition_window () =
  let p = plan_of "seed=1,part=100..400:0+2" in
  let cut ~now ~src ~dst = Fault.Plan.partitioned p ~now ~src ~dst in
  check Alcotest.bool "closed before window" false (cut ~now:99 ~src:0 ~dst:1);
  check Alcotest.bool "cut inside window" true (cut ~now:100 ~src:0 ~dst:1);
  check Alcotest.bool "cut is symmetric" true (cut ~now:250 ~src:1 ~dst:0);
  check Alcotest.bool "within-group traffic flows" false (cut ~now:250 ~src:0 ~dst:2);
  check Alcotest.bool "outside-group traffic flows" false (cut ~now:250 ~src:1 ~dst:3);
  check Alcotest.bool "healed at until_t" false (cut ~now:400 ~src:0 ~dst:1)

let test_plan_membership_events () =
  let p = plan_of "seed=7,join=4@250,leave=1@600,crash=0@5+300" in
  (match p.Fault.Plan.joins with
  | [ j ] ->
      check Alcotest.int "join node" 4 j.Fault.Plan.rnode;
      check Alcotest.int "join at" 250 j.Fault.Plan.at_ms
  | l -> Alcotest.failf "expected one join, got %d" (List.length l));
  (match p.Fault.Plan.leaves with
  | [ l ] ->
      check Alcotest.int "leave node" 1 l.Fault.Plan.rnode;
      check Alcotest.int "leave at" 600 l.Fault.Plan.at_ms
  | l -> Alcotest.failf "expected one leave, got %d" (List.length l));
  (* membership clauses survive the canonical round trip *)
  let rendered = Fault.Plan.to_string p in
  check Alcotest.string "fixed point" rendered
    (Fault.Plan.to_string (plan_of rendered));
  (* a joiner is outside the initial ring, so validate must accept node
     ids up to n (the post-join size), and reject nonsense *)
  Alcotest.(check bool) "join=n accepted" true
    (match Fault.Plan.validate ~n:5 p with () -> true);
  List.iter
    (fun text ->
      match Fault.Plan.parse text with
      | Error _ -> ()
      | Ok p -> (
          match Fault.Plan.validate ~n:3 p with
          | exception Invalid_argument _ -> ()
          | () -> Alcotest.failf "accepted invalid membership plan %S" text))
    [
      "join=1@-5";            (* negative time *)
      "join=abc@10";          (* not a node id *)
      "join=1@10,join=1@20";  (* duplicate joiner *)
      "leave=9@10";           (* out of range for n=3 *)
    ]

let test_plan_link_seed_streams () =
  let p = plan_of "seed=7,drop=0.1" in
  check Alcotest.bool "per-link streams differ" true
    (Fault.Plan.link_seed p ~src:0 ~dst:1 <> Fault.Plan.link_seed p ~src:1 ~dst:0);
  check Alcotest.int "stream seed is a pure function"
    (Fault.Plan.link_seed p ~src:0 ~dst:1)
    (Fault.Plan.link_seed p ~src:0 ~dst:1);
  let p2 = plan_of "seed=8,drop=0.1" in
  check Alcotest.bool "plan seed feeds the stream" true
    (Fault.Plan.link_seed p ~src:0 ~dst:1 <> Fault.Plan.link_seed p2 ~src:0 ~dst:1)

(* The seed-hygiene satellite: fault decisions draw from a dedicated RNG
   stream, so enabling faults must not perturb any surviving message's
   latency.  Sends are spaced 100 ticks apart (latencies <= 50) so the FIFO
   horizon never binds and each delivery time is exactly send_time + its
   latency draw. *)
let test_net_fault_seed_hygiene =
  qcheck
    (QCheck.Test.make ~name:"net_fault_rng_isolated_from_latency" ~count:50
       QCheck.small_int (fun seed ->
         let deliveries faults =
           let net =
             Net.create ?faults ~n:2 ~latency:(Latency.uniform ~lo:1 ~hi:50)
               ~seed ()
           in
           let got = ref [] in
           Net.set_handler net 1 (fun e -> got := (e.Net.msg, Net.now net) :: !got);
           for k = 0 to 29 do
             Net.at net ~delay:(k * 100) (fun () -> Net.send net ~src:0 ~dst:1 k)
           done;
           Net.run net;
           !got
         in
         let clean = deliveries None in
         let lossy = deliveries (Some (Fault.lossy 0.4)) in
         List.length clean = 30
         && List.for_all
              (fun (k, t) -> List.assoc_opt k clean = Some t)
              lossy))

(* --- message sequence charts ---------------------------------------------- *)

module Msc = Repro_msgpass.Msc

let traced_run () =
  let net = Net.create ~n:3 ~latency:(Latency.constant 4) ~seed:5 () in
  Net.set_tracing net true;
  Net.set_handler net 1 (fun e -> Net.send net ~src:1 ~dst:2 e.Net.msg);
  Net.set_handler net 2 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 "hello";
  Net.run net;
  Net.trace net

let test_msc_render () =
  let chart = Msc.render ~n_nodes:3 ~label:Fun.id (traced_run ()) in
  let lines = String.split_on_char '\n' chart |> List.filter (fun l -> l <> "") in
  (* header + two deliveries *)
  check Alcotest.int "rows" 3 (List.length lines);
  let second = List.nth lines 1 in
  check Alcotest.bool "time prefix" true (String.length second > 5 && String.sub second 0 4 = "t=4 ");
  check Alcotest.bool "rightward arrow" true (String.contains second '>');
  check Alcotest.bool "label present" true
    (let rec has i =
       i + 5 <= String.length second && (String.sub second i 5 = "hello" || has (i + 1))
     in
     has 0)

let test_msc_show_sends () =
  let chart = Msc.render ~show_sends:true ~n_nodes:3 ~label:Fun.id (traced_run ()) in
  let lines = String.split_on_char '\n' chart |> List.filter (fun l -> l <> "") in
  (* header + 2 sends + 2 deliveries *)
  check Alcotest.int "rows with sends" 5 (List.length lines)

let test_msc_summarize () =
  check
    Alcotest.(list (triple int int int))
    "traffic matrix"
    [ (0, 1, 1); (1, 2, 1) ]
    (Msc.summarize ~n_nodes:3 (traced_run ()))

(* --- fibers -------------------------------------------------------------- *)

let test_fiber_sequencing () =
  let net = make_net () in
  let log = ref [] in
  let schedule ~delay f = Net.at net ~delay f in
  Fiber.spawn ~schedule (fun () ->
      log := "a1" :: !log;
      Fiber.yield ();
      log := "a2" :: !log);
  Fiber.spawn ~schedule (fun () ->
      log := "b1" :: !log;
      Fiber.yield ();
      log := "b2" :: !log);
  Net.run net;
  check Alcotest.(list string) "interleaved" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_fiber_await () =
  let net = make_net () in
  let schedule ~delay f = Net.at net ~delay f in
  let flag = ref false in
  let seen = ref (-1) in
  Net.at net ~delay:25 (fun () -> flag := true);
  Fiber.spawn ~schedule (fun () ->
      Fiber.await (fun () -> !flag);
      seen := Net.now net);
  Net.run net;
  check Alcotest.bool "waited for the flag" true (!seen >= 25)

let test_fiber_sleep () =
  let net = make_net () in
  let schedule ~delay f = Net.at net ~delay f in
  let woke = ref (-1) in
  Fiber.spawn ~schedule (fun () ->
      Fiber.sleep 42;
      woke := Net.now net);
  Net.run net;
  check Alcotest.int "slept" 42 !woke

let test_fiber_on_done () =
  let net = make_net () in
  let schedule ~delay f = Net.at net ~delay f in
  let finished = ref false in
  Fiber.spawn ~schedule ~on_done:(fun () -> finished := true) (fun () -> Fiber.yield ());
  Net.run net;
  check Alcotest.bool "on_done ran" true !finished

let test_fiber_poll_interval () =
  let net = make_net () in
  let schedule ~delay f = Net.at net ~delay f in
  let polls = ref 0 in
  let woke = ref (-1) in
  Fiber.spawn ~schedule ~poll_interval:10 (fun () ->
      Fiber.await (fun () ->
          incr polls;
          !polls > 3);
      woke := Net.now net);
  Net.run net;
  (* polls at t=0,10,20,30 -> condition true on the 4th check *)
  check Alcotest.int "time reflects poll spacing" 30 !woke

let () =
  Alcotest.run "repro_msgpass"
    [
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          test_latency_uniform_bounds;
          Alcotest.test_case "exponential capped" `Quick test_latency_exponential_capped;
          Alcotest.test_case "per link" `Quick test_latency_per_link;
          Alcotest.test_case "validation" `Quick test_latency_validation;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "self send is asynchronous" `Quick test_net_self_send;
          Alcotest.test_case "fifo per channel" `Quick test_net_fifo_per_channel;
          Alcotest.test_case "reorder fault breaks fifo" `Quick
            test_net_reorder_without_fifo;
          Alcotest.test_case "determinism" `Quick test_net_determinism;
          Alcotest.test_case "timer ordering" `Quick test_net_timer_ordering;
          Alcotest.test_case "timer negative delay" `Quick test_net_timer_negative;
          Alcotest.test_case "run_until" `Quick test_net_run_until;
          Alcotest.test_case "run_until budget" `Quick test_net_run_until_budget;
          Alcotest.test_case "packed key overflow" `Quick
            test_net_packed_key_overflow;
          Alcotest.test_case "drop faults" `Quick test_net_drop_faults;
          Alcotest.test_case "duplicate faults" `Quick test_net_duplicate_faults;
          Alcotest.test_case "stats accounting" `Quick test_net_stats_accounting;
          Alcotest.test_case "trace" `Quick test_net_trace;
          Alcotest.test_case "handler cascade" `Quick test_net_handler_cascade;
          Alcotest.test_case "livelock detection" `Quick test_net_livelock_detection;
          Alcotest.test_case "service time" `Quick test_net_service_time;
          Alcotest.test_case "service time validation" `Quick
            test_net_service_time_validation;
          Alcotest.test_case "bad endpoint" `Quick test_net_bad_endpoint;
        ] );
      ( "fault-plan",
        [
          Alcotest.test_case "parse fields" `Quick test_plan_parse_fields;
          Alcotest.test_case "to_string round-trips" `Quick
            test_plan_to_string_roundtrip;
          Alcotest.test_case "invalid plans rejected" `Quick test_plan_parse_rejects;
          Alcotest.test_case "validate range-checks nodes" `Quick
            test_plan_validate_range_checks;
          Alcotest.test_case "partition windows" `Quick test_plan_partition_window;
          Alcotest.test_case "membership events" `Quick
            test_plan_membership_events;
          Alcotest.test_case "per-link seed streams" `Quick
            test_plan_link_seed_streams;
          test_net_fault_seed_hygiene;
        ] );
      ( "msc",
        [
          Alcotest.test_case "render" `Quick test_msc_render;
          Alcotest.test_case "show sends" `Quick test_msc_show_sends;
          Alcotest.test_case "summarize" `Quick test_msc_summarize;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "sequencing" `Quick test_fiber_sequencing;
          Alcotest.test_case "await" `Quick test_fiber_await;
          Alcotest.test_case "sleep" `Quick test_fiber_sleep;
          Alcotest.test_case "on_done" `Quick test_fiber_on_done;
          Alcotest.test_case "poll interval" `Quick test_fiber_poll_interval;
        ] );
    ]

(* Tests for the multicore layer: the work-stealing domain pool (ordering,
   early exit, nesting, exception propagation), the [Checker.check_par] ≡
   [Checker.check] parity property over random histories for every
   criterion, and injectivity of the packed memo-state encoding — in
   particular around the 16-bit slot-packing boundary where the previous
   string-based encoding collided. *)

module Pool = Repro_util.Pool
module Checker = Repro_history.Checker
module Generator = Repro_history.Generator
module History = Repro_history.History
module Rng = Repro_util.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- pool ----------------------------------------------------------------- *)

let test_pool_jobs () =
  with_pool 3 (fun pool -> check Alcotest.int "jobs" 3 (Pool.jobs pool));
  with_pool 1 (fun pool -> check Alcotest.int "jobs one" 1 (Pool.jobs pool))

let test_pool_map_order () =
  with_pool 3 (fun pool ->
      let input = List.init 100 Fun.id in
      check
        Alcotest.(list int)
        "squares in submission order"
        (List.map (fun x -> x * x) input)
        (Pool.map pool (fun x -> x * x) input));
  (* jobs = 1 runs inline and must agree *)
  with_pool 1 (fun pool ->
      check
        Alcotest.(list int)
        "inline map" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_run_order () =
  with_pool 2 (fun pool ->
      let results =
        Pool.run pool
          (List.init 20 (fun i () ->
               (* stagger the work so completion order differs from
                  submission order *)
               let n = if i mod 2 = 0 then 10_000 else 10 in
               let acc = ref 0 in
               for j = 1 to n do
                 acc := !acc + j
               done;
               ignore !acc;
               i))
      in
      check Alcotest.(list int) "submission order" (List.init 20 Fun.id) results)

let test_pool_empty_and_singleton () =
  with_pool 2 (fun pool ->
      check Alcotest.(list int) "empty" [] (Pool.map pool Fun.id []);
      check Alcotest.(list int) "singleton" [ 7 ] (Pool.map pool Fun.id [ 7 ]))

let test_pool_for_all () =
  with_pool 2 (fun pool ->
      let l = List.init 50 Fun.id in
      check Alcotest.bool "all pass" true (Pool.for_all pool (fun x -> x >= 0) l);
      check Alcotest.bool "one fails" false
        (Pool.for_all pool (fun x -> x <> 37) l);
      check Alcotest.bool "vacuous" true (Pool.for_all pool (fun _ -> false) []))

let test_pool_for_all_matches_sequential () =
  with_pool 3 (fun pool ->
      let rng = Rng.create 42 in
      for _ = 1 to 20 do
        let l = List.init (1 + Rng.int rng 10) (fun _ -> Rng.int rng 100) in
        let pred x = x mod 7 <> 0 in
        check Alcotest.bool "matches List.for_all" (List.for_all pred l)
          (Pool.for_all pool pred l)
      done)

let test_pool_nested () =
  (* tasks submitted from inside pool tasks must not deadlock, and outer
     ordering must survive inner parallelism *)
  with_pool 2 (fun pool ->
      let result =
        Pool.map pool
          (fun i ->
            List.fold_left ( + ) 0
              (Pool.map pool (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      check
        Alcotest.(list int)
        "nested sums" [ 36; 66; 96; 126 ] result)

let test_pool_exception () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "first submission-order failure wins"
        (Failure "first") (fun () ->
          ignore
            (Pool.run pool
               [
                 (fun () -> failwith "first");
                 (fun () -> failwith "second");
                 (fun () -> 3);
               ]));
      (* the pool survives a failed batch *)
      check Alcotest.(list int) "pool still works" [ 1; 2 ]
        (Pool.map pool Fun.id [ 1; 2 ]))

let test_default_pool_jobs () =
  Pool.set_default_jobs 2;
  check Alcotest.int "default jobs" 2 (Pool.default_jobs ());
  check Alcotest.int "default pool sized" 2 (Pool.jobs (Pool.default ()));
  Pool.set_default_jobs 1;
  check Alcotest.int "resized down" 1 (Pool.default_jobs ())

(* --- check_par ≡ check ---------------------------------------------------- *)

let shared_pool = Pool.create ~jobs:2 ()
let () = at_exit (fun () -> Pool.shutdown shared_pool)

let verdict_equal a b =
  match (a, b) with
  | Checker.Consistent, Checker.Consistent
  | Checker.Inconsistent, Checker.Inconsistent
  | Checker.Undecidable _, Checker.Undecidable _ ->
      true
  | _ -> false

let parity_on h =
  List.for_all
    (fun criterion ->
      verdict_equal
        (Checker.check criterion h)
        (Checker.check_par ~pool:shared_pool criterion h))
    Checker.all_criteria

let test_par_parity_arbitrary =
  qcheck
    (QCheck.Test.make ~name:"check_par_equals_check_on_arbitrary" ~count:60
       QCheck.small_int (fun seed ->
         parity_on
           (Generator.arbitrary (Rng.create seed)
              { Generator.procs = 3; vars = 2; ops_per_proc = 3; read_ratio = 0.5 })))

let test_par_parity_consistent =
  qcheck
    (QCheck.Test.make ~name:"check_par_equals_check_on_consistent" ~count:30
       QCheck.small_int (fun seed ->
         let profile =
           { Generator.procs = 3; vars = 3; ops_per_proc = 4; read_ratio = 0.5 }
         in
         parity_on (Generator.pram_consistent (Rng.create seed) profile)
         && parity_on (Generator.causal_consistent (Rng.create (seed + 500)) profile)
         && parity_on
              (Generator.sequential_consistent (Rng.create (seed + 1000)) profile)))

(* --- packed state-key injectivity ---------------------------------------- *)

let pack = Checker.Private.pack_state

let distinct name a b =
  check Alcotest.bool name true (a <> b)

let test_pack_distinct_placed () =
  let last_write = [| 3; -1 |] in
  distinct "placed differ within a word"
    (pack ~k:64 ~placed:[ 0; 5; 31 ] ~last_write)
    (pack ~k:64 ~placed:[ 0; 5; 30 ] ~last_write);
  distinct "placed differ across words"
    (pack ~k:64 ~placed:[ 0; 5; 32 ] ~last_write)
    (pack ~k:64 ~placed:[ 0; 5; 33 ] ~last_write);
  distinct "subset vs superset"
    (pack ~k:64 ~placed:[ 0; 5 ] ~last_write)
    (pack ~k:64 ~placed:[ 0; 5; 63 ] ~last_write)

let test_pack_distinct_slots () =
  (* three 16-bit slots share a word: permutations and single-slot shifts
     must stay distinct *)
  distinct "slot permutation"
    (pack ~k:8 ~placed:[ 0 ] ~last_write:[| 0; 1; 2; 3 |])
    (pack ~k:8 ~placed:[ 0 ] ~last_write:[| 3; 2; 1; 0 |]);
  distinct "slot shift"
    (pack ~k:8 ~placed:[ 0 ] ~last_write:[| 1; -1; -1; -1 |])
    (pack ~k:8 ~placed:[ 0 ] ~last_write:[| -1; 1; -1; -1 |]);
  distinct "none vs first op"
    (pack ~k:8 ~placed:[ 0 ] ~last_write:[| -1 |])
    (pack ~k:8 ~placed:[ 0 ] ~last_write:[| 0 |])

let test_pack_16bit_boundary () =
  (* k = 0xffff is the largest subset whose slots fit 16 bits: the extreme
     index must still be distinguishable from its neighbours and from
     "no write placed" *)
  let k = 0xffff in
  distinct "max slot vs none"
    (pack ~k ~placed:[] ~last_write:[| k - 1 |])
    (pack ~k ~placed:[] ~last_write:[| -1 |]);
  distinct "max slot vs predecessor"
    (pack ~k ~placed:[] ~last_write:[| k - 1 |])
    (pack ~k ~placed:[] ~last_write:[| k - 2 |]);
  (* beyond the boundary the encoding switches to one slot per word; the
     pair that collided under 16-bit wrapping (w + 1 ≡ 0 mod 2^16) must now
     differ *)
  let k = 0x10000 + 1 in
  distinct "wide mode: wrap pair"
    (pack ~k ~placed:[] ~last_write:[| 0xffff |])
    (pack ~k ~placed:[] ~last_write:[| -1 |]);
  distinct "wide mode: wrap pair shifted"
    (pack ~k ~placed:[] ~last_write:[| 0x10000 |])
    (pack ~k ~placed:[] ~last_write:[| 0 |])

let test_pack_exhaustive_small () =
  (* every (placed ⊆ {0..5}, last_write ∈ {-1..5}²) state gets a unique
     key: 64 × 49 = 3136 distinct encodings *)
  let k = 6 in
  let keys = Hashtbl.create 4096 in
  let subsets =
    List.init 64 (fun mask ->
        List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init 6 Fun.id))
  in
  List.iter
    (fun placed ->
      for w0 = -1 to 5 do
        for w1 = -1 to 5 do
          let key = Array.to_list (pack ~k ~placed ~last_write:[| w0; w1 |]) in
          (match Hashtbl.find_opt keys key with
          | Some other ->
              Alcotest.failf "collision: (%s, %d, %d) with %s"
                (String.concat "," (List.map string_of_int placed))
                w0 w1 other
          | None -> ());
          Hashtbl.add keys key
            (Printf.sprintf "(%s, %d, %d)"
               (String.concat "," (List.map string_of_int placed))
               w0 w1)
        done
      done)
    subsets;
  check Alcotest.int "all keys distinct" (64 * 7 * 7) (Hashtbl.length keys)

(* --- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "jobs" `Quick test_pool_jobs;
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "run order" `Quick test_pool_run_order;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_and_singleton;
          Alcotest.test_case "for_all" `Quick test_pool_for_all;
          Alcotest.test_case "for_all matches sequential" `Quick
            test_pool_for_all_matches_sequential;
          Alcotest.test_case "nested" `Quick test_pool_nested;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "default pool jobs" `Quick test_default_pool_jobs;
        ] );
      ( "check_par",
        [ test_par_parity_arbitrary; test_par_parity_consistent ] );
      ( "packed state key",
        [
          Alcotest.test_case "distinct placed" `Quick test_pack_distinct_placed;
          Alcotest.test_case "distinct slots" `Quick test_pack_distinct_slots;
          Alcotest.test_case "16-bit boundary" `Quick test_pack_16bit_boundary;
          Alcotest.test_case "exhaustive small space" `Quick
            test_pack_exhaustive_small;
        ] );
    ]

(* Engine parity: the polynomial saturation front-end and the
   backtracking search must agree on every verdict, for every criterion.
   Three sources of histories, in increasing realism:

   - random QCheck histories (arbitrary, i.e. mostly inconsistent, plus
     the consistent-by-construction generators);
   - the deterministic scenario bank (the paper's Figures 3-6 patterns,
     executed on the efficient protocols with adversarial latencies);
   - the 33 golden protocol/seed histories pinned by test_golden.ml.

   A disagreement here means the saturation engine is unsound or its
   Unknown fallback is broken, so the byte-identity golden digests would
   move with it. *)

module Checker = Repro_history.Checker
module History = Repro_history.History
module Relcache = Repro_history.Relcache
module Saturation = Repro_history.Saturation
module Generator = Repro_history.Generator
module Registry = Repro_core.Registry
module Workload = Repro_core.Workload
module Experiment = Repro_experiments.Experiment
module Distribution = Repro_sharegraph.Distribution
module Rng = Repro_util.Rng

let qcheck = QCheck_alcotest.to_alcotest

let verdict_name = function
  | Checker.Consistent -> "consistent"
  | Checker.Inconsistent -> "inconsistent"
  | Checker.Undecidable _ -> "undecidable"

let agree_on_all_criteria ?(name = "history") h =
  List.iter
    (fun criterion ->
      let search = Checker.check ~engine:Checker.Search criterion h in
      let saturation = Checker.check ~engine:Checker.Saturation criterion h in
      if verdict_name search <> verdict_name saturation then
        Alcotest.failf "%s: engines disagree on %s (search=%s saturation=%s)"
          name
          (Checker.criterion_name criterion)
          (verdict_name search) (verdict_name saturation))
    Checker.all_criteria

(* --- random histories ------------------------------------------------------ *)

let parity_prop make_history seed =
  let h = make_history seed in
  List.for_all
    (fun criterion ->
      verdict_name (Checker.check ~engine:Checker.Search criterion h)
      = verdict_name (Checker.check ~engine:Checker.Saturation criterion h))
    Checker.all_criteria

let test_parity_arbitrary =
  qcheck
    (QCheck.Test.make ~name:"parity_on_arbitrary_histories" ~count:150
       QCheck.small_int
       (parity_prop (fun seed ->
            Generator.arbitrary (Rng.create seed)
              { Generator.procs = 3; vars = 2; ops_per_proc = 4; read_ratio = 0.5 })))

let test_parity_arbitrary_wide =
  qcheck
    (QCheck.Test.make ~name:"parity_on_wider_arbitrary_histories" ~count:60
       QCheck.small_int
       (parity_prop (fun seed ->
            Generator.arbitrary (Rng.create (seed + 5_000))
              { Generator.procs = 4; vars = 3; ops_per_proc = 5; read_ratio = 0.6 })))

let test_parity_pram_consistent =
  qcheck
    (QCheck.Test.make ~name:"parity_on_pram_consistent_histories" ~count:80
       QCheck.small_int
       (parity_prop (fun seed ->
            Generator.pram_consistent (Rng.create seed)
              { Generator.procs = 3; vars = 3; ops_per_proc = 5; read_ratio = 0.5 })))

let test_parity_causal_consistent =
  qcheck
    (QCheck.Test.make ~name:"parity_on_causal_consistent_histories" ~count:80
       QCheck.small_int
       (parity_prop (fun seed ->
            Generator.causal_consistent (Rng.create seed)
              { Generator.procs = 3; vars = 2; ops_per_proc = 5; read_ratio = 0.5 })))

let test_parity_sequential_consistent =
  qcheck
    (QCheck.Test.make ~name:"parity_on_sequential_histories" ~count:80
       QCheck.small_int
       (parity_prop (fun seed ->
            Generator.sequential_consistent (Rng.create seed)
              { Generator.procs = 3; vars = 3; ops_per_proc = 4; read_ratio = 0.5 })))

(* --- deterministic scenario bank ------------------------------------------- *)

let scenario_seed = 77

let test_scenario_bank_parity () =
  List.iter
    (fun (spec : Registry.spec) ->
      List.iter
        (fun (scenario, h) ->
          agree_on_all_criteria
            ~name:(Printf.sprintf "%s/%s" spec.Registry.name scenario)
            h)
        (Experiment.adversarial_histories spec ~seed:scenario_seed))
    Registry.all

(* --- the 33 golden protocol/seed histories --------------------------------- *)

(* mirror test_golden.ml's run_spec: same distribution and workload, so
   these are exactly the histories whose digests are pinned *)
let golden_history (spec : Registry.spec) seed =
  let dist =
    if spec.Registry.requires_full_replication then
      Distribution.full ~n_procs:6 ~n_vars:8
    else
      Distribution.random (Rng.create (777 + seed)) ~n_procs:6 ~n_vars:8
        ~replicas_per_var:3
  in
  let memory = spec.Registry.make ~dist ~seed () in
  Workload.run_random ~seed:(seed + 1) memory

let test_golden_histories_parity () =
  List.iter
    (fun seed ->
      List.iter
        (fun (spec : Registry.spec) ->
          agree_on_all_criteria
            ~name:(Printf.sprintf "%s/%d" spec.Registry.name seed)
            (golden_history spec seed))
        Registry.all)
    [ 11; 22; 33 ]

(* --- direct unit-level checks ---------------------------------------------- *)

(* reads of values nobody wrote must be refuted without the search *)
let test_missing_writer_refuted () =
  let h =
    History.of_lists
      [
        [ (Repro_history.Op.Write, 0, Repro_history.Op.Val 1) ];
        [ (Repro_history.Op.Read, 0, Repro_history.Op.Val 9) ];
      ]
  in
  let rc = Relcache.create h in
  let subset = [ 0; 1 ] in
  let relation = Relcache.program_order rc in
  (match Saturation.serializable h ~subset ~relation with
  | Saturation.Inconsistent -> ()
  | Saturation.Consistent -> Alcotest.fail "dangling read accepted"
  | Saturation.Unknown -> Alcotest.fail "dangling read not refuted directly");
  Alcotest.(check bool)
    "search agrees" false
    (Checker.serializable ~engine:Checker.Search h ~subset ~relation)

(* the counters move when the engine actually runs *)
let test_counters_move () =
  Saturation.reset_counters ();
  let h =
    Generator.causal_consistent (Rng.create 4242)
      { Generator.procs = 3; vars = 2; ops_per_proc = 5; read_ratio = 0.5 }
  in
  (match Checker.check ~engine:Checker.Saturation Checker.Causal h with
  | Checker.Consistent -> ()
  | _ -> Alcotest.fail "causal-consistent history rejected");
  let c = Saturation.counters () in
  Alcotest.(check bool)
    "some polynomial path fired" true
    (c.Saturation.merge_hits + c.Saturation.greedy_hits > 0)

let () =
  Alcotest.run "repro_saturation"
    [
      ( "qcheck-parity",
        [
          test_parity_arbitrary;
          test_parity_arbitrary_wide;
          test_parity_pram_consistent;
          test_parity_causal_consistent;
          test_parity_sequential_consistent;
        ] );
      ( "scenario-bank",
        [
          Alcotest.test_case "figures 3-6 + hoop-leak parity" `Quick
            test_scenario_bank_parity;
        ] );
      ( "golden-histories",
        [
          Alcotest.test_case "33 protocol/seed histories parity" `Slow
            test_golden_histories_parity;
        ] );
      ( "units",
        [
          Alcotest.test_case "missing writer refuted" `Quick
            test_missing_writer_refuted;
          Alcotest.test_case "counters move" `Quick test_counters_move;
        ] );
    ]

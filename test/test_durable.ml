(* Tests for Repro_durable: CRC32, durable blobs, and the write-ahead
   log — framing round-trips, torn-write recovery at every byte boundary,
   crash-point schedules through the rotation protocol, and a forked
   kill-9 oracle whose recovered digest must match the synced prefix the
   child reported before dying.

   Every WAL test works in its own fresh directory under the build dir's
   tmp; crash points are disarmed after each armed test so suites can
   share the process. *)

module Crc32 = Repro_durable.Crc32
module Fsio = Repro_durable.Fsio
module Wal = Repro_durable.Wal
module Fault = Repro_msgpass.Fault

let check = Alcotest.check

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-wal-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  rm d;
  d

let payload i = Printf.sprintf "op-%04d:%s" i (String.make (i mod 23) 'x')

let load_ok dir =
  match Wal.load ~dir with
  | Ok r -> r
  | Error e -> Alcotest.failf "Wal.load %s: %s" dir e

(* ---------- CRC32 ---------- *)

let test_crc_vector () =
  (* the IEEE 802.3 check value every CRC32 implementation must hit *)
  check Alcotest.int "crc32(123456789)" 0xCBF43926 (Crc32.string "123456789")

let test_crc_chaining () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"crc chaining" ~count:200
       QCheck.(pair (string_of_size Gen.(0 -- 64)) (string_of_size Gen.(0 -- 64)))
       (fun (a, b) ->
         let whole = Crc32.string (a ^ b) in
         let chained =
           let ba = Bytes.of_string a and bb = Bytes.of_string b in
           Crc32.update
             (Crc32.update Crc32.init ba ~pos:0 ~len:(Bytes.length ba))
             bb ~pos:0 ~len:(Bytes.length bb)
         in
         whole = chained))

(* ---------- Blob ---------- *)

let test_blob_roundtrip () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "x.blob" in
  Fsio.Blob.write ~path ~magic:"TSTB" ~version:3 ~meta:(42, 7) "hello blob";
  (match Fsio.Blob.read ~path ~magic:"TSTB" ~version:3 with
  | Ok ((m1, m2), p) ->
      check Alcotest.int "meta1" 42 m1;
      check Alcotest.int "meta2" 7 m2;
      check Alcotest.string "payload" "hello blob" p
  | Error e -> Alcotest.failf "blob read: %s" e);
  (match Fsio.Blob.read ~path ~magic:"OTHR" ~version:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign magic accepted");
  (match Fsio.Blob.read ~path ~magic:"TSTB" ~version:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted")

let test_blob_corruption () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "x.blob" in
  let payload = String.init 100 (fun i -> Char.chr (i mod 256)) in
  Fsio.Blob.write ~path ~magic:"TSTB" ~version:1 ~meta:(1, 2) payload;
  let size = (Unix.stat path).Unix.st_size in
  (* flip one byte anywhere: read must reject, never mis-deliver *)
  for off = 0 to size - 1 do
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
    let b = Bytes.create 1 in
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    ignore (Unix.read fd b 0 1);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    ignore (Unix.write fd b 0 1);
    Unix.close fd;
    (match Fsio.Blob.read ~path ~magic:"TSTB" ~version:1 with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "corrupt blob accepted (byte %d flipped)" off);
    (* restore *)
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    ignore (Unix.write fd b 0 1);
    Unix.close fd
  done

(* ---------- WAL round-trip ---------- *)

let test_wal_roundtrip () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"wal round-trip" ~count:30
       QCheck.(small_list (string_of_size Gen.(0 -- 80)))
       (fun payloads ->
         let dir = fresh_dir () in
         let t, r0 = Wal.open_ ~dir ~policy:(Wal.Every 3) () in
         assert (r0.Wal.r_entries = []);
         List.iteri
           (fun i p ->
             let seq = Wal.append t p in
             assert (seq = i))
           payloads;
         Wal.close t;
         let r = load_ok dir in
         r.Wal.r_entries = List.mapi (fun i p -> (i, p)) payloads
         && r.Wal.r_next = List.length payloads
         && r.Wal.r_dropped_bytes = 0))

let test_wal_reopen_continues () =
  let dir = fresh_dir () in
  let t, _ = Wal.open_ ~dir () in
  for i = 0 to 4 do
    ignore (Wal.append t (payload i))
  done;
  Wal.close t;
  let t, r = Wal.open_ ~dir () in
  check Alcotest.int "recovered entries" 5 (List.length r.Wal.r_entries);
  check Alcotest.int "next seq resumes" 5 r.Wal.r_next;
  let seq = Wal.append t (payload 5) in
  check Alcotest.int "append continues the sequence" 5 seq;
  Wal.close t;
  let r = load_ok dir in
  check Alcotest.int "all six" 6 (List.length r.Wal.r_entries)

let test_wal_fresh_wipes () =
  let dir = fresh_dir () in
  let t, _ = Wal.open_ ~dir () in
  ignore (Wal.append t "stale");
  Wal.close t;
  let t, r = Wal.open_ ~dir ~fresh:true () in
  check Alcotest.int "fresh start" 0 (List.length r.Wal.r_entries);
  Wal.close t

(* ---------- damaged-tail recovery ---------- *)

let log_path dir = Filename.concat dir ((load_ok dir).Wal.r_log)

let test_wal_torn_tail_every_boundary () =
  (* build a log of k records, then truncate at EVERY byte inside the
     last frame: recovery must yield exactly k-1 entries, never an error,
     never a short mis-read *)
  let dir = fresh_dir () in
  let k = 6 in
  let t, _ = Wal.open_ ~dir () in
  for i = 0 to k - 1 do
    ignore (Wal.append t (payload i))
  done;
  Wal.close t;
  let path = log_path dir in
  let full = (Unix.stat path).Unix.st_size in
  let last_frame = Wal.record_overhead + String.length (payload (k - 1)) in
  let golden = Bytes.create full in
  let ic = open_in_bin path in
  really_input ic golden 0 full;
  close_in ic;
  for cut = full - last_frame to full - 1 do
    let oc = open_out_bin path in
    output_bytes oc (Bytes.sub golden 0 cut);
    close_out oc;
    let r = load_ok dir in
    if List.length r.Wal.r_entries <> k - 1 then
      Alcotest.failf "cut at %d: recovered %d entries, want %d" cut
        (List.length r.Wal.r_entries)
        (k - 1);
    check Alcotest.int
      (Printf.sprintf "dropped bytes at cut %d" cut)
      (cut - (full - last_frame))
      r.Wal.r_dropped_bytes
  done;
  (* and reopening after a torn tail truncates + keeps appending cleanly *)
  let oc = open_out_bin path in
  output_bytes oc (Bytes.sub golden 0 (full - (last_frame / 2)));
  close_out oc;
  let t, r = Wal.open_ ~dir () in
  check Alcotest.int "reopen after tear" (k - 1) (List.length r.Wal.r_entries);
  let seq = Wal.append t "replacement" in
  check Alcotest.int "tear reuses the torn seqno" (k - 1) seq;
  Wal.close t;
  let r = load_ok dir in
  check Alcotest.int "healed" k (List.length r.Wal.r_entries)

let test_wal_corrupt_record_rejected () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"corrupt byte drops a suffix, never garbage"
       ~count:60
       QCheck.(pair (int_bound 1000000) (int_bound 7))
       (fun (noise, k10) ->
         let k = 3 + k10 in
         let dir = fresh_dir () in
         let t, _ = Wal.open_ ~dir () in
         for i = 0 to k - 1 do
           ignore (Wal.append t (payload i))
         done;
         Wal.close t;
         let path = log_path dir in
         let size = (Unix.stat path).Unix.st_size in
         (* flip one byte somewhere in the record region *)
         let off = 26 + (noise mod (size - 26)) in
         let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
         let b = Bytes.create 1 in
         ignore (Unix.lseek fd off Unix.SEEK_SET);
         ignore (Unix.read fd b 0 1);
         Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x55));
         ignore (Unix.lseek fd off Unix.SEEK_SET);
         ignore (Unix.write fd b 0 1);
         Unix.close fd;
         let r = load_ok dir in
         (* the recovered list must be a prefix of the originals *)
         List.length r.Wal.r_entries < k
         && List.for_all
              (fun (seq, p) -> p = payload seq)
              r.Wal.r_entries))

(* ---------- rotation + crash points ---------- *)

let with_armed ~point ?(powercut = false) f =
  let crashed = ref false in
  Fsio.Crashpoint.arm ~point ~powercut (fun () ->
      crashed := true;
      raise Exit);
  Fun.protect
    ~finally:(fun () -> Fsio.Crashpoint.disarm ())
    (fun () ->
      (try f () with Exit -> ());
      !crashed)

let test_wal_checkpoint_compacts () =
  let dir = fresh_dir () in
  let t, _ = Wal.open_ ~dir () in
  for i = 0 to 9 do
    ignore (Wal.append t (payload i))
  done;
  Wal.checkpoint t "state@10";
  ignore (Wal.append t (payload 10));
  Wal.close t;
  let r = load_ok dir in
  check Alcotest.int "generation advanced" 1 r.Wal.r_gen;
  check Alcotest.int "base past the compacted ops" 10 r.Wal.r_base;
  check (Alcotest.option Alcotest.string) "checkpoint payload" (Some "state@10")
    r.Wal.r_checkpoint;
  check Alcotest.int "only the tail survives as records" 1
    (List.length r.Wal.r_entries);
  check Alcotest.int "tail seqno continues" 10 (fst (List.hd r.Wal.r_entries))

let rotation_points =
  [ "ck.synced"; "ck.renamed"; "rotate.log.created"; "rotate.done" ]

let test_wal_rotation_crash_points () =
  (* kill the process (simulated by Exit) at each step of the rotation:
     the directory must always load, and the (checkpoint, tail) pair must
     cover all ten pre-checkpoint records one way or the other *)
  List.iter
    (fun point ->
      let dir = fresh_dir () in
      let t, _ = Wal.open_ ~dir () in
      for i = 0 to 9 do
        ignore (Wal.append t (payload i))
      done;
      let crashed =
        with_armed ~point (fun () -> Wal.checkpoint t "state@10")
      in
      if not crashed then Alcotest.failf "%s never fired" point;
      (try Wal.close t with _ -> ());
      let r = load_ok dir in
      (match r.Wal.r_checkpoint with
      | Some p ->
          (* the new checkpoint became durable: records are superseded *)
          check Alcotest.string
            (Printf.sprintf "%s: checkpoint payload" point)
            "state@10" p;
          check Alcotest.int (Printf.sprintf "%s: base" point) 10 r.Wal.r_base
      | None ->
          (* died before the blob replace became durable: the old log must
             still replay every record *)
          check Alcotest.int
            (Printf.sprintf "%s: full tail" point)
            10
            (List.length r.Wal.r_entries));
      (* and the directory must reopen for appending, whatever the state *)
      let t, _ = Wal.open_ ~dir () in
      ignore (Wal.append t "after-recovery");
      Wal.close t;
      ignore (load_ok dir))
    rotation_points

let test_wal_append_crash_points () =
  List.iter
    (fun (point, powercut, expect_entries) ->
      let dir = fresh_dir () in
      let t, _ = Wal.open_ ~dir ~policy:(Wal.Every 2) () in
      ignore (Wal.append t (payload 0));
      ignore (Wal.append t (payload 1));
      (* two records synced; now crash inside the third append *)
      let crashed =
        with_armed ~point ~powercut (fun () -> ignore (Wal.append t (payload 2)))
      in
      if not crashed then Alcotest.failf "%s never fired" point;
      let r = load_ok dir in
      check Alcotest.int
        (Printf.sprintf "%s%s: entries" point (if powercut then "!" else ""))
        expect_entries
        (List.length r.Wal.r_entries);
      List.iter (fun (seq, p) -> assert (p = payload seq)) r.Wal.r_entries)
    [
      ("append.pre", false, 2);
      (* torn frame: the half-written record must be dropped *)
      ("append.mid", false, 2);
      (* full frame written but unsynced: survives a process crash... *)
      ("append.post", false, 3);
      (* ...but not a power cut, which reverts to the synced floor *)
      ("append.post", true, 2);
      ("append.mid", true, 2);
    ]

let test_wal_sync_crash_points () =
  let dir = fresh_dir () in
  let t, _ = Wal.open_ ~dir ~policy:Wal.Never () in
  ignore (Wal.append t (payload 0));
  ignore (Wal.append t (payload 1));
  let crashed = with_armed ~point:"sync.pre" (fun () -> Wal.sync t) in
  if not crashed then Alcotest.fail "sync.pre never fired";
  (* process crash before the fsync: the OS cache still has the bytes *)
  let r = load_ok dir in
  check Alcotest.int "sync.pre: entries" 2 (List.length r.Wal.r_entries);
  (* power cut before the fsync: both records vanish *)
  let dir = fresh_dir () in
  let t, _ = Wal.open_ ~dir ~policy:Wal.Never () in
  ignore (Wal.append t (payload 0));
  ignore (Wal.append t (payload 1));
  let crashed =
    with_armed ~point:"sync.pre" ~powercut:true (fun () -> Wal.sync t)
  in
  if not crashed then Alcotest.fail "sync.pre! never fired";
  let r = load_ok dir in
  check Alcotest.int "sync.pre!: entries" 0 (List.length r.Wal.r_entries)

(* ---------- forked kill-9 oracle ---------- *)

let test_wal_kill9_digest () =
  (* a child appends deterministic records with group commit Every 4 and
     reports its synced count over a pipe after each sync; the parent
     SIGKILLs it mid-stream.  Recovery must hold at least the last
     reported (synced) prefix, all payloads intact, and two independent
     loads must produce the same digest. *)
  let dir = fresh_dir () in
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rfd;
      let t, _ = Wal.open_ ~dir ~policy:(Wal.Every 4) () in
      (try
         for i = 0 to 9999 do
           ignore (Wal.append t (payload i));
           if (i + 1) mod 4 = 0 then begin
             (* synced: tell the parent the durable floor *)
             let msg = Printf.sprintf "%d\n" (i + 1) in
             ignore (Unix.write_substring wfd msg 0 (String.length msg))
           end
         done
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close wfd;
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 256 in
      let floor = ref 0 in
      (* drain reports until we have seen at least 5 syncs *)
      let rec drain () =
        let n = Unix.read rfd buf 0 4096 in
        if n > 0 then begin
          Buffer.add_subbytes acc buf 0 n;
          String.split_on_char '\n' (Buffer.contents acc)
          |> List.iter (fun l ->
                 match int_of_string_opt l with
                 | Some v -> floor := max !floor v
                 | None -> ());
          if !floor < 20 then drain ()
        end
      in
      drain ();
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Unix.close rfd;
      let r1 = load_ok dir in
      let r2 = load_ok dir in
      check Alcotest.string "two loads agree" (Wal.digest r1) (Wal.digest r2);
      let n = List.length r1.Wal.r_entries in
      if n < !floor then
        Alcotest.failf "recovered %d entries < reported durable floor %d" n
          !floor;
      List.iter
        (fun (seq, p) ->
          if p <> payload seq then
            Alcotest.failf "entry %d corrupted after kill -9" seq)
        r1.Wal.r_entries;
      (* reopening repairs any torn tail and the digest stays stable *)
      let t, r3 = Wal.open_ ~dir () in
      Wal.close t;
      check Alcotest.string "open_ preserves the recovered state"
        (Wal.digest r1) (Wal.digest r3)

(* ---------- dcrash plan clauses ---------- *)

let test_dcrash_parse () =
  let p =
    match Fault.Plan.parse "seed=3,dcrash=1:sync.pre@2+250" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (match Fault.Plan.dcrash_for p 1 with
  | Some c ->
      check Alcotest.string "point" "sync.pre" c.Fault.Plan.point;
      check Alcotest.bool "no powercut" false c.Fault.Plan.powercut;
      check Alcotest.int "after" 2 c.Fault.Plan.after_hits;
      check (Alcotest.option Alcotest.int) "restart" (Some 250)
        c.Fault.Plan.drestart_after
  | None -> Alcotest.fail "dcrash clause lost");
  check (Alcotest.option Alcotest.bool) "other nodes unaffected" None
    (Option.map (fun _ -> true) (Fault.Plan.dcrash_for p 0));
  (* powercut marker, no restart *)
  let p =
    match Fault.Plan.parse "dcrash=0:append.mid!@1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse powercut: %s" e
  in
  (match Fault.Plan.dcrash_for p 0 with
  | Some c ->
      check Alcotest.bool "powercut" true c.Fault.Plan.powercut;
      check (Alcotest.option Alcotest.int) "no restart" None
        c.Fault.Plan.drestart_after
  | None -> Alcotest.fail "powercut clause lost")

let test_dcrash_roundtrip () =
  List.iter
    (fun text ->
      match Fault.Plan.parse text with
      | Error e -> Alcotest.failf "parse %S: %s" text e
      | Ok p -> (
          let rendered = Fault.Plan.to_string p in
          match Fault.Plan.parse rendered with
          | Error e -> Alcotest.failf "re-parse %S: %s" rendered e
          | Ok p' ->
              check Alcotest.string
                (Printf.sprintf "round-trip of %S" text)
                rendered (Fault.Plan.to_string p')))
    [
      "dcrash=1:sync.pre@2+250";
      "dcrash=0:append.mid!@1";
      "seed=9,drop=0.05,dcrash=2:rotate.done@1+100";
      "dcrash=0:ck.renamed!@3+50,crash=1@6+300";
    ]

let test_dcrash_validation () =
  (* every advertised crash point parses; an unknown one is rejected *)
  List.iter
    (fun pt ->
      match Fault.Plan.parse (Printf.sprintf "dcrash=0:%s@1+100" pt) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "point %s rejected: %s" pt e)
    Fsio.Crashpoint.points;
  List.iter
    (fun text ->
      match Fault.Plan.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad plan %S" text)
    [
      "dcrash=0:no.such.point@1+100";
      "dcrash=0:sync.pre@0+100";
      "dcrash=-1:sync.pre@1+100";
      "dcrash=0:sync.pre@1+100,dcrash=0:sync.post@1+100";
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "repro_durable"
    [
      ( "crc32",
        [
          tc "IEEE check value" `Quick test_crc_vector;
          tc "chaining" `Quick test_crc_chaining;
        ] );
      ( "blob",
        [
          tc "round-trip + foreign rejection" `Quick test_blob_roundtrip;
          tc "every corrupt byte rejected" `Quick test_blob_corruption;
        ] );
      ( "wal",
        [
          tc "round-trip" `Quick test_wal_roundtrip;
          tc "reopen continues the sequence" `Quick test_wal_reopen_continues;
          tc "fresh wipes" `Quick test_wal_fresh_wipes;
          tc "torn tail at every byte boundary" `Quick
            test_wal_torn_tail_every_boundary;
          tc "corrupt record drops a clean suffix" `Quick
            test_wal_corrupt_record_rejected;
        ] );
      ( "rotation",
        [
          tc "checkpoint compacts" `Quick test_wal_checkpoint_compacts;
          tc "crash at every rotation step" `Quick
            test_wal_rotation_crash_points;
          tc "crash inside append" `Quick test_wal_append_crash_points;
          tc "crash around sync (incl. power cut)" `Quick
            test_wal_sync_crash_points;
        ] );
      ("kill9", [ tc "digest survives SIGKILL" `Quick test_wal_kill9_digest ]);
      ( "plan",
        [
          tc "dcrash parse" `Quick test_dcrash_parse;
          tc "dcrash round-trip" `Quick test_dcrash_roundtrip;
          tc "dcrash validation" `Quick test_dcrash_validation;
        ] );
    ]

(* Tests for Repro_cluster: forked loopback clusters running real TCP
   sockets.  Each test forks n node processes, reassembles the recorded
   history, and checks it — plus the sim-parity satellite: live message
   and declared-byte totals must equal the deterministic simulator's on
   the same (protocol, workload, n, seed).

   These tests fork; they must never create domains before doing so, so
   everything here stays on the sequential checker (Cluster.run already
   does). *)

module Cluster = Repro_cluster.Cluster
module Node = Repro_cluster.Node
module Workload_spec = Repro_cluster.Workload_spec
module Checker = Repro_history.Checker
module History = Repro_history.History
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry

let check = Alcotest.check

let spec_of name = Option.get (Registry.find name)

let run_ok ~n ~protocol ~workload ~seed =
  match Cluster.run ~n ~protocol:(spec_of protocol) ~workload ~seed () with
  | Ok o -> o
  | Error msg -> Alcotest.failf "cluster run failed: %s" msg

let assert_parity (o : Cluster.outcome) ~protocol ~workload =
  match
    Cluster.sim_baseline ~n:o.Cluster.n ~protocol:(spec_of protocol) ~workload
      ~seed:o.Cluster.seed
  with
  | Error msg -> Alcotest.failf "baseline failed: %s" msg
  | Ok b ->
      let m = b.Cluster.metrics in
      check Alcotest.int "message parity" m.Memory.messages_sent
        o.Cluster.messages_sent;
      check Alcotest.int "control-byte parity" m.Memory.control_bytes
        o.Cluster.control_bytes;
      check Alcotest.int "payload-byte parity" m.Memory.payload_bytes
        o.Cluster.payload_bytes

let test_e1_pram_partial () =
  let o = run_ok ~n:3 ~protocol:"pram-partial" ~workload:"e1" ~seed:7 in
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "live history violates PRAM"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  check Alcotest.int "one slice per node" 3 (History.n_procs o.Cluster.history);
  assert_parity o ~protocol:"pram-partial" ~workload:"e1"

let test_e1_causal_partial () =
  let o = run_ok ~n:3 ~protocol:"causal-partial" ~workload:"e1" ~seed:7 in
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "live history violates causality"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  assert_parity o ~protocol:"causal-partial" ~workload:"e1"

let test_bellman_ford_finals () =
  (* the Fig. 8 network: live distances must match the single-machine
     reference, the same acceptance the §6 tests use *)
  let o = run_ok ~n:5 ~protocol:"pram-partial" ~workload:"bellman-ford" ~seed:3 in
  (match o.Cluster.finals with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "distances diverge: %s" msg);
  check Alcotest.bool "history check not claimed" false o.Cluster.history_checked;
  (match o.Cluster.verdict with
  | Checker.Inconsistent -> Alcotest.fail "live BF history refuted outright"
  | Checker.Consistent | Checker.Undecidable _ -> ())

let test_blocking_protocol_rejected () =
  match Cluster.run ~n:3 ~protocol:(spec_of "seq-sequencer") ~workload:"e1" ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "blocking protocol accepted on a live cluster"

let test_unknown_workload_rejected () =
  match Cluster.run ~n:3 ~protocol:(spec_of "pram-partial") ~workload:"nope" ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown workload accepted"

let test_workload_spec_deterministic () =
  (* the parity argument rests on spec construction being pure replay *)
  let fingerprint () =
    match Workload_spec.make ~name:"e1" ~n:4 ~seed:9 with
    | Error msg -> Alcotest.failf "spec: %s" msg
    | Ok spec -> Workload_spec.fingerprint spec ~protocol:"pram-partial" ~seed:9
  in
  check Alcotest.string "stable fingerprint" (fingerprint ()) (fingerprint ())

let () =
  Alcotest.run "repro_cluster"
    [
      ( "live",
        [
          Alcotest.test_case "e1 on pram-partial: consistent + parity" `Quick
            test_e1_pram_partial;
          Alcotest.test_case "e1 on causal-partial: consistent + parity" `Quick
            test_e1_causal_partial;
          Alcotest.test_case "bellman-ford fig8: distances match reference"
            `Quick test_bellman_ford_finals;
        ] );
      ( "guards",
        [
          Alcotest.test_case "blocking protocol rejected" `Quick
            test_blocking_protocol_rejected;
          Alcotest.test_case "unknown workload rejected" `Quick
            test_unknown_workload_rejected;
          Alcotest.test_case "workload specs are pure replay" `Quick
            test_workload_spec_deterministic;
        ] );
    ]

(* Tests for Repro_cluster: forked loopback clusters running real TCP
   sockets.  Each test forks n node processes, reassembles the recorded
   history, and checks it — plus the sim-parity satellite: live message
   and declared-byte totals must equal the deterministic simulator's on
   the same (protocol, workload, n, seed).

   These tests fork; they must never create domains before doing so, so
   everything here stays on the sequential checker (Cluster.run already
   does). *)

module Cluster = Repro_cluster.Cluster
module Node = Repro_cluster.Node
module Workload_spec = Repro_cluster.Workload_spec
module Checker = Repro_history.Checker
module History = Repro_history.History
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Fault = Repro_msgpass.Fault
module Wal = Repro_durable.Wal

let check = Alcotest.check

let spec_of name = Option.get (Registry.find name)

let plan_of text =
  match Fault.Plan.parse text with
  | Ok p -> p
  | Error msg -> Alcotest.failf "bad plan %S: %s" text msg

let run_ok ?chaos ?durable ~n ~protocol ~workload ~seed () =
  match
    Cluster.run ~n ~protocol:(spec_of protocol) ~workload ~seed ?chaos ?durable
      ()
  with
  | Ok o -> o
  | Error msg -> Alcotest.failf "cluster run failed: %s" msg

let assert_parity (o : Cluster.outcome) ~protocol ~workload =
  match
    Cluster.sim_baseline ~n:o.Cluster.n ~protocol:(spec_of protocol) ~workload
      ~seed:o.Cluster.seed ()
  with
  | Error msg -> Alcotest.failf "baseline failed: %s" msg
  | Ok b ->
      let m = b.Cluster.metrics in
      check Alcotest.int "message parity" m.Memory.messages_sent
        o.Cluster.messages_sent;
      check Alcotest.int "control-byte parity" m.Memory.control_bytes
        o.Cluster.control_bytes;
      check Alcotest.int "payload-byte parity" m.Memory.payload_bytes
        o.Cluster.payload_bytes

let test_e1_pram_partial () =
  let o = run_ok ~n:3 ~protocol:"pram-partial" ~workload:"e1" ~seed:7 () in
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "live history violates PRAM"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  check Alcotest.int "one slice per node" 3 (History.n_procs o.Cluster.history);
  assert_parity o ~protocol:"pram-partial" ~workload:"e1"

let test_e1_causal_partial () =
  let o = run_ok ~n:3 ~protocol:"causal-partial" ~workload:"e1" ~seed:7 () in
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "live history violates causality"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  assert_parity o ~protocol:"causal-partial" ~workload:"e1"

let test_bellman_ford_finals () =
  (* the Fig. 8 network: live distances must match the single-machine
     reference, the same acceptance the §6 tests use *)
  let o = run_ok ~n:5 ~protocol:"pram-partial" ~workload:"bellman-ford" ~seed:3 () in
  (match o.Cluster.finals with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "distances diverge: %s" msg);
  check Alcotest.bool "history check not claimed" false o.Cluster.history_checked;
  (match o.Cluster.verdict with
  | Checker.Inconsistent -> Alcotest.fail "live BF history refuted outright"
  | Checker.Consistent | Checker.Undecidable _ -> ())

let test_blocking_protocol_rejected () =
  match Cluster.run ~n:3 ~protocol:(spec_of "seq-sequencer") ~workload:"e1" ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "blocking protocol accepted on a live cluster"

let test_unknown_workload_rejected () =
  match Cluster.run ~n:3 ~protocol:(spec_of "pram-partial") ~workload:"nope" ~seed:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown workload accepted"

(* --- chaos tier: deterministic fault plans over the live cluster --------- *)

let test_chaos_e1_drop () =
  (* 5% drop + 2% duplication on every link: the session layer must hide it
     — same verdict AND same protocol-level totals as the fault-free sim
     baseline, with the repair traffic visible only in the overhead lane *)
  let chaos = plan_of "seed=5,drop=0.05,dup=0.02" in
  let o = run_ok ~chaos ~n:3 ~protocol:"pram-partial" ~workload:"e1" ~seed:7 () in
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "chaotic history violates PRAM"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  assert_parity o ~protocol:"pram-partial" ~workload:"e1";
  check Alcotest.bool "session layer engaged" true o.Cluster.session;
  check Alcotest.bool "overhead accounted apart" true (o.Cluster.overhead_bytes > 0)

let test_chaos_crash_restart () =
  (* node 1 crashes after its 6th transport send and restarts 250 ms later:
     the supervisor must respawn it from its checkpoint, replay its op log,
     and the cluster must still converge to a consistent verdict *)
  let chaos = plan_of "seed=11,drop=0.03,crash=1@6+250" in
  let o = run_ok ~chaos ~n:3 ~protocol:"pram-partial" ~workload:"e1" ~seed:7 () in
  check Alcotest.int "exactly one respawn" 1 o.Cluster.restarts;
  check Alcotest.int "survivor incarnation" 1
    o.Cluster.node_results.(1).Node.incarnation;
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "post-recovery history violates PRAM"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  (* every node's full program must appear exactly once in the history *)
  Array.iter
    (fun (r : Node.result) ->
      check Alcotest.int
        (Printf.sprintf "node %d op count" r.Node.node)
        8
        (List.length r.Node.ops))
    o.Cluster.node_results

let test_chaos_bellman_ford () =
  (* the §6 case study under loss: distances must still match the
     single-machine reference once the links are made reliable again *)
  let chaos = plan_of "seed=2,drop=0.05" in
  let o =
    run_ok ~chaos ~n:5 ~protocol:"pram-partial" ~workload:"bellman-ford"
      ~seed:3 ()
  in
  match o.Cluster.finals with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "distances diverge under chaos: %s" msg

let test_chaos_sim_reproducible () =
  (* the same plan on the simulator backend is bit-reproducible: identical
     history and identical stats, run after run *)
  let run () =
    let chaos = plan_of "seed=5,drop=0.1,dup=0.05,reorder=0.2" in
    match
      Cluster.sim_baseline ~chaos ~n:4 ~protocol:(spec_of "pram-partial")
        ~workload:"e1" ~seed:9 ()
    with
    | Error msg -> Alcotest.failf "sim chaos run failed: %s" msg
    | Ok b ->
        ( History.to_string b.Cluster.history,
          b.Cluster.metrics.Memory.messages_sent,
          b.Cluster.metrics.Memory.overhead_bytes )
  in
  let h1, sent1, over1 = run () in
  let h2, sent2, over2 = run () in
  check Alcotest.string "history bit-reproducible" h1 h2;
  check Alcotest.int "sent reproducible" sent1 sent2;
  check Alcotest.int "overhead reproducible" over1 over2;
  check Alcotest.bool "chaos actually retransmitted" true (over1 > 0)

let test_chaos_sim_protocol_parity () =
  (* under chaos + session, protocol-level stats still equal the fault-free
     baseline: the session layer counts first transmissions only *)
  let chaos = plan_of "seed=5,drop=0.1" in
  let clean =
    match
      Cluster.sim_baseline ~n:4 ~protocol:(spec_of "pram-partial")
        ~workload:"e1" ~seed:9 ()
    with
    | Ok b -> b.Cluster.metrics
    | Error msg -> Alcotest.failf "clean baseline failed: %s" msg
  in
  let noisy =
    match
      Cluster.sim_baseline ~chaos ~n:4 ~protocol:(spec_of "pram-partial")
        ~workload:"e1" ~seed:9 ()
    with
    | Ok b -> b.Cluster.metrics
    | Error msg -> Alcotest.failf "chaos baseline failed: %s" msg
  in
  check Alcotest.int "messages_sent unchanged by chaos" clean.Memory.messages_sent
    noisy.Memory.messages_sent;
  check Alcotest.int "control bytes unchanged by chaos" clean.Memory.control_bytes
    noisy.Memory.control_bytes;
  check Alcotest.int "payload bytes unchanged by chaos" clean.Memory.payload_bytes
    noisy.Memory.payload_bytes;
  check Alcotest.bool "overhead lane nonzero" true
    (noisy.Memory.overhead_bytes > clean.Memory.overhead_bytes)

let test_durable_fault_free () =
  (* the durability tier must be invisible to the protocol lane: same
     verdict, same sim parity, every op on the log, synchronous policy
     fsyncing once per append *)
  let o =
    run_ok ~durable:(Wal.Every 1) ~n:3 ~protocol:"pram-partial" ~workload:"e1"
      ~seed:7 ()
  in
  check Alcotest.bool "durable tier engaged" true o.Cluster.durable;
  check Alcotest.bool "parity vacuously holds" true o.Cluster.wal_parity;
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | _ -> Alcotest.fail "durable run must stay consistent");
  assert_parity o ~protocol:"pram-partial" ~workload:"e1";
  Array.iter
    (fun (r : Node.result) ->
      match r.Node.wal_stats with
      | None -> Alcotest.failf "node %d ran without a WAL" r.Node.node
      | Some s ->
          check Alcotest.int
            (Printf.sprintf "node %d: every op logged" r.Node.node)
            (List.length r.Node.ops) s.Wal.appends;
          check Alcotest.int
            (Printf.sprintf "node %d: Every 1 = one fsync per append"
               r.Node.node)
            s.Wal.appends s.Wal.syncs;
          check Alcotest.bool
            (Printf.sprintf "node %d: checkpoints compacted the log"
               r.Node.node)
            true (s.Wal.rotations >= 1))
    o.Cluster.node_results

let test_durable_dcrash_recovery () =
  (* node 1 dies at the second log fsync and restarts 250 ms later: the
     supervisor freezes the surviving WAL, the respawn replays it, and the
     recovered digest must match the frozen bytes bit-for-bit *)
  let chaos = plan_of "seed=11,drop=0.03,dcrash=1:sync.pre@2+250" in
  let o =
    run_ok ~chaos ~durable:(Wal.Every 4) ~n:3 ~protocol:"pram-partial"
      ~workload:"e1" ~seed:7 ()
  in
  check Alcotest.int "exactly one respawn" 1 o.Cluster.restarts;
  check Alcotest.int "survivor incarnation" 1
    o.Cluster.node_results.(1).Node.incarnation;
  check Alcotest.bool "recovery re-seeded from the log" true
    (o.Cluster.node_results.(1).Node.recovered_ops > 0);
  check Alcotest.bool "recovered digest matches the frozen WAL" true
    o.Cluster.wal_parity;
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | Checker.Inconsistent -> Alcotest.fail "post-recovery history violates PRAM"
  | Checker.Undecidable _ -> Alcotest.fail "e1 history should be differentiated");
  Array.iter
    (fun (r : Node.result) ->
      check Alcotest.int
        (Printf.sprintf "node %d op count" r.Node.node)
        8
        (List.length r.Node.ops))
    o.Cluster.node_results

let test_durable_powercut_recovery () =
  (* power-cut semantics at a torn write: half a frame reaches the file,
     then the unsynced suffix vanishes.  Recovery must rebuild from the
     synced floor and the cluster must still converge *)
  let chaos = plan_of "seed=11,drop=0.03,dcrash=1:append.mid!@3+250" in
  let o =
    run_ok ~chaos ~durable:(Wal.Every 2) ~n:3 ~protocol:"pram-partial"
      ~workload:"e1" ~seed:7 ()
  in
  check Alcotest.int "exactly one respawn" 1 o.Cluster.restarts;
  check Alcotest.bool "recovered digest matches the frozen WAL" true
    o.Cluster.wal_parity;
  (match o.Cluster.verdict with
  | Checker.Consistent -> ()
  | _ -> Alcotest.fail "post-powercut history must stay consistent");
  Array.iter
    (fun (r : Node.result) ->
      check Alcotest.int
        (Printf.sprintf "node %d op count" r.Node.node)
        8
        (List.length r.Node.ops))
    o.Cluster.node_results

let test_dcrash_needs_durable () =
  match
    Cluster.run ~n:3 ~protocol:(spec_of "pram-partial") ~workload:"e1" ~seed:1
      ~chaos:(plan_of "seed=1,dcrash=1:sync.pre@1+100") ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dcrash plan accepted without the durability tier"

let test_invalid_plan_rejected () =
  match
    Cluster.run ~n:3 ~protocol:(spec_of "pram-partial") ~workload:"e1" ~seed:1
      ~chaos:(plan_of "seed=1,crash=9@5+100") ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range crash node accepted"

(* --- reconfiguration -------------------------------------------------------- *)

module Reconfig = Repro_cluster.Reconfig
module Member = Repro_cluster.Member

let reconfig_ok ?writes ?demote_after_ms ?deadline_ms ~chaos () =
  match
    Reconfig.run ~n:5 ~k:2 ~vnodes:64 ~n_vars:24 ~seed:11 ?writes
      ?demote_after_ms ?deadline_ms ~chaos:(plan_of chaos) ()
  with
  | Ok o -> o
  | Error msg -> Alcotest.failf "reconfig run failed: %s" msg

(* the acceptance scenario: one join, one leave, and a crash injected
   mid-state-transfer (crash=0@5 counts node 0's migration-record
   sends), all from one seeded plan *)
let test_reconfig_join_leave_crash () =
  let o =
    reconfig_ok ~writes:30 ~chaos:"seed=7,join=4@250,leave=1@600,crash=0@5+300"
      ()
  in
  check Alcotest.int "two epochs committed" 2 o.Reconfig.committed_epoch;
  check Alcotest.(list int) "final members" [ 0; 2; 3; 4 ] o.Reconfig.members;
  check Alcotest.bool "crash fired mid-migration" true (o.Reconfig.restarts >= 1);
  check Alcotest.bool "advertised criterion holds" true
    (o.Reconfig.verdict = Checker.Consistent);
  check Alcotest.bool "minimal movement gate" true o.Reconfig.moved_ok;
  check Alcotest.bool "state actually transferred" true (o.Reconfig.transfers > 0);
  check Alcotest.int "no variable degraded to Init" 0 o.Reconfig.init_fallbacks;
  (* the joiner wrote from the start (writers are fixed); every node's
     recorded epoch reached the final commit *)
  Array.iter
    (fun r ->
      check Alcotest.int
        (Printf.sprintf "node %d at final epoch" r.Member.node)
        2 r.Member.committed_epoch)
    o.Reconfig.node_results

(* a crashed member with no restart scheduled is demoted by the failure
   detector and its operations salvaged from the WAL it left behind, so
   the history stays closed under reads-from *)
let test_reconfig_demotion_salvage () =
  (* [crash=0@3] counts migration-record sends, so the join is what arms
     it: node 0 dies as a donor, mid-transfer, and never comes back *)
  let o =
    reconfig_ok ~writes:30 ~demote_after_ms:800
      ~chaos:"seed=7,join=4@250,crash=0@3" ()
  in
  check Alcotest.bool "node 0 demoted" true
    (List.exists
       (fun e -> e.Reconfig.ev_kind = "demote" && e.Reconfig.ev_node = 0)
       o.Reconfig.events);
  check Alcotest.bool "members exclude the dead node" true
    (not (List.mem 0 o.Reconfig.members));
  check Alcotest.(list int) "ops salvaged from its WAL" [ 0 ] o.Reconfig.salvaged;
  check Alcotest.bool "history still consistent" true
    (o.Reconfig.verdict = Checker.Consistent)

let test_reconfig_wedged_deadline () =
  match
    Reconfig.run ~n:5 ~k:2 ~vnodes:64 ~n_vars:24 ~seed:11 ~writes:500
      ~deadline_ms:400 ()
  with
  | Ok _ -> Alcotest.fail "a 400 ms deadline cannot finish 500 paced writes"
  | Error msg ->
      check Alcotest.bool
        (Printf.sprintf "error %S carries the wedged prefix" msg)
        true
        (String.length msg >= 7 && String.sub msg 0 7 = "wedged:")

let test_workload_spec_deterministic () =
  (* the parity argument rests on spec construction being pure replay *)
  let fingerprint () =
    match Workload_spec.make ~name:"e1" ~n:4 ~seed:9 with
    | Error msg -> Alcotest.failf "spec: %s" msg
    | Ok spec -> Workload_spec.fingerprint spec ~protocol:"pram-partial" ~seed:9
  in
  check Alcotest.string "stable fingerprint" (fingerprint ()) (fingerprint ())

let () =
  Alcotest.run "repro_cluster"
    [
      ( "live",
        [
          Alcotest.test_case "e1 on pram-partial: consistent + parity" `Quick
            test_e1_pram_partial;
          Alcotest.test_case "e1 on causal-partial: consistent + parity" `Quick
            test_e1_causal_partial;
          Alcotest.test_case "bellman-ford fig8: distances match reference"
            `Quick test_bellman_ford_finals;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "e1 under 5% drop: consistent + parity" `Quick
            test_chaos_e1_drop;
          Alcotest.test_case "crash + restart: recovery from checkpoint" `Quick
            test_chaos_crash_restart;
          Alcotest.test_case "bellman-ford under loss: distances hold" `Quick
            test_chaos_bellman_ford;
          Alcotest.test_case "durable tier, fault-free: parity + fsync counts"
            `Quick test_durable_fault_free;
          Alcotest.test_case "dcrash at sync.pre: digest-verified recovery"
            `Quick test_durable_dcrash_recovery;
          Alcotest.test_case "power cut mid-append: recovery from synced floor"
            `Quick test_durable_powercut_recovery;
          Alcotest.test_case "dcrash plan without WAL rejected" `Quick
            test_dcrash_needs_durable;
          Alcotest.test_case "same plan on sim: bit-reproducible" `Quick
            test_chaos_sim_reproducible;
          Alcotest.test_case "chaos keeps protocol-level stats at baseline"
            `Quick test_chaos_sim_protocol_parity;
          Alcotest.test_case "invalid plan rejected" `Quick
            test_invalid_plan_rejected;
        ] );
      ( "reconfig",
        [
          Alcotest.test_case "join + leave + crash mid-migration" `Quick
            test_reconfig_join_leave_crash;
          Alcotest.test_case "demotion + WAL salvage" `Quick
            test_reconfig_demotion_salvage;
          Alcotest.test_case "wedged run put down by deadline" `Quick
            test_reconfig_wedged_deadline;
        ] );
      ( "guards",
        [
          Alcotest.test_case "blocking protocol rejected" `Quick
            test_blocking_protocol_rejected;
          Alcotest.test_case "unknown workload rejected" `Quick
            test_unknown_workload_rejected;
          Alcotest.test_case "workload specs are pure replay" `Quick
            test_workload_spec_deterministic;
        ] );
    ]

(* Binary codec tier: qcheck round-trips for every protocol codec (and
   the session-wrapped lift), strict rejection of truncated / corrupt /
   padded input, the Marshal cross-check oracle, the decoder buffer
   shrink-after-idle policy, and the allocation bounds the zero-copy hot
   path promises (emit into a pooled frame allocates nothing). *)

module Codec = Repro_transport.Codec
module Wire = Repro_transport.Wire
module Session = Repro_transport.Session
module Op = Repro_history.Op
module Pram_partial = Repro_core.Pram_partial
module Slow_partial = Repro_core.Slow_partial
module Causal_full = Repro_core.Causal_full
module Causal_partial = Repro_core.Causal_partial
module Causal_gossip = Repro_core.Causal_gossip
module Causal_adhoc = Repro_core.Causal_adhoc
module Causal_delta = Repro_core.Causal_delta
module Pram_reliable = Repro_core.Pram_reliable

let qcheck = QCheck_alcotest.to_alcotest

(* --- generators --------------------------------------------------------------- *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Op.Init;
        map (fun v -> Op.Val v) (oneof [ small_signed_int; int ]);
      ])

(* var / seq / writer ride i32 slots; the protocols only ever produce
   small non-negative ids, but the codec must hold anywhere in range *)
let i32_gen = QCheck.Gen.(int_range (-0x80000000) 0x7FFFFFFF)
let id_gen = QCheck.Gen.(oneof [ small_nat; i32_gen ])
let ts_gen = QCheck.Gen.(array_size (int_range 0 12) id_gen)

let pram_gen =
  QCheck.Gen.(
    map3
      (fun var value seq -> Pram_partial.Update { var; value; seq })
      id_gen value_gen id_gen)

let slow_gen =
  QCheck.Gen.(
    map3
      (fun var value lane_seq -> Slow_partial.Update { var; value; lane_seq })
      id_gen value_gen id_gen)

let causal_full_gen =
  QCheck.Gen.(
    map
      (fun (var, value, writer, ts) ->
        Causal_full.Update { var; value; writer; ts })
      (quad id_gen value_gen id_gen ts_gen))

let causal_partial_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (var, value, writer, ts) ->
            Causal_partial.Update { var; value; writer; ts })
          (quad id_gen value_gen id_gen ts_gen);
        map3
          (fun var writer ts -> Causal_partial.Meta { var; writer; ts })
          id_gen id_gen ts_gen;
      ])

let causal_gossip_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun ((var, value, writer), (seq, ts)) ->
            Causal_gossip.Update { var; value; writer; seq; ts })
          (pair (triple id_gen value_gen id_gen) (pair id_gen ts_gen));
        map
          (fun (var, writer, seq, ts) ->
            Causal_gossip.Gossip { var; writer; seq; ts })
          (quad id_gen id_gen id_gen ts_gen);
      ])

let causal_adhoc_gen =
  QCheck.Gen.(
    map
      (fun (var, value, writer, deps) ->
        Causal_adhoc.Update { var; value; writer; deps })
      (quad id_gen value_gen id_gen
         (list_size (int_range 0 10) (triple id_gen id_gen id_gen))))

let causal_delta_gen =
  QCheck.Gen.(
    map
      (fun (var, value, writer, deltas) ->
        Causal_delta.Update { var; value; writer; deltas })
      (quad id_gen value_gen id_gen
         (list_size (int_range 0 10) (pair id_gen id_gen))))

let pram_reliable_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun var value seq -> Pram_reliable.Data { var; value; seq })
          id_gen value_gen id_gen;
        map (fun next -> Pram_reliable.Ack { next }) id_gen;
      ])

(* --- round-trip + strictness, over every protocol codec ----------------------- *)

(* One qcheck property per codec:
   - the Marshal oracle accepts (encode → decode → images equal);
   - [encode] agrees with [size] (checked inside [encode]);
   - every strict prefix is rejected (all length fields encode in full
     before their elements, so truncation can never parse clean);
   - one trailing pad byte is rejected. *)
let roundtrip_strict (type m) name gen (c : m Codec.t) =
  qcheck
    (QCheck.Test.make ~name:(name ^ "_codec_roundtrip_strict") ~count:300
       (QCheck.make gen) (fun msg ->
         if not (Codec.roundtrip_ok c msg) then
           QCheck.Test.fail_report (name ^ ": Marshal oracle mismatch");
         let b = Codec.encode c msg in
         let n = Bytes.length b in
         if n <> c.Codec.size msg then
           QCheck.Test.fail_report (name ^ ": size disagrees with encode");
         for k = 0 to n - 1 do
           match Codec.decode c b ~pos:0 ~len:k with
           | _ ->
               QCheck.Test.fail_reportf "%s: %d-byte prefix of %d accepted"
                 name k n
           | exception Codec.Bad _ -> ()
         done;
         let padded = Bytes.make (n + 1) '\xff' in
         Bytes.blit b 0 padded 0 n;
         (match Codec.decode c padded ~pos:0 ~len:(n + 1) with
         | _ -> QCheck.Test.fail_report (name ^ ": trailing byte accepted")
         | exception Codec.Bad _ -> ());
         true))

let session_wrapped_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (ack, segs) ->
            let seq = ref 0 in
            Session.Segs
              {
                ack;
                segs =
                  Array.map
                    (fun (control, payload, msg) ->
                      incr seq;
                      (!seq, control, payload, msg))
                    segs;
              })
          (pair (int_range (-1) 1000)
             (array_size (int_range 1 6)
                (triple small_nat small_nat pram_gen)));
        map (fun next -> Session.Ack { next }) small_nat;
      ])

(* --- targeted corruption ------------------------------------------------------- *)

let check_bad name thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": corrupt input accepted")
  | exception Codec.Bad _ -> ()

let test_corrupt_tags () =
  let c = Pram_partial.codec in
  let msg = Pram_partial.Update { var = 1; value = Op.Val 5; seq = 2 } in
  let b = Codec.encode c msg in
  (* value tag rides after the 4-byte var: flip it to an unknown tag *)
  Bytes.set_uint8 b 4 7;
  check_bad "pram value tag" (fun () ->
      Codec.decode c b ~pos:0 ~len:(Bytes.length b));
  let rc = Pram_reliable.codec in
  let rb = Codec.encode rc (Pram_reliable.Ack { next = 3 }) in
  Bytes.set_uint8 rb 0 9;
  check_bad "pram-reliable variant tag" (fun () ->
      Codec.decode rc rb ~pos:0 ~len:(Bytes.length rb));
  let pc = Causal_partial.codec in
  let pb =
    Codec.encode pc (Causal_partial.Meta { var = 0; writer = 1; ts = [| 4 |] })
  in
  Bytes.set_uint8 pb 0 255;
  check_bad "causal-partial variant tag" (fun () ->
      Codec.decode pc pb ~pos:0 ~len:(Bytes.length pb))

let test_encode_range_checks () =
  let c = Pram_partial.codec in
  let too_big = Pram_partial.Update { var = 0x80000000; value = Op.Init; seq = 0 } in
  match Codec.encode c too_big with
  | _ -> Alcotest.fail "var beyond i32 must be an encoder error"
  | exception Invalid_argument _ -> ()

(* --- decoder shrink-after-idle ------------------------------------------------- *)

let feed_frame d (fr : Wire.frame) =
  let b = Wire.encode fr in
  Wire.feed d b (Bytes.length b);
  match Wire.next d with
  | Ok (Some _) -> ()
  | Ok None -> Alcotest.fail "frame did not complete"
  | Error e -> Alcotest.fail e

let frame body =
  {
    Wire.kind = Wire.Data;
    src = 0;
    dst = 1;
    epoch = 0;
    control_bytes = 8;
    payload_bytes = 8;
    body;
  }

let test_decoder_shrinks_after_idle () =
  let d = Wire.decoder () in
  Alcotest.(check int) "starts at base" Wire.base_capacity (Wire.capacity d);
  (* a frame larger than the base capacity grows the buffer *)
  feed_frame d (frame (String.make (4 * Wire.base_capacity) 'x'));
  Alcotest.(check bool) "grown" true (Wire.capacity d > Wire.base_capacity);
  (* one small feed short of the policy: still grown *)
  for _ = 1 to Wire.shrink_after - 1 do
    feed_frame d (frame "tiny")
  done;
  Alcotest.(check bool) "not yet shrunk" true
    (Wire.capacity d > Wire.base_capacity);
  feed_frame d (frame "tiny");
  Alcotest.(check int) "compacted back to base" Wire.base_capacity
    (Wire.capacity d);
  (* a big frame mid-streak resets the countdown *)
  feed_frame d (frame (String.make (2 * Wire.base_capacity) 'y'));
  for _ = 1 to Wire.shrink_after - 1 do
    feed_frame d (frame "tiny")
  done;
  Alcotest.(check bool) "streak restarted by big frame" true
    (Wire.capacity d > Wire.base_capacity)

(* --- allocation regression ----------------------------------------------------- *)

(* Encoding into a caller buffer must not allocate: the whole point of
   the pooled-frame hot path is that steady state runs the minor heap
   flat.  Budgets are per op, with slack for the odd polling word. *)
let words_per_op f =
  let iters = 10_000 in
  for _ = 1 to 100 do f () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do f () done;
  (Gc.minor_words () -. w0) /. float_of_int iters

let test_emit_allocates_nothing () =
  let buf = Bytes.create 1024 in
  let pram = Pram_partial.Update { var = 7; value = Op.Val 99; seq = 3 } in
  let w =
    words_per_op (fun () ->
        ignore (Pram_partial.codec.Codec.emit buf 0 pram : int))
  in
  if w > 0.5 then Alcotest.failf "pram emit allocates %.2f words/op" w;
  let causal =
    Causal_full.Update
      { var = 1; value = Op.Val 5; writer = 0; ts = [| 3; 1; 4; 1; 5 |] }
  in
  let w =
    words_per_op (fun () ->
        ignore (Causal_full.codec.Codec.emit buf 0 causal : int))
  in
  if w > 0.5 then Alcotest.failf "causal emit allocates %.2f words/op" w

let test_pooled_cycle_bounded () =
  let pool = Wire.Pool.create () in
  let msg = Pram_partial.Update { var = 7; value = Op.Val 99; seq = 3 } in
  let len = Pram_partial.codec.Codec.size msg in
  let w =
    words_per_op (fun () ->
        let b = Wire.Pool.acquire pool (Wire.body_offset + len) in
        ignore (Pram_partial.codec.Codec.emit b Wire.body_offset msg : int);
        Wire.set_header b ~kind:Wire.Data ~src:0 ~dst:1 ~control_bytes:8
          ~payload_bytes:8 ~body_len:len;
        Wire.Pool.release pool b)
  in
  (* freelist bookkeeping is a cons; a fresh 256 B frame would be 30+
     words per op and means the pool stopped recycling *)
  if w > 16.0 then Alcotest.failf "pooled cycle allocates %.2f words/op" w

let () =
  Alcotest.run "codec"
    [
      ( "roundtrip",
        [
          roundtrip_strict "pram-partial" pram_gen Pram_partial.codec;
          roundtrip_strict "slow-partial" slow_gen Slow_partial.codec;
          roundtrip_strict "causal-full" causal_full_gen Causal_full.codec;
          roundtrip_strict "causal-partial" causal_partial_gen
            Causal_partial.codec;
          roundtrip_strict "causal-gossip" causal_gossip_gen Causal_gossip.codec;
          roundtrip_strict "causal-adhoc" causal_adhoc_gen Causal_adhoc.codec;
          roundtrip_strict "causal-delta" causal_delta_gen Causal_delta.codec;
          roundtrip_strict "pram-reliable" pram_reliable_gen Pram_reliable.codec;
          roundtrip_strict "session-wrapped" session_wrapped_gen
            (Session.wrapped_codec Pram_partial.codec);
        ] );
      ( "strict",
        [
          Alcotest.test_case "unknown tags rejected" `Quick test_corrupt_tags;
          Alcotest.test_case "encoder range checks" `Quick
            test_encode_range_checks;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "buffer shrinks after idle streak" `Quick
            test_decoder_shrinks_after_idle;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "emit is allocation-free" `Quick
            test_emit_allocates_nothing;
          Alcotest.test_case "pooled frame cycle is bounded" `Quick
            test_pooled_cycle_bounded;
        ] );
    ]

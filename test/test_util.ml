(* Tests for Repro_util: rng, pqueue, bitset, union_find, stats, table,
   graph, flow. *)

module Rng = Repro_util.Rng
module Pqueue = Repro_util.Pqueue
module Intheap = Repro_util.Intheap
module Ringbuf = Repro_util.Ringbuf
module Bitset = Repro_util.Bitset
module Union_find = Repro_util.Union_find
module Stats = Repro_util.Stats
module Table = Repro_util.Table
module Graph = Repro_util.Graph
module Flow = Repro_util.Flow

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- rng ----------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let different = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)) then different := true
  done;
  check Alcotest.bool "streams differ" true !different

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let va = Rng.next_int64 a in
  let vb = Rng.next_int64 b in
  check Alcotest.int64 "copy continues the same stream" va vb

let test_rng_split_changes_parent () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let _child = Rng.split a in
  (* a advanced past b *)
  check Alcotest.bool "split advances parent" false
    (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b))

let test_rng_int_bounds =
  qcheck
    (QCheck.Test.make ~name:"rng_int_in_bounds" ~count:500
       QCheck.(pair small_int (int_range 1 1000))
       (fun (seed, bound) ->
         let g = Rng.create seed in
         let v = Rng.int g bound in
         v >= 0 && v < bound))

let test_rng_int_in_bounds =
  qcheck
    (QCheck.Test.make ~name:"rng_int_in_inclusive" ~count:500
       QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
       (fun (seed, lo, span) ->
         let g = Rng.create seed in
         let v = Rng.int_in g lo (lo + span) in
         v >= lo && v <= lo + span))

let test_rng_int_rejects () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 0) 0))

let test_rng_uniformity () =
  (* crude chi-square-ish sanity: each of 8 buckets within 3x of expected *)
  let g = Rng.create 123 in
  let buckets = Array.make 8 0 in
  let draws = 8000 in
  for _ = 1 to draws do
    let v = Rng.int g 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      if count < 700 || count > 1300 then
        Alcotest.failf "bucket %d has suspicious count %d" i count)
    buckets

let test_rng_shuffle_permutation () =
  let g = Rng.create 99 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement =
  qcheck
    (QCheck.Test.make ~name:"sample_without_replacement" ~count:200
       QCheck.(triple small_int (int_range 0 20) (int_range 0 30))
       (fun (seed, k, extra) ->
         let n = k + extra in
         let g = Rng.create seed in
         let sample = Rng.sample_without_replacement g k n in
         List.length sample = k
         && List.sort_uniq compare sample = sample
         && List.for_all (fun v -> v >= 0 && v < n) sample))

let test_rng_coin_extremes () =
  let g = Rng.create 5 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Rng.coin g 0.0)
  done;
  for _ = 1 to 50 do
    check Alcotest.bool "p=1 always" true (Rng.coin g 1.0)
  done

(* --- pqueue -------------------------------------------------------------- *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:compare () in
  check Alcotest.bool "empty" true (Pqueue.is_empty q);
  Pqueue.push q 3 "c";
  Pqueue.push q 1 "a";
  Pqueue.push q 2 "b";
  check Alcotest.int "length" 3 (Pqueue.length q);
  check Alcotest.(option (pair int string)) "peek" (Some (1, "a")) (Pqueue.peek q);
  check Alcotest.(option (pair int string)) "pop1" (Some (1, "a")) (Pqueue.pop q);
  check Alcotest.(option (pair int string)) "pop2" (Some (2, "b")) (Pqueue.pop q);
  check Alcotest.(option (pair int string)) "pop3" (Some (3, "c")) (Pqueue.pop q);
  check Alcotest.(option (pair int string)) "pop empty" None (Pqueue.pop q)

let test_pqueue_pop_exn_empty () =
  let q : (int, unit) Pqueue.t = Pqueue.create ~cmp:compare () in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty queue")
    (fun () -> ignore (Pqueue.pop_exn q))

let test_pqueue_sorts =
  qcheck
    (QCheck.Test.make ~name:"pqueue_drains_sorted" ~count:300
       QCheck.(list int)
       (fun keys ->
         let q = Pqueue.create ~cmp:compare () in
         List.iter (fun k -> Pqueue.push q k k) keys;
         let rec drain acc =
           match Pqueue.pop q with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
         in
         drain [] = List.sort compare keys))

let test_pqueue_to_sorted_list_preserves () =
  let q = Pqueue.create ~cmp:compare () in
  List.iter (fun k -> Pqueue.push q k k) [ 5; 1; 4; 2 ];
  let listed = Pqueue.to_sorted_list q in
  check Alcotest.int "queue untouched" 4 (Pqueue.length q);
  check
    Alcotest.(list (pair int int))
    "sorted"
    [ (1, 1); (2, 2); (4, 4); (5, 5) ]
    listed

let test_pqueue_stability_via_composite_keys () =
  (* the scheduler relies on (time, seq) keys for deterministic FIFO ties *)
  let q = Pqueue.create ~cmp:compare () in
  Pqueue.push q (5, 0) "first";
  Pqueue.push q (5, 1) "second";
  Pqueue.push q (5, 2) "third";
  check Alcotest.(option (pair (pair int int) string)) "tie order" (Some ((5, 0), "first"))
    (Pqueue.pop q);
  check Alcotest.(option (pair (pair int int) string)) "tie order" (Some ((5, 1), "second"))
    (Pqueue.pop q)

let test_pqueue_clear () =
  let q = Pqueue.create ~cmp:compare () in
  Pqueue.push q 1 ();
  Pqueue.clear q;
  check Alcotest.bool "cleared" true (Pqueue.is_empty q)

let test_pqueue_growth_and_clear () =
  let q = Pqueue.create ~cmp:compare () in
  for i = 49 downto 0 do
    Pqueue.push q i i
  done;
  check Alcotest.int "length after growth" 50 (Pqueue.length q);
  check
    Alcotest.(list (pair int int))
    "sorted across growth"
    (List.init 50 (fun i -> (i, i)))
    (Pqueue.to_sorted_list q);
  ignore (Pqueue.pop q);
  ignore (Pqueue.pop q);
  (* only live bindings are listed, not stale slots left by pops *)
  check Alcotest.int "after pops" 48 (List.length (Pqueue.to_sorted_list q));
  Pqueue.clear q;
  check Alcotest.(list (pair int int)) "cleared lists empty" []
    (Pqueue.to_sorted_list q);
  Pqueue.push q 9 9;
  check Alcotest.(option (pair int int)) "usable after clear" (Some (9, 9))
    (Pqueue.pop q)

(* --- intheap ------------------------------------------------------------- *)

let test_intheap_basic () =
  let h = Intheap.create () in
  check Alcotest.bool "empty" true (Intheap.is_empty h);
  check Alcotest.(option (pair int string)) "peek empty" None (Intheap.peek h);
  check Alcotest.(option (pair int string)) "pop empty" None (Intheap.pop h);
  Intheap.push h 3 "c";
  Intheap.push h 1 "a";
  Intheap.push h 2 "b";
  check Alcotest.int "length" 3 (Intheap.length h);
  check Alcotest.int "min_key" 1 (Intheap.min_key h);
  check Alcotest.(option (pair int string)) "peek" (Some (1, "a")) (Intheap.peek h);
  check Alcotest.string "pop1" "a" (Intheap.pop_min h);
  check Alcotest.(option (pair int string)) "pop2" (Some (2, "b")) (Intheap.pop h);
  check Alcotest.string "pop3" "c" (Intheap.pop_min h);
  check Alcotest.bool "drained" true (Intheap.is_empty h)

let test_intheap_growth_and_clear () =
  let h = Intheap.create () in
  for i = 99 downto 0 do
    Intheap.push h i i
  done;
  check Alcotest.int "length after growth" 100 (Intheap.length h);
  check
    Alcotest.(list (pair int int))
    "to_sorted_list"
    (List.init 100 (fun i -> (i, i)))
    (Intheap.to_sorted_list h);
  check Alcotest.int "to_sorted_list preserves" 100 (Intheap.length h);
  for i = 0 to 99 do
    check Alcotest.int "min_key in order" i (Intheap.min_key h);
    check Alcotest.int "pop_min in order" i (Intheap.pop_min h)
  done;
  Alcotest.check_raises "min_key empty"
    (Invalid_argument "Intheap.min_key: empty heap") (fun () ->
      ignore (Intheap.min_key h));
  Alcotest.check_raises "pop_min empty"
    (Invalid_argument "Intheap.pop_min: empty heap") (fun () ->
      ignore (Intheap.pop_min h));
  Intheap.push h 7 7;
  Intheap.push h 4 4;
  Intheap.clear h;
  check Alcotest.bool "cleared" true (Intheap.is_empty h);
  Intheap.push h 3 30;
  Intheap.push h 1 10;
  check Alcotest.int "usable after clear" 10 (Intheap.pop_min h)

(* The scheduler packs (time, seq) into (time lsl 31) lor seq; popping the
   packed keys from an Intheap must reproduce the order the generic Pqueue
   gives the unpacked tuples, including at the top of the packable time
   range where the Net engine switches to widened keys. *)
let test_intheap_matches_pqueue =
  qcheck
    (QCheck.Test.make ~name:"intheap_matches_tuple_pqueue" ~count:300
       QCheck.(list (pair bool (int_bound ((1 lsl 31) - 1))))
       (fun draws ->
         let times =
           List.map
             (fun (boundary, raw) ->
               if boundary then ((1 lsl 31) - 1) - (raw land 0x3) else raw)
             draws
         in
         let h = Intheap.create () in
         let q = Pqueue.create ~cmp:compare () in
         List.iteri
           (fun seq time ->
             Intheap.push h ((time lsl 31) lor seq) seq;
             Pqueue.push q (time, seq) seq)
           times;
         let rec drain_h acc =
           match Intheap.pop h with
           | None -> List.rev acc
           | Some (_, v) -> drain_h (v :: acc)
         in
         let rec drain_q acc =
           match Pqueue.pop q with
           | None -> List.rev acc
           | Some (_, v) -> drain_q (v :: acc)
         in
         drain_h [] = drain_q []))

(* --- ringbuf ------------------------------------------------------------- *)

let test_ringbuf_fifo_growth () =
  let r = Ringbuf.create () in
  check Alcotest.bool "empty" true (Ringbuf.is_empty r);
  check Alcotest.(option int) "peek empty" None (Ringbuf.peek_front r);
  check Alcotest.(option int) "pop empty" None (Ringbuf.pop_front r);
  (* interleave pushes and pops so the window wraps across a grow *)
  for i = 0 to 4 do
    Ringbuf.push_back r i
  done;
  for i = 0 to 2 do
    check Alcotest.(option int) "fifo" (Some i) (Ringbuf.pop_front r)
  done;
  for i = 5 to 24 do
    Ringbuf.push_back r i
  done;
  check Alcotest.int "length" 22 (Ringbuf.length r);
  check Alcotest.(option int) "peek" (Some 3) (Ringbuf.peek_front r);
  check
    Alcotest.(list int)
    "order across wrap and growth"
    (List.init 22 (fun i -> i + 3))
    (Ringbuf.to_list r);
  Ringbuf.clear r;
  check Alcotest.bool "cleared" true (Ringbuf.is_empty r);
  Ringbuf.push_back r 99;
  check Alcotest.(option int) "usable after clear" (Some 99) (Ringbuf.pop_front r)

(* --- bitset -------------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.create 70 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 69;
  Bitset.add s 8;
  check Alcotest.bool "mem 0" true (Bitset.mem s 0);
  check Alcotest.bool "mem 69" true (Bitset.mem s 69);
  check Alcotest.bool "mem 1" false (Bitset.mem s 1);
  check Alcotest.int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 8;
  check Alcotest.bool "removed" false (Bitset.mem s 8);
  check Alcotest.(list int) "elements" [ 0; 69 ] (Bitset.elements s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      Bitset.add s 10)

let test_bitset_set_ops =
  qcheck
    (QCheck.Test.make ~name:"bitset_set_algebra" ~count:300
       QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
       (fun (xs, ys) ->
         let module IS = Set.Make (Int) in
         let sa = IS.of_list xs and sb = IS.of_list ys in
         let a = Bitset.of_list 64 xs and b = Bitset.of_list 64 ys in
         Bitset.elements (Bitset.union a b) = IS.elements (IS.union sa sb)
         && Bitset.elements (Bitset.inter a b) = IS.elements (IS.inter sa sb)
         && Bitset.subset a b = IS.subset sa sb
         && Bitset.disjoint a b = IS.disjoint sa sb
         && Bitset.cardinal a = IS.cardinal sa))

let test_bitset_diff () =
  let a = Bitset.of_list 16 [ 1; 2; 3; 4 ] in
  let b = Bitset.of_list 16 [ 2; 4; 8 ] in
  Bitset.diff_into ~dst:a b;
  check Alcotest.(list int) "diff" [ 1; 3 ] (Bitset.elements a)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 8 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check Alcotest.bool "original untouched" false (Bitset.mem a 2)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 9 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> Bitset.union_into ~dst:a b)

(* --- union find ---------------------------------------------------------- *)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  check Alcotest.int "classes" 6 (Union_find.n_classes uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  check Alcotest.bool "same 0 3" true (Union_find.same uf 0 3);
  check Alcotest.bool "not same 0 4" false (Union_find.same uf 0 4);
  check Alcotest.int "classes after" 3 (Union_find.n_classes uf);
  check
    Alcotest.(list (list int))
    "partition"
    [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ]
    (Union_find.classes uf)

let test_union_find_idempotent () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  check Alcotest.int "classes" 2 (Union_find.n_classes uf)

(* --- stats --------------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s);
  check (Alcotest.float 1e-6) "variance" (5.0 /. 3.0) (Stats.variance s);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.percentile s 50.0)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.0) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min empty" (Invalid_argument "Stats.min: empty accumulator")
    (fun () -> ignore (Stats.min s))

let test_stats_percentile_extremes () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.0; 1.0; 3.0 ];
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stats.percentile s 100.0)

let test_stats_merge =
  qcheck
    (QCheck.Test.make ~name:"stats_merge_matches_concat" ~count:200
       QCheck.(pair (list (float_bound_exclusive 100.0)) (list (float_bound_exclusive 100.0)))
       (fun (xs, ys) ->
         let build values =
           let s = Stats.create () in
           List.iter (Stats.add s) values;
           s
         in
         let merged = Stats.merge (build xs) (build ys) in
         let direct = build (xs @ ys) in
         Stats.count merged = Stats.count direct
         && abs_float (Stats.mean merged -. Stats.mean direct) < 1e-9))

let test_stats_welford_matches_naive () =
  let s = Stats.create () in
  let values = List.init 100 (fun i -> float_of_int ((i * 37 mod 19) - 9)) in
  List.iter (Stats.add s) values;
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values /. (n -. 1.0)
  in
  check (Alcotest.float 1e-6) "variance" var (Stats.variance s)

(* --- table --------------------------------------------------------------- *)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "n" ] ~rows:[ [ "a"; "1" ]; [ "long"; "22" ] ] ()
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "line count (incl. trailing)" 5 (List.length lines);
  check Alcotest.string "header" "name  n" (List.nth lines 0);
  check Alcotest.string "rule" "----  --" (List.nth lines 1);
  check Alcotest.string "row" "a     1" (List.nth lines 2)

let test_table_right_align () =
  let out =
    Table.render ~aligns:[ Table.Left; Table.Right ] ~header:[ "k"; "v" ]
      ~rows:[ [ "a"; "1" ]; [ "b"; "22" ] ]
      ()
  in
  check Alcotest.bool "right aligned" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.nth lines 2 = "a   1")

let test_table_ragged_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "1" ] ] () in
  check Alcotest.bool "no exception, padded" true (String.length out > 0)

let test_fmt_helpers () =
  check Alcotest.string "float" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  check Alcotest.string "ratio" "2.00x" (Table.fmt_ratio 4.0 2.0);
  check Alcotest.string "ratio inf" "inf" (Table.fmt_ratio 4.0 0.0);
  check Alcotest.string "bytes small" "512 B" (Table.fmt_bytes 512);
  check Alcotest.string "bytes kib" "4.0 KiB" (Table.fmt_bytes 4096)

(* --- graph --------------------------------------------------------------- *)

let test_graph_basic () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 1;
  (* duplicate ignored *)
  check Alcotest.int "edges" 2 (Graph.n_edges g);
  check Alcotest.bool "mem" true (Graph.mem_edge g 0 1);
  check Alcotest.bool "not mem" false (Graph.mem_edge g 1 0);
  check Alcotest.(list int) "succ" [ 1 ] (Graph.succ g 0)

let test_graph_closure () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  let c = Graph.transitive_closure g in
  check Alcotest.bool "0->3" true (Graph.mem_edge c 0 3);
  check Alcotest.bool "3->0 absent" false (Graph.mem_edge c 3 0);
  check Alcotest.bool "0->0 absent" false (Graph.mem_edge c 0 0)

let test_graph_cycle_detection () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  check Alcotest.bool "acyclic" true (Graph.is_acyclic g);
  Graph.add_edge g 2 0;
  check Alcotest.bool "cyclic" false (Graph.is_acyclic g);
  check Alcotest.(option (list int)) "no topo order" None (Graph.topological_sort g)

let test_graph_toposort_deterministic () =
  let g = Graph.create 5 in
  Graph.add_edge g 4 2;
  Graph.add_edge g 3 2;
  Graph.add_edge g 2 0;
  check
    Alcotest.(option (list int))
    "smallest-first order"
    (Some [ 1; 3; 4; 2; 0 ])
    (Graph.topological_sort g)

let test_graph_transitive_reduction () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 2;
  (* redundant *)
  check
    Alcotest.(list (pair int int))
    "reduction drops 0->2"
    [ (0, 1); (1, 2) ]
    (Graph.transitive_reduction_edges g)

let test_graph_simple_paths () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 3;
  Graph.add_edge g 0 2;
  Graph.add_edge g 2 3;
  let paths = Graph.simple_paths g ~src:0 ~dst:3 in
  check Alcotest.int "two paths" 2 (List.length paths);
  check Alcotest.bool "both end at 3" true
    (List.for_all (fun p -> List.nth p (List.length p - 1) = 3) paths)

let test_graph_simple_paths_cycle_self () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  let paths = Graph.simple_paths g ~src:0 ~dst:0 in
  check Alcotest.(list (list int)) "cycle back to self" [ [ 0; 1; 0 ] ] paths

let test_graph_components () =
  let g = Graph.create 5 in
  Graph.add_undirected_edge g 0 1;
  Graph.add_undirected_edge g 2 3;
  check
    Alcotest.(list (list int))
    "components"
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (Graph.components g)

let test_graph_closure_matches_paths =
  qcheck
    (QCheck.Test.make ~name:"closure_agrees_with_has_path" ~count:100
       QCheck.(list (pair (int_bound 7) (int_bound 7)))
       (fun edges ->
         let g = Graph.create 8 in
         List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
         let c = Graph.transitive_closure g in
         List.for_all
           (fun u ->
             List.for_all
               (fun v -> Graph.mem_edge c u v = Graph.has_path g u v)
               (List.init 8 Fun.id))
           (List.init 8 Fun.id)))

let test_graph_union_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Graph.union: size mismatch")
    (fun () -> ignore (Graph.union (Graph.create 2) (Graph.create 3)))

let test_graph_reduction_cyclic () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Alcotest.check_raises "cyclic"
    (Invalid_argument "Graph.transitive_reduction_edges: cyclic") (fun () ->
      ignore (Graph.transitive_reduction_edges g))

let test_bitset_of_list_oob () =
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.of_list 2 [ 5 ]))

let test_stats_percentile_range () =
  let s = Stats.create () in
  Stats.add s 1.0;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile s 101.0))

let test_rng_pick_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick (Rng.create 0) [||]))

(* --- flow ---------------------------------------------------------------- *)

let test_flow_simple () =
  let f = Flow.create 4 in
  Flow.add_edge f ~src:0 ~dst:1 ~cap:3;
  Flow.add_edge f ~src:0 ~dst:2 ~cap:2;
  Flow.add_edge f ~src:1 ~dst:3 ~cap:2;
  Flow.add_edge f ~src:2 ~dst:3 ~cap:3;
  check Alcotest.int "max flow" 4 (Flow.max_flow f ~source:0 ~sink:3)

let test_flow_bottleneck () =
  let f = Flow.create 3 in
  Flow.add_edge f ~src:0 ~dst:1 ~cap:10;
  Flow.add_edge f ~src:1 ~dst:2 ~cap:1;
  check Alcotest.int "bottleneck" 1 (Flow.max_flow f ~source:0 ~sink:2)

let test_flow_disconnected () =
  let f = Flow.create 3 in
  Flow.add_edge f ~src:0 ~dst:1 ~cap:5;
  check Alcotest.int "no path" 0 (Flow.max_flow f ~source:0 ~sink:2)

let test_flow_needs_residual () =
  (* classic case where an augmenting path must push flow back *)
  let f = Flow.create 4 in
  Flow.add_edge f ~src:0 ~dst:1 ~cap:1;
  Flow.add_edge f ~src:0 ~dst:2 ~cap:1;
  Flow.add_edge f ~src:1 ~dst:2 ~cap:1;
  Flow.add_edge f ~src:1 ~dst:3 ~cap:1;
  Flow.add_edge f ~src:2 ~dst:3 ~cap:1;
  check Alcotest.int "flow 2" 2 (Flow.max_flow f ~source:0 ~sink:3)

let () =
  Alcotest.run "repro_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "different seeds" `Quick test_rng_different_seeds;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split advances parent" `Quick test_rng_split_changes_parent;
          test_rng_int_bounds;
          test_rng_int_in_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          test_rng_sample_without_replacement;
          Alcotest.test_case "coin extremes" `Quick test_rng_coin_extremes;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "basic order" `Quick test_pqueue_basic;
          Alcotest.test_case "pop_exn empty" `Quick test_pqueue_pop_exn_empty;
          test_pqueue_sorts;
          Alcotest.test_case "to_sorted_list preserves" `Quick
            test_pqueue_to_sorted_list_preserves;
          Alcotest.test_case "composite keys break ties" `Quick
            test_pqueue_stability_via_composite_keys;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "growth and clear bounds" `Quick
            test_pqueue_growth_and_clear;
        ] );
      ( "intheap",
        [
          Alcotest.test_case "basic order" `Quick test_intheap_basic;
          Alcotest.test_case "growth and clear bounds" `Quick
            test_intheap_growth_and_clear;
          test_intheap_matches_pqueue;
        ] );
      ( "ringbuf",
        [ Alcotest.test_case "fifo across growth" `Quick test_ringbuf_fifo_growth ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          test_bitset_set_ops;
          Alcotest.test_case "diff" `Quick test_bitset_diff;
          Alcotest.test_case "copy independent" `Quick test_bitset_copy_independent;
          Alcotest.test_case "capacity mismatch" `Quick test_bitset_capacity_mismatch;
          Alcotest.test_case "of_list out of bounds" `Quick test_bitset_of_list_oob;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "idempotent" `Quick test_union_find_idempotent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile extremes" `Quick test_stats_percentile_extremes;
          test_stats_merge;
          Alcotest.test_case "welford matches naive" `Quick test_stats_welford_matches_naive;
          Alcotest.test_case "percentile range" `Quick test_stats_percentile_range;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "right align" `Quick test_table_right_align;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "format helpers" `Quick test_fmt_helpers;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "closure" `Quick test_graph_closure;
          Alcotest.test_case "cycle detection" `Quick test_graph_cycle_detection;
          Alcotest.test_case "toposort deterministic" `Quick
            test_graph_toposort_deterministic;
          Alcotest.test_case "transitive reduction" `Quick test_graph_transitive_reduction;
          Alcotest.test_case "simple paths" `Quick test_graph_simple_paths;
          Alcotest.test_case "simple paths self cycle" `Quick
            test_graph_simple_paths_cycle_self;
          Alcotest.test_case "components" `Quick test_graph_components;
          test_graph_closure_matches_paths;
          Alcotest.test_case "union mismatch" `Quick test_graph_union_mismatch;
          Alcotest.test_case "reduction cyclic" `Quick test_graph_reduction_cyclic;
        ] );
      ( "flow",
        [
          Alcotest.test_case "simple" `Quick test_flow_simple;
          Alcotest.test_case "bottleneck" `Quick test_flow_bottleneck;
          Alcotest.test_case "disconnected" `Quick test_flow_disconnected;
          Alcotest.test_case "needs residual" `Quick test_flow_needs_residual;
        ] );
    ]

(* Tests for Repro_sharegraph: distributions, the share graph, hoops,
   Theorem 1's x-relevance characterization, and dependency chains. *)

module Distribution = Repro_sharegraph.Distribution
module Share_graph = Repro_sharegraph.Share_graph
module Depchain = Repro_sharegraph.Depchain
module History = Repro_history.History
module Op = Repro_history.Op
module Orders = Repro_history.Orders
module Bitset = Repro_util.Bitset
module Rng = Repro_util.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* --- distribution ---------------------------------------------------------- *)

let test_distribution_basic () =
  let d = Distribution.of_lists ~n_vars:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ] in
  check Alcotest.int "procs" 3 (Distribution.n_procs d);
  check Alcotest.int "vars" 3 (Distribution.n_vars d);
  check Alcotest.bool "holds" true (Distribution.holds d ~proc:0 ~var:1);
  check Alcotest.bool "not holds" false (Distribution.holds d ~proc:0 ~var:2);
  check Alcotest.(list int) "X_1" [ 1; 2 ] (Distribution.vars_of d 1);
  check Alcotest.(list int) "C(x1)" [ 0; 1 ] (Distribution.holders d 1);
  check Alcotest.bool "partial" false (Distribution.is_full_replication d)

let test_distribution_validation () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Distribution.make: variable out of range") (fun () ->
      ignore (Distribution.of_lists ~n_vars:1 [ [ 3 ] ]))

let test_distribution_full () =
  let d = Distribution.full ~n_procs:3 ~n_vars:2 in
  check Alcotest.bool "full" true (Distribution.is_full_replication d);
  check Alcotest.(list int) "all hold" [ 0; 1; 2 ] (Distribution.holders d 0)

let test_distribution_random_replicas =
  qcheck
    (QCheck.Test.make ~name:"random_distribution_replica_count" ~count:100
       QCheck.(triple small_int (int_range 2 8) (int_range 1 6))
       (fun (seed, n_procs, n_vars) ->
         let d =
           Distribution.random (Rng.create seed) ~n_procs ~n_vars ~replicas_per_var:2
         in
         List.for_all
           (fun x -> List.length (Distribution.holders d x) = min 2 n_procs)
           (List.init n_vars Fun.id)))

let test_distribution_restrict_history () =
  let d = Distribution.of_lists ~n_vars:2 [ [ 0 ]; [ 1 ] ] in
  let ok = History.of_lists [ [ Op.write ~var:0 (Op.Val 1) ]; [] ] in
  check Alcotest.bool "ok" true (Result.is_ok (Distribution.restrict_history d ok));
  let bad = History.of_lists [ [ Op.write ~var:1 (Op.Val 1) ]; [] ] in
  check Alcotest.bool "violation" true (Result.is_error (Distribution.restrict_history d bad))

let test_distribution_ring_chain_clustered () =
  let ring = Distribution.ring ~n_procs:5 in
  check Alcotest.(list int) "ring C(x0)" [ 0; 1 ] (Distribution.holders ring 0);
  check Alcotest.(list int) "ring wraps" [ 0; 4 ] (Distribution.holders ring 4);
  let chain = Distribution.chain ~n_procs:4 in
  check Alcotest.int "chain vars" 3 (Distribution.n_vars chain);
  check Alcotest.(list int) "chain C(x1)" [ 1; 2 ] (Distribution.holders chain 1);
  let clustered = Distribution.clustered ~n_procs:6 ~n_vars:4 ~clusters:2 in
  check Alcotest.(list int) "cluster 0 vars" [ 0; 2 ] (Distribution.vars_of clustered 0);
  check Alcotest.(list int) "cluster 1 vars" [ 1; 3 ] (Distribution.vars_of clustered 1)

(* --- figure 1 -------------------------------------------------------------- *)

(* Paper Fig. 1: three processes, X_i = {x1, x2}, X_j = {x1}, X_k = {x2}.
   Here: p0 = p_i, p1 = p_j, p2 = p_k; var 0 = x1, var 1 = x2. *)
let fig1 = Distribution.of_lists ~n_vars:2 [ [ 0; 1 ]; [ 0 ]; [ 1 ] ]

let test_fig1_share_graph () =
  let sg = Share_graph.of_distribution fig1 in
  check
    Alcotest.(list (triple int int (list int)))
    "edges"
    [ (0, 1, [ 0 ]); (0, 2, [ 1 ]) ]
    (Share_graph.edges sg);
  check Alcotest.(list int) "C(x1)" [ 0; 1 ] (Share_graph.clique sg 0);
  check Alcotest.(list int) "C(x2)" [ 0; 2 ] (Share_graph.clique sg 1);
  (* no hoops anywhere: removing C(x) disconnects *)
  check Alcotest.bool "hoop free" true (Share_graph.fully_hoop_free sg);
  check Alcotest.(list (list int)) "no x1 hoops" [] (Share_graph.hoops sg ~var:0)

(* --- figure 2 style hoop -------------------------------------------------- *)

(* A concrete x-hoop: C(x) = {0, 3}; interior 1, 2 connected by other
   variables.  vars: x=0, u=1 (0-1), v=2 (1-2), t=3 (2-3). *)
let hoop_dist =
  Distribution.of_lists ~n_vars:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ]

let test_fig2_hoop_enumeration () =
  let sg = Share_graph.of_distribution hoop_dist in
  check
    Alcotest.(list (list int))
    "one x-hoop via the interior"
    [ [ 0; 1; 2; 3 ] ]
    (Share_graph.hoops sg ~var:0);
  check Alcotest.bool "p1 interior" true (Share_graph.on_hoop sg ~var:0 ~proc:1);
  check Alcotest.bool "p2 interior" true (Share_graph.on_hoop sg ~var:0 ~proc:2);
  check Alcotest.bool "clique member not interior" false
    (Share_graph.on_hoop sg ~var:0 ~proc:0);
  check Alcotest.(list int) "x-relevant = everyone" [ 0; 1; 2; 3 ]
    (Bitset.elements (Share_graph.x_relevant sg ~var:0));
  check Alcotest.bool "x0 not hoop free" false (Share_graph.hoop_free sg ~var:0);
  (* the cycle topology gives every variable its own hoop the long way
     around, e.g. x1 between C(x1) = {0, 1} via [0; 3; 2; 1] *)
  check Alcotest.(list (list int)) "x1 hoop" [ [ 0; 3; 2; 1 ] ]
    (Share_graph.hoops sg ~var:1)

let test_direct_edge_hoop () =
  (* two clique members also sharing another variable: a length-1 hoop,
     no interior processes *)
  let d = Distribution.of_lists ~n_vars:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  let sg = Share_graph.of_distribution d in
  check Alcotest.(list (list int)) "direct hoop" [ [ 0; 1 ] ] (Share_graph.hoops sg ~var:0);
  check Alcotest.bool "not hoop free" false (Share_graph.hoop_free sg ~var:0);
  (* but nobody outside the clique is x-relevant *)
  check Alcotest.(list int) "x-relevant stays in clique" [ 0; 1 ]
    (Bitset.elements (Share_graph.x_relevant sg ~var:0))

let test_dangling_component_not_on_hoop () =
  (* component adjacent to only ONE clique vertex: its members are not on
     any hoop even though the component touches the clique.
     C(x)={0,1} via var 0; p2 hangs off p0 via var 1; p3 hangs off p2. *)
  let d = Distribution.of_lists ~n_vars:3 [ [ 0; 1 ]; [ 0 ]; [ 1; 2 ]; [ 2 ] ] in
  let sg = Share_graph.of_distribution d in
  check Alcotest.bool "p2 not on hoop" false (Share_graph.on_hoop sg ~var:0 ~proc:2);
  check Alcotest.bool "p3 not on hoop" false (Share_graph.on_hoop sg ~var:0 ~proc:3);
  check Alcotest.(list int) "x-relevant = C(x)" [ 0; 1 ]
    (Bitset.elements (Share_graph.x_relevant sg ~var:0));
  check Alcotest.bool "hoop free" true (Share_graph.hoop_free sg ~var:0)

let test_junction_vertex_disjointness () =
  (* Both clique vertices attach to the component through the SAME cut
     vertex p2; p3 behind the cut cannot be on a hoop (paths to the two
     endpoints are not vertex-disjoint), while p2 itself can.
     C(x)={0,1}; edges: 0-2 (u), 1-2 (v), 2-3 (t). *)
  let d =
    Distribution.of_lists ~n_vars:4 [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2; 3 ]; [ 3 ] ]
  in
  let sg = Share_graph.of_distribution d in
  check Alcotest.bool "cut vertex on hoop" true (Share_graph.on_hoop sg ~var:0 ~proc:2);
  check Alcotest.bool "behind cut not on hoop" false
    (Share_graph.on_hoop sg ~var:0 ~proc:3);
  (* enumeration agrees *)
  let by_enum = Share_graph.x_relevant_by_enumeration sg ~var:0 in
  check Alcotest.(list int) "enumeration agrees" [ 0; 1; 2 ] (Bitset.elements by_enum)

let test_label_filter_matters () =
  (* An edge labelled ONLY with x cannot be part of an x-hoop (Definition 3
     condition ii).  Triangle: C(x) = {0,1,2}? no — make x shared by 0,1;
     0-2 and 1-2 both share only x... then 2 holds x and is in C(x).
     Instead: path 0-2-1 where 0-2 shares y but 2-1 shares x only is
     impossible (sharing x puts 2 in C(x)).  The real filtered case: two
     C(x) members directly connected by an edge whose label is {x} only —
     no hoop. *)
  let d = Distribution.of_lists ~n_vars:1 [ [ 0 ]; [ 0 ] ] in
  let sg = Share_graph.of_distribution d in
  check Alcotest.(list (list int)) "label {x} gives no x-hoop" []
    (Share_graph.hoops sg ~var:0);
  check Alcotest.bool "hoop free" true (Share_graph.hoop_free sg ~var:0)

let test_ring_hoops () =
  (* On a ring every variable has exactly one hoop: the long way around. *)
  let sg = Share_graph.of_distribution (Distribution.ring ~n_procs:5) in
  let hs = Share_graph.hoops sg ~var:0 in
  check Alcotest.(list (list int)) "the long way" [ [ 0; 4; 3; 2; 1 ] ] hs;
  check Alcotest.(list int) "everyone x-relevant" [ 0; 1; 2; 3; 4 ]
    (Bitset.elements (Share_graph.x_relevant sg ~var:0))

(* --- Theorem 1 cross-validation ------------------------------------------- *)

let random_dist_arb =
  QCheck.make
    ~print:(fun (seed, n_procs, n_vars, replicas) ->
      Printf.sprintf "seed=%d procs=%d vars=%d replicas=%d" seed n_procs n_vars replicas)
    QCheck.Gen.(
      let* seed = small_int in
      let* n_procs = int_range 2 7 in
      let* n_vars = int_range 1 6 in
      let* replicas = int_range 1 3 in
      return (seed, n_procs, n_vars, replicas))

let test_theorem1_flow_vs_enumeration =
  qcheck
    (QCheck.Test.make ~name:"x_relevant_flow_equals_enumeration" ~count:150
       random_dist_arb (fun (seed, n_procs, n_vars, replicas) ->
         let d =
           Distribution.random (Rng.create seed) ~n_procs ~n_vars
             ~replicas_per_var:replicas
         in
         let sg = Share_graph.of_distribution d in
         List.for_all
           (fun x ->
             Bitset.equal
               (Share_graph.x_relevant sg ~var:x)
               (Share_graph.x_relevant_by_enumeration sg ~var:x))
           (List.init n_vars Fun.id)))

let test_hoop_free_equals_no_hoops =
  qcheck
    (QCheck.Test.make ~name:"hoop_free_agrees_with_enumeration" ~count:150
       random_dist_arb (fun (seed, n_procs, n_vars, replicas) ->
         let d =
           Distribution.random (Rng.create seed) ~n_procs ~n_vars
             ~replicas_per_var:replicas
         in
         let sg = Share_graph.of_distribution d in
         List.for_all
           (fun x -> Share_graph.hoop_free sg ~var:x = (Share_graph.hoops sg ~var:x = []))
           (List.init n_vars Fun.id)))

let test_clustered_distributions_no_external_relevance =
  (* Clustered distributions have direct (interior-free) hoops between
     clique members sharing several variables, but x-relevance never leaves
     C(x): the ablation property that admits efficient causal
     implementations. *)
  qcheck
    (QCheck.Test.make ~name:"clustered_distributions_have_no_external_relevance"
       ~count:50
       QCheck.(pair (int_range 2 8) (int_range 1 8))
       (fun (n_procs, n_vars) ->
         let clusters = max 1 (n_procs / 2) in
         let d = Distribution.clustered ~n_procs ~n_vars ~clusters in
         Share_graph.no_external_relevance (Share_graph.of_distribution d)))

let test_chain_distribution_hoop_free () =
  let sg = Share_graph.of_distribution (Distribution.chain ~n_procs:6) in
  check Alcotest.bool "chain hoop free" true (Share_graph.fully_hoop_free sg)

let test_star_distribution_hoop_free () =
  let d = Distribution.star ~n_procs:6 in
  check Alcotest.(list int) "hub holds everything" [ 0; 1; 2; 3; 4 ]
    (Distribution.vars_of d 0);
  check Alcotest.(list int) "leaf holds one" [ 2 ] (Distribution.vars_of d 3);
  let sg = Share_graph.of_distribution d in
  check Alcotest.bool "star hoop free" true (Share_graph.fully_hoop_free sg);
  check Alcotest.bool "star efficiently implementable" true
    (Share_graph.no_external_relevance sg)

let test_grid_distribution_hoops () =
  let d = Distribution.grid ~rows:3 ~cols:3 in
  check Alcotest.int "procs" 9 (Distribution.n_procs d);
  check Alcotest.int "vars = edges" 12 (Distribution.n_vars d);
  (* the top-left horizontal edge variable h(0,0) = 0 is held by (0,0) and
     (0,1) = procs 0 and 1 *)
  check Alcotest.(list int) "h(0,0) clique" [ 0; 1 ] (Distribution.holders d 0);
  let sg = Share_graph.of_distribution d in
  check Alcotest.bool "grid has hoops" false (Share_graph.fully_hoop_free sg);
  (* the face below h(0,0): 0 - 3 - 4 - 1 *)
  check Alcotest.bool "face hoop" true
    (List.mem [ 0; 3; 4; 1 ] (Share_graph.hoops sg ~var:0));
  (* corner process 8 is NOT x0-relevant (all its paths to C(x0) merge) *)
  check Alcotest.bool "far corner relevant too" true
    (* actually in a 3x3 grid every process lies on some hoop between 0
       and 1 going the long way around; verify against enumeration *)
    (Repro_util.Bitset.equal
       (Share_graph.x_relevant sg ~var:0)
       (Share_graph.x_relevant_by_enumeration sg ~var:0))

(* --- dependency chains ----------------------------------------------------- *)

(* The Fig. 3 history over the hoop distribution: C(x0) = {0, 3}, hoop
   through 1 and 2. *)
let fig3_history =
  History.of_lists
    [
      [ Op.write ~var:0 (Op.Val 1); Op.write ~var:1 (Op.Val 11) ];
      [ Op.read ~var:1 (Op.Val 11); Op.write ~var:2 (Op.Val 12) ];
      [ Op.read ~var:2 (Op.Val 12); Op.write ~var:3 (Op.Val 13) ];
      [ Op.read ~var:3 (Op.Val 13); Op.read ~var:0 (Op.Val 1) ];
    ]

let test_fig3_chain_detected () =
  let sg = Share_graph.of_distribution hoop_dist in
  let h = fig3_history in
  let rf = Result.get_ok (History.read_from h) in
  let base = Orders.causal_base h rf in
  (match Depchain.exists_chain sg h ~base ~transitive:true ~var:0 () with
  | None -> Alcotest.fail "expected an x0-dependency chain along the hoop"
  | Some witness ->
      check Alcotest.(list int) "hoop" [ 0; 1; 2; 3 ] witness.Depchain.hoop;
      check Alcotest.int "initial is w0(x0)" 0 witness.Depchain.initial;
      let final_op = History.op h witness.Depchain.final in
      check Alcotest.int "final on x" 0 final_op.Op.var;
      check Alcotest.int "final by p3" 3 final_op.Op.proc);
  (* under the PRAM relation the same history has no chain along the hoop:
     the only w->o(x) pram edge is the direct read-from, and the hoop has
     interior processes *)
  let pram_base = Orders.pram h rf in
  check Alcotest.bool "no pram chain" true
    (Depchain.exists_chain sg h ~base:pram_base ~transitive:false ~var:0 () = None)

let test_no_chain_without_pattern () =
  (* Same distribution, but the intermediate pattern is missing: no chain. *)
  let h =
    History.of_lists
      [
        [ Op.write ~var:0 (Op.Val 1) ];
        [ Op.write ~var:2 (Op.Val 12) ];
        [];
        [ Op.read ~var:0 (Op.Val 1) ];
      ]
  in
  let sg = Share_graph.of_distribution hoop_dist in
  let rf = Result.get_ok (History.read_from h) in
  let base = Orders.causal_base h rf in
  check Alcotest.bool "no chain" true
    (Depchain.exists_chain sg h ~base ~transitive:true ~var:0 () = None)

let test_direct_rf_chain_on_interior_free_hoop () =
  (* With a direct (length-1) hoop, a plain write/read pair IS a chain even
     under PRAM: both endpoint processes are covered. *)
  let d = Distribution.of_lists ~n_vars:2 [ [ 0; 1 ]; [ 0; 1 ] ] in
  let sg = Share_graph.of_distribution d in
  let h =
    History.of_lists
      [ [ Op.write ~var:0 (Op.Val 1) ]; [ Op.read ~var:0 (Op.Val 1) ] ]
  in
  let rf = Result.get_ok (History.read_from h) in
  let pram_base = Orders.pram h rf in
  check Alcotest.bool "direct chain exists" true
    (Depchain.exists_chain sg h ~base:pram_base ~transitive:false ~var:0 () <> None)

(* Theorem 2 as a property: histories produced by the PRAM generator never
   contain dependency chains along hoops with interior processes, under the
   PRAM relation. *)
let test_theorem2_property =
  qcheck
    (QCheck.Test.make ~name:"theorem2_no_pram_chain_along_interior_hoops" ~count:100
       QCheck.small_int (fun seed ->
         let rng = Rng.create seed in
         (* the hoop distribution, programs restricted to held variables *)
         let h =
           (* build a PRAM-consistent history over 4 procs / 4 vars, then
              filter each process's ops to variables it holds so the
              distribution applies *)
           let full =
             Repro_history.Generator.pram_consistent rng
               { Repro_history.Generator.procs = 4; vars = 4; ops_per_proc = 6; read_ratio = 0.4 }
           in
           let keep (o : Op.t) = Distribution.holds hoop_dist ~proc:o.Op.proc ~var:o.Op.var in
           History.of_lists
             (List.init 4 (fun p ->
                  History.local full p |> Array.to_list
                  |> List.filter keep
                  |> List.map (fun (o : Op.t) -> (o.Op.kind, o.Op.var, o.Op.value))))
         in
         match History.read_from h with
         | Error _ -> QCheck.assume_fail ()
         | Ok rf ->
             let pram_base = Orders.pram h rf in
             (* interior hoops only: the hoop [0;1;2;3] *)
             Depchain.chain_along_hoop h ~base:pram_base ~transitive:false ~var:0
               ~hoop:[ 0; 1; 2; 3 ]
             = None))

(* --- consistent-hash ring --------------------------------------------------- *)

module Ring = Repro_sharegraph.Ring

let ring_load r ~k ~n_vars m =
  try List.assoc m (Ring.load r ~k ~n_vars) with Not_found -> 0

let test_ring_basic () =
  let r = Ring.make ~seed:7 ~vnodes:64 ~members:[ 0; 1; 2; 3; 4 ] in
  check Alcotest.(list int) "members" [ 0; 1; 2; 3; 4 ] (Ring.members r);
  check Alcotest.int "n_members" 5 (Ring.n_members r);
  check Alcotest.bool "is_member" true (Ring.is_member r 3);
  check Alcotest.bool "not member" false (Ring.is_member r 5);
  let reps = Ring.replicas r ~k:2 17 in
  check Alcotest.int "k replicas" 2 (List.length reps);
  check Alcotest.bool "owner in replicas" true
    (List.mem (Ring.owner r 17) reps);
  check Alcotest.(list int) "ascending" (List.sort compare reps) reps;
  check Alcotest.bool "replicas are members" true
    (List.for_all (Ring.is_member r) reps)

let test_ring_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "empty members" true
    (raises (fun () -> Ring.make ~seed:0 ~vnodes:8 ~members:[]));
  check Alcotest.bool "duplicate member" true
    (raises (fun () -> Ring.make ~seed:0 ~vnodes:8 ~members:[ 1; 1 ]));
  check Alcotest.bool "vnodes < 1" true
    (raises (fun () -> Ring.make ~seed:0 ~vnodes:0 ~members:[ 0 ]));
  let r = Ring.make ~seed:0 ~vnodes:8 ~members:[ 0; 1 ] in
  check Alcotest.bool "re-add member" true
    (raises (fun () -> Ring.add_member r 1));
  check Alcotest.bool "remove absent" true
    (raises (fun () -> Ring.remove_member r 7));
  let solo = Ring.make ~seed:0 ~vnodes:8 ~members:[ 3 ] in
  check Alcotest.bool "remove last member" true
    (raises (fun () -> Ring.remove_member solo 3))

let test_ring_spec_roundtrip () =
  match Ring.spec_of_string "hash:n=5,k=2,vnodes=64,seed=7" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check Alcotest.int "n" 5 s.Ring.s_n;
      check Alcotest.int "k" 2 s.Ring.s_k;
      let s' =
        Result.get_ok (Ring.spec_of_string (Ring.spec_to_string s))
      in
      check Alcotest.bool "round trip" true (s = s');
      check Alcotest.bool "bad spec rejected" true
        (Result.is_error (Ring.spec_of_string "hash:k=2"));
      check Alcotest.bool "garbage rejected" true
        (Result.is_error (Ring.spec_of_string "nonsense"))

let test_ring_to_distribution () =
  let r = Ring.make ~seed:3 ~vnodes:32 ~members:[ 0; 1; 2; 3 ] in
  let d = Ring.to_distribution r ~k:2 ~n_procs:4 ~n_vars:10 in
  List.iter
    (fun x ->
      check Alcotest.(list int)
        (Printf.sprintf "holders x%d" x)
        (Ring.replicas r ~k:2 x)
        (Distribution.holders d x))
    (List.init 10 Fun.id)

(* more vnodes smooth the placement: averaged over pinned seeds the
   max/mean load ratio must improve monotonically from 1 vnode to 64 —
   deterministic because hashing is a pure function of (seed, input) *)
let test_ring_vnodes_improve_balance () =
  let avg_ratio vnodes =
    let acc = ref 0.0 in
    for seed = 0 to 49 do
      let r = Ring.make ~seed ~vnodes ~members:(List.init 5 Fun.id) in
      acc := !acc +. (Ring.balance r ~k:2 ~n_vars:64).Ring.b_ratio
    done;
    !acc /. 50.0
  in
  let r1 = avg_ratio 1 and r8 = avg_ratio 8 and r64 = avg_ratio 64 in
  check Alcotest.bool
    (Printf.sprintf "ratio improves: %.3f > %.3f > %.3f" r1 r8 r64)
    true
    (r1 > r8 && r8 > r64)

let ring_params =
  QCheck.(
    quad small_int (int_range 1 8) (int_range 1 3) (int_range 1 3))

let test_ring_deterministic =
  qcheck
    (QCheck.Test.make ~name:"ring_placement_deterministic" ~count:100
       ring_params
       (fun (seed, n, k, vn) ->
         let vnodes = vn * 21 in
         let members = List.init n Fun.id in
         let a = Ring.make ~seed ~vnodes ~members in
         let b = Ring.make ~seed ~vnodes ~members in
         List.for_all
           (fun x -> Ring.replicas a ~k x = Ring.replicas b ~k x)
           (List.init 32 Fun.id)))

let test_ring_replica_shape =
  qcheck
    (QCheck.Test.make ~name:"ring_replica_set_shape" ~count:100 ring_params
       (fun (seed, n, k, vn) ->
         let r = Ring.make ~seed ~vnodes:(vn * 21) ~members:(List.init n Fun.id) in
         List.for_all
           (fun x ->
             let reps = Ring.replicas r ~k x in
             List.length reps = min k n
             && List.mem (Ring.owner r x) reps
             && List.sort_uniq compare reps = reps)
           (List.init 32 Fun.id)))

(* with 64 vnodes the heaviest member stays within 2.5x of the mean —
   the load-balance bound the vnode count buys (probed worst case over
   1400 parameter combinations: 2.08) *)
let test_ring_balance_bound =
  qcheck
    (QCheck.Test.make ~name:"ring_balance_bound_at_64_vnodes" ~count:100
       QCheck.(pair small_int (int_range 2 8))
       (fun (seed, n) ->
         let r = Ring.make ~seed ~vnodes:64 ~members:(List.init n Fun.id) in
         let b = Ring.balance r ~k:2 ~n_vars:64 in
         b.Ring.b_ratio <= 2.5))

(* minimal movement, exactly: a join moves precisely the assignments the
   joiner picks up (nothing shuffles between survivors), and a leave
   moves precisely what the leaver held — provided membership stays
   above k, so replica sets are proper subsets *)
let test_ring_join_minimal_movement =
  qcheck
    (QCheck.Test.make ~name:"ring_join_moves_exactly_joiner_load" ~count:100
       ring_params
       (fun (seed, n, k, vn) ->
         let vnodes = vn * 21 in
         let before = Ring.make ~seed ~vnodes ~members:(List.init n Fun.id) in
         let after = Ring.add_member before n in
         Ring.moved ~before ~after ~k ~n_vars:48
         = ring_load after ~k ~n_vars:48 n))

let test_ring_leave_minimal_movement =
  qcheck
    (QCheck.Test.make ~name:"ring_leave_moves_exactly_leaver_load" ~count:100
       ring_params
       (fun (seed, n, k, vn) ->
         QCheck.assume (n > k);
         let vnodes = vn * 21 in
         let before = Ring.make ~seed ~vnodes ~members:(List.init n Fun.id) in
         let after = Ring.remove_member before 0 in
         Ring.moved ~before ~after ~k ~n_vars:48
         = ring_load before ~k ~n_vars:48 0))

let () =
  Alcotest.run "repro_sharegraph"
    [
      ( "distribution",
        [
          Alcotest.test_case "basic" `Quick test_distribution_basic;
          Alcotest.test_case "validation" `Quick test_distribution_validation;
          Alcotest.test_case "full" `Quick test_distribution_full;
          test_distribution_random_replicas;
          Alcotest.test_case "restrict history" `Quick test_distribution_restrict_history;
          Alcotest.test_case "ring/chain/clustered" `Quick
            test_distribution_ring_chain_clustered;
        ] );
      ( "share_graph",
        [
          Alcotest.test_case "fig1" `Quick test_fig1_share_graph;
          Alcotest.test_case "fig2 hoop enumeration" `Quick test_fig2_hoop_enumeration;
          Alcotest.test_case "direct edge hoop" `Quick test_direct_edge_hoop;
          Alcotest.test_case "dangling component" `Quick
            test_dangling_component_not_on_hoop;
          Alcotest.test_case "junction vertex disjointness" `Quick
            test_junction_vertex_disjointness;
          Alcotest.test_case "label filter" `Quick test_label_filter_matters;
          Alcotest.test_case "ring hoops" `Quick test_ring_hoops;
        ] );
      ( "theorem1",
        [
          test_theorem1_flow_vs_enumeration;
          test_hoop_free_equals_no_hoops;
          test_clustered_distributions_no_external_relevance;
          Alcotest.test_case "chain distribution hoop free" `Quick
            test_chain_distribution_hoop_free;
          Alcotest.test_case "star distribution hoop free" `Quick
            test_star_distribution_hoop_free;
          Alcotest.test_case "grid distribution hoops" `Quick
            test_grid_distribution_hoops;
        ] );
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "validation" `Quick test_ring_validation;
          Alcotest.test_case "spec round trip" `Quick test_ring_spec_roundtrip;
          Alcotest.test_case "to_distribution" `Quick test_ring_to_distribution;
          Alcotest.test_case "vnodes improve balance" `Quick
            test_ring_vnodes_improve_balance;
          test_ring_deterministic;
          test_ring_replica_shape;
          test_ring_balance_bound;
          test_ring_join_minimal_movement;
          test_ring_leave_minimal_movement;
        ] );
      ( "depchain",
        [
          Alcotest.test_case "fig3 chain detected" `Quick test_fig3_chain_detected;
          Alcotest.test_case "no chain without pattern" `Quick
            test_no_chain_without_pattern;
          Alcotest.test_case "direct rf chain" `Quick
            test_direct_rf_chain_on_interior_free_hoop;
          test_theorem2_property;
        ] );
    ]

(* Load-generator tier: deterministic schedules, mix parsing, the
   bounded-memory percentile sketch's error bound, and a small end-to-end
   open-loop run over real sockets (forked nodes + client, pipelined
   replies matched by request id). *)

module Mix = Repro_loadgen.Mix
module Client = Repro_loadgen.Client
module Harness = Repro_loadgen.Harness
module Rpc = Repro_transport.Rpc
module Distribution = Repro_sharegraph.Distribution
module Registry = Repro_core.Registry
module Stats = Repro_util.Stats
module Rng = Repro_util.Rng

let dist4 =
  Distribution.of_lists ~n_vars:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]

(* --- plan determinism -------------------------------------------------------- *)

let plan ~seed =
  Client.plan ~mix:Mix.scans ~dist:dist4 ~rate:5_000.0 ~duration_ms:400 ~seed

let test_plan_deterministic () =
  let a = plan ~seed:42 and b = plan ~seed:42 in
  Alcotest.(check int) "same length" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (ea : Client.event) ->
      let eb = b.(i) in
      Alcotest.(check int) "at_us" ea.at_us eb.at_us;
      Alcotest.(check int) "target" ea.target eb.target;
      Alcotest.(check bool) "request" true (ea.request = eb.request))
    a;
  Alcotest.(check bool) "plan is non-trivial" true (Array.length a > 100)

let test_plan_seed_sensitive () =
  let a = plan ~seed:42 and b = plan ~seed:43 in
  let same =
    Array.length a = Array.length b
    && Array.for_all2 (fun (x : Client.event) y -> x = y) a b
  in
  Alcotest.(check bool) "different seed, different schedule" false same

let test_plan_shape () =
  let events = plan ~seed:7 in
  let duration_us = 400 * 1000 in
  Array.iter
    (fun (ev : Client.event) ->
      Alcotest.(check bool) "arrival inside window" true
        (ev.at_us >= 0 && ev.at_us < duration_us);
      Alcotest.(check bool) "target is a replica" true
        (ev.target >= 0 && ev.target < Distribution.n_procs dist4);
      match ev.request with
      | Rpc.Op (Rpc.Read { var } | Rpc.Write { var; _ }) ->
          (* single ops go to a holder of the variable *)
          Alcotest.(check bool) "targets a holder" true
            (List.mem ev.target (Distribution.holders dist4 var))
      | Rpc.Batch ops ->
          Alcotest.(check bool) "scan is bounded" true
            (Array.length ops >= 1 && Array.length ops <= Mix.scans.Mix.scan_len);
          Array.iter
            (function
              | Rpc.Read { var } ->
                  Alcotest.(check bool) "scan reads own vars" true
                    (List.mem var (Distribution.vars_of dist4 ev.target))
              | Rpc.Write _ -> Alcotest.fail "scan contains a write")
            ops)
    events;
  (* arrivals are sorted: the open-loop runner submits in order *)
  let sorted = ref true in
  Array.iteri
    (fun i (ev : Client.event) ->
      if i > 0 && ev.at_us < events.(i - 1).at_us then sorted := false)
    events;
  Alcotest.(check bool) "arrivals sorted" true !sorted

(* --- mix parsing ------------------------------------------------------------- *)

let test_mix_roundtrip () =
  List.iter
    (fun (name, m) ->
      (match Mix.parse name with
      | Ok m' -> Alcotest.(check bool) (name ^ " parses to itself") true (m = m')
      | Error e -> Alcotest.fail (name ^ ": " ^ e));
      match Mix.parse (Mix.to_string m) with
      | Ok m' ->
          Alcotest.(check bool) (name ^ " round-trips") true (m = m')
      | Error e -> Alcotest.fail (name ^ " to_string: " ^ e))
    Mix.named;
  (match Mix.parse "r=0.5,w=0.3,s=0.2,len=4" with
  | Ok m ->
      Alcotest.(check bool) "key=value form" true
        (m = { Mix.read = 0.5; write = 0.3; scan = 0.2; scan_len = 4 })
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Mix.parse bad with
      | Ok _ -> Alcotest.fail (bad ^ " should be rejected")
      | Error _ -> ())
    [ "r=0.9,w=0.9"; "r=-1,w=2"; "nonsense"; "r=0.5,s=0.5,len=0" ]

(* --- sketch percentile error bound ------------------------------------------- *)

(* The sketch documents a relative error of [sqrt gamma - 1] per
   percentile (bucket representatives at geometric midpoints).  Feed the
   same heavy-tailed stream to an exact accumulator and a sketch and
   check the documented bound, with a hair of slack for the exact side's
   own interpolation between order statistics. *)
let test_sketch_error_bound () =
  let gamma = 1.02 in
  let bound = (sqrt gamma -. 1.0) +. 0.005 in
  let exact = Stats.create () in
  let sketch = Stats.create_sketch ~gamma () in
  let rng = Rng.create 2024 in
  for _ = 1 to 20_000 do
    let v = Rng.exponential rng 1_000.0 +. Rng.float rng 50.0 in
    Stats.add exact v;
    Stats.add sketch v
  done;
  Alcotest.(check bool) "sketch mode" true (Stats.is_sketch sketch);
  Alcotest.(check int) "counts agree" (Stats.count exact) (Stats.count sketch);
  List.iter
    (fun p ->
      let e = Stats.percentile exact p and s = Stats.percentile sketch p in
      let rel = abs_float (s -. e) /. e in
      if rel > bound then
        Alcotest.failf "p%.0f: sketch %.2f vs exact %.2f (rel %.4f > %.4f)" p s
          e rel bound)
    [ 10.0; 50.0; 90.0; 95.0; 99.0; 99.9 ]

(* --- end-to-end open-loop smoke ---------------------------------------------- *)

let harness_config protocol =
  match Registry.find protocol with
  | None -> Alcotest.fail (protocol ^ " not registered")
  | Some spec ->
      {
        Harness.protocol = spec;
        n = 2;
        clients = 1;
        rate = 800.0;
        duration_ms = 400;
        mix = Mix.balanced;
        seed = 11;
        coalesce = 4;
        drain_plan = false;
        gc_space_overhead = None;
      }

let test_harness_smoke () =
  match Harness.run (harness_config "pram-partial") with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "ops completed" true (r.Harness.completed_ops > 0);
      (* pipelined replies all matched back: nothing timed out, nothing
         failed, every submitted op came home *)
      Alcotest.(check int) "no timeouts" 0 r.Harness.timeouts;
      Alcotest.(check int) "no failures" 0 r.Harness.failed_ops;
      Alcotest.(check int) "every op answered" r.Harness.attempted_ops
        r.Harness.completed_ops;
      Alcotest.(check bool) "nodes served the ops" true
        (r.Harness.client_ops_served >= r.Harness.completed_ops);
      Alcotest.(check bool) "latency sketch populated" true
        (Stats.count r.Harness.lat_us > 0);
      Alcotest.(check bool) "throughput positive" true (r.Harness.ops_per_sec > 0.0)

let test_harness_rejects_blocking () =
  match Registry.find "atomic-token" with
  | None -> () (* registry without the blocking protocol: nothing to check *)
  | Some spec ->
      let cfg = { (harness_config "pram-partial") with Harness.protocol = spec } in
      (match Harness.run cfg with
      | Ok _ -> Alcotest.fail "blocking protocol must be rejected"
      | Error _ -> ())

let () =
  Alcotest.run "loadgen"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic in the seed" `Quick
            test_plan_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_plan_seed_sensitive;
          Alcotest.test_case "well-formed events" `Quick test_plan_shape;
        ] );
      ("mix", [ Alcotest.test_case "parse round-trip" `Quick test_mix_roundtrip ]);
      ( "stats",
        [
          Alcotest.test_case "sketch percentile error bound" `Quick
            test_sketch_error_bound;
        ] );
      ( "harness",
        [
          Alcotest.test_case "open-loop smoke (pram-partial, n=2)" `Quick
            test_harness_smoke;
          Alcotest.test_case "blocking protocols rejected" `Quick
            test_harness_rejects_blocking;
        ] );
    ]

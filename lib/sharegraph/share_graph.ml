module Bitset = Repro_util.Bitset
module Graph = Repro_util.Graph
module Flow = Repro_util.Flow

type t = {
  dist : Distribution.t;
  labels : Bitset.t array array; (* labels.(i).(j) = X_i ∩ X_j, i <> j *)
  graph : Graph.t; (* undirected: both directions *)
}

let of_distribution dist =
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let var_sets =
    Array.init n (fun i -> Bitset.of_list n_vars (Distribution.vars_of dist i))
  in
  let labels = Array.init n (fun _ -> Array.init n (fun _ -> Bitset.create n_vars)) in
  let graph = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let shared = Bitset.inter var_sets.(i) var_sets.(j) in
      labels.(i).(j) <- shared;
      labels.(j).(i) <- shared;
      if not (Bitset.is_empty shared) then Graph.add_undirected_edge graph i j
    done
  done;
  { dist; labels; graph }

let distribution t = t.dist

let n_procs t = Distribution.n_procs t.dist

let neighbours t i = List.sort compare (Graph.succ t.graph i)

let edge_label t i j = if i = j then [] else Bitset.elements t.labels.(i).(j)

let edges t =
  let acc = ref [] in
  let n = n_procs t in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if Graph.mem_edge t.graph i j then acc := (i, j, edge_label t i j) :: !acc
    done
  done;
  !acc

let clique t x = Distribution.holders t.dist x

(* The x-filtered graph: only edges whose label contains a variable other
   than x (Definition 3 condition ii). *)
let filtered_edge t ~var i j =
  Graph.mem_edge t.graph i j
  &&
  let label = t.labels.(i).(j) in
  Bitset.fold (fun v acc -> acc || v <> var) label false

let hoops ?(max_hoops = 100_000) t ~var =
  let clique_set = Distribution.holders_set t.dist var in
  let members = Distribution.holders t.dist var in
  let n = n_procs t in
  (* Build, per endpoint pair (a, b), the graph whose vertices are
     non-clique processes plus a and b, with x-filtered edges; enumerate
     simple a→b paths.  The accumulator carries its own length and is
     grown by prepending (reversed at the end), keeping the whole
     enumeration linear in the number of hoops rather than quadratic. *)
  let collect (a, b) (count, acc) =
    if count >= max_hoops then (count, acc)
    else begin
      let g = Graph.create n in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let endpoint v = v = a || v = b in
          let allowed v = endpoint v || not (Bitset.mem clique_set v) in
          if allowed i && allowed j && filtered_edge t ~var i j then
            Graph.add_undirected_edge g i j
        done
      done;
      let paths = Graph.simple_paths ~max_paths:(max_hoops - count) g ~src:a ~dst:b in
      (* Drop paths that bounce through the other endpoint as an interior
         vertex (simple_paths already forbids revisits, but b can appear
         only as the terminus, and a cannot reappear; also forbid paths
         whose interior touches a or b). *)
      let valid path =
        match path with
        | [] | [ _ ] -> false
        | _ :: rest ->
            let interior = List.filteri (fun k _ -> k < List.length rest - 1) rest in
            List.for_all (fun v -> v <> a && v <> b) interior
      in
      List.fold_left
        (fun (count, acc) path ->
          if valid path then (count + 1, path :: acc) else (count, acc))
        (count, acc) paths
    end
  in
  let rec pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  let _, acc = List.fold_left (fun acc pair -> collect pair acc) (0, []) (pairs members) in
  List.rev acc

let on_hoop t ~var ~proc =
  let clique_set = Distribution.holders_set t.dist var in
  if Bitset.mem clique_set proc then
    (* Clique members are hoop endpoints whenever any hoop exists touching
       them; Theorem 1 already makes them x-relevant, and [on_hoop] is
       specified as the interior test. *)
    false
  else begin
    let n = n_procs t in
    (* Flow network: vertex split for non-clique vertices (except proc);
       source = proc's out node; each clique member is a collapsed node
       feeding the sink with capacity 1 (distinct endpoints). *)
    let v_in v = 2 * v in
    let v_out v = (2 * v) + 1 in
    let sink = 2 * n in
    let net = Flow.create ((2 * n) + 1) in
    for v = 0 to n - 1 do
      if not (Bitset.mem clique_set v) then
        Flow.add_edge net ~src:(v_in v) ~dst:(v_out v)
          ~cap:(if v = proc then 2 else 1)
    done;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if filtered_edge t ~var i j then begin
          let ci = Bitset.mem clique_set i and cj = Bitset.mem clique_set j in
          match (ci, cj) with
          | false, false ->
              Flow.add_edge net ~src:(v_out i) ~dst:(v_in j) ~cap:1;
              Flow.add_edge net ~src:(v_out j) ~dst:(v_in i) ~cap:1
          | false, true -> Flow.add_edge net ~src:(v_out i) ~dst:(v_in j) ~cap:1
          | true, false -> Flow.add_edge net ~src:(v_out j) ~dst:(v_in i) ~cap:1
          | true, true -> () (* clique-to-clique edges are irrelevant here *)
        end
      done
    done;
    (* Each clique vertex may serve as at most one endpoint. *)
    Bitset.iter
      (fun c ->
        Flow.add_edge net ~src:(v_in c) ~dst:sink ~cap:1)
      clique_set;
    Flow.max_flow net ~source:(v_out proc) ~sink >= 2
  end

let x_relevant t ~var =
  let set = Distribution.holders_set t.dist var in
  for p = 0 to n_procs t - 1 do
    if (not (Bitset.mem set p)) && on_hoop t ~var ~proc:p then Bitset.add set p
  done;
  set

let x_relevant_by_enumeration ?max_hoops t ~var =
  let set = Distribution.holders_set t.dist var in
  List.iter
    (fun path -> List.iter (Bitset.add set) path)
    (hoops ?max_hoops t ~var);
  set

let hoop_free t ~var =
  let clique_set = Distribution.holders_set t.dist var in
  let n = n_procs t in
  (* A hoop exists iff (a) two clique members share an x-filtered edge
     directly, or (b) some component of the x-filtered graph deprived of
     C(x) is adjacent (via filtered edges) to two distinct clique members. *)
  let direct = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        Bitset.mem clique_set i && Bitset.mem clique_set j
        && filtered_edge t ~var i j
      then direct := true
    done
  done;
  if !direct then false
  else begin
    let uf = Repro_util.Union_find.create n in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if
          (not (Bitset.mem clique_set i))
          && (not (Bitset.mem clique_set j))
          && filtered_edge t ~var i j
        then Repro_util.Union_find.union uf i j
      done
    done;
    (* clique neighbours per component root *)
    let neighbours_of_root = Hashtbl.create 16 in
    let two_reached = ref false in
    for v = 0 to n - 1 do
      if not (Bitset.mem clique_set v) then
        Bitset.iter
          (fun c ->
            if filtered_edge t ~var v c then begin
              let root = Repro_util.Union_find.find uf v in
              match Hashtbl.find_opt neighbours_of_root root with
              | None -> Hashtbl.add neighbours_of_root root c
              | Some c0 -> if c0 <> c then two_reached := true
            end)
          clique_set
    done;
    not !two_reached
  end

let fully_hoop_free t =
  List.for_all
    (fun x -> hoop_free t ~var:x)
    (List.init (Distribution.n_vars t.dist) Fun.id)

let no_external_relevance t =
  List.for_all
    (fun x -> Bitset.equal (x_relevant t ~var:x) (Distribution.holders_set t.dist x))
    (List.init (Distribution.n_vars t.dist) Fun.id)

let pp ppf t =
  Format.fprintf ppf "share graph on %d processes:@." (n_procs t);
  List.iter
    (fun (i, j, label) ->
      Format.fprintf ppf "  p%d -- p%d  {%a}@." i j
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf v -> Format.fprintf ppf "x%d" v))
        label)
    (edges t)

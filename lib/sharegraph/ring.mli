(** Consistent-hash placement: a seeded ring with virtual nodes.

    The paper's impossibility result concerns variable distributions that
    are {e not} fixed a priori; this module is the repo's first placement
    layer that can be reshaped at runtime.  Each member contributes
    [vnodes] points to a ring of hashed positions; variable [x] is owned
    by the first [k] distinct members found walking clockwise from
    [hash x].  Hashing is a pure SplitMix64-style mix of [(seed, input)],
    so two processes that agree on [(seed, vnodes, members)] compute
    byte-identical placements with no coordination — the reconfiguration
    protocol ships member sets, never assignments.

    Adding or removing one member moves only the arcs adjacent to its
    points: in expectation [K/n] of [K] keys change primary owner, the
    classic minimal-movement property ({!moved} measures it, the qcheck
    suite bounds it). *)

type t

val make : seed:int -> vnodes:int -> members:int list -> t
(** @raise Invalid_argument on an empty/duplicated member list, member
    ids outside [0, 0xFFFF], or [vnodes < 1]. *)

val seed : t -> int
val vnodes : t -> int

val members : t -> int list
(** Ascending. *)

val n_members : t -> int
val is_member : t -> int -> bool

val owner : t -> int -> int
(** [owner t x] is the primary owner (first clockwise member) of
    variable [x]. *)

val replicas : t -> k:int -> int -> int list
(** [replicas t ~k x] is the replica set of [x]: the first
    [min k (n_members t)] distinct members clockwise from [hash x],
    ascending by member id.  The primary {!owner} is always included. *)

val add_member : t -> int -> t
(** @raise Invalid_argument if already a member or out of range. *)

val remove_member : t -> int -> t
(** @raise Invalid_argument if absent or if it is the last member. *)

val to_distribution : t -> k:int -> n_procs:int -> n_vars:int -> Distribution.t
(** Materialise per-variable replica sets as a static {!Distribution.t}
    over processes [0..n_procs-1] (non-members hold nothing).
    @raise Invalid_argument if a member id is [>= n_procs]. *)

(** {1 Placement measurement} *)

type balance = {
  b_min : int;  (** lightest member's assignment count *)
  b_max : int;  (** heaviest member's assignment count *)
  b_mean : float;  (** [k * n_vars / n_members] *)
  b_ratio : float;  (** [b_max /. b_mean] — 1.0 is perfect balance *)
}

val balance : t -> k:int -> n_vars:int -> balance
(** Replica-set assignment counts over variables [0..n_vars-1]. *)

val load : t -> k:int -> n_vars:int -> (int * int) list
(** [(member, assignments)] per member, ascending by member id. *)

val moved : before:t -> after:t -> k:int -> n_vars:int -> int
(** Number of (variable, member) assignments present after but not
    before — i.e. how many variable copies a reconfiguration must
    transfer.  For [k = 1] this is the count of variables whose owner
    changed. *)

(** {1 Specs}

    Compact textual form for CLI use:
    ["hash:n=5,k=2,vnodes=64,seed=7"] (any order; [n] mandatory, defaults
    [k=2], [vnodes=64], [seed=0]).  Members are [0..n-1]. *)

type spec = { s_n : int; s_k : int; s_vnodes : int; s_seed : int }

val spec_of_string : string -> (spec, string) result
val spec_to_string : spec -> string
val of_spec : spec -> t

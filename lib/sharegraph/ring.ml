(* Seeded consistent-hash ring with virtual nodes.  Placement must be
   bit-identical across processes that share (seed, vnodes, members), so
   every hash is a pure SplitMix64 finalizer over the inputs — no
   Hashtbl.hash (layout-dependent), no wall clock, no global state. *)

type t = {
  seed : int;
  vnodes : int;
  members : int array;  (* ascending, non-empty *)
  points : int array;  (* ring positions, ascending *)
  point_owner : int array;  (* member contributing points.(i) *)
}

let seed t = t.seed
let vnodes t = t.vnodes
let members t = Array.to_list t.members
let n_members t = Array.length t.members

let is_member t m =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if t.members.(mid) = m then true
      else if t.members.(mid) < m then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length t.members)

(* SplitMix64 finalizer; result masked to OCaml's positive int range so
   ring positions compare with plain (<). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let hash2 seed a b =
  let open Int64 in
  let h =
    mix64
      (add
         (mix64 (add (of_int seed) 0x9e3779b97f4a7c15L))
         (logxor (of_int a) (shift_left (of_int b) 20)))
  in
  to_int h land Stdlib.max_int

let point_hash t member vnode = hash2 t.seed member (vnode + 1)
let key_hash t x = hash2 t.seed x 0

let rebuild seed vnodes members =
  let n = Array.length members in
  let total = n * vnodes in
  let pts = Array.make total (0, 0) in
  let t = { seed; vnodes; members; points = [||]; point_owner = [||] } in
  Array.iteri
    (fun i m ->
      for v = 0 to vnodes - 1 do
        pts.((i * vnodes) + v) <- (point_hash t m v, m)
      done)
    members;
  (* ties broken by member id so equal hashes cannot make placement
     depend on sort stability *)
  Array.sort compare pts;
  {
    t with
    points = Array.map fst pts;
    point_owner = Array.map snd pts;
  }

let make ~seed ~vnodes ~members =
  if vnodes < 1 then invalid_arg "Ring.make: vnodes < 1";
  let members = Array.of_list members in
  Array.sort compare members;
  let n = Array.length members in
  if n = 0 then invalid_arg "Ring.make: no members";
  Array.iteri
    (fun i m ->
      if m < 0 || m > 0xFFFF then invalid_arg "Ring.make: member out of range";
      if i > 0 && members.(i - 1) = m then
        invalid_arg "Ring.make: duplicate member")
    members;
  rebuild seed vnodes members

let add_member t m =
  if m < 0 || m > 0xFFFF then invalid_arg "Ring.add_member: out of range";
  if is_member t m then invalid_arg "Ring.add_member: already a member";
  rebuild t.seed t.vnodes
    (Array.of_list (List.sort compare (m :: Array.to_list t.members)))

let remove_member t m =
  if not (is_member t m) then invalid_arg "Ring.remove_member: not a member";
  if Array.length t.members = 1 then
    invalid_arg "Ring.remove_member: last member";
  rebuild t.seed t.vnodes
    (Array.of_list (List.filter (fun x -> x <> m) (Array.to_list t.members)))

(* index of the first ring point >= h, wrapping to 0 past the end *)
let successor t h =
  let n = Array.length t.points in
  let rec go lo hi = (* smallest i with points.(i) >= h, else n *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.points.(mid) < h then go (mid + 1) hi else go lo mid
  in
  let i = go 0 n in
  if i = n then 0 else i

let replicas t ~k x =
  if k < 1 then invalid_arg "Ring.replicas: k < 1";
  let want = min k (Array.length t.members) in
  let n = Array.length t.points in
  let start = successor t (key_hash t x) in
  let picked = ref [] in
  let count = ref 0 in
  let i = ref start in
  let steps = ref 0 in
  while !count < want && !steps < n do
    let m = t.point_owner.(!i) in
    if not (List.mem m !picked) then begin
      picked := m :: !picked;
      incr count
    end;
    i := if !i + 1 = n then 0 else !i + 1;
    incr steps
  done;
  List.sort compare !picked

let owner t x =
  let start = successor t (key_hash t x) in
  t.point_owner.(start)

let to_distribution t ~k ~n_procs ~n_vars =
  Array.iter
    (fun m ->
      if m >= n_procs then
        invalid_arg "Ring.to_distribution: member id >= n_procs")
    t.members;
  let per_proc = Array.make n_procs [] in
  for x = n_vars - 1 downto 0 do
    List.iter (fun m -> per_proc.(m) <- x :: per_proc.(m)) (replicas t ~k x)
  done;
  Distribution.make ~n_procs ~n_vars per_proc

type balance = { b_min : int; b_max : int; b_mean : float; b_ratio : float }

let load t ~k ~n_vars =
  let counts = Hashtbl.create 16 in
  Array.iter (fun m -> Hashtbl.replace counts m 0) t.members;
  for x = 0 to n_vars - 1 do
    List.iter
      (fun m -> Hashtbl.replace counts m (Hashtbl.find counts m + 1))
      (replicas t ~k x)
  done;
  List.map (fun m -> (m, Hashtbl.find counts m)) (Array.to_list t.members)

let balance t ~k ~n_vars =
  let loads = List.map snd (load t ~k ~n_vars) in
  let b_min = List.fold_left min max_int loads in
  let b_max = List.fold_left max 0 loads in
  let k' = min k (Array.length t.members) in
  let b_mean = float_of_int (k' * n_vars) /. float_of_int (n_members t) in
  let b_ratio = if b_mean > 0.0 then float_of_int b_max /. b_mean else 1.0 in
  { b_min; b_max; b_mean; b_ratio }

let moved ~before ~after ~k ~n_vars =
  let n = ref 0 in
  for x = 0 to n_vars - 1 do
    let old_set = replicas before ~k x in
    List.iter
      (fun m -> if not (List.mem m old_set) then incr n)
      (replicas after ~k x)
  done;
  !n

(* --- specs ------------------------------------------------------------------ *)

type spec = { s_n : int; s_k : int; s_vnodes : int; s_seed : int }

let spec_to_string s =
  Printf.sprintf "hash:n=%d,k=%d,vnodes=%d,seed=%d" s.s_n s.s_k s.s_vnodes
    s.s_seed

let spec_of_string str =
  let ( let* ) = Result.bind in
  let* body =
    match String.index_opt str ':' with
    | Some i when String.sub str 0 i = "hash" ->
        Ok (String.sub str (i + 1) (String.length str - i - 1))
    | _ -> Error "ring spec must start with \"hash:\""
  in
  let* fields =
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "ring spec: missing '=' in %S" part)
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match int_of_string_opt v with
            | None -> Error (Printf.sprintf "ring spec: bad value in %S" part)
            | Some v -> Ok ((key, v) :: acc)))
      (Ok [])
      (String.split_on_char ',' (String.trim body))
  in
  let get key default = Option.value ~default (List.assoc_opt key fields) in
  let* () =
    match
      List.find_opt
        (fun (k, _) -> not (List.mem k [ "n"; "k"; "vnodes"; "seed" ]))
        fields
    with
    | Some (k, _) -> Error (Printf.sprintf "ring spec: unknown key %S" k)
    | None -> Ok ()
  in
  let s =
    {
      s_n = get "n" 0;
      s_k = get "k" 2;
      s_vnodes = get "vnodes" 64;
      s_seed = get "seed" 0;
    }
  in
  if s.s_n < 1 then Error "ring spec: n must be >= 1"
  else if s.s_k < 1 then Error "ring spec: k must be >= 1"
  else if s.s_vnodes < 1 then Error "ring spec: vnodes must be >= 1"
  else Ok s

let of_spec s =
  make ~seed:s.s_seed ~vnodes:s.s_vnodes ~members:(List.init s.s_n Fun.id)

module Graph = Repro_util.Graph
module Pool = Repro_util.Pool

type criterion =
  | Sequential
  | Causal
  | Semi_causal
  | Lazy_causal
  | Lazy_semi_causal
  | Pram
  | Slow
  | Cache

let all_criteria =
  [ Sequential; Causal; Semi_causal; Lazy_causal; Lazy_semi_causal; Pram; Cache; Slow ]

let criterion_name = function
  | Sequential -> "sequential"
  | Causal -> "causal"
  | Semi_causal -> "semi-causal"
  | Lazy_causal -> "lazy-causal"
  | Lazy_semi_causal -> "lazy-semi-causal"
  | Pram -> "pram"
  | Slow -> "slow"
  | Cache -> "cache"

type verdict = Consistent | Inconsistent | Undecidable of History.rf_error

(* --- int-array bitsets ---------------------------------------------------- *)

(* The search state lives in flat [int array] bit words (32 bits per word)
   rather than {!Repro_util.Bitset}'s bytes: membership, subset and the
   packed memo key below all touch machine words with no bounds checks
   beyond the array's own, and the placed-set words double as the first
   half of the memo key with a single [Array.blit]. *)

let words_for k = (k + 31) lsr 5

let iset_mem w i = w.(i lsr 5) land (1 lsl (i land 31)) <> 0

let iset_add w i = w.(i lsr 5) <- w.(i lsr 5) lor (1 lsl (i land 31))

let iset_remove w i = w.(i lsr 5) <- w.(i lsr 5) land lnot (1 lsl (i land 31))

(* a ⊆ b, same word count *)
let iset_subset a b =
  let rec scan i = i < 0 || (a.(i) land lnot b.(i) = 0 && scan (i - 1)) in
  scan (Array.length a - 1)

(* --- packed state keys ---------------------------------------------------- *)

(* A search state is (placed set, last write per variable slot).  The memo
   key packs both into one [int array]: the placed bit words verbatim,
   then the last-write slots, 16 bits each, three per word (a slot stores
   [w + 1] ∈ [0, k], so 16 bits suffice whenever [k ≤ 0xffff]; larger
   subsets fall back to one slot per word, keeping the encoding injective
   for every [k]). *)

let slots_fit_16 k = k <= 0xffff

let slot_words_for ~k n_vars = if slots_fit_16 k then (n_vars + 2) / 3 else n_vars

(* Fill [scratch] (of length [n_placed_words + slot_words]) from the
   current state; allocation-free. *)
let pack_into ~k ~n_placed_words scratch placed last_write =
  Array.blit placed 0 scratch 0 n_placed_words;
  let n_vars = Array.length last_write in
  if slots_fit_16 k then begin
    Array.fill scratch n_placed_words ((n_vars + 2) / 3) 0;
    for j = 0 to n_vars - 1 do
      let word = n_placed_words + (j / 3) and shift = 16 * (j mod 3) in
      scratch.(word) <- scratch.(word) lor ((last_write.(j) + 1) lsl shift)
    done
  end
  else
    for j = 0 to n_vars - 1 do
      scratch.(n_placed_words + j) <- last_write.(j) + 1
    done

(* Open-addressing set of packed keys.  [add_if_absent] hashes the caller's
   scratch array (FNV-1a over the words) and compares against stored keys
   in place: the probe path allocates nothing; only a genuinely new state
   pays one [Array.copy]. *)
module Packed_tbl = struct
  type t = { mutable keys : int array array; mutable count : int }

  let empty_key : int array = [||]

  (* physical [empty_key] marks free buckets; real keys are never empty
     (k = 0 histories short-circuit before the search) *)

  let create () = { keys = Array.make 64 empty_key; count = 0 }

  (* 64-bit FNV-1a offset basis truncated to OCaml's int range *)
  let fnv_offset = 0x0bf29ce484222325
  let fnv_prime = 0x100000001b3

  (* FNV-1a folded over whole words mixes upward only (the low bits of
     the product never feel the high bits), and open addressing indexes by
     the LOW bits — finalize with an avalanche step (splitmix64-style) so
     single-bit key differences reach the bucket index. *)
  let hash key =
    let h = ref fnv_offset in
    for i = 0 to Array.length key - 1 do
      h := (!h lxor key.(i)) * fnv_prime
    done;
    let h = !h in
    let h = h lxor (h lsr 31) in
    let h = h * 0x2545F4914F6CDD1D in
    let h = h lxor (h lsr 29) in
    h land max_int

  let key_equal a b =
    let rec eq i = i < 0 || (a.(i) = b.(i) && eq (i - 1)) in
    Array.length a = Array.length b && eq (Array.length a - 1)

  let resize t =
    let old = t.keys in
    t.keys <- Array.make (2 * Array.length old) empty_key;
    let mask = Array.length t.keys - 1 in
    Array.iter
      (fun key ->
        if key != empty_key then begin
          let rec probe i =
            if t.keys.(i) == empty_key then t.keys.(i) <- key
            else probe ((i + 1) land mask)
          in
          probe (hash key land mask)
        end)
      old

  let add_if_absent t scratch =
    if 2 * (t.count + 1) > Array.length t.keys then resize t;
    let mask = Array.length t.keys - 1 in
    let rec probe i =
      let stored = t.keys.(i) in
      if stored == empty_key then begin
        t.keys.(i) <- Array.copy scratch;
        t.count <- t.count + 1;
        true
      end
      else if key_equal stored scratch then false
      else probe ((i + 1) land mask)
    in
    probe (hash scratch land mask)
end

(* --- serialization search ------------------------------------------------ *)

(* Dense local view of a subset of operations. *)
type view = {
  ops : Op.t array; (* local idx -> op *)
  gids : int array; (* local idx -> global id *)
  preds : int array array; (* local idx -> relation predecessors (bit words) *)
  var_slot_of : int array; (* variable -> dense var slot, -1 when absent *)
  n_vars : int;
  source : int array;
      (* local idx -> for reads: local idx of the write supplying the
         value (differentiated histories have at most one candidate),
         [-1] for Init-reads, [-2] for writes and for reads whose source
         lies outside the subset *)
}

let make_view h ~subset ~relation =
  let all_ops = History.ops h in
  let gids = Array.of_list subset in
  let k = Array.length gids in
  let local_of = Array.make (History.n_ops h) (-1) in
  Array.iteri (fun i gid -> local_of.(gid) <- i) gids;
  let ops = Array.map (fun gid -> all_ops.(gid)) gids in
  let nw = words_for k in
  let preds = Array.init k (fun _ -> Array.make nw 0) in
  Array.iteri
    (fun i gid ->
      List.iter
        (fun succ_gid ->
          let j = local_of.(succ_gid) in
          if j >= 0 then iset_add preds.(j) i)
        (Graph.succ relation gid))
    gids;
  let max_var = Array.fold_left (fun m (o : Op.t) -> Stdlib.max m o.var) (-1) ops in
  let var_slot_of = Array.make (max_var + 1) (-1) in
  let n_vars = ref 0 in
  Array.iter
    (fun (o : Op.t) ->
      if var_slot_of.(o.var) < 0 then begin
        var_slot_of.(o.var) <- !n_vars;
        incr n_vars
      end)
    ops;
  let writer_of = Hashtbl.create 16 in
  Array.iteri
    (fun i (o : Op.t) ->
      if Op.is_write o then Hashtbl.replace writer_of (o.var, o.value) i)
    ops;
  let source =
    Array.map
      (fun (o : Op.t) ->
        match o.kind with
        | Op.Write -> -2
        | Op.Read -> (
            match o.value with
            | Op.Init -> -1
            | Op.Val _ -> (
                match Hashtbl.find_opt writer_of (o.var, o.value) with
                | Some w -> w
                | None -> -2)))
      ops
  in
  { ops; gids; preds; var_slot_of; n_vars = !n_vars; source }

let var_slot view (o : Op.t) = view.var_slot_of.(o.var)

(* Legality of placing a read given the last placed write per variable
   slot (-1 = none). *)
let read_legal view last_write (o : Op.t) =
  let slot = var_slot view o in
  match o.value with
  | Op.Init -> last_write.(slot) = -1
  | Op.Val _ ->
      last_write.(slot) >= 0
      && Op.equal_value view.ops.(last_write.(slot)).Op.value o.value

let find_serialization h ~subset ~relation =
  let view = make_view h ~subset ~relation in
  let k = Array.length view.ops in
  if k = 0 then Some []
  else begin
    let nw = words_for k in
    let placed = Array.make nw 0 in
    let last_write = Array.make view.n_vars (-1) in
    let order = ref [] in
    let memo = Packed_tbl.create () in
    let scratch = Array.make (nw + slot_words_for ~k view.n_vars) 0 in
    let ready i =
      (not (iset_mem placed i)) && iset_subset view.preds.(i) placed
    in
    let place i =
      iset_add placed i;
      order := i :: !order;
      if Op.is_write view.ops.(i) then last_write.(var_slot view view.ops.(i)) <- i
    in
    (* Greedily place every ready, legal read: never harmful (a read leaves
       the legality state untouched, so any completion with it later also
       works with it now). Returns the list of reads placed, for rollback. *)
    let place_ready_reads () =
      let placed_now = ref [] in
      let progress = ref true in
      while !progress do
        progress := false;
        for i = 0 to k - 1 do
          if
            ready i
            && Op.is_read view.ops.(i)
            && read_legal view last_write view.ops.(i)
          then begin
            place i;
            placed_now := i :: !placed_now;
            progress := true
          end
        done
      done;
      !placed_now
    in
    let unplace_reads reads =
      List.iter
        (fun i ->
          iset_remove placed i;
          order := List.tl !order)
        reads
    in
    (* A pending read whose legality window has closed for good dooms the
       whole branch: Init-reads once their variable has been written,
       sourced reads once their source write has been overwritten.  (The
       greedy pass has already taken every ready legal read, so any
       unplaced read is currently illegal or not ready.) *)
    let doomed () =
      let rec scan i =
        if i >= k then false
        else if iset_mem placed i || Op.is_write view.ops.(i) then scan (i + 1)
        else begin
          let slot = var_slot view view.ops.(i) in
          match view.source.(i) with
          | -1 -> last_write.(slot) <> -1 || scan (i + 1)
          | -2 -> true (* no candidate writer at all *)
          | w -> (iset_mem placed w && last_write.(slot) <> w) || scan (i + 1)
        end
      in
      scan 0
    in
    let state_unvisited () =
      pack_into ~k ~n_placed_words:nw scratch placed last_write;
      Packed_tbl.add_if_absent memo scratch
    in
    let rec search n_placed =
      let reads = place_ready_reads () in
      let n_placed = n_placed + List.length reads in
      let result =
        if n_placed = k then true
        else if doomed () then false
        else if not (state_unvisited ()) then false
        else begin
          (* branch over ready writes, trying sources of pending reads
             first: they are the only writes that unblock progress *)
          let wanted = Array.make k false in
          for i = 0 to k - 1 do
            if
              (not (iset_mem placed i))
              && Op.is_read view.ops.(i)
              && view.source.(i) >= 0
            then wanted.(view.source.(i)) <- true
          done;
          let candidates = ref [] in
          for i = k - 1 downto 0 do
            if ready i && Op.is_write view.ops.(i) then candidates := i :: !candidates
          done;
          let preferred, rest = List.partition (fun i -> wanted.(i)) !candidates in
          let rec try_writes = function
            | [] -> false
            | i :: tl ->
                let slot = var_slot view view.ops.(i) in
                let saved = last_write.(slot) in
                place i;
                if search (n_placed + 1) then true
                else begin
                  iset_remove placed i;
                  order := List.tl !order;
                  last_write.(slot) <- saved;
                  try_writes tl
                end
          in
          try_writes (preferred @ rest)
        end
      in
      if not result then unplace_reads reads;
      result
    in
    if search 0 then Some (List.rev_map (fun i -> view.gids.(i)) !order) else None
  end

let validate_serialization h ~subset ~relation ~order =
  let sorted_subset = List.sort_uniq compare subset in
  let sorted_order = List.sort_uniq compare order in
  List.length subset = List.length sorted_subset
  && List.length order = List.length sorted_order
  && sorted_subset = sorted_order
  && Orders.respects ~order relation
  &&
  (* legality *)
  let last_value = Hashtbl.create 16 in
  List.for_all
    (fun gid ->
      let o = History.op h gid in
      match o.Op.kind with
      | Op.Write ->
          Hashtbl.replace last_value o.Op.var o.Op.value;
          true
      | Op.Read -> (
          match Hashtbl.find_opt last_value o.Op.var with
          | None -> o.Op.value = Op.Init
          | Some v -> Op.equal_value v o.Op.value))
    order

(* --- engine selection ----------------------------------------------------- *)

type engine = Search | Saturation

let engine_name = function Search -> "search" | Saturation -> "saturation"

let default_engine =
  ref
    (match Sys.getenv_opt "REPRO_CHECK_ENGINE" with
    | Some "search" -> Search
    | _ -> Saturation)

let set_default_engine e = default_engine := e

(* With REPRO_CHECK_ORACLE set, every saturation-engine decision is
   re-derived by the search and a disagreement aborts the process: the
   polynomial front-end is sound by construction, and this flag (plus the
   qcheck parity suite) is the standing proof obligation. *)
let oracle = lazy (Sys.getenv_opt "REPRO_CHECK_ORACLE" <> None)

(* Decide one unit: the saturation front-end answers directly when it can
   prove the verdict, and punts to the exact search otherwise, so both
   engines decide identically on every input. *)
let serializable ?engine h ~subset ~relation =
  let engine = match engine with Some e -> e | None -> !default_engine in
  let search () = find_serialization h ~subset ~relation <> None in
  let verdict =
    match engine with
    | Search -> search ()
    | Saturation -> (
        match Saturation.serializable h ~subset ~relation with
        | Saturation.Consistent -> true
        | Saturation.Inconsistent -> false
        | Saturation.Unknown -> search ())
  in
  (if engine = Saturation && Lazy.force oracle then
     let reference = search () in
     if reference <> verdict then
       failwith
         (Printf.sprintf
            "Checker: engine mismatch on a %d-op unit (saturation=%b search=%b)"
            (List.length subset) verdict reference));
  verdict

(* --- criterion decomposition --------------------------------------------- *)

type unit_key = Whole | Proc of int | Var of int | Proc_var of int * int

let unit_key_name = function
  | Whole -> "all"
  | Proc p -> Printf.sprintf "p%d" p
  | Var x -> Printf.sprintf "x%d" x
  | Proc_var (p, x) -> Printf.sprintf "p%d/x%d" p x

(* Each criterion is a conjunction of (subset, relation) serialization
   units; [units] returns them with a diagnostic key.  All relations and
   operation indexes come from the per-history cache, so an 8-criteria
   sweep over one history computes each of them exactly once. *)
let units criterion rc =
  let h = Relcache.history rc in
  match criterion with
  | Sequential -> [ (Whole, Relcache.all_ids rc, Relcache.program_order rc) ]
  | Causal | Semi_causal | Lazy_causal | Lazy_semi_causal | Pram ->
      let relation =
        match criterion with
        | Causal -> Relcache.causal rc
        | Semi_causal -> Relcache.semi_causal rc
        | Lazy_causal -> Relcache.lazy_causal rc
        | Lazy_semi_causal -> Relcache.lazy_semi_causal rc
        | Pram -> Relcache.pram rc
        | Sequential | Slow | Cache -> assert false
      in
      List.init (History.n_procs h) (fun p -> (Proc p, Relcache.proc_ids rc p, relation))
  | Cache ->
      let relation = Relcache.program_order rc in
      History.vars h |> List.map (fun x -> (Var x, Relcache.var_ids rc x, relation))
  | Slow ->
      let relation = Relcache.slow rc in
      List.concat_map
        (fun p ->
          History.vars h
          |> List.filter_map (fun x ->
                 match Relcache.proc_var_ids rc p x with
                 | [] -> None
                 | subset -> Some (Proc_var (p, x), subset, relation)))
        (List.init (History.n_procs h) Fun.id)

let check_with ~for_all ?engine criterion rc =
  match Relcache.read_from rc with
  | Error (History.Dangling_read _) -> Inconsistent
  | Error (History.Ambiguous_read _ as e) -> Undecidable e
  | Ok _ ->
      let h = Relcache.history rc in
      let consistent =
        for_all
          (fun (_, subset, relation) -> serializable ?engine h ~subset ~relation)
          (units criterion rc)
      in
      if consistent then Consistent else Inconsistent

let check_cached ?engine rc criterion =
  check_with ~for_all:List.for_all ?engine criterion rc

let check ?engine criterion h =
  check_with ~for_all:List.for_all ?engine criterion (Relcache.create h)

let check_par ?pool ?engine criterion h =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  check_with
    ~for_all:(fun pred l -> Pool.for_all pool pred l)
    ?engine criterion (Relcache.create h)

let is_consistent criterion h =
  match check criterion h with
  | Consistent -> true
  | Inconsistent -> false
  | Undecidable e ->
      invalid_arg
        (Format.asprintf "Checker.is_consistent: %a" History.pp_rf_error e)

let witness criterion h =
  let rc = Relcache.create h in
  match Relcache.read_from rc with
  | Error _ -> None
  | Ok _ ->
      let rec collect acc = function
        | [] -> Some (List.rev acc)
        | (key, subset, relation) :: rest -> (
            match find_serialization h ~subset ~relation with
            | None -> None
            | Some order -> collect ((key, order) :: acc) rest)
      in
      collect [] (units criterion rc)

module Private = struct
  let pack_state ~k ~placed ~last_write =
    if k < 0 then invalid_arg "pack_state: negative k";
    let nw = words_for k in
    let words = Array.make nw 0 in
    List.iter
      (fun i ->
        if i < 0 || i >= k then invalid_arg "pack_state: placed index out of range";
        iset_add words i)
      placed;
    let scratch = Array.make (nw + slot_words_for ~k (Array.length last_write)) 0 in
    pack_into ~k ~n_placed_words:nw scratch words last_write;
    scratch
end

(** Polynomial decision front-end for serialization units.

    [find_serialization] decides a unit by exponential backtracking; for the
    differentiated histories this repo produces, polynomial procedures decide
    almost every unit directly:

    - {b saturation}: starting from the unit's relation, the read-from edges
      and the Init-read constraints, repeatedly add the write-order edges
      forced by every legal serialization (after Bouajjani et al., "On
      Verifying Causal Consistency", POPL 2017: if the source [w] of a read
      [r] of [x] precedes another [x]-write [w'], then [r] must precede
      [w']; if [w'] precedes [r], it must precede [w]).  A cycle among
      forced edges refutes the unit outright.
    - {b stream merge}: units whose reads all belong to one process (the
      PRAM/slow decomposition) are first attempted as a monotone merge of
      the other processes' FIFO write streams against the reader's program
      order (after Wei et al., "Verifying PRAM Consistency over Read/Write
      Traces of Data Replicas"); the candidate schedule is validated against
      the full unit relation before being accepted.
    - {b guided greedy}: an acyclic saturated order is handed to a
      deterministic constructor that places every ready legal read eagerly
      and only picks writes that keep all open read windows alive; success
      yields a legal serialization witness-free.

    Each procedure is {e sound} but not complete: [serializable] answers
    [Unknown] whenever none of them can prove the unit either way, and the
    caller falls back to the search.  Verdicts therefore always coincide
    with [find_serialization] — enforced by the [REPRO_CHECK_ORACLE] flag
    and the qcheck parity suite. *)

type outcome = Consistent | Inconsistent | Unknown

val serializable :
  History.t -> subset:int list -> relation:Orders.relation -> outcome
(** Decide whether the subset admits a legal serialization respecting the
    relation, with the same semantics as
    [find_serialization <> None] — including the search engine's treatment
    of reads whose source lies outside the subset (no serialization).
    Subsets containing two writes of the same value to the same variable
    (non-differentiated within the unit) answer [Unknown]. *)

(** {2 Instrumentation} *)

type counters = {
  merge_hits : int;  (** units proved consistent by the stream merge *)
  cycle_refutations : int;
      (** units refuted without search: a saturation cycle, or a read whose
          value no write in the unit supplies *)
  greedy_hits : int;  (** units proved consistent by the guided greedy *)
  unknowns : int;  (** units punted to the search engine *)
}

val counters : unit -> counters
(** Process-wide totals since start or the last {!reset_counters}; updated
    atomically (the parallel checker shares them across domains). *)

val reset_counters : unit -> unit

(** Deciding whether a history satisfies a consistency criterion.

    Each criterion is defined by the existence of serializations (Definition
    1) of certain operation subsets that respect a certain order relation:

    - {b Sequential} — one serialization of all of [H] respecting program
      order (Lamport 79);
    - {b Causal} — per process [i], a serialization of [H_{i+w}] respecting
      [7→_co] (Definition 2);
    - {b Lazy_causal} — idem with [7→_lco] (Definition 7);
    - {b Semi_causal} — idem with the semi-causality order of Ahamad et
      al. [1] (weak program order + weak writes-before, §4.2);
    - {b Lazy_semi_causal} — idem with [7→_lsc] (Definition 10);
    - {b Pram} — idem with [7→_pram] (Definition 12; the relation is not
      transitive and is restricted to [H_{i+w}] without closing through
      absent operations);
    - {b Slow} — per process [i] and variable [x], a serialization of
      [i]'s reads of [x] plus all writes of [x], respecting program order
      and read-from (Hutto–Ahamad slow memory);
    - {b Cache} — per variable [x], one serialization of all operations on
      [x] respecting program order (Goodman's cache consistency).

    Deciding existence is a backtracking search over legal linear
    extensions; it is exponential in the worst case but fast on the history
    sizes produced here (reads are placed greedily — which is always safe —
    and explored states are memoized).  Histories must be {e differentiated}
    (unique written values per variable, {!History.is_differentiated});
    protocol runs and generators in this repository always produce such
    histories. *)

type criterion =
  | Sequential
  | Causal
  | Semi_causal
  | Lazy_causal
  | Lazy_semi_causal
  | Pram
  | Slow
  | Cache

val all_criteria : criterion list
(** In decreasing-strength-ish order: [Sequential; Causal; Semi_causal;
    Lazy_causal; Lazy_semi_causal; Pram; Cache; Slow]. *)

val criterion_name : criterion -> string

type verdict = Consistent | Inconsistent | Undecidable of History.rf_error

val check : criterion -> History.t -> verdict
(** [Undecidable] only for ambiguous (non-differentiated) histories; a
    dangling read yields [Inconsistent]. *)

val check_par : ?pool:Repro_util.Pool.t -> criterion -> History.t -> verdict
(** [check] with the criterion's serialization units (per process for the
    causal family, per process × variable for Slow, per variable for Cache)
    farmed across a domain pool ({!Repro_util.Pool.default} unless [pool]
    is given), with early exit on the first inconsistent unit.  Always
    returns the same verdict as {!check}. *)

val is_consistent : criterion -> History.t -> bool
(** [check] collapsed to a boolean.
    @raise Invalid_argument on an ambiguous history. *)

(** {1 Serialization primitives} *)

val find_serialization :
  History.t -> subset:int list -> relation:Orders.relation -> int list option
(** [find_serialization h ~subset ~relation] searches for a legal
    serialization (Definition 1) of the operations with global ids [subset]
    that respects [relation] restricted to [subset].  Returns the global ids
    in serialization order. *)

val validate_serialization :
  History.t -> subset:int list -> relation:Orders.relation -> order:int list -> bool
(** [validate_serialization h ~subset ~relation ~order] checks in polynomial
    time that [order] is a permutation of [subset], is legal (every read
    returns the most recent preceding write's value, or [Init] if none), and
    respects [relation].  Used to audit witness serializations extracted
    from protocol runs. *)

val witness : criterion -> History.t -> (int * int list) list option
(** When consistent, the per-unit serializations found by the search: a list
    of [(unit_key, order)] — process id for the per-process criteria, a
    packed [(proc, var)] or var key for Slow/Cache, [0] for Sequential.
    [None] when inconsistent or undecidable.  Intended for debugging and for
    tests that cross-validate with {!validate_serialization}. *)

(**/**)

module Private : sig
  val pack_state : k:int -> placed:int list -> last_write:int array -> int array
  (** The packed memo-key encoding of a search state over a [k]-operation
      subset: [placed] lists the placed local indices, [last_write.(slot)]
      is the local index of the last placed write per variable slot ([-1]
      for none).  Exposed only so tests can assert injectivity of the
      encoding (notably around the 16-bit slot-packing boundary). *)
end

(** Deciding whether a history satisfies a consistency criterion.

    Each criterion is defined by the existence of serializations (Definition
    1) of certain operation subsets that respect a certain order relation:

    - {b Sequential} — one serialization of all of [H] respecting program
      order (Lamport 79);
    - {b Causal} — per process [i], a serialization of [H_{i+w}] respecting
      [7→_co] (Definition 2);
    - {b Lazy_causal} — idem with [7→_lco] (Definition 7);
    - {b Semi_causal} — idem with the semi-causality order of Ahamad et
      al. [1] (weak program order + weak writes-before, §4.2);
    - {b Lazy_semi_causal} — idem with [7→_lsc] (Definition 10);
    - {b Pram} — idem with [7→_pram] (Definition 12; the relation is not
      transitive and is restricted to [H_{i+w}] without closing through
      absent operations);
    - {b Slow} — per process [i] and variable [x], a serialization of
      [i]'s reads of [x] plus all writes of [x], respecting program order
      and read-from (Hutto–Ahamad slow memory);
    - {b Cache} — per variable [x], one serialization of all operations on
      [x] respecting program order (Goodman's cache consistency).

    Two engines decide existence.  The default {b saturation} engine
    ({!Saturation}) derives the write-order constraints forced by every
    legal serialization and refutes by cycle, proves by guided
    construction, and falls back to the search only when neither side can
    prove — polynomial on virtually every unit this repository produces.
    The {b search} engine is the original backtracking search over legal
    linear extensions: exponential in the worst case (reads are placed
    greedily — which is always safe — and explored states are memoized),
    and still the witness extractor and cross-check oracle.  Both engines
    return identical verdicts on every input; setting the
    [REPRO_CHECK_ORACLE] environment variable makes every
    saturation-engine decision assert agreement with the search.

    Histories must be {e differentiated} (unique written values per
    variable, {!History.is_differentiated}); protocol runs and generators
    in this repository always produce such histories. *)

type criterion =
  | Sequential
  | Causal
  | Semi_causal
  | Lazy_causal
  | Lazy_semi_causal
  | Pram
  | Slow
  | Cache

val all_criteria : criterion list
(** In decreasing-strength-ish order: [Sequential; Causal; Semi_causal;
    Lazy_causal; Lazy_semi_causal; Pram; Cache; Slow]. *)

val criterion_name : criterion -> string

type verdict = Consistent | Inconsistent | Undecidable of History.rf_error

type engine = Search | Saturation
(** [Search]: the exact backtracking serialization search.  [Saturation]:
    the polynomial front-end of {!Saturation}, falling back to the search
    on the rare unit it cannot prove.  Identical verdicts, different
    asymptotics. *)

val engine_name : engine -> string

val set_default_engine : engine -> unit
(** The engine used when a checking entry point is not passed [?engine].
    Starts as [Saturation] unless the [REPRO_CHECK_ENGINE] environment
    variable says [search]. *)

val check : ?engine:engine -> criterion -> History.t -> verdict
(** [Undecidable] only for ambiguous (non-differentiated) histories; a
    dangling read yields [Inconsistent]. *)

val check_cached : ?engine:engine -> Relcache.t -> criterion -> verdict
(** [check] against a shared relation cache: sweeping several criteria over
    one history computes read-from, program order and each closure once
    instead of once per criterion.  Same verdicts as {!check}. *)

val check_par :
  ?pool:Repro_util.Pool.t -> ?engine:engine -> criterion -> History.t -> verdict
(** [check] with the criterion's serialization units (per process for the
    causal family, per process × variable for Slow, per variable for Cache)
    farmed across a domain pool ({!Repro_util.Pool.default} unless [pool]
    is given), with early exit on the first inconsistent unit.  Always
    returns the same verdict as {!check}. *)

val is_consistent : criterion -> History.t -> bool
(** [check] collapsed to a boolean.
    @raise Invalid_argument on an ambiguous history. *)

(** {1 Serialization primitives} *)

val serializable :
  ?engine:engine -> History.t -> subset:int list -> relation:Orders.relation -> bool
(** Decide whether a legal serialization exists, without extracting one:
    [serializable h ~subset ~relation = (find_serialization h ~subset
    ~relation <> None)] for every input, but polynomial on almost all units
    under the saturation engine. *)

val find_serialization :
  History.t -> subset:int list -> relation:Orders.relation -> int list option
(** [find_serialization h ~subset ~relation] searches for a legal
    serialization (Definition 1) of the operations with global ids [subset]
    that respects [relation] restricted to [subset].  Returns the global ids
    in serialization order. *)

val validate_serialization :
  History.t -> subset:int list -> relation:Orders.relation -> order:int list -> bool
(** [validate_serialization h ~subset ~relation ~order] checks in polynomial
    time that [order] is a permutation of [subset], is legal (every read
    returns the most recent preceding write's value, or [Init] if none), and
    respects [relation].  Used to audit witness serializations extracted
    from protocol runs. *)

type unit_key = Whole | Proc of int | Var of int | Proc_var of int * int
(** Diagnostic key of a serialization unit: the whole history for
    Sequential, a process for the causal family and PRAM, a variable for
    Cache, a (process, variable) pair for Slow. *)

val unit_key_name : unit_key -> string

val witness : criterion -> History.t -> (unit_key * int list) list option
(** When consistent, the per-unit serializations found by the search,
    keyed by {!unit_key}.  [None] when inconsistent or undecidable.
    Intended for debugging and for tests that cross-validate with
    {!validate_serialization}.  Always uses the search engine: the
    saturation front-end only decides, it does not enumerate. *)

(**/**)

module Private : sig
  val pack_state : k:int -> placed:int list -> last_write:int array -> int array
  (** The packed memo-key encoding of a search state over a [k]-operation
      subset: [placed] lists the placed local indices, [last_write.(slot)]
      is the local index of the last placed write per variable slot ([-1]
      for none).  Exposed only so tests can assert injectivity of the
      encoding (notably around the 16-bit slot-packing boundary). *)
end

module Graph = Repro_util.Graph

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Monotonic_writes
  | Writes_follow_reads

let all_guarantees =
  [ Read_your_writes; Monotonic_reads; Monotonic_writes; Writes_follow_reads ]

let guarantee_name = function
  | Read_your_writes -> "read-your-writes"
  | Monotonic_reads -> "monotonic-reads"
  | Monotonic_writes -> "monotonic-writes"
  | Writes_follow_reads -> "writes-follow-reads"

type verdict = Holds | Violated | Undecidable of History.rf_error

(* Characteristic order for one observer: read-from plus the guarantee's
   program-order pairs.  RYW and MR only constrain the observer's own
   session; MW and WFR constrain every writer's session as seen by the
   observer. *)
let relation guarantee ~observer h rf =
  let g = Graph.create (History.n_ops h) in
  Array.iteri (fun r w -> match w with Some w -> Graph.add_edge g w r | None -> ()) rf;
  for p = 0 to History.n_procs h - 1 do
    let line = History.local h p in
    let len = Array.length line in
    for a = 0 to len - 2 do
      let o1 = line.(a) in
      for b = a + 1 to len - 1 do
        let o2 = line.(b) in
        let observer_reads =
          p = observer && Op.is_read o1 && Op.is_read o2
        in
        let keep =
          match guarantee with
          | Read_your_writes -> p = observer && Op.is_write o1
          | Monotonic_reads -> observer_reads
          | Monotonic_writes ->
              (* writer-side order, witnessed through the session's reads
                 taken in order *)
              (Op.is_write o1 && Op.is_write o2) || observer_reads
          | Writes_follow_reads -> observer_reads (* plus sources, below *)
        in
        if keep then Graph.add_edge g (History.id h o1) (History.id h o2)
      done;
      if guarantee = Writes_follow_reads && Op.is_read o1 then
        match rf.(History.id h o1) with
        | None -> ()
        | Some source ->
            for b = a + 1 to len - 1 do
              let o2 = line.(b) in
              if Op.is_write o2 then Graph.add_edge g source (History.id h o2)
            done
    done
  done;
  g

let check guarantee h =
  match History.read_from h with
  | Error (History.Dangling_read _) -> Violated
  | Error (History.Ambiguous_read _ as e) -> Undecidable e
  | Ok rf ->
      let ok =
        List.for_all
          (fun observer ->
            let rel = relation guarantee ~observer h rf in
            let subset = List.map (History.id h) (History.sub_history h observer) in
            Checker.serializable h ~subset ~relation:rel)
          (List.init (History.n_procs h) Fun.id)
      in
      if ok then Holds else Violated

let holds guarantee h =
  match check guarantee h with
  | Holds -> true
  | Violated -> false
  | Undecidable e ->
      invalid_arg (Format.asprintf "Session.holds: %a" History.pp_rf_error e)

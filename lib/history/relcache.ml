module Graph = Repro_util.Graph

type t = {
  h : History.t;
  ops : Op.t array Lazy.t; (* one shared copy of [History.ops h] *)
  rf : (int option array, History.rf_error) result Lazy.t;
  program_order : Orders.relation Lazy.t;
  read_from_relation : Orders.relation Lazy.t;
  causal : Orders.relation Lazy.t;
  semi_causal : Orders.relation Lazy.t;
  lazy_causal : Orders.relation Lazy.t;
  lazy_semi_causal : Orders.relation Lazy.t;
  pram : Orders.relation Lazy.t;
  slow : Orders.relation Lazy.t;
  proc_ids : int list array Lazy.t;
  var_ids : (int, int list) Hashtbl.t Lazy.t;
}

let rf_exn_of = function
  | Ok rf -> rf
  | Error e ->
      invalid_arg (Format.asprintf "Relcache: read-from undetermined (%a)" History.pp_rf_error e)

let create h =
  let ops = lazy (History.ops h) in
  let rf = lazy (History.read_from h) in
  let rf_exn = lazy (rf_exn_of (Lazy.force rf)) in
  let program_order = lazy (Orders.program_order h) in
  let read_from_relation = lazy (Orders.read_from_relation h (Lazy.force rf_exn)) in
  {
    h;
    ops;
    rf;
    program_order;
    read_from_relation;
    causal = lazy (Orders.causal h (Lazy.force rf_exn));
    semi_causal = lazy (Orders.semi_causal h (Lazy.force rf_exn));
    lazy_causal = lazy (Orders.lazy_causal h (Lazy.force rf_exn));
    lazy_semi_causal = lazy (Orders.lazy_semi_causal h (Lazy.force rf_exn));
    pram = lazy (Orders.pram h (Lazy.force rf_exn));
    slow =
      lazy (Graph.union (Lazy.force program_order) (Lazy.force read_from_relation));
    proc_ids =
      lazy
        (Array.init (History.n_procs h) (fun p ->
             List.map (History.id h) (History.sub_history h p)));
    var_ids =
      lazy
        (let tbl = Hashtbl.create 16 in
         let ops = Lazy.force ops in
         for gid = Array.length ops - 1 downto 0 do
           let x = ops.(gid).Op.var in
           let tail =
             match Hashtbl.find_opt tbl x with Some l -> l | None -> []
           in
           Hashtbl.replace tbl x (gid :: tail)
         done;
         tbl);
  }

let history t = t.h
let read_from t = Lazy.force t.rf
let rf_exn t = rf_exn_of (Lazy.force t.rf)
let program_order t = Lazy.force t.program_order
let read_from_relation t = Lazy.force t.read_from_relation
let causal t = Lazy.force t.causal
let semi_causal t = Lazy.force t.semi_causal
let lazy_causal t = Lazy.force t.lazy_causal
let lazy_semi_causal t = Lazy.force t.lazy_semi_causal
let pram t = Lazy.force t.pram
let slow t = Lazy.force t.slow

let all_ids t = List.init (History.n_ops t.h) Fun.id

let proc_ids t p = (Lazy.force t.proc_ids).(p)

let var_ids t x =
  match Hashtbl.find_opt (Lazy.force t.var_ids) x with
  | Some ids -> ids
  | None -> []

let proc_var_ids t p x =
  let ops = Lazy.force t.ops in
  List.filter
    (fun gid ->
      let o = ops.(gid) in
      Op.is_write o || o.Op.proc = p)
    (var_ids t x)

module Graph = Repro_util.Graph

type outcome = Consistent | Inconsistent | Unknown

type counters = {
  merge_hits : int;
  cycle_refutations : int;
  greedy_hits : int;
  unknowns : int;
}

let c_merge = Atomic.make 0
let c_cycle = Atomic.make 0
let c_greedy = Atomic.make 0
let c_unknown = Atomic.make 0

let counters () =
  {
    merge_hits = Atomic.get c_merge;
    cycle_refutations = Atomic.get c_cycle;
    greedy_hits = Atomic.get c_greedy;
    unknowns = Atomic.get c_unknown;
  }

let reset_counters () =
  Atomic.set c_merge 0;
  Atomic.set c_cycle 0;
  Atomic.set c_greedy 0;
  Atomic.set c_unknown 0

(* --- int-array bit rows (32 bits per word, as in the search engine) ------- *)

let words_for k = (k + 31) lsr 5
let iset_mem w i = w.(i lsr 5) land (1 lsl (i land 31)) <> 0
let iset_add w i = w.(i lsr 5) <- w.(i lsr 5) lor (1 lsl (i land 31))

let iset_subset a b =
  let rec scan i = i < 0 || (a.(i) land lnot b.(i) = 0 && scan (i - 1)) in
  scan (Array.length a - 1)

let row_union_into dst src =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) lor src.(i)
  done

let iter_row f row k =
  for i = 0 to k - 1 do
    if iset_mem row i then f i
  done

(* --- dense local view ----------------------------------------------------- *)

(* Mirrors the search engine's view, with two extra flags: a read whose
   (var, value) has no writer in the subset dooms the unit outright, and a
   subset with two writers of the same (var, value) is not differentiated
   within the unit — the value-based legality the engines share is then
   source-ambiguous, so we punt to the search. *)
type view = {
  ops : Op.t array;
  preds : int array array; (* local idx -> relation predecessors (bit words) *)
  var_slot_of : int array;
  n_vars : int;
  source : int array; (* reads: source local idx, -1 Init; writes: -2 *)
  missing_source : bool;
  dup_writer : bool;
}

let make_view h ~subset ~relation =
  let all_ops = History.ops h in
  let gids = Array.of_list subset in
  let k = Array.length gids in
  let local_of = Array.make (History.n_ops h) (-1) in
  Array.iteri (fun i gid -> local_of.(gid) <- i) gids;
  let ops = Array.map (fun gid -> all_ops.(gid)) gids in
  let nw = words_for k in
  let preds = Array.init k (fun _ -> Array.make nw 0) in
  Array.iteri
    (fun i gid ->
      List.iter
        (fun succ_gid ->
          let j = local_of.(succ_gid) in
          if j >= 0 then iset_add preds.(j) i)
        (Graph.succ relation gid))
    gids;
  let max_var = Array.fold_left (fun m (o : Op.t) -> Stdlib.max m o.var) (-1) ops in
  let var_slot_of = Array.make (max_var + 1) (-1) in
  let n_vars = ref 0 in
  Array.iter
    (fun (o : Op.t) ->
      if var_slot_of.(o.var) < 0 then begin
        var_slot_of.(o.var) <- !n_vars;
        incr n_vars
      end)
    ops;
  let writer_of = Hashtbl.create 16 in
  let dup_writer = ref false in
  Array.iteri
    (fun i (o : Op.t) ->
      if Op.is_write o then begin
        if Hashtbl.mem writer_of (o.var, o.value) then dup_writer := true;
        Hashtbl.replace writer_of (o.var, o.value) i
      end)
    ops;
  let missing_source = ref false in
  let source =
    Array.map
      (fun (o : Op.t) ->
        match o.kind with
        | Op.Write -> -2
        | Op.Read -> (
            match o.value with
            | Op.Init -> -1
            | Op.Val _ -> (
                match Hashtbl.find_opt writer_of (o.var, o.value) with
                | Some w -> w
                | None ->
                    missing_source := true;
                    -2)))
      ops
  in
  {
    ops;
    preds;
    var_slot_of;
    n_vars = !n_vars;
    source;
    missing_source = !missing_source;
    dup_writer = !dup_writer;
  }

let var_slot view (o : Op.t) = view.var_slot_of.(o.var)

(* --- stream merge (single-reader units: the PRAM/slow decomposition) ------ *)

(* Schedule the reader's operations in program order; whenever a read needs a
   value from another process, apply that process's write stream up to and
   including the source (FIFO, never reordered), then drain the leftover
   stream suffixes.  The candidate is legal by construction; it is accepted
   only if it also respects the full unit relation, which keeps the merge
   sound for any relation handed to it.  Failure proves nothing — the caller
   falls through to saturation. *)
let try_merge view k =
  let reader = ref (-1) and multi = ref false and max_proc = ref (-1) in
  Array.iter
    (fun (o : Op.t) ->
      if o.proc > !max_proc then max_proc := o.proc;
      if Op.is_read o then
        if !reader < 0 then reader := o.proc
        else if o.proc <> !reader then multi := true)
    view.ops;
  if !multi || !reader < 0 then false
  else begin
    let reader = !reader in
    let chain = ref [] and streams = Array.make (!max_proc + 1) [] in
    for i = k - 1 downto 0 do
      let o = view.ops.(i) in
      if o.Op.proc = reader then chain := i :: !chain
      else streams.(o.Op.proc) <- i :: streams.(o.Op.proc)
    done;
    let streams = Array.map Array.of_list streams in
    let ptr = Array.make (!max_proc + 1) 0 in
    let pos = Array.make k (-1) in
    let next_pos = ref 0 in
    let last = Array.make view.n_vars (-1) in
    let place i =
      pos.(i) <- !next_pos;
      incr next_pos;
      let o = view.ops.(i) in
      if Op.is_write o then last.(var_slot view o) <- i
    in
    let legal_now (o : Op.t) =
      let sl = var_slot view o in
      match o.Op.value with
      | Op.Init -> last.(sl) = -1
      | Op.Val _ ->
          last.(sl) >= 0
          && Op.equal_value view.ops.(last.(sl)).Op.value o.Op.value
    in
    try
      List.iter
        (fun r ->
          let o = view.ops.(r) in
          if Op.is_write o then place r
          else begin
            let s = view.source.(r) in
            if legal_now o then place r
            else if s >= 0 && view.ops.(s).Op.proc <> reader && pos.(s) < 0
            then begin
              let q = view.ops.(s).Op.proc in
              let rec advance () =
                if ptr.(q) >= Array.length streams.(q) then raise Exit;
                let w = streams.(q).(ptr.(q)) in
                ptr.(q) <- ptr.(q) + 1;
                place w;
                if w <> s then advance ()
              in
              advance ();
              if legal_now o then place r else raise Exit
            end
            else raise Exit
          end)
        !chain;
      for q = 0 to !max_proc do
        while ptr.(q) < Array.length streams.(q) do
          place streams.(q).(ptr.(q));
          ptr.(q) <- ptr.(q) + 1
        done
      done;
      for v = 0 to k - 1 do
        iter_row (fun u -> if pos.(u) >= pos.(v) then raise Exit) view.preds.(v) k
      done;
      true
    with Exit -> false
  end

(* --- write-order saturation ----------------------------------------------- *)

(* Closure rows over forced precedence: the unit relation, each read after
   its source, each Init-read before every same-variable write, then the two
   derivation rules to a fixpoint.  Every edge holds in every legal
   serialization, so a cycle is a proof of inconsistency. *)
let saturate view k =
  let nw = words_for k in
  let rows = Array.init k (fun _ -> Array.make nw 0) in
  for v = 0 to k - 1 do
    iter_row (fun u -> iset_add rows.(u) v) view.preds.(v) k
  done;
  let writes_of_slot = Array.make (Stdlib.max view.n_vars 1) [] in
  for i = k - 1 downto 0 do
    let o = view.ops.(i) in
    if Op.is_write o then
      writes_of_slot.(var_slot view o) <- i :: writes_of_slot.(var_slot view o)
  done;
  Array.iteri
    (fun r (o : Op.t) ->
      if Op.is_read o then
        match view.source.(r) with
        | -1 ->
            List.iter (fun w' -> iset_add rows.(r) w') writes_of_slot.(var_slot view o)
        | s -> iset_add rows.(s) r)
    view.ops;
  for via = 0 to k - 1 do
    let row_via = rows.(via) in
    for u = 0 to k - 1 do
      if u <> via && iset_mem rows.(u) via then row_union_into rows.(u) row_via
    done
  done;
  let cyclic = ref false in
  for u = 0 to k - 1 do
    if iset_mem rows.(u) u then cyclic := true
  done;
  if !cyclic then `Cycle
  else begin
    let exception Cycle in
    let tmp = Array.make nw 0 in
    (* add u→v and restore exact closure; raises on a back-path *)
    let add_edge u v =
      if iset_mem rows.(u) v then false
      else begin
        if u = v || iset_mem rows.(v) u then raise Cycle;
        Array.blit rows.(v) 0 tmp 0 nw;
        iset_add tmp v;
        for a = 0 to k - 1 do
          if a = u || iset_mem rows.(a) u then row_union_into rows.(a) tmp
        done;
        true
      end
    in
    try
      let changed = ref true in
      while !changed do
        changed := false;
        for r = 0 to k - 1 do
          let s = view.source.(r) in
          if s >= 0 then begin
            let sl = var_slot view view.ops.(r) in
            List.iter
              (fun w' ->
                if w' <> s then begin
                  (* source before w'  ⇒  the read precedes w' *)
                  if iset_mem rows.(s) w' && add_edge r w' then changed := true;
                  (* w' before the read  ⇒  w' precedes the source *)
                  if iset_mem rows.(w') r && add_edge w' s then changed := true
                end)
              writes_of_slot.(sl)
          end
        done
      done;
      `Acyclic rows
    with Cycle -> `Cycle
  end

(* --- guided greedy construction ------------------------------------------- *)

(* Deterministic single-path construction over the saturated order: place
   every ready legal read eagerly (never harmful — reads leave the legality
   state untouched), then pick a ready write that does not overwrite a
   variable some pending sourced read is currently entitled to, preferring
   sources of pending reads.  Success builds a legal serialization, proving
   consistency; getting stuck proves nothing. *)
let greedy view k rows =
  let nw = words_for k in
  let preds = Array.init k (fun _ -> Array.make nw 0) in
  for u = 0 to k - 1 do
    iter_row (fun v -> iset_add preds.(v) u) rows.(u) k
  done;
  let placed = Array.make nw 0 in
  let last = Array.make view.n_vars (-1) in
  let n_placed = ref 0 in
  let ready i = (not (iset_mem placed i)) && iset_subset preds.(i) placed in
  let place i =
    iset_add placed i;
    incr n_placed;
    let o = view.ops.(i) in
    if Op.is_write o then last.(var_slot view o) <- i
  in
  let read_legal (o : Op.t) =
    let sl = var_slot view o in
    match o.Op.value with
    | Op.Init -> last.(sl) = -1
    | Op.Val _ ->
        last.(sl) >= 0 && Op.equal_value view.ops.(last.(sl)).Op.value o.Op.value
  in
  let window_open = Array.make (Stdlib.max view.n_vars 1) false in
  let wanted = Array.make k false in
  let exception Stuck in
  try
    while !n_placed < k do
      let progress = ref true in
      while !progress do
        progress := false;
        for i = 0 to k - 1 do
          if ready i && Op.is_read view.ops.(i) && read_legal view.ops.(i) then begin
            place i;
            progress := true
          end
        done
      done;
      if !n_placed < k then begin
        Array.fill window_open 0 (Array.length window_open) false;
        Array.fill wanted 0 k false;
        for i = 0 to k - 1 do
          if (not (iset_mem placed i)) && Op.is_read view.ops.(i) then begin
            let s = view.source.(i) in
            if s >= 0 then
              if iset_mem placed s then
                if read_legal view.ops.(i) then
                  window_open.(var_slot view view.ops.(i)) <- true
                else raise Stuck (* window already closed: this path is dead *)
              else wanted.(s) <- true
          end
        done;
        let urgent = ref (-1) and safe = ref (-1) in
        for i = k - 1 downto 0 do
          let o = view.ops.(i) in
          if ready i && Op.is_write o && not window_open.(var_slot view o) then
            if wanted.(i) then urgent := i else safe := i
        done;
        if !urgent >= 0 then place !urgent
        else if !safe >= 0 then place !safe
        else raise Stuck
      end
    done;
    true
  with Stuck -> false

let serializable h ~subset ~relation =
  let view = make_view h ~subset ~relation in
  let k = Array.length view.ops in
  if k = 0 then Consistent
  else if view.missing_source then begin
    (* a read's value is written by nobody in the unit: never legal *)
    Atomic.incr c_cycle;
    Inconsistent
  end
  else if view.dup_writer then begin
    Atomic.incr c_unknown;
    Unknown
  end
  else if try_merge view k then begin
    Atomic.incr c_merge;
    Consistent
  end
  else
    match saturate view k with
    | `Cycle ->
        Atomic.incr c_cycle;
        Inconsistent
    | `Acyclic rows ->
        if greedy view k rows then begin
          Atomic.incr c_greedy;
          Consistent
        end
        else begin
          Atomic.incr c_unknown;
          Unknown
        end

(** Shared per-history relation cache.

    Checking all eight criteria against one history (the A2 sweep) used to
    recompute [read_from], program order and every closure once per
    criterion — and [ops_by_var] once per criterion unit list.  A [Relcache.t]
    wraps one history and memoizes each derived relation on first use, so a
    multi-criteria sweep pays for each closure exactly once.

    All accessors are lazy: creating a cache costs nothing beyond the
    read-from inference, and a criterion only forces the relations it
    needs. *)

type t

val create : History.t -> t

val history : t -> History.t

val read_from : t -> (int option array, History.rf_error) result
(** Memoized {!History.read_from}. *)

val rf_exn : t -> int option array
(** @raise Invalid_argument when the history's read-from is undetermined;
    callers are expected to have inspected {!read_from} first. *)

(** {2 Relations} — each memoized on first access.  All functions taking the
    read-from map raise like {!rf_exn} when it is undetermined. *)

val program_order : t -> Orders.relation
val read_from_relation : t -> Orders.relation
val causal : t -> Orders.relation
val semi_causal : t -> Orders.relation
val lazy_causal : t -> Orders.relation
val lazy_semi_causal : t -> Orders.relation
val pram : t -> Orders.relation

val slow : t -> Orders.relation
(** Program order ∪ read-from: the per-variable relation of slow memory. *)

(** {2 Operation indexes} *)

val all_ids : t -> int list
(** [0 .. n_ops-1]. *)

val proc_ids : t -> int -> int list
(** Global ids of [sub_history h p] (process [p]'s operations plus all
    writes), ascending. *)

val var_ids : t -> int -> int list
(** Global ids of the operations on a variable, ascending; memoized for the
    whole history on first access. *)

val proc_var_ids : t -> int -> int -> int list
(** Global ids of writes on the variable plus process [p]'s operations on
    it — the slow-memory unit subset — ascending. *)

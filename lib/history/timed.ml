module Graph = Repro_util.Graph

type op = { op : Op.t; invoked : int; responded : int }

type t = { timed : op array array; plain : History.t }

let of_lists specs =
  let plain =
    History.of_lists
      (List.map (List.map (fun (kind, var, value, _, _) -> (kind, var, value))) specs)
  in
  let timed =
    Array.of_list
      (List.mapi
         (fun proc spec ->
           let last_response = ref (-1) in
           Array.of_list
             (List.mapi
                (fun index (kind, var, value, invoked, responded) ->
                  if invoked < 0 || responded < invoked then
                    invalid_arg "Timed.of_lists: bad interval";
                  if invoked < !last_response then
                    invalid_arg
                      "Timed.of_lists: overlapping intervals in a sequential process";
                  last_response := responded;
                  { op = { Op.proc; index; kind; var; value }; invoked; responded })
                spec))
         specs)
  in
  { timed; plain }

let n_procs t = Array.length t.timed

let n_ops t = History.n_ops t.plain

let ops t =
  Array.init (n_ops t) (fun gid ->
      let o = History.op t.plain gid in
      t.timed.(o.Op.proc).(o.Op.index))

let history t = t.plain

let real_time_precedence t =
  let all = ops t in
  let n = Array.length all in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && all.(i).responded < all.(j).invoked then Graph.add_edge g i j
    done
  done;
  g

type verdict = Linearizable | Not_linearizable | Undecidable of History.rf_error

let check_linearizable t =
  match History.read_from t.plain with
  | Error (History.Dangling_read _) -> Not_linearizable
  | Error (History.Ambiguous_read _ as e) -> Undecidable e
  | Ok _ ->
      let relation = real_time_precedence t in
      let subset = List.init (n_ops t) Fun.id in
      if Checker.serializable t.plain ~subset ~relation then Linearizable
      else Not_linearizable

let pp ppf t =
  Array.iteri
    (fun p line ->
      Format.fprintf ppf "p%d: %a@." p
        (Format.pp_print_seq
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "  ")
           (fun ppf o ->
             Format.fprintf ppf "%a@@[%d,%d]" Op.pp o.op o.invoked o.responded))
        (Array.to_seq line))
    t.timed

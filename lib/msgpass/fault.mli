(** Fault-injection configuration for the message-passing substrate.

    The DSM protocols in this repository assume the reliable channels of the
    paper's model; fault injection exists to test the substrate itself and to
    demonstrate which protocols tolerate duplication or reordering.

    Two layers coexist:

    - the legacy flat {!t} record consumed directly by the simulator's
      built-in fault path (kept behavior-identical for old configs), and
    - {!Plan}, a seeded deterministic chaos plan applied at the transport
      seam ({!Repro_transport.Chaos}) so the identical plan reproduces on
      the simulator and on live TCP. *)

type t = {
  drop : float;  (** Probability a message is silently lost. *)
  duplicate : float;
      (** Probability a message is delivered twice (second copy re-samples
          its latency). *)
  reorder : bool;
      (** When [true], per-channel FIFO enforcement is disabled and messages
          race freely. *)
}

val none : t
(** Reliable FIFO channels — the paper's model. *)

val lossy : float -> t
(** Drop with the given probability, no duplication, FIFO kept. *)

val chaotic : t
(** 5% drop, 5% duplication, no FIFO.  Stress-testing profile. *)

val validate : t -> unit
(** @raise Invalid_argument when probabilities fall outside [\[0,1\]]. *)

(** Seeded, deterministic fault plans.

    A plan is static data: per-link fault probabilities, time-windowed
    partitions, and a crash schedule.  All fault decisions are drawn from
    per-link RNG streams derived from [seed] — decisions for a link depend
    only on that link's own send index, so the same plan produces the same
    decisions on any backend.  Times are in transport ticks (milliseconds
    on the live backend). *)
module Plan : sig
  type link = {
    drop : float;
    duplicate : float;
    reorder : float;
        (** Probability a message's delivery is delayed by a random extra
            amount (up to [delay_max]), letting later traffic overtake it. *)
  }

  type partition = {
    from_t : int;
    until_t : int;  (** Window [\[from_t, until_t)). *)
    group : int list;
        (** Members are isolated from non-members (both directions) while
            the window is open; traffic within each side still flows. *)
  }

  type crash = {
    node : int;
    after_sends : int;
        (** The node crashes immediately after its [after_sends]-th
            transport-level send. *)
    restart_after : int option;
        (** Restart delay in ticks (ms live); [None] means no restart. *)
  }

  type dcrash = {
    dnode : int;
    point : string;
        (** A durability crash point name
            ({!Repro_durable.Fsio.Crashpoint.points}): the node dies inside
            its WAL write path at exactly this step. *)
    powercut : bool;
        (** Power-cut semantics: before dying, the log is truncated to its
            synced floor — unsynced writes vanish as if the device lost its
            cache, not just the process. *)
    after_hits : int;  (** Die on the [after_hits]-th hit of [point]. *)
    drestart_after : int option;
        (** Restart delay in ms; [None] means no restart. *)
  }

  type reconfig = {
    rnode : int;
    at_ms : int;  (** When the membership event fires, ms into the run. *)
  }

  type plan = {
    seed : int;
    default_link : link;
    links : ((int * int) * link) list;  (** Per-link overrides, [(src, dst)]. *)
    partitions : partition list;
    crashes : crash list;
    dcrashes : dcrash list;
        (** Seeded crash-point schedule inside the durability write path;
            only meaningful when the run has a WAL. *)
    joins : reconfig list;
        (** Scripted membership: the node enters the consistent-hash ring at
            [at_ms].  Consumed by the reconfiguration supervisor
            ([repro_cluster]); inert for static runs. *)
    leaves : reconfig list;  (** The node leaves the ring at [at_ms]. *)
    delay_max : int;  (** Max extra delay for reordered/duplicated copies. *)
  }

  type t = plan

  val none : t
  (** No faults; applying it is a no-op. *)

  val is_none : t -> bool

  val clean : link

  val link_for : t -> src:int -> dst:int -> link

  val partitioned : t -> now:int -> src:int -> dst:int -> bool

  val crash_for : t -> int -> crash option
  (** The crash entry for a node, if any ([validate] rejects duplicates). *)

  val dcrash_for : t -> int -> dcrash option
  (** The durability crash entry for a node, if any. *)

  val link_seed : t -> src:int -> dst:int -> int
  (** Seed for the link's private fault-decision RNG stream. *)

  val validate : ?n:int -> t -> unit
  (** Static sanity check; when [n] is given, node ids are range-checked.
      @raise Invalid_argument on out-of-range probabilities, bad windows,
      duplicate or malformed crash entries. *)

  val parse : string -> (t, string) result
  (** Parse the compact comma-separated syntax, e.g.
      ["seed=5,drop=0.05,dup=0.01,crash=1@6+300"] or
      ["drop=0.1,link=0>2:drop=0.5:reorder=0.3,part=100..400:0+2"].
      Clauses: [seed=K], [drop=P], [dup=P], [reorder=P], [delay=D],
      [link=S>D:field=v:...], [part=T1..T2:A+B], [crash=N@K+R] (omit [+R]
      for no restart), [dcrash=N:POINT@K+R] (die at the [K]-th hit of the
      named durability crash point; suffix [POINT] with [!] for power-cut
      semantics), [join=N\@MS], [leave=N\@MS] (scripted membership events
      at MS ms into the run).  The result is validated. *)

  val to_string : t -> string
  (** Canonical round-trippable rendering ([parse (to_string t)] succeeds). *)
end

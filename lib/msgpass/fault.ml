type t = { drop : float; duplicate : float; reorder : bool }

let none = { drop = 0.0; duplicate = 0.0; reorder = false }

let lossy p = { drop = p; duplicate = 0.0; reorder = false }

let chaotic = { drop = 0.05; duplicate = 0.05; reorder = true }

let check_prob ctx name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "%s: %s probability %f out of [0,1]" ctx name p)

let validate t =
  check_prob "Fault.validate" "drop" t.drop;
  check_prob "Fault.validate" "duplicate" t.duplicate

module Plan = struct
  type link = { drop : float; duplicate : float; reorder : float }

  type partition = { from_t : int; until_t : int; group : int list }

  type crash = { node : int; after_sends : int; restart_after : int option }

  type dcrash = {
    dnode : int;
    point : string;
    powercut : bool;
    after_hits : int;
    drestart_after : int option;
  }

  type reconfig = { rnode : int; at_ms : int }

  type plan = {
    seed : int;
    default_link : link;
    links : ((int * int) * link) list;
    partitions : partition list;
    crashes : crash list;
    dcrashes : dcrash list;
    joins : reconfig list;
    leaves : reconfig list;
    delay_max : int;
  }

  type t = plan

  let clean = { drop = 0.0; duplicate = 0.0; reorder = 0.0 }

  let none =
    {
      seed = 0;
      default_link = clean;
      links = [];
      partitions = [];
      crashes = [];
      dcrashes = [];
      joins = [];
      leaves = [];
      delay_max = 8;
    }

  let is_none t =
    t.default_link = clean && t.links = [] && t.partitions = []
    && t.crashes = [] && t.dcrashes = [] && t.joins = [] && t.leaves = []

  let link_for t ~src ~dst =
    match List.assoc_opt (src, dst) t.links with
    | Some l -> l
    | None -> t.default_link

  let partitioned t ~now ~src ~dst =
    List.exists
      (fun p ->
        now >= p.from_t && now < p.until_t
        && List.mem src p.group <> List.mem dst p.group)
      t.partitions

  let crash_for t node =
    List.find_opt (fun c -> c.node = node) t.crashes

  let dcrash_for t node =
    List.find_opt (fun c -> c.dnode = node) t.dcrashes

  (* A private per-link decision stream: decisions for link (src,dst) depend
     only on the plan seed and the link's own send index, never on traffic
     elsewhere — the property that makes the same plan reproduce identically
     on the simulator and on live TCP. *)
  let link_seed t ~src ~dst =
    let mix = (t.seed * 0x9E3779B1) lxor (src * 0x85EBCA77) lxor dst in
    (mix lxor 0x5DEECE66) land max_int

  let validate_link ctx l =
    check_prob ctx "drop" l.drop;
    check_prob ctx "duplicate" l.duplicate;
    check_prob ctx "reorder" l.reorder

  let validate ?n t =
    let ctx = "Fault.Plan.validate" in
    let check_node who p =
      if p < 0 then invalid_arg (Printf.sprintf "%s: negative %s %d" ctx who p);
      match n with
      | Some n when p >= n ->
          invalid_arg
            (Printf.sprintf "%s: %s %d out of range for %d nodes" ctx who p n)
      | _ -> ()
    in
    validate_link ctx t.default_link;
    List.iter
      (fun ((s, d), l) ->
        check_node "link endpoint" s;
        check_node "link endpoint" d;
        validate_link ctx l)
      t.links;
    List.iter
      (fun p ->
        if p.from_t < 0 || p.until_t < p.from_t then
          invalid_arg
            (Printf.sprintf "%s: bad partition window %d..%d" ctx p.from_t
               p.until_t);
        if p.group = [] then invalid_arg (ctx ^ ": empty partition group");
        List.iter (check_node "partition member") p.group)
      t.partitions;
    let seen = Hashtbl.create 4 in
    List.iter
      (fun c ->
        check_node "crash node" c.node;
        if Hashtbl.mem seen c.node then
          invalid_arg
            (Printf.sprintf "%s: duplicate crash entry for node %d" ctx c.node);
        Hashtbl.add seen c.node ();
        if c.after_sends < 1 then
          invalid_arg
            (Printf.sprintf "%s: crash after %d sends (need >= 1)" ctx
               c.after_sends);
        (match c.restart_after with
        | Some d when d < 0 ->
            invalid_arg (Printf.sprintf "%s: negative restart delay %d" ctx d)
        | _ -> ()))
      t.crashes;
    let dseen = Hashtbl.create 4 in
    List.iter
      (fun c ->
        check_node "dcrash node" c.dnode;
        if Hashtbl.mem dseen c.dnode then
          invalid_arg
            (Printf.sprintf "%s: duplicate dcrash entry for node %d" ctx
               c.dnode);
        Hashtbl.add dseen c.dnode ();
        if not (Repro_durable.Fsio.Crashpoint.is_point c.point) then
          invalid_arg
            (Printf.sprintf "%s: unknown durability crash point %S (one of %s)"
               ctx c.point
               (String.concat ", " Repro_durable.Fsio.Crashpoint.points));
        if c.after_hits < 1 then
          invalid_arg
            (Printf.sprintf "%s: dcrash after %d hits (need >= 1)" ctx
               c.after_hits);
        (match c.drestart_after with
        | Some d when d < 0 ->
            invalid_arg (Printf.sprintf "%s: negative restart delay %d" ctx d)
        | _ -> ()))
      t.dcrashes;
    let check_reconfig who events =
      let seen = Hashtbl.create 4 in
      List.iter
        (fun r ->
          check_node (who ^ " node") r.rnode;
          if Hashtbl.mem seen r.rnode then
            invalid_arg
              (Printf.sprintf "%s: duplicate %s entry for node %d" ctx who
                 r.rnode);
          Hashtbl.add seen r.rnode ();
          if r.at_ms < 0 then
            invalid_arg
              (Printf.sprintf "%s: negative %s time %d" ctx who r.at_ms))
        events
    in
    check_reconfig "join" t.joins;
    check_reconfig "leave" t.leaves;
    if t.delay_max < 1 then invalid_arg (ctx ^ ": delay_max must be >= 1")

  (* --- compact string syntax ------------------------------------------------

     Comma-separated clauses, e.g.
       seed=5,drop=0.05,dup=0.01,crash=1@6+300
       drop=0.1,link=0>2:drop=0.5:reorder=0.3,part=100..400:0+2
     Clauses:
       seed=K              fault-decision seed (default 0)
       drop=P dup=P        default per-link drop / duplicate probability
       reorder=P           default per-link reorder probability
       delay=D             max extra delay for reordered/duplicated copies
       link=S>D:f=v:...    per-link override (fields drop/dup/reorder)
       part=T1..T2:A+B+..  nodes A,B,.. isolated from the rest in [T1,T2)
       crash=N@K+R         node N crashes after its K-th send, restarts R
                           ticks later; omit +R for no restart
       dcrash=N:POINT@K+R  node N dies at the K-th hit of the named
                           durability crash point (Fsio.Crashpoint.points,
                           e.g. sync.pre, append.mid, rotate.log.created);
                           suffix the point with ! for power-cut semantics
                           (the log is truncated to its synced floor before
                           the process dies); restart/omission as crash=
       join=N@MS           node N joins the membership ring MS ms into the
                           run (reconfiguration runtime only)
       leave=N@MS          node N leaves the ring MS ms into the run *)

  let parse_float ctx s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> failwith (Printf.sprintf "%s: bad number %S" ctx s)

  let parse_int ctx s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> failwith (Printf.sprintf "%s: bad integer %S" ctx s)

  let parse_link_fields ctx init fields =
    List.fold_left
      (fun l field ->
        match String.index_opt field '=' with
        | None -> failwith (Printf.sprintf "%s: bad link field %S" ctx field)
        | Some i ->
            let k = String.sub field 0 i in
            let v =
              parse_float ctx
                (String.sub field (i + 1) (String.length field - i - 1))
            in
            (match k with
            | "drop" -> { l with drop = v }
            | "dup" -> { l with duplicate = v }
            | "reorder" -> { l with reorder = v }
            | _ -> failwith (Printf.sprintf "%s: unknown link field %S" ctx k)))
      init fields

  let split_on char s = String.split_on_char char s

  (* "T1..T2" -> Some (T1, T2) *)
  let split_window ctx w =
    match String.index_opt w '.' with
    | Some i
      when i + 1 < String.length w && w.[i + 1] = '.' ->
        let t1 = parse_int ctx (String.sub w 0 i) in
        let t2 =
          parse_int ctx (String.sub w (i + 2) (String.length w - i - 2))
        in
        Some (t1, t2)
    | _ -> None

  let parse s =
    let ctx = "Fault.Plan.parse" in
    try
      if String.trim s = "" || String.trim s = "none" then Ok none
      else
        let plan =
          List.fold_left
            (fun plan clause ->
              let clause = String.trim clause in
              match String.index_opt clause '=' with
              | None ->
                  failwith (Printf.sprintf "%s: bad clause %S" ctx clause)
              | Some i ->
                  let key = String.sub clause 0 i in
                  let v =
                    String.sub clause (i + 1) (String.length clause - i - 1)
                  in
                  (match key with
                  | "seed" -> { plan with seed = parse_int ctx v }
                  | "drop" ->
                      { plan with
                        default_link =
                          { plan.default_link with drop = parse_float ctx v } }
                  | "dup" ->
                      { plan with
                        default_link =
                          { plan.default_link with
                            duplicate = parse_float ctx v } }
                  | "reorder" ->
                      { plan with
                        default_link =
                          { plan.default_link with
                            reorder = parse_float ctx v } }
                  | "delay" -> { plan with delay_max = parse_int ctx v }
                  | "link" -> (
                      match split_on ':' v with
                      | endpoints :: fields -> (
                          match split_on '>' endpoints with
                          | [ s; d ] ->
                              let key = (parse_int ctx s, parse_int ctx d) in
                              let l = parse_link_fields ctx clean fields in
                              { plan with links = plan.links @ [ (key, l) ] }
                          | _ ->
                              failwith
                                (Printf.sprintf "%s: bad link endpoints %S" ctx
                                   endpoints))
                      | [] -> failwith (ctx ^ ": empty link clause"))
                  | "part" -> (
                      match split_on ':' v with
                      | [ window; group ] -> (
                          match split_window ctx window with
                          | Some (t1, t2) ->
                              let group =
                                List.map (parse_int ctx) (split_on '+' group)
                              in
                              { plan with
                                partitions =
                                  plan.partitions
                                  @ [ { from_t = t1; until_t = t2; group } ] }
                          | None ->
                              failwith
                                (Printf.sprintf "%s: bad partition window %S"
                                   ctx window))
                      | _ -> failwith (ctx ^ ": bad partition clause"))
                  | "crash" -> (
                      match split_on '@' v with
                      | [ node; rest ] ->
                          let node = parse_int ctx node in
                          let after, restart =
                            match split_on '+' rest with
                            | [ k ] -> (parse_int ctx k, None)
                            | [ k; r ] ->
                                (parse_int ctx k, Some (parse_int ctx r))
                            | _ ->
                                failwith
                                  (Printf.sprintf "%s: bad crash clause %S" ctx
                                     v)
                          in
                          { plan with
                            crashes =
                              plan.crashes
                              @ [ { node; after_sends = after;
                                    restart_after = restart } ] }
                      | _ ->
                          failwith
                            (Printf.sprintf "%s: bad crash clause %S" ctx v))
                  | "dcrash" -> (
                      match split_on ':' v with
                      | [ node; rest ] -> (
                          let node = parse_int ctx node in
                          match split_on '@' rest with
                          | [ point; tail ] ->
                              let point, powercut =
                                let k = String.length point in
                                if k > 0 && point.[k - 1] = '!' then
                                  (String.sub point 0 (k - 1), true)
                                else (point, false)
                              in
                              let after, restart =
                                match split_on '+' tail with
                                | [ k ] -> (parse_int ctx k, None)
                                | [ k; r ] ->
                                    (parse_int ctx k, Some (parse_int ctx r))
                                | _ ->
                                    failwith
                                      (Printf.sprintf "%s: bad dcrash clause %S"
                                         ctx v)
                              in
                              { plan with
                                dcrashes =
                                  plan.dcrashes
                                  @ [ { dnode = node; point; powercut;
                                        after_hits = after;
                                        drestart_after = restart } ] }
                          | _ ->
                              failwith
                                (Printf.sprintf "%s: bad dcrash clause %S" ctx
                                   v))
                      | _ ->
                          failwith
                            (Printf.sprintf "%s: bad dcrash clause %S" ctx v))
                  | "join" | "leave" -> (
                      match split_on '@' v with
                      | [ node; at ] ->
                          let r =
                            { rnode = parse_int ctx node;
                              at_ms = parse_int ctx at }
                          in
                          if key = "join" then
                            { plan with joins = plan.joins @ [ r ] }
                          else { plan with leaves = plan.leaves @ [ r ] }
                      | _ ->
                          failwith
                            (Printf.sprintf "%s: bad %s clause %S" ctx key v))
                  | _ ->
                      failwith (Printf.sprintf "%s: unknown clause %S" ctx key)))
            none (split_on ',' s)
        in
        validate plan;
        Ok plan
    with
    | Failure msg -> Error msg
    | Invalid_argument msg -> Error msg

  let link_to_fields l =
    let f name v acc =
      if v = 0.0 then acc else Printf.sprintf "%s=%g" name v :: acc
    in
    f "drop" l.drop (f "dup" l.duplicate (f "reorder" l.reorder []))

  let to_string t =
    let buf = ref [] in
    let add s = buf := s :: !buf in
    if t.seed <> 0 then add (Printf.sprintf "seed=%d" t.seed);
    List.iter add (List.rev (link_to_fields t.default_link));
    if t.delay_max <> none.delay_max then
      add (Printf.sprintf "delay=%d" t.delay_max);
    List.iter
      (fun ((s, d), l) ->
        add
          (Printf.sprintf "link=%d>%d%s" s d
             (String.concat ""
                (List.map (fun f -> ":" ^ f) (List.rev (link_to_fields l))))))
      t.links;
    List.iter
      (fun p ->
        add
          (Printf.sprintf "part=%d..%d:%s" p.from_t p.until_t
             (String.concat "+" (List.map string_of_int p.group))))
      t.partitions;
    List.iter
      (fun c ->
        add
          (match c.restart_after with
          | Some r -> Printf.sprintf "crash=%d@%d+%d" c.node c.after_sends r
          | None -> Printf.sprintf "crash=%d@%d" c.node c.after_sends))
      t.crashes;
    List.iter
      (fun c ->
        let point = if c.powercut then c.point ^ "!" else c.point in
        add
          (match c.drestart_after with
          | Some r ->
              Printf.sprintf "dcrash=%d:%s@%d+%d" c.dnode point c.after_hits r
          | None -> Printf.sprintf "dcrash=%d:%s@%d" c.dnode point c.after_hits))
      t.dcrashes;
    List.iter
      (fun r -> add (Printf.sprintf "join=%d@%d" r.rnode r.at_ms))
      t.joins;
    List.iter
      (fun r -> add (Printf.sprintf "leave=%d@%d" r.rnode r.at_ms))
      t.leaves;
    match List.rev !buf with [] -> "none" | parts -> String.concat "," parts
end

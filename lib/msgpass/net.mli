(** Deterministic discrete-event message-passing network.

    This is the substrate the paper assumes: a set of [n] nodes exchanging
    point-to-point messages over reliable channels, here simulated so that
    every run is reproducible from a seed and so that message and
    control-information volumes can be counted exactly.

    Channels are FIFO by default (delivery order per directed link matches
    send order), matching the quality of service the protocols in
    {!Repro_dsm} are designed against; fault injection can relax this. *)

type 'msg t

type 'msg envelope = {
  src : int;
  dst : int;
  send_time : int;
  deliver_time : int;
  control_bytes : int;
      (** Bytes of consistency metadata carried, as declared by the sender.
          The efficiency experiments aggregate this field. *)
  payload_bytes : int;  (** Bytes of application data carried. *)
  msg : 'msg;
}

val create :
  ?faults:Fault.t ->
  ?service_time:int ->
  n:int ->
  latency:Latency.t ->
  seed:int ->
  unit ->
  'msg t
(** [create ~n ~latency ~seed ()] builds an [n]-node network.  Handlers
    default to ignoring messages; real nodes install theirs with
    {!set_handler}.

    [service_time] (default 0) makes each node a queueing server: at most
    one delivery every [service_time] ticks per destination, later arrivals
    waiting in line.  This is how centralization bottlenecks (e.g. a
    sequencer) become visible in completion times. *)

val n_nodes : 'msg t -> int

val now : 'msg t -> int
(** Current simulation time (ticks). *)

val set_handler : 'msg t -> int -> ('msg envelope -> unit) -> unit
(** [set_handler t node f] installs the delivery callback for [node].
    Handlers run inside {!step}; they may send messages and set timers. *)

val send :
  'msg t ->
  src:int ->
  dst:int ->
  ?control_bytes:int ->
  ?payload_bytes:int ->
  'msg ->
  unit
(** Enqueue a message.  Self-sends are allowed and still travel through the
    event queue (no synchronous shortcut), so a node's own updates interleave
    with remote ones exactly as the protocol schedules them.  Byte counts
    default to 0. *)

val at : 'msg t -> delay:int -> (unit -> unit) -> unit
(** [at t ~delay f] schedules [f] to run at [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)

val step : 'msg t -> bool
(** Process the single earliest pending event.  Returns [false] when the
    queue is empty. *)

val run : ?max_events:int -> 'msg t -> unit
(** Run until quiescence (empty queue) or until [max_events] (default
    10_000_000) events have been processed.
    @raise Failure when the event budget is exhausted, which indicates a
    livelock such as an unbounded polling loop. *)

val run_until : ?max_events:int -> 'msg t -> int -> unit
(** [run_until t deadline] processes events with time ≤ [deadline], then
    advances the clock to [deadline] if it is ahead of the last event.
    Like {!run}, it is bounded by [max_events] (default 10_000_000).
    @raise Failure when the event budget is exhausted, which indicates a
    livelock such as an unbounded polling loop. *)

(** {1 Accounting} *)

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  total_control_bytes : int;
  total_payload_bytes : int;
  retransmits : int;
      (** Session-layer retransmissions (0 on the bare simulator). *)
  dups_suppressed : int;
      (** Duplicate segments discarded by a session layer. *)
  reconnects : int;  (** Live-backend peer reconnections. *)
  overhead_bytes : int;
      (** Reliability-layer bytes (session headers, retransmitted copies,
          acks) — accounted separately from the paper's control bytes. *)
  per_node_sent : int array;
  per_node_received : int array;
}

val stats : 'msg t -> stats
(** A snapshot; arrays are fresh copies. *)

(** {1 Tracing} *)

type 'msg event = Sent of 'msg envelope | Delivered of 'msg envelope | Dropped of 'msg envelope

val set_tracing : 'msg t -> bool -> unit
(** Off by default; when on, every send/delivery/drop is appended to the
    trace. *)

val trace : 'msg t -> 'msg event list
(** Trace in chronological (processing) order. *)

module Rng = Repro_util.Rng
module Pqueue = Repro_util.Pqueue
module Intheap = Repro_util.Intheap
module Ringbuf = Repro_util.Ringbuf

type 'msg envelope = {
  src : int;
  dst : int;
  send_time : int;
  deliver_time : int;
  control_bytes : int;
  payload_bytes : int;
  msg : 'msg;
}

type 'msg event = Sent of 'msg envelope | Delivered of 'msg envelope | Dropped of 'msg envelope

type 'msg pending = Deliver of 'msg envelope | Timer of (unit -> unit)

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  total_control_bytes : int;
  total_payload_bytes : int;
  retransmits : int;
  dups_suppressed : int;
  reconnects : int;
  overhead_bytes : int;
  per_node_sent : int array;
  per_node_received : int array;
}

(* Scheduler keys pack (deliver_time, tie-break seq) into one immediate int:
   31 bits of time above 31 bits of sequence number, so the heap compares
   keys with a single unboxed [<] and pushes allocate nothing.  The first
   event whose time or sequence number leaves that range flips the engine
   onto [wide], a tuple-keyed queue with the identical ordering, carrying
   every still-pending event along — behaviour is unchanged, only the
   constant factor. *)
let time_bits = 31

let packed_limit = 1 lsl time_bits

let seq_mask = packed_limit - 1

type 'msg t = {
  n : int;
  latency : Latency.t;
  service_time : int;
  faults : Fault.t;
  rng : Rng.t;
  fault_rng : Rng.t;
      (* Dedicated stream for drop/duplicate decisions and duplicate-copy
         latencies, so enabling faults never perturbs the main stream's
         latency trajectory beyond the faults themselves. *)
  queue : 'msg pending Intheap.t; (* key: (time lsl 31) lor seq *)
  mutable wide : (int * int, 'msg pending) Pqueue.t option;
      (* overflow fallback: explicit (time, seq) keys, same order *)
  mutable seq : int;
  mutable clock : int;
  handlers : ('msg envelope -> unit) array;
  fifo_horizon : int array array;
      (* fifo_horizon.(src).(dst): earliest delivery time that keeps the
         channel FIFO w.r.t. messages already scheduled. *)
  service_horizon : int array;
      (* service_horizon.(dst): earliest delivery time that respects the
         destination's service rate. *)
  (* accounting *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable control_bytes : int;
  mutable payload_bytes : int;
  node_sent : int array;
  node_received : int array;
  mutable tracing : bool;
  events : 'msg event Ringbuf.t;
}

let key_compare (t1, s1) (t2, s2) =
  let c = compare (t1 : int) t2 in
  if c <> 0 then c else compare (s1 : int) s2

let create ?(faults = Fault.none) ?(service_time = 0) ~n ~latency ~seed () =
  if n <= 0 then invalid_arg "Net.create: need at least one node";
  if service_time < 0 then invalid_arg "Net.create: negative service time";
  Fault.validate faults;
  let rng = Rng.create seed in
  {
    n;
    latency;
    service_time;
    faults;
    rng;
    fault_rng = Rng.split (Rng.copy rng);
    queue = Intheap.create ();
    wide = None;
    seq = 0;
    clock = 0;
    handlers = Array.make n (fun _ -> ());
    fifo_horizon = Array.make_matrix n n 0;
    service_horizon = Array.make n 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    control_bytes = 0;
    payload_bytes = 0;
    node_sent = Array.make n 0;
    node_received = Array.make n 0;
    tracing = false;
    events = Ringbuf.create ();
  }

let n_nodes t = t.n

let now t = t.clock

let set_handler t node f =
  if node < 0 || node >= t.n then invalid_arg "Net.set_handler: bad node";
  t.handlers.(node) <- f

(* Call sites guard on [t.tracing] BEFORE building the event, so tracing
   costs one branch — no allocation — when off. *)
let record t event = Ringbuf.push_back t.events event

let widen t =
  let q = Pqueue.create ~cmp:key_compare () in
  Intheap.iter t.queue (fun key pending ->
      Pqueue.push q (key lsr time_bits, key land seq_mask) pending);
  Intheap.clear t.queue;
  t.wide <- Some q;
  q

let push t time pending =
  t.seq <- t.seq + 1;
  match t.wide with
  | Some q -> Pqueue.push q (time, t.seq) pending
  | None ->
      if time < packed_limit && t.seq < packed_limit then
        Intheap.push t.queue ((time lsl time_bits) lor t.seq) pending
      else Pqueue.push (widen t) (time, t.seq) pending

let schedule_delivery t envelope =
  let deliver_time =
    if t.faults.Fault.reorder then envelope.deliver_time
    else begin
      (* Clamp to the channel horizon so per-link delivery order matches
         send order, then advance the horizon past this message. *)
      let horizon = t.fifo_horizon.(envelope.src).(envelope.dst) in
      let time = Stdlib.max envelope.deliver_time horizon in
      t.fifo_horizon.(envelope.src).(envelope.dst) <- time + 1;
      time
    end
  in
  let deliver_time =
    if t.service_time = 0 then deliver_time
    else begin
      (* queue at the destination: one delivery per service interval *)
      let time = Stdlib.max deliver_time t.service_horizon.(envelope.dst) in
      t.service_horizon.(envelope.dst) <- time + t.service_time;
      time
    end
  in
  let envelope =
    if deliver_time = envelope.deliver_time then envelope
    else { envelope with deliver_time }
  in
  push t deliver_time (Deliver envelope)

let send t ~src ~dst ?(control_bytes = 0) ?(payload_bytes = 0) msg =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Net.send: bad endpoint";
  let latency = Latency.sample t.latency t.rng ~src ~dst in
  let envelope =
    {
      src;
      dst;
      send_time = t.clock;
      deliver_time = t.clock + latency;
      control_bytes;
      payload_bytes;
      msg;
    }
  in
  t.sent <- t.sent + 1;
  t.node_sent.(src) <- t.node_sent.(src) + 1;
  t.control_bytes <- t.control_bytes + control_bytes;
  t.payload_bytes <- t.payload_bytes + payload_bytes;
  if t.tracing then record t (Sent envelope);
  (* The drop/duplicate coins used to come from the main stream, one draw
     each, unconditionally.  Fault decisions now live on [fault_rng], but
     the two legacy draws are kept so the seeded latency trajectory — and
     with it every fault-free golden digest — stays byte-identical. *)
  let _ = Rng.float t.rng 1.0 in
  let _ = Rng.float t.rng 1.0 in
  if Rng.coin t.fault_rng t.faults.Fault.drop then begin
    t.dropped <- t.dropped + 1;
    if t.tracing then record t (Dropped envelope)
  end
  else begin
    schedule_delivery t envelope;
    if Rng.coin t.fault_rng t.faults.Fault.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      let extra = Latency.sample t.latency t.fault_rng ~src ~dst in
      schedule_delivery t { envelope with deliver_time = t.clock + extra }
    end
  end

let at t ~delay f =
  if delay < 0 then invalid_arg "Net.at: negative delay";
  push t (t.clock + delay) (Timer f)

let dispatch t time pending =
  t.clock <- Stdlib.max t.clock time;
  match pending with
  | Timer f -> f ()
  | Deliver envelope ->
      t.delivered <- t.delivered + 1;
      t.node_received.(envelope.dst) <- t.node_received.(envelope.dst) + 1;
      if t.tracing then record t (Delivered envelope);
      t.handlers.(envelope.dst) envelope

let step t =
  match t.wide with
  | Some q -> (
      match Pqueue.pop q with
      | None -> false
      | Some ((time, _), pending) ->
          dispatch t time pending;
          true)
  | None ->
      if Intheap.is_empty t.queue then false
      else begin
        let time = Intheap.min_key t.queue lsr time_bits in
        let pending = Intheap.pop_min t.queue in
        dispatch t time pending;
        true
      end

(* Earliest pending event time, or min_int when the queue is empty. *)
let next_time t =
  match t.wide with
  | Some q -> (
      match Pqueue.peek q with
      | Some ((time, _), _) -> time
      | None -> min_int)
  | None ->
      if Intheap.is_empty t.queue then min_int
      else Intheap.min_key t.queue lsr time_bits

let run ?(max_events = 10_000_000) t =
  let rec loop budget =
    if budget = 0 then
      failwith "Net.run: event budget exhausted (livelock or unbounded polling?)"
    else if step t then loop (budget - 1)
  in
  loop max_events

let run_until ?(max_events = 10_000_000) t deadline =
  let rec loop budget =
    if next_time t <> min_int && next_time t <= deadline then begin
      if budget = 0 then
        failwith
          "Net.run_until: event budget exhausted (livelock or unbounded polling?)";
      ignore (step t);
      loop (budget - 1)
    end
  in
  loop max_events;
  t.clock <- Stdlib.max t.clock deadline

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    duplicated = t.duplicated;
    total_control_bytes = t.control_bytes;
    total_payload_bytes = t.payload_bytes;
    retransmits = 0;
    dups_suppressed = 0;
    reconnects = 0;
    overhead_bytes = 0;
    per_node_sent = Array.copy t.node_sent;
    per_node_received = Array.copy t.node_received;
  }

let set_tracing t flag = t.tracing <- flag

let trace t = Ringbuf.to_list t.events

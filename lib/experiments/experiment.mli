(** Experiment harness: regenerates every quantitative claim of the paper
    as a table (DESIGN.md's per-experiment index).

    The paper itself reports no measurements — it is a theory paper — so
    the "tables and figures" to reproduce are (a) its worked examples
    (Figures 1–9, regenerated as tests and examples), and (b) the {e
    efficiency argument} of §3.3, which these experiments quantify on the
    protocol implementations.  Each function is deterministic in [seed].

    Experiment ids match DESIGN.md: E1 (scaling), R1 (replication sweep),
    T1 (mention audit / Theorem 1), A2 (criterion matrix), E2
    (Bellman-Ford), A1 (ad-hoc ablation), H1 (hoop census), B1 (sequencer
    bottleneck), L1 (reliability cost), C1 (operation cost profile). *)

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val render : table -> string
(** Title, aligned table, and notes, ready to print. *)

val scaling :
  ?sizes:int list -> ?pool:Repro_util.Pool.t -> seed:int -> unit -> table
(** {b E1} — control-information scaling.  For each system size [n]
    (default 4, 8, 16, 24 processes; 2·n variables, 3 replicas each), run
    the same per-process workload on causal-full (full replication),
    causal-partial, pram-partial and slow-partial, and report messages,
    control bytes, control bytes {e per write}, and off-clique mention
    counts.  Reproduces §3.3: causal control information grows with the
    system, PRAM's stays constant. *)

val replication_sweep : ?n:int -> seed:int -> unit -> table
(** {b R1} — replication-factor sweep.  Fixed system size, variables placed
    on 1, 2, 3, 6 or all of the processes: per-write message and
    control-byte costs of causal-partial vs pram-partial.  Shows that the
    causal broadcast cost is independent of clique size while PRAM's
    tracks |C(x)|. *)

val mention_audit : seed:int -> unit -> table
(** {b T1} — Theorem 1 audit.  On the 4-process share-graph cycle, for
    each variable: [C(x)], the x-relevant set predicted by Theorem 1, and
    the processes actually informed about [x] by each protocol. *)

val criterion_matrix : ?pool:Repro_util.Pool.t -> seed:int -> unit -> table
(** {b A2} — protocols × criteria.  Run one workload per protocol and
    check the history under every criterion; cells hold ✓/✗.  The staircase
    shape is the paper's criterion lattice.  Each history's eight-criteria
    sweep shares one {!Repro_history.Relcache}. *)

val scaling_checked :
  ?sizes:int list -> ?pool:Repro_util.Pool.t -> seed:int -> unit -> table
(** {b E1X} — E1's workload at previously infeasible sizes (default n=32
    and n=48, ~380-operation histories), with every produced history
    checked against its protocol's guaranteed criterion by the saturation
    engine.  Catalogue-only: not part of {!all} (whose rendering is pinned
    byte-for-byte by the golden tests). *)

val criterion_matrix_scaled :
  ?pool:Repro_util.Pool.t -> seed:int -> unit -> table
(** {b A2X} — the A2 matrix on long contended histories (6 processes × 20
    operations, 8 runs per protocol).  Catalogue-only, like {!scaling_checked}. *)

val bellman_ford : seed:int -> unit -> table
(** {b E2} — the §6 case study.  Fig. 8 and random networks on every
    compatible protocol: distances correct?, messages, control bytes,
    simulated completion time. *)

val adhoc_ablation : seed:int -> unit -> table
(** {b A1} — the §3.3 "ad-hoc design" boundary.  causal-adhoc on hoop-free
    vs hoop-carrying distributions: causal consistency of the run vs
    off-clique traffic.  The efficient protocol is causal exactly where
    Theorem 1 allows it. *)

val hoop_census : ?pool:Repro_util.Pool.t -> seed:int -> unit -> table
(** {b H1} — hoop census.  Over random distributions (12 processes, 20
    samples per cell), the fraction of variables with at least one hoop
    and the average number of x-relevant processes beyond [C(x)], as the
    replication factor and the variable count vary.  Quantifies §3.3's
    "any process is likely to belong to any hoop". *)

val bottleneck : seed:int -> unit -> table
(** {b B1} — centralization bottleneck.  With a per-node service rate,
    write-heavy workloads complete in time growing with [n] on the
    sequencer memory (every write serializes at one node) and flat on the
    PRAM memory.  The scalability requirement of §3.3(i), measured. *)

val loss_sweep : seed:int -> unit -> table
(** {b L1} — reliability cost.  The reliable FIFO channels the paper's
    model assumes, manufactured by {!Repro_core.Pram_reliable}'s go-back-N
    ARQ: messages per write, completion time and delivery completeness as
    the link drop rate sweeps 0–40%. *)

val op_costs : seed:int -> unit -> table
(** {b C1} — per-operation cost profile.  For every protocol: messages per
    write, control bytes per write, whether reads/writes block, and
    simulated time to quiescence on a fixed workload.  Quantifies the
    latency argument of §3.3/[2]. *)

val adversarial_histories :
  Repro_core.Registry.spec -> seed:int -> (string * Repro_history.History.t) list
(** Protocol-level re-creations of the paper's counterexample figures,
    executed on the given protocol with adversarially chosen link
    latencies:

    - ["hoop-leak"] — the Theorem-1 chain: a causal dependency routed
      through a y-hoop whose interior variables the receiver does not
      share (violates causal on the efficient protocols);
    - ["fig5"] — the Fig. 5 pattern ([w(x)a … → w(x)d] with a late direct
      x-update): violates lazy-causal on PRAM-or-weaker protocols;
    - ["fig6"] — the Fig. 6 pattern (one more hop through [z], with the
      own-write read making the printed lwb-chain well-typed): violates
      lazy-semi-causal on PRAM-or-weaker protocols.

    Returns [] for protocols that cannot run them (blocking or requiring
    full replication).  The histories feed {!criterion_matrix} and the
    test suite. *)

val all : ?pool:Repro_util.Pool.t -> seed:int -> unit -> table list
(** Every table above, in DESIGN.md order.  The tables (and, inside the
    heavier ones, their per-size / per-protocol / per-cell sweeps) run
    concurrently on [pool] ({!Repro_util.Pool.default} unless given);
    results are joined in submission order, so the output is deterministic
    for a given seed regardless of the worker count. *)

val find : string -> (seed:int -> unit -> table) option
(** Look an experiment up by id (["E1"], ["T1"], …), case-insensitive. *)

val ids : string list

module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Workload = Repro_core.Workload
module Runner = Repro_core.Runner
module Causal_adhoc = Repro_core.Causal_adhoc
module Distribution = Repro_sharegraph.Distribution
module Share_graph = Repro_sharegraph.Share_graph
module Checker = Repro_history.Checker
module Relcache = Repro_history.Relcache
module History = Repro_history.History
module Bellman_ford = Repro_apps.Bellman_ford
module Wgraph = Repro_apps.Wgraph
module Table = Repro_util.Table
module Bitset = Repro_util.Bitset
module Rng = Repro_util.Rng
module Pool = Repro_util.Pool

let pool_of = function Some p -> p | None -> Pool.default ()

type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let render t =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buffer (Table.render ~header:t.header ~rows:t.rows ());
  List.iter (fun note -> Buffer.add_string buffer (Printf.sprintf "note: %s\n" note)) t.notes;
  Buffer.contents buffer

let set_to_string set = Format.asprintf "%a" Bitset.pp set

let procs_list_to_string l =
  "{" ^ String.concat "," (List.map string_of_int l) ^ "}"

(* Count the writes of a history (control cost is charged per write). *)
let n_writes h = List.length (History.writes h)

(* --- E1: scaling ------------------------------------------------------------ *)

let scaling ?(sizes = [ 4; 8; 16; 24 ]) ?pool ~seed () =
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.4; max_think = 3 } in
  let rows =
    List.concat
    @@ Pool.map (pool_of pool)
      (fun n ->
        let partial_dist =
          Distribution.random (Rng.create (seed + n)) ~n_procs:n ~n_vars:(2 * n)
            ~replicas_per_var:3
        in
        let full_dist = Distribution.full ~n_procs:n ~n_vars:(2 * n) in
        let run spec =
          let dist =
            if spec.Registry.requires_full_replication then full_dist else partial_dist
          in
          let memory = spec.Registry.make ~dist ~seed () in
          let h = Workload.run_random ~profile ~seed:(seed + 1) memory in
          let m = memory.Memory.metrics () in
          let writes = Stdlib.max 1 (n_writes h) in
          [
            string_of_int n;
            spec.Registry.name;
            string_of_int m.Memory.messages_sent;
            string_of_int m.Memory.control_bytes;
            Table.fmt_float (float_of_int m.Memory.control_bytes /. float_of_int writes);
            string_of_int (Memory.total_offclique_mentions memory);
          ]
        in
        List.filter_map
          (fun name -> Option.map run (Registry.find name))
          [ "causal-full"; "causal-delta"; "causal-partial"; "pram-partial"; "slow-partial" ])
      sizes
  in
  {
    id = "E1";
    title = "control-information scaling with system size (paper §3.3)";
    header =
      [ "n"; "protocol"; "messages"; "ctrl bytes"; "ctrl B/write"; "off-clique mentions" ];
    rows;
    notes =
      [
        "causal protocols ship Θ(n)-sized vector clocks and (partial) inform every \
         process about every variable; PRAM/slow ship O(1) sequence numbers to \
         replica holders only";
      ];
  }

(* --- R1: replication-factor sweep ---------------------------------------------- *)

let replication_sweep ?(n = 12) ~seed () =
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.4; max_think = 3 } in
  let rows =
    List.concat_map
      (fun replicas ->
        let dist =
          if replicas >= n then Distribution.full ~n_procs:n ~n_vars:(2 * n)
          else
            Distribution.random (Rng.create (seed + replicas)) ~n_procs:n
              ~n_vars:(2 * n) ~replicas_per_var:replicas
        in
        List.filter_map
          (fun name ->
            Registry.find name
            |> Option.map (fun spec ->
                   let memory = spec.Registry.make ~dist ~seed () in
                   let h = Workload.run_random ~profile ~seed:(seed + 1) memory in
                   let m = memory.Memory.metrics () in
                   let writes = Stdlib.max 1 (n_writes h) in
                   [
                     string_of_int replicas;
                     spec.Registry.name;
                     Table.fmt_float
                       (float_of_int m.Memory.messages_sent /. float_of_int writes);
                     Table.fmt_float
                       (float_of_int m.Memory.control_bytes /. float_of_int writes);
                     string_of_int (Memory.total_offclique_mentions memory);
                   ]))
          [ "causal-partial"; "pram-partial" ])
      [ 1; 2; 3; 6; n ]
  in
  {
    id = "R1";
    title =
      Printf.sprintf
        "replication-factor sweep (n=%d processes, %d variables): messages and \
         control bytes per write" n (2 * n);
    header = [ "replicas/var"; "protocol"; "msgs/write"; "ctrl B/write"; "off-clique" ];
    rows;
    notes =
      [
        "PRAM's cost tracks |C(x)| (messages grow with the replication factor, \
         bytes stay ~8/replica); the causal protocol pays the full broadcast no \
         matter how small the cliques are — partial replication only saves it \
         payload bytes, never control bytes";
      ];
  }

(* --- T1: mention audit -------------------------------------------------------- *)

let hoopy = Distribution.of_lists ~n_vars:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ] ]

let mention_audit ~seed () =
  let sg = Share_graph.of_distribution hoopy in
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.3; max_think = 2 } in
  let audits =
    List.filter_map
      (fun name ->
        Registry.find name
        |> Option.map (fun spec ->
               let memory = spec.Registry.make ~dist:hoopy ~seed () in
               let _h = Workload.run_random ~profile ~seed:(seed + 1) memory in
               (name, (memory.Memory.metrics ()).Memory.mentioned_at)))
      [ "causal-partial"; "pram-partial" ]
  in
  let rows =
    List.init 4 (fun x ->
        [
          Printf.sprintf "x%d" x;
          procs_list_to_string (Distribution.holders hoopy x);
          set_to_string (Share_graph.x_relevant sg ~var:x);
        ]
        @ List.map (fun (_, mentioned) -> set_to_string mentioned.(x)) audits)
  in
  {
    id = "T1";
    title = "Theorem 1: x-relevant sets vs processes actually informed";
    header =
      [ "var"; "C(x)"; "x-relevant (Thm 1)" ]
      @ List.map (fun (name, _) -> "informed by " ^ name) audits;
    rows;
    notes =
      [
        "every variable of the 4-cycle has a hoop the long way around, so Theorem 1 \
         predicts every process is x-relevant: a general causal protocol informs \
         everyone (matches), PRAM informs only C(x)";
      ];
  }

(* --- A2: criterion matrix ------------------------------------------------------ *)

(* --- adversarial scenario bank --------------------------------------------------
   Protocol-level re-creations of the paper's counterexample figures.  Each
   scenario fixes a distribution, per-link latencies (one or two "slow"
   links that let an indirect causal chain outrun a direct update), and the
   programs; see the .mli. *)

let slow_from_p0_to targets =
  Repro_msgpass.Latency.per_link (fun ~src ~dst ->
      if src = 0 && List.mem dst targets then Repro_msgpass.Latency.constant 10_000
      else Repro_msgpass.Latency.constant 2)

let scenario_hoop_leak =
  (* vars y=0, z=1, x=2; y-hoop [1;2;3]; violates causal on efficient
     protocols *)
  let open Repro_history.Op in
  ( "hoop-leak",
    Distribution.of_lists ~n_vars:3 [ [ 0 ]; [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ],
    slow_from_p0_to [ 3 ],
    [|
      (fun (api : Runner.api) -> api.Runner.write 0 (Val 1));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 0 = Val 1);
        ignore (api.Runner.read 0);
        api.Runner.write 1 (Val 2));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 1 = Val 2);
        ignore (api.Runner.read 1);
        api.Runner.write 2 (Val 3));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 2 = Val 3);
        ignore (api.Runner.read 2);
        ignore (api.Runner.read 0));
    |] )

let scenario_fig5 =
  (* vars x=0, y=1, z=2; the Fig. 5 chain w0(x)a … w2(x)d routed through a
     variable (z) that neither endpoint of the final read shares with the
     chain's head, with the direct x=a update slow toward p2 and p3; the
     final process observes d then a: violates lazy-causal (and causal) on
     the efficient protocols, while the raw read-from hop keeps it
     lazy-semi-causal *)
  let open Repro_history.Op in
  ( "fig5",
    Distribution.of_lists ~n_vars:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ]; [ 0 ] ],
    slow_from_p0_to [ 2; 3 ],
    [|
      (fun (api : Runner.api) ->
        api.Runner.write 0 (Val 1);
        ignore (api.Runner.read 0);
        api.Runner.write 1 (Val 2));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 1 = Val 2);
        ignore (api.Runner.read 1);
        api.Runner.write 2 (Val 3));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 2 = Val 3);
        ignore (api.Runner.read 2);
        api.Runner.write 0 (Val 4));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 0 <> Init);
        ignore (api.Runner.read 0);
        api.Runner.sleep 30_000;
        ignore (api.Runner.read 0));
    |] )

let scenario_fig6 =
  (* vars x=0, y=1, z=2; the Fig. 6 chain with the z hop and the own-write
     read r1(y)e; violates lazy-semi-causal on PRAM-or-weaker protocols *)
  let open Repro_history.Op in
  ( "fig6",
    Distribution.of_lists ~n_vars:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ]; [ 0 ] ],
    slow_from_p0_to [ 2; 3 ],
    [|
      (fun (api : Runner.api) ->
        api.Runner.write 0 (Val 1);
        ignore (api.Runner.read 0);
        api.Runner.write 1 (Val 2));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 1 = Val 2);
        ignore (api.Runner.read 1);
        api.Runner.write 1 (Val 5);
        ignore (api.Runner.read 1);
        api.Runner.write 2 (Val 3));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 2 = Val 3);
        ignore (api.Runner.read 2);
        api.Runner.write 0 (Val 4));
      (fun (api : Runner.api) ->
        api.Runner.await (fun () -> api.Runner.peek 0 <> Init);
        ignore (api.Runner.read 0);
        api.Runner.sleep 30_000;
        ignore (api.Runner.read 0));
    |] )

let adversarial_histories spec ~seed =
  if spec.Registry.requires_full_replication || spec.Registry.blocking then []
  else
    List.map
      (fun (name, dist, latency, programs) ->
        let memory = spec.Registry.make ~latency ~dist ~seed () in
        (name, Runner.run memory ~programs))
      [ scenario_hoop_leak; scenario_fig5; scenario_fig6 ]

let criterion_matrix ?pool ~seed () =
  (* A contended configuration: few variables, everyone replicating
     everything, jittery links — gives the weaker protocols every chance
     to exhibit the behaviours their criterion permits. *)
  let profile = { Workload.ops_per_proc = 12; read_ratio = 0.5; max_think = 5 } in
  let dist = Distribution.full ~n_procs:4 ~n_vars:2 in
  let latency = Repro_msgpass.Latency.uniform ~lo:1 ~hi:25 in
  let criteria = Checker.all_criteria in
  let rows =
    Pool.map (pool_of pool)
      (fun spec ->
        let histories =
          List.init 16 (fun k ->
              let memory = spec.Registry.make ~latency ~dist ~seed:(seed + k) () in
              Workload.run_random ~profile ~seed:(seed + k + 100) memory)
          @ List.map snd (adversarial_histories spec ~seed)
        in
        (* one relation cache per history: the 8-criteria sweep shares
           read-from, program order and every closure across criteria *)
        let caches = List.map Relcache.create histories in
        let all_consistent criterion =
          List.for_all
            (fun rc ->
              match Checker.check_cached rc criterion with
              | Checker.Consistent -> true
              | Checker.Inconsistent | Checker.Undecidable _ -> false)
            caches
        in
        spec.Registry.name
        :: List.map
             (fun criterion -> if all_consistent criterion then "yes" else "no")
             criteria)
      Registry.all
  in
  {
    id = "A2";
    title = "protocols x criteria (16 contended runs each; yes = all runs consistent)";
    header = "protocol" :: List.map Checker.criterion_name criteria;
    rows;
    notes =
      [
        "the staircase is the criterion lattice: each protocol satisfies its \
         guarantee column and everything weaker; a 'yes' left of the guarantee \
         means no run happened to witness the strictness of that inclusion";
      ];
  }

(* --- E1X / A2X: the saturation-checker tier -------------------------------- *)

(* Scaled variants that the search engine could not touch: E1's workload at
   n=32/48 with every history actually checked against its protocol's
   guarantee, and A2's contended matrix on longer seeded histories.
   Catalogue-only — [all] (and with it the golden tables digest) keeps the
   original sizes. *)

let scaling_checked ?(sizes = [ 32; 48 ]) ?pool ~seed () =
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.4; max_think = 3 } in
  let rows =
    List.concat
    @@ Pool.map (pool_of pool)
         (fun n ->
           let partial_dist =
             Distribution.random (Rng.create (seed + n)) ~n_procs:n ~n_vars:(2 * n)
               ~replicas_per_var:3
           in
           let full_dist = Distribution.full ~n_procs:n ~n_vars:(2 * n) in
           let run spec =
             let dist =
               if spec.Registry.requires_full_replication then full_dist
               else partial_dist
             in
             let memory = spec.Registry.make ~dist ~seed () in
             let h = Workload.run_random ~profile ~seed:(seed + 1) memory in
             let m = memory.Memory.metrics () in
             let verdict =
               match Checker.check spec.Registry.guarantees h with
               | Checker.Consistent -> "yes"
               | Checker.Inconsistent -> "NO"
               | Checker.Undecidable _ -> "?"
             in
             [
               string_of_int n;
               spec.Registry.name;
               string_of_int (History.n_ops h);
               string_of_int m.Memory.messages_sent;
               string_of_int m.Memory.control_bytes;
               Checker.criterion_name spec.Registry.guarantees;
               verdict;
             ]
           in
           List.filter_map
             (fun name -> Option.map run (Registry.find name))
             [
               "causal-full"; "causal-delta"; "causal-partial"; "pram-partial";
               "slow-partial";
             ])
         sizes
  in
  {
    id = "E1X";
    title =
      "scaling with every history checked against its guarantee (saturation tier)";
    header =
      [ "n"; "protocol"; "ops"; "messages"; "ctrl bytes"; "guarantee"; "holds?" ];
    rows;
    notes =
      [
        "same workload shape as E1 at sizes the search checker could not \
         decide (n=48 histories run to ~380 operations); every verdict is \
         produced by the polynomial saturation engine";
      ];
  }

let criterion_matrix_scaled ?pool ~seed () =
  let profile = { Workload.ops_per_proc = 20; read_ratio = 0.5; max_think = 5 } in
  let dist = Distribution.full ~n_procs:6 ~n_vars:3 in
  let latency = Repro_msgpass.Latency.uniform ~lo:1 ~hi:25 in
  let criteria = Checker.all_criteria in
  let rows =
    Pool.map (pool_of pool)
      (fun spec ->
        let histories =
          List.init 8 (fun k ->
              let memory = spec.Registry.make ~latency ~dist ~seed:(seed + k) () in
              Workload.run_random ~profile ~seed:(seed + k + 100) memory)
        in
        let caches = List.map Relcache.create histories in
        let all_consistent criterion =
          List.for_all
            (fun rc ->
              match Checker.check_cached rc criterion with
              | Checker.Consistent -> true
              | Checker.Inconsistent | Checker.Undecidable _ -> false)
            caches
        in
        spec.Registry.name
        :: List.map
             (fun criterion -> if all_consistent criterion then "yes" else "no")
             criteria)
      Registry.all
  in
  {
    id = "A2X";
    title =
      "protocols x criteria on long contended histories (6 procs x 20 ops, 8 runs)";
    header = "protocol" :: List.map Checker.criterion_name criteria;
    rows;
    notes =
      [
        "the A2 staircase reproduced on 120-operation histories: each cell \
         sweeps all criteria through one shared relation cache per history";
      ];
  }

(* --- E2: Bellman-Ford ----------------------------------------------------------- *)

let bellman_ford ~seed () =
  let networks =
    [
      ("fig8", Wgraph.fig8);
      ("random-8", Wgraph.random (Rng.create seed) ~n:8 ~extra_edges:10 ~max_weight:9);
      ("random-12", Wgraph.random (Rng.create (seed + 1)) ~n:12 ~extra_edges:18 ~max_weight:9);
    ]
  in
  let rows =
    List.concat_map
      (fun (net_name, g) ->
        let reference = Wgraph.reference_distances g ~source:0 in
        List.filter_map
          (fun spec ->
            if spec.Registry.requires_full_replication || spec.Registry.blocking then None
            else
              let make ~dist ~seed = spec.Registry.make ~dist ~seed () in
              let result = Bellman_ford.run ~make ~seed g ~source:0 in
              let memory_metrics =
                (* metrics are not exposed by Bellman_ford.run; re-run with
                   an instrumented instance *)
                let dist = Bellman_ford.variable_distribution g in
                let memory = spec.Registry.make ~dist ~seed () in
                let _ = Runner.run memory ~programs:(Bellman_ford.programs g ~source:0) in
                memory.Memory.metrics ()
              in
              let exact = result.Bellman_ford.distances = reference in
              Some
                [
                  net_name;
                  spec.Registry.name;
                  (if exact then "exact" else "upper-bound");
                  string_of_int memory_metrics.Memory.messages_sent;
                  string_of_int memory_metrics.Memory.control_bytes;
                ])
          Registry.all)
      networks
  in
  {
    id = "E2";
    title = "distributed Bellman-Ford (paper §6) across protocols";
    header = [ "network"; "protocol"; "distances"; "messages"; "ctrl bytes" ];
    rows;
    notes =
      [
        "PRAM and anything stronger yields exact shortest paths (the paper's \
         claim); slow memory only guarantees upper bounds — §6.1's freshness \
         invariant needs per-writer order across x and k";
      ];
  }

(* --- A1: ad-hoc ablation ---------------------------------------------------------- *)

let adhoc_ablation ~seed () =
  let hoopfree = Distribution.clustered ~n_procs:6 ~n_vars:4 ~clusters:2 in
  let cases =
    [ ("clustered (no external relevance)", hoopfree); ("4-cycle (hoops)", hoopy) ]
  in
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.5; max_think = 2 } in
  let random_rows =
    List.map
      (fun (name, dist) ->
        let sg = Share_graph.of_distribution dist in
        let causal_everywhere =
          List.for_all
            (fun k ->
              let memory = Causal_adhoc.create ~dist ~seed:(seed + k) () in
              let h = Workload.run_random ~profile ~seed:(seed + k + 50) memory in
              match Checker.check Checker.Causal h with
              | Checker.Consistent -> true
              | _ -> false)
            (List.init 10 Fun.id)
        in
        let memory = Causal_adhoc.create ~dist ~seed () in
        let _ = Workload.run_random ~profile ~seed:(seed + 1) memory in
        [
          name;
          (if Share_graph.no_external_relevance sg then "no" else "yes");
          string_of_int (Memory.total_offclique_mentions memory);
          (if causal_everywhere then "causal in 10/10 runs" else "causal violated");
        ])
      cases
  in
  let adversarial_row =
    let _, dist, latency, programs = scenario_hoop_leak in
    let memory = Causal_adhoc.create ~latency ~dist ~seed () in
    let h = Runner.run memory ~programs in
    let verdict =
      match Checker.check Checker.Causal h with
      | Checker.Consistent -> "causal (unexpected)"
      | Checker.Inconsistent -> "causal VIOLATED (as Theorem 1 predicts)"
      | Checker.Undecidable _ -> "?"
    in
    [
      "y-hoop chain, adversarial latency";
      "yes";
      string_of_int (Memory.total_offclique_mentions memory);
      verdict;
    ]
  in
  {
    id = "A1";
    title = "ad-hoc causal protocol: efficient and causal exactly when Theorem 1 allows";
    header = [ "distribution"; "external x-relevance?"; "off-clique traffic"; "verdict" ];
    rows = random_rows @ [ adversarial_row ];
    notes =
      [
        "off-clique traffic is 0 in every case (the protocol IS efficient); what \
         Theorem 1 rules out is being causal at the same time, witnessed by the \
         adversarial row";
      ];
  }

(* --- B1: sequencer bottleneck --------------------------------------------------------- *)

let bottleneck ~seed () =
  (* Write-heavy load with a per-node service rate: the sequencer serializes
     every write in the system, the PRAM memory spreads the load across
     cliques.  Completion time (simulated) is the measure. *)
  let profile = { Workload.ops_per_proc = 12; read_ratio = 0.1; max_think = 1 } in
  let latency = Repro_msgpass.Latency.constant 3 in
  let rows =
    List.map
      (fun n ->
        let dist =
          Distribution.random (Rng.create (seed + n)) ~n_procs:n ~n_vars:(2 * n)
            ~replicas_per_var:3
        in
        let time_of make =
          let memory = make () in
          let _h = Workload.run_random ~profile ~seed:(seed + 1) memory in
          memory.Memory.now ()
        in
        let seq_time =
          time_of (fun () ->
              Repro_core.Seq_sequencer.create ~latency ~service_time:2 ~dist ~seed ())
        in
        let pram_time =
          time_of (fun () ->
              Repro_core.Pram_partial.create ~latency ~service_time:2 ~dist ~seed ())
        in
        [
          string_of_int n;
          string_of_int seq_time;
          string_of_int pram_time;
          Table.fmt_ratio (float_of_int seq_time) (float_of_int pram_time);
        ])
      [ 4; 8; 16; 32 ]
  in
  {
    id = "B1";
    title =
      "sequencer bottleneck: completion time under write load (service time 2 \
       ticks/node)";
    header = [ "n"; "seq-sequencer time"; "pram-partial time"; "slowdown" ];
    rows;
    notes =
      [
        "every write in the system funnels through one node whose queue grows \
         with n, while PRAM's per-clique traffic keeps completion time flat — \
         the scalability point of §3.3(i)";
      ];
  }

(* --- L1: reliability cost -------------------------------------------------------------- *)

let loss_sweep ~seed () =
  (* the paper assumes reliable FIFO channels; pram-reliable manufactures
     them with go-back-N ARQ — measure what that costs as links degrade *)
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.4; max_think = 3 } in
  let rows =
    List.map
      (fun drop_pct ->
        let faults =
          { Repro_msgpass.Fault.drop = float_of_int drop_pct /. 100.0;
            duplicate = 0.05;
            reorder = false }
        in
        let memory =
          Repro_core.Pram_reliable.create ~faults ~dist:hoopy ~seed ()
        in
        let h = Workload.run_random ~profile ~seed:(seed + 1) memory in
        let m = memory.Memory.metrics () in
        let writes = Stdlib.max 1 (n_writes h) in
        let expected_applies =
          History.writes h
          |> List.fold_left
               (fun acc (o : Repro_history.Op.t) ->
                 acc + List.length (Distribution.holders hoopy o.Repro_history.Op.var) - 1)
               0
        in
        [
          string_of_int drop_pct ^ "%";
          Table.fmt_float (float_of_int m.Memory.messages_sent /. float_of_int writes);
          string_of_int (memory.Memory.now ());
          Printf.sprintf "%d/%d" m.Memory.applied_writes expected_applies;
          (match Checker.check Checker.Pram h with
          | Checker.Consistent -> "yes"
          | _ -> "no");
        ])
      [ 0; 10; 20; 30; 40 ]
  in
  {
    id = "L1";
    title = "reliability cost: pram-reliable (go-back-N ARQ) under link loss";
    header = [ "drop rate"; "msgs/write"; "completion time"; "applied/expected"; "pram?" ];
    rows;
    notes =
      [
        "the reliable-FIFO channel the paper's model assumes is not free: \
         retransmissions and acks multiply traffic and stretch completion as \
         loss grows, yet no update is ever lost and every run stays PRAM";
      ];
  }

(* --- H1: hoop census ----------------------------------------------------------------- *)

let hoop_census ?pool ~seed () =
  (* §3.3: "in a more general setting … any process is likely to belong to
     any hoop".  Quantify: over random distributions, how many variables
     have hoops, and how far beyond C(x) does x-relevance spread? *)
  let n = 12 in
  let census ~replicas ~n_vars =
    let stats = Repro_util.Stats.create () in
    let with_hoops = ref 0 and total_vars = ref 0 in
    for k = 0 to 19 do
      let dist =
        Distribution.random
          (Rng.create (seed + (1000 * replicas) + (17 * n_vars) + k))
          ~n_procs:n ~n_vars ~replicas_per_var:replicas
      in
      let sg = Share_graph.of_distribution dist in
      for x = 0 to n_vars - 1 do
        incr total_vars;
        if not (Share_graph.hoop_free sg ~var:x) then incr with_hoops;
        let relevant = Bitset.cardinal (Share_graph.x_relevant sg ~var:x) in
        let clique = List.length (Distribution.holders dist x) in
        Repro_util.Stats.add stats (float_of_int (relevant - clique))
      done
    done;
    ( float_of_int !with_hoops /. float_of_int !total_vars,
      Repro_util.Stats.mean stats )
  in
  let cells =
    List.concat_map
      (fun replicas -> List.map (fun n_vars -> (replicas, n_vars)) [ 6; 12; 24 ])
      [ 2; 3; 4 ]
  in
  let rows =
    Pool.map (pool_of pool)
      (fun (replicas, n_vars) ->
        let hoop_fraction, extra_relevant = census ~replicas ~n_vars in
        [
          string_of_int replicas;
          string_of_int n_vars;
          Table.fmt_float hoop_fraction;
          Table.fmt_float extra_relevant;
        ])
      cells
  in
  {
    id = "H1";
    title =
      Printf.sprintf
        "hoop census over random distributions (%d processes, 20 samples per cell)" n;
    header =
      [ "replicas/var"; "variables"; "frac vars with hoops"; "avg extra x-relevant" ];
    rows;
    notes =
      [
        "with even modest sharing density, almost every variable acquires hoops \
         and x-relevance spreads to most of the system — the paper's argument \
         that causal consistency cannot scale under partial replication";
      ];
  }

(* --- C1: operation cost profile ---------------------------------------------------- *)

let op_costs ~seed () =
  let profile = { Workload.ops_per_proc = 10; read_ratio = 0.5; max_think = 3 } in
  let rows =
    List.map
      (fun spec ->
        let dist =
          if spec.Registry.requires_full_replication then
            Distribution.full ~n_procs:4 ~n_vars:4
          else hoopy
        in
        let memory = spec.Registry.make ~dist ~seed () in
        let h = Workload.run_random ~profile ~seed:(seed + 1) memory in
        let m = memory.Memory.metrics () in
        let writes = Stdlib.max 1 (n_writes h) in
        [
          spec.Registry.name;
          Table.fmt_float (float_of_int m.Memory.messages_sent /. float_of_int writes);
          Table.fmt_float (float_of_int m.Memory.control_bytes /. float_of_int writes);
          (if spec.Registry.blocking then "blocking" else "wait-free");
          string_of_int (memory.Memory.now ());
        ])
      Registry.all
  in
  {
    id = "C1";
    title = "per-operation cost profile (4 processes, same workload shape)";
    header = [ "protocol"; "msgs/write"; "ctrl B/write"; "ops"; "sim time" ];
    rows;
    notes =
      [
        "atomic/sequencer trade wait-free local operations for strong ordering: \
         the latency cost §3.3 and [2] argue against for large-scale systems";
      ];
  }

let all ?pool ~seed () =
  let pool = pool_of pool in
  (* the tables run concurrently, each one farming its own inner sweep
     through the same pool; joining in submission order keeps the output
     deterministic and in DESIGN.md order *)
  Pool.run pool
    [
      (fun () -> scaling ~pool ~seed ());
      (fun () -> replication_sweep ~seed ());
      (fun () -> mention_audit ~seed ());
      (fun () -> criterion_matrix ~pool ~seed ());
      (fun () -> bellman_ford ~seed ());
      (fun () -> adhoc_ablation ~seed ());
      (fun () -> hoop_census ~pool ~seed ());
      (fun () -> bottleneck ~seed ());
      (fun () -> loss_sweep ~seed ());
      (fun () -> op_costs ~seed ());
    ]

let catalogue =
  [
    ("E1", fun ~seed () -> scaling ~seed ());
    ("R1", fun ~seed () -> replication_sweep ~seed ());
    ("T1", fun ~seed () -> mention_audit ~seed ());
    ("A2", fun ~seed () -> criterion_matrix ~seed ());
    ("E1X", fun ~seed () -> scaling_checked ~seed ());
    ("A2X", fun ~seed () -> criterion_matrix_scaled ~seed ());
    ("E2", fun ~seed () -> bellman_ford ~seed ());
    ("A1", fun ~seed () -> adhoc_ablation ~seed ());
    ("H1", fun ~seed () -> hoop_census ~seed ());
    ("B1", fun ~seed () -> bottleneck ~seed ());
    ("L1", fun ~seed () -> loss_sweep ~seed ());
    ("C1", fun ~seed () -> op_costs ~seed ());
  ]

let find id =
  List.assoc_opt (String.uppercase_ascii id) catalogue

let ids = List.map fst catalogue

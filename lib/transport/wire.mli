(** Length-prefixed binary framing for the live (socket) transport.

    Every frame travels as a 4-byte big-endian length followed by a fixed
    header and an opaque body:

    {v
      offset 0   4 bytes  length L (bytes following the length field)
      offset 4   1 byte   magic 0xD5
      offset 5   1 byte   kind (0 = data, 1 = hello, 2 = done,
                                3 = client request, 4 = client response,
                                5 = join, 6 = leave, 7 = state transfer,
                                8 = epoch commit, 9 = ping, 10 = pong)
      offset 6   2 bytes  src node id
      offset 8   2 bytes  dst node id
      offset 10  2 bytes  configuration epoch
      offset 12  4 bytes  declared control bytes
      offset 16  4 bytes  declared payload bytes
      offset 20  L-16 bytes  body
    v}

    The [control_bytes]/[payload_bytes] fields carry the {e declared}
    accounting sizes — the same numbers a protocol hands to
    {!Repro_msgpass.Net.send} — so the live backend counts exactly what the
    simulator counts, independent of the encoded body size.  [Data]
    bodies hold a protocol message (codec-encoded on the fast path,
    marshalled on the legacy arm); [Hello] bodies hold the cluster
    fingerprint (protocol, workload, size, seed) so mismatched daemons
    fail loudly instead of decoding garbage.  [Creq]/[Cresp] frames carry
    the client front door's RPC bodies ({!Rpc}).  Client ids live in
    [src]/[dst] above the node-id range, so a frame's addressing never
    collides with a peer's.

    The [epoch] field fences reconfiguration: every frame carries its
    sender's configuration epoch, and a live node drops (and counts)
    data-plane frames stamped with an older epoch than its own — a node
    that has not yet heard about a membership change cannot corrupt
    post-change state.  Static clusters carry epoch 0 forever.
    [Join]/[Leave] announce a new member set, [Transfer] carries
    migrated variable state, [Epoch] commits the new configuration, and
    [Ping]/[Pong] form the heartbeat used for failure detection and
    epoch-readiness polling (the membership runtime in [repro_cluster]).

    {b Hot path.}  Frames are built in place: {!Pool.acquire} a buffer,
    emit the body at {!body_offset}, {!set_header}, hand the buffer to
    the batched link flush, {!Pool.release} after the write.  On receive,
    {!next_view} exposes a completed frame's body {e inside} the
    decoder's buffer so message parsing copies nothing. *)

type kind =
  | Data
  | Hello
  | Done
  | Creq
  | Cresp
  | Join
  | Leave
  | Transfer
  | Epoch
  | Ping
  | Pong

type frame = {
  kind : kind;
  src : int;
  dst : int;
  epoch : int;
  control_bytes : int;
  payload_bytes : int;
  body : string;
}

val max_frame_bytes : int
(** Upper bound on the length field (16 MiB).  Longer declared frames are
    rejected as corrupt before any allocation. *)

val body_offset : int
(** Where a frame body starts in a buffer holding the full frame, length
    prefix included (20). *)

val set_header :
  ?epoch:int ->
  Bytes.t ->
  kind:kind ->
  src:int ->
  dst:int ->
  control_bytes:int ->
  payload_bytes:int ->
  body_len:int ->
  unit
(** Write the length prefix + header for a [body_len]-byte body into
    [buf.(0..body_offset-1)]; the caller emits the body at
    {!body_offset} (before or after — the regions are disjoint).  The
    whole frame then occupies [body_offset + body_len] bytes of [buf].
    @raise Invalid_argument when an id or byte count is out of range or
    the frame would exceed {!max_frame_bytes}. *)

val encode : frame -> bytes
(** Full wire representation in a fresh buffer, length prefix included
    (the legacy arm's per-frame path; the hot path uses {!set_header}
    into a pooled buffer).
    @raise Invalid_argument as {!set_header}. *)

val of_bytes : bytes -> (frame, string) result
(** Decode a buffer holding {e exactly} one frame.  Truncated input,
    trailing garbage, bad magic, unknown kinds and oversized/undersized
    declared lengths are all [Error]s. *)

(** {1 Buffer pool}

    Size-classed freelists so the steady-state encode→flush cycle
    performs no per-frame [Bytes.create]: acquire rounds up to a class
    (256 B … 64 KiB) and reuses a recycled buffer when one is free;
    release returns it.  Oversize requests fall back to a fresh
    allocation and are dropped on release. *)

module Pool : sig
  type t

  val create : unit -> t
  val acquire : t -> int -> Bytes.t  (** at least the requested size *)

  val release : t -> Bytes.t -> unit
  (** Return a buffer obtained from {!acquire}.  Releasing twice without
      re-acquiring aliases the pool — don't. *)
end

(** {1 Streaming decoder}

    TCP delivers byte runs, not frames; the decoder buffers partial input
    across {!feed} calls and yields frames as they complete. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf len] appends the first [len] bytes of [buf]. *)

val next : decoder -> (frame option, string) result
(** [Ok None] when no complete frame is buffered yet; [Error _] on a
    corrupt stream (the decoder is then poisoned and keeps returning the
    error).  Copies the body out; the hot path uses {!next_view}. *)

(** {2 Zero-copy views} *)

type view = {
  v_kind : kind;
  v_src : int;
  v_dst : int;
  v_epoch : int;
  v_control_bytes : int;
  v_payload_bytes : int;
  v_buf : Bytes.t;  (** the decoder's internal buffer *)
  v_off : int;  (** body start within [v_buf] *)
  v_len : int;  (** body length *)
}
(** A completed frame whose body still lives in the decoder's buffer —
    valid only until the next {!feed} (which may move or replace the
    buffer).  Parse what you need before feeding again. *)

val next_view : decoder -> (view option, string) result
(** As {!next}, without materialising the body. *)

val view_body : view -> string
(** Copy the body out (control-plane frames, tests). *)

val frame_of_view : view -> frame

val pending : decoder -> int
(** Bytes buffered but not yet consumed — nonzero at connection EOF means
    the peer died mid-frame (a truncated frame). *)

(** {2 Buffer retention}

    A large frame grows the decoder's buffer; it no longer stays grown
    forever.  After {!shrink_after} consecutive feeds that would each
    have fit in the 4 KiB base capacity, the buffer compacts back to
    base size. *)

val capacity : decoder -> int
(** Current internal buffer size (observability for the shrink policy). *)

val base_capacity : int
(** Initial and post-shrink buffer size (4096). *)

val shrink_after : int
(** Consecutive small feeds before an oversized buffer shrinks (32). *)

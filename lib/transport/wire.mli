(** Length-prefixed binary framing for the live (socket) transport.

    Every frame travels as a 4-byte big-endian length followed by a fixed
    header and an opaque body:

    {v
      offset 0   4 bytes  length L (bytes following the length field)
      offset 4   1 byte   magic 0xD5
      offset 5   1 byte   kind (0 = data, 1 = hello, 2 = done,
                                3 = client request, 4 = client response)
      offset 6   2 bytes  src node id
      offset 8   2 bytes  dst node id
      offset 10  4 bytes  declared control bytes
      offset 14  4 bytes  declared payload bytes
      offset 18  L-14 bytes  body
    v}

    The [control_bytes]/[payload_bytes] fields carry the {e declared}
    accounting sizes — the same numbers a protocol hands to
    {!Repro_msgpass.Net.send} — so the live backend counts exactly what the
    simulator counts, independent of the marshalled body size.  [Data]
    bodies hold a marshalled protocol message; [Hello] bodies hold the
    cluster fingerprint (protocol, workload, size, seed) so mismatched
    daemons fail loudly instead of unmarshalling garbage.  [Creq]/[Cresp]
    frames carry the client front door's RPC bodies ({!Rpc}): requests
    from load-generator clients and the replies a node sends back on the
    same connection.  Client ids live in [src]/[dst] above the node-id
    range, so a frame's addressing never collides with a peer's. *)

type kind = Data | Hello | Done | Creq | Cresp

type frame = {
  kind : kind;
  src : int;
  dst : int;
  control_bytes : int;
  payload_bytes : int;
  body : string;
}

val max_frame_bytes : int
(** Upper bound on the length field (16 MiB).  Longer declared frames are
    rejected as corrupt before any allocation. *)

val encode : frame -> bytes
(** Full wire representation, length prefix included.
    @raise Invalid_argument when an id or byte count is out of range or the
    body exceeds {!max_frame_bytes}. *)

val of_bytes : bytes -> (frame, string) result
(** Decode a buffer holding {e exactly} one frame.  Truncated input,
    trailing garbage, bad magic, unknown kinds and oversized/undersized
    declared lengths are all [Error]s. *)

(** {1 Streaming decoder}

    TCP delivers byte runs, not frames; the decoder buffers partial input
    across {!feed} calls and yields frames as they complete. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf len] appends the first [len] bytes of [buf]. *)

val next : decoder -> (frame option, string) result
(** [Ok None] when no complete frame is buffered yet; [Error _] on a
    corrupt stream (the decoder is then poisoned and keeps returning the
    error). *)

val pending : decoder -> int
(** Bytes buffered but not yet consumed — nonzero at connection EOF means
    the peer died mid-frame (a truncated frame). *)

(** Unix/TCP backend for {!Transport}: one OS process per node.

    A live node binds a listening socket, dials every peer (outbound
    sockets carry this node's frames; accepted sockets carry the peers'),
    and exchanges {!Wire} frames.  Delivery order per directed link is
    FIFO — TCP gives the same per-channel guarantee the simulator does —
    but cross-channel interleaving is real wall-clock nondeterminism.

    Lifecycle of a node process:

    + {!bind} a listener (or inherit one pre-bound by the cluster harness),
    + {!create} the runtime, {!val-factory} → hand to the protocol registry,
    + {!wait_peers} — dial everyone, exchange [Hello] fingerprints,
    + run the node program against the protocol's API,
    + {!finish_program} — broadcast [Done],
    + keep {!step}ping until {!all_done}, then {!drain} a quiet window so
      late handler-to-handler traffic (acks, forwards, gossip hops)
      settles, then snapshot results and {!close}.

    The declared control/payload byte counts travel inside each frame
    header, so a live node's {!Transport} stats aggregate exactly the
    numbers the simulator would — encoding overhead never leaks into
    the accounting.

    {b Hot path.}  With a message codec (see {!Transport.factory}), a
    send emits its body straight into a pooled frame buffer (4-byte send
    timestamp + codec image; zero per-message allocation at steady
    state), frames queue per destination link, and each event-loop turn
    flushes a whole link in one [writev(2)] — with partial-write
    resumption and EINTR retry — before recycling the buffers.  Receives
    parse message bodies in place out of the streaming decoder
    ({!Wire.next_view}).  The poll set is persistent: the fd list fed to
    [select] changes only on accept/close, not per iteration.  Without a
    codec, bodies fall back to [Marshal] (still pooled and batched).

    {b Baseline arm.}  Setting [REPRO_LIVE_LEGACY=1] in the environment
    restores the pre-hotpath behaviour — marshalled bodies, one write
    per frame, per-iteration fd-list rebuild — so before/after load
    comparisons can run both arms from one binary.  The arm is stamped
    into the [Hello] fingerprint, so mixed-arm clusters fail the
    handshake instead of exchanging differently-encoded bodies. *)

type config = {
  self : int;  (** this process's node id, [0 <= self < n] *)
  n : int;
  peers : Unix.sockaddr array;
      (** length [n]; [peers.(self)] is ignored (self-sends never touch a
          socket — they go through the timer queue, like the simulator's
          no-synchronous-shortcut rule). *)
  fingerprint : string;
      (** Carried in [Hello] frames; any mismatch between two nodes'
          fingerprints (protocol, workload, size, seed) aborts the run
          instead of decoding foreign bytes. *)
  resilient : bool;
      (** When on, a broken peer link is survived instead of fatal: the
          frame in flight is dropped (counted in [stats.dropped]; a
          {!Session} layer above retransmits), the socket is redialed on a
          bounded exponential backoff with jitter, and a peer announcing a
          fresh incarnation gets our [Hello] (and [Done], if already sent)
          replayed so its restart barrier completes.  Off, behaviour is
          exactly the pre-chaos hard-abort semantics. *)
  incarnation : int;
      (** 0 for a first launch; a respawned node advertises its restart
          count in its [Hello] so peers refresh their outbound links. *)
  connect_timeout_ms : int;
      (** Watchdog cap on one reconnection episode: a resilient node stops
          redialing a dead peer after this many milliseconds (the next
          send to it opens a fresh episode).  [0] keeps the pre-watchdog
          behaviour — retry until the run timeout cuts the loop. *)
}

type t
(** The untyped runtime: sockets, streaming decoders, buffer pool, link
    out-queues, timer queue, counters.  The message type appears only in
    the {!Transport.t} view returned by {!val-factory}. *)

val bind : Unix.sockaddr -> Unix.file_descr
(** Socket + [SO_REUSEADDR] + bind + listen.  Bind to port 0 to let the
    kernel pick; recover the address with {!listen_addr}. *)

val listen_addr : Unix.file_descr -> Unix.sockaddr

val create : config -> listen_fd:Unix.file_descr -> t
(** Takes ownership of [listen_fd].  Ignores [SIGPIPE] process-wide (a
    dead peer must surface as a catchable error, not a kill).  Reads
    [REPRO_LIVE_LEGACY] here, once. *)

val factory : t -> Transport.factory
(** Single-use: the factory encodes at the frame boundary, so binding it
    to two different message types would alias the wire.  Second use
    raises [Invalid_argument]; so does [create ~n] with the wrong [n].
    The resulting transport has [scope = Node self]; its [send] refuses
    [src <> self] and its [set_handler] ignores installs for other nodes
    (whole-instance protocols install all [n] — only ours is live).
    A codec passed through the factory replaces [Marshal] for [Data]
    bodies; [REPRO_CODEC_ORACLE=1] additionally cross-checks every
    encoded body against a decode of itself (tests). *)

val wait_peers : t -> timeout_ms:int -> unit
(** Dial every peer, send [Hello], and pump until every peer's [Hello] has
    arrived.  Refused/reset connections are retried on a bounded
    exponential backoff with jitter (daemons may start in any order); any
    other [Unix_error] fails fast — waiting will not fix a bad address.
    @raise Failure on timeout or fingerprint mismatch. *)

val step : t -> block:bool -> bool
(** Accept/read/dispatch what is ready and fire due timers, blocking at
    most ~1 ms when [block] and nothing is ready.  Pending link queues are
    flushed (one [writev] per dirty link) on entry and again after
    dispatch, so every frame produced in a turn leaves in that turn.
    [true] when any timer fired or socket progressed. *)

val finish_program : t -> unit
(** Broadcast [Done]: this node's program (its workload slice) has
    finished issuing operations.  Its handlers stay live.  Pending data
    frames are flushed first, so [Done] never overtakes them. *)

val all_done : t -> bool
(** Every peer's [Done] has been seen. *)

val drain : t -> quiet_ms:int -> max_ms:int -> unit
(** Serve until no frame has been sent or delivered for [quiet_ms]
    (bare timer fires don't count as activity — a retransmission timer
    with an empty window would otherwise keep the node up forever), or
    until [max_ms] has elapsed.  While draining, send failures are
    non-fatal: peers exit their own quiet windows at different times. *)

val now_ms : t -> int
(** Milliseconds since {!create}. *)

val stats : t -> Repro_msgpass.Net.stats
(** Wire-level counters: frames sent/delivered, declared bytes, frames
    dropped on broken links ([dropped]) and [reconnects].  The factory's
    transport view reports the same record. *)

type reply =
  dst:int ->
  control_bytes:int ->
  payload_bytes:int ->
  body_len:int ->
  emit:(Bytes.t -> int -> int) ->
  unit
(** Send one [Cresp] frame back on the requesting connection: [emit] is
    handed a buffer and the body start offset and must return the offset
    past exactly [body_len] written bytes — the body goes straight into a
    pooled frame, no intermediate string.  Replies queue on the
    connection and flush batched (one [writev] per turn). *)

val set_client_handler : t -> (reply:reply -> Wire.view -> unit) -> unit
(** Install the client front door: every [Creq] frame read off any
    accepted connection is handed to the handler as a zero-copy
    {!Wire.view} (parse the body before returning — the view dies with
    the next decoder feed) together with a {!reply} that writes back on
    {e that} connection.  Client frames bypass the peer-id check (their
    [src] is a client id above the node range) and never enter the
    protocol transport, so peer-level accounting is untouched.  Without a
    handler, [Creq] frames are dropped.  Replies to vanished clients are
    discarded silently. *)

val client_reqs : t -> int
(** [Creq] frames dispatched so far. *)

(** {1 Membership control plane}

    Reconfiguration frames ([Join]/[Leave]/[Transfer]/[Epoch]/
    [Ping]/[Pong]) ride the same sockets as everything else but never
    enter the protocol transport or its accounting.  The epoch fence
    lives here, at the seam: every outgoing frame is stamped with
    {!current_epoch}, and an incoming [Data] or [Transfer] frame stamped
    older is dropped and counted in {!stale_epochs} — a node that missed
    a reconfiguration cannot corrupt post-change state.  The remaining
    control kinds cross epochs freely (they are how nodes {e learn} of a
    newer epoch). *)

type control_reply = kind:Wire.kind -> dst:int -> body:string -> unit
(** Send one control frame back on the connection the triggering frame
    arrived on — the supervisor's control channel is an inbound
    connection, not a peer link. *)

val set_control_handler :
  t -> (reply:control_reply -> Wire.view -> unit) -> unit
(** Install the membership runtime.  Without a handler, control frames
    are inert (static clusters).  As with the client front door, parse
    the view's body before returning. *)

val send_control : t -> dst:int -> kind:Wire.kind -> body:string -> unit
(** Queue a control frame to peer [dst] over the mesh (state transfer
    between members).  Not counted in protocol stats. *)

val set_epoch : t -> int -> unit
(** Raise this node's configuration epoch (monotonic: lowering is a
    no-op).  @raise Invalid_argument outside [0, 0xFFFF]. *)

val current_epoch : t -> int

val stale_epochs : t -> int
(** Frames rejected by the epoch fence so far. *)

val close : t -> unit

(** Client RPC codec: the front door a load generator talks through.

    Requests and replies travel as the bodies of {!Wire.Creq} /
    {!Wire.Cresp} frames on an ordinary client TCP connection, so they
    inherit the length-prefixed framing, the streaming decoder, and its
    corruption poisoning.  A connection is {e pipelined}: a client may
    have any number of requests in flight; the serving node replies on
    the same connection, echoing the request id, and the client matches
    replies by id — order between distinct requests is not promised.

    The encoding is strict big-endian:

    {v
      request  = id:u32  tag:u8
                 tag 0 (read)   var:u32
                 tag 1 (write)  var:u32 value:i64
                 tag 2 (batch)  count:u16 then count ops
                                (op = tag:u8 var:u32 [value:i64])
      response = id:u32  count:u16 then count outcomes
                 outcome tag:u8 — 0 got ⊥ | 1 got value:i64
                                | 2 stored | 3 failed len:u16 bytes
    v}

    Decoders accept exactly the images of the encoders: truncated bodies,
    unknown tags, negative vars/ids and trailing bytes are all [Error]s. *)

type op = Read of { var : int } | Write of { var : int; value : int }

type request = Op of op | Batch of op array
(** [Batch] executes its ops in order at one replica and replies with one
    outcome per op — the scan primitive of the load mix. *)

type outcome = Got of int option | Stored | Failed of string
(** [Got None] is the initial value ⊥.  [Failed] reports an access the
    replica rejects — e.g. reading a variable it does not hold under a
    partial replication scheme. *)

val max_batch : int
(** Ops per batch bound (65535), from the u16 count field. *)

val ops : request -> op array
(** The ops a request asks for, singletons included; length ≥ 1 for
    well-formed requests (decoded batches may be empty). *)

val encode_request : id:int -> request -> string
(** @raise Invalid_argument on out-of-range id/var or oversized batch. *)

val decode_request : string -> (int * request, string) result

val encode_response : id:int -> outcome array -> string
(** @raise Invalid_argument on out-of-range id or oversized messages. *)

val decode_response : string -> (int * outcome array, string) result

(** {1 Zero-copy variants}

    The hot path builds bodies in place — [emit_*] writes at an offset
    into a (pooled) frame buffer, [decode_*_at] parses a slice of a
    decoder's buffer ({!Wire.view}) — so requests and replies cross the
    codec layer without intermediate strings. *)

val request_body_len : request -> int
val emit_request : Bytes.t -> int -> id:int -> request -> int
(** [emit_request buf off ~id req] writes exactly {!request_body_len}
    bytes at [off]; returns the offset past them. *)

val response_body_len : outcome array -> int
val emit_response : Bytes.t -> int -> id:int -> outcome array -> int

val decode_request_at :
  Bytes.t -> pos:int -> len:int -> (int * request, string) result

val decode_response_at :
  Bytes.t -> pos:int -> len:int -> (int * outcome array, string) result

val request_payload_bytes : request -> int
(** Declared payload bytes (8 per written value), for the [Wire] frame's
    two-lane accounting fields; everything else in the body is control. *)

val response_payload_bytes : outcome array -> int
(** Declared payload bytes (8 per returned value). *)

module Net = Repro_msgpass.Net
module Fault = Repro_msgpass.Fault

type scope = All_nodes | Node of int

type 'msg t = {
  n_nodes : int;
  scope : scope;
  send :
    src:int -> dst:int -> control_bytes:int -> payload_bytes:int -> 'msg -> unit;
  set_handler : int -> ('msg Net.envelope -> unit) -> unit;
  schedule : delay:int -> (unit -> unit) -> unit;
  step : unit -> bool;
  quiesce : unit -> unit;
  now : unit -> int;
  stats : unit -> Net.stats;
  set_tracing : bool -> unit;
  trace : unit -> 'msg Net.event list;
}

type factory = { create : 'msg. ?codec:'msg Codec.t -> int -> 'msg t }

let of_net net =
  {
    n_nodes = Net.n_nodes net;
    scope = All_nodes;
    send =
      (fun ~src ~dst ~control_bytes ~payload_bytes msg ->
        Net.send net ~src ~dst ~control_bytes ~payload_bytes msg);
    set_handler = (fun node f -> Net.set_handler net node f);
    schedule = (fun ~delay f -> Net.at net ~delay f);
    step = (fun () -> Net.step net);
    quiesce = (fun () -> Net.run net);
    now = (fun () -> Net.now net);
    stats = (fun () -> Net.stats net);
    set_tracing = (fun flag -> Net.set_tracing net flag);
    trace = (fun () -> Net.trace net);
  }

let sim ?faults ?service_time ~latency ~seed () =
  (* fail fast: a bad probability should not wait for the first send *)
  Option.iter Fault.validate faults;
  {
    create =
      (fun ?codec:_ n ->
        (* messages never leave the address space: codecs are a live-wire
           concern, and ignoring them here keeps the simulator — and every
           golden digest — byte-identical *)
        of_net (Net.create ?faults ?service_time ~n ~latency ~seed ()));
  }

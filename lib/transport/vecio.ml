(* OCaml face of the writev stub: one scatter-gather syscall over a span
   of (bytes, off, len) chunks, with the partial-write cursor expressed
   as (first chunk index, bytes of it already written). *)

external writev_raw :
  Unix.file_descr -> (Bytes.t * int * int) array -> int -> int -> int -> int
  = "repro_writev"

let max_iov = 64

(* the stub's negative error codes; anything unexpected surfaces as EIO *)
let error_of_code = function
  | -1 -> Unix.EINTR
  | -2 -> Unix.EAGAIN
  | -3 -> Unix.EPIPE
  | -4 -> Unix.ECONNRESET
  | -5 -> Unix.EBADF
  | _ -> Unix.EIO

let writev fd chunks ~start ~skip ~count =
  if count <= 0 then 0
  else
    let n = writev_raw fd chunks start skip (min count max_iov) in
    if n >= 0 then n
    else raise (Unix.Unix_error (error_of_code n, "writev", ""))

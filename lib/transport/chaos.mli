(** Deterministic fault injection over any {!Transport} backend.

    Applies a {!Repro_msgpass.Fault.Plan} — per-link drop/duplicate/reorder
    probabilities, time-windowed partitions, a crash schedule — at the
    transport seam, below any {!Session} layer and above the backend.  Every
    fault decision comes from a per-link RNG stream derived from the plan
    seed, with a fixed number of draws per send, so the decision sequence
    for a link depends only on that link's own send index: the identical
    plan reproduces on the deterministic simulator and on live TCP.

    Crashes: after a node's [after_sends]-th transport send (which still
    goes out), the wrapper either raises {!Injected_crash} when the backend
    hosts exactly that node (live cluster — the process dies and the
    supervisor respawns it from its checkpoint), or, on a whole-instance
    simulator backend, silences the node for the restart window (sends and
    deliveries dropped, state intact — an amnesia-free approximation; full
    crash-restart semantics are exercised on the live tier). *)

exception Injected_crash of int
(** Raised from inside [send] on a live backend when the hosted node hits
    its scheduled crash.  The cluster harness maps it to exit code 42. *)

type stats = {
  drops : int;  (** Injected drops (including partition and down-window). *)
  duplicates : int;
  delays : int;  (** Reorder delays applied. *)
  crashes : int;
}

type control = { stats : unit -> stats }

val wrap :
  ?incarnation:int ->
  plan:Repro_msgpass.Fault.Plan.t ->
  Transport.factory ->
  Transport.factory * control
(** [wrap ~plan inner] validates the plan (again with [n] at create time)
    and layers the injector over [inner].  [incarnation > 0] disables the
    crash schedule: a respawned process must not re-crash. *)

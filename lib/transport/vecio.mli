(** Scatter-gather write: the [writev(2)] binding behind the live
    backend's batched link flushes (OCaml's [Unix] has none). *)

val max_iov : int
(** Chunks covered per syscall (64); longer queues loop. *)

val writev :
  Unix.file_descr -> (Bytes.t * int * int) array -> start:int -> skip:int ->
  count:int -> int
(** [writev fd chunks ~start ~skip ~count] writes the [count] chunks
    beginning at index [start], the first of which has already had [skip]
    bytes written.  At most {!max_iov} chunks go in one syscall; returns
    the bytes written (possibly a partial write — the caller resumes).
    @raise Unix.Unix_error ([EINTR] included: the caller retries). *)

module Net = Repro_msgpass.Net
module Rng = Repro_util.Rng
module Ringbuf = Repro_util.Ringbuf

type config = {
  retransmit_after : int;
  backoff_max : int;
  jitter : int;
  seed : int;
  stable_acks : bool;
  ack_delay : int;
  coalesce : int;
}

let default =
  { retransmit_after = 40; backoff_max = 320; jitter = 10; seed = 0;
    stable_acks = false; ack_delay = 20; coalesce = 1 }

type 'msg wrapped =
  | Segs of { ack : int; segs : (int * int * int * 'msg) array }
  | Ack of { next : int }

(* Reliability bytes, in the same declared-size currency as the protocols'
   control bytes but accounted apart from them.  A data frame's header
   holds a base sequence number plus a cumulative-ack slot (used when an
   ack is piggybacked, zero extra bytes either way); each segment packed
   beyond the first adds a small length entry; a standalone ack frame is a
   cumulative counter. *)
let seg_header_bytes = 8

let ack_bytes = 8

let coal_entry_bytes = 2

type stats = {
  segs_sent : int;
  retransmits : int;
  acks_sent : int;
  acks_piggybacked : int;
  frames_sent : int;
  dups_suppressed : int;
  overhead_bytes : int;
}

type control = {
  stats : unit -> stats;
  mark_stable : unit -> unit;
  snapshot : unit -> string;
  restore : string -> unit;
  delivered : unit -> int;
}

(* What [snapshot] marshals: plain data only (window messages are protocol
   messages, which are marshal-safe by the live backend's own contract). *)
type 'msg state =
  int array array
  * (int * int * int * 'msg) list array array
  * int array array
  * int array array
  * int array array
  * (int * int * int * int * int * int * int * int)
  * int array
  * int array

(* Lift a protocol message codec to the session's wire type, so the live
   backend can encode [wrapped] frames without Marshal.  Layout: tag byte
   (0 = Segs, 1 = Ack); Segs carries the piggybacked ack (i32, -1 when
   none), a u16 segment count, then per segment seq/control/payload (i32
   each) followed by the inner message; Ack carries its cumulative
   counter (i32). *)
let wrapped_codec (c : 'msg Codec.t) : 'msg wrapped Codec.t =
  let seg_fixed = 12 in
  {
    Codec.size =
      (function
      | Ack _ -> 5
      | Segs { segs; _ } ->
          Array.fold_left
            (fun a (_, _, _, msg) -> a + seg_fixed + c.Codec.size msg)
            7 segs);
    emit =
      (fun buf off msg ->
        match msg with
        | Ack { next } ->
            let off = Codec.put_u8 buf off 1 in
            Codec.put_i32 buf off next
        | Segs { ack; segs } ->
            let off = Codec.put_u8 buf off 0 in
            let off = Codec.put_i32 buf off ack in
            let off = Codec.put_u16 buf off (Array.length segs) in
            Array.fold_left
              (fun off (seq, cb, pb, m) ->
                let off = Codec.put_i32 buf off seq in
                let off = Codec.put_i32 buf off cb in
                let off = Codec.put_i32 buf off pb in
                c.Codec.emit buf off m)
              off segs);
    parse =
      (fun buf pos limit ->
        let tag, pos = Codec.get_u8 buf pos limit in
        match tag with
        | 1 ->
            let next, pos = Codec.get_i32 buf pos limit in
            (Ack { next }, pos)
        | 0 ->
            let ack, pos = Codec.get_i32 buf pos limit in
            let count, pos = Codec.get_u16 buf pos limit in
            let pos = ref pos in
            let segs =
              Array.init count (fun _ ->
                  let seq, p = Codec.get_i32 buf !pos limit in
                  let cb, p = Codec.get_i32 buf p limit in
                  let pb, p = Codec.get_i32 buf p limit in
                  if cb < 0 || pb < 0 then
                    raise (Codec.Bad "negative segment byte count");
                  let m, p = c.Codec.parse buf p limit in
                  pos := p;
                  (seq, cb, pb, m))
            in
            (Segs { ack; segs }, !pos)
        | k -> raise (Codec.Bad (Printf.sprintf "unknown session tag %d" k)));
  }

let wrap ?(config = default) (inner : Transport.factory) :
    Transport.factory * control =
  if config.retransmit_after < 1 then
    invalid_arg "Session.wrap: retransmit_after must be >= 1";
  if config.backoff_max < config.retransmit_after then
    invalid_arg "Session.wrap: backoff_max below retransmit_after";
  if config.ack_delay < 0 then invalid_arg "Session.wrap: negative ack_delay";
  if config.ack_delay >= config.retransmit_after then
    invalid_arg "Session.wrap: ack_delay must stay below retransmit_after";
  if config.coalesce < 1 then invalid_arg "Session.wrap: coalesce must be >= 1";
  let installed : control option ref = ref None in
  let the () =
    match !installed with
    | Some c -> c
    | None -> invalid_arg "Session: transport not created yet"
  in
  let control =
    {
      stats = (fun () -> (the ()).stats ());
      mark_stable = (fun () -> (the ()).mark_stable ());
      snapshot = (fun () -> (the ()).snapshot ());
      restore = (fun blob -> (the ()).restore blob);
      delivered = (fun () -> (the ()).delivered ());
    }
  in
  let factory =
    {
      Transport.create =
        (fun (type m) ?codec n : m Transport.t ->
          let wcodec = Option.map wrapped_codec codec in
          let tr : m wrapped Transport.t =
            inner.Transport.create ?codec:wcodec n
          in
          let handlers : (m Net.envelope -> unit) array =
            Array.make n (fun _ -> ())
          in
          (* go-back-N sender state per directed link *)
          let next_seq = Array.make_matrix n n 0 in
          let window : (int * int * int * m) Ringbuf.t array array =
            Array.init n (fun _ -> Array.init n (fun _ -> Ringbuf.create ()))
          in
          let timer_armed = Array.make_matrix n n false in
          let cur_timeout = Array.make_matrix n n config.retransmit_after in
          (* acks seen since the retransmit timer was last armed: a link
             whose window is advancing is healthy, and its timer restarts
             instead of go-back-N-replaying segments that aren't late *)
          let acked_since_arm = Array.make_matrix n n false in
          (* segments queued behind a pending flush (coalescing only);
             stored reversed, newest first *)
          let outq : (int * int * int * m) list array array =
            Array.make_matrix n n []
          in
          let flush_armed = Array.make_matrix n n false in
          (* receiver state per directed link (indexed receiver, sender) *)
          let expected = Array.make_matrix n n 0 in
          (* positions covered by the receiver's last checkpoint; in
             stable-acks mode acks advance only this floor, so peers keep
             retransmitting anything a crash could roll back *)
          let stable = Array.make_matrix n n 0 in
          (* a received segment owes the sender a cumulative ack: either
             piggybacked on the next data frame back, or — if the link
             stays idle for [ack_delay] — flushed as a standalone Ack *)
          let ack_pending = Array.make_matrix n n false in
          let ack_armed = Array.make_matrix n n false in
          let jitter_rng = Rng.create (config.seed lxor 0x5E55) in
          (* protocol-level accounting: first transmissions and in-order
             first deliveries only — the numbers the paper's experiments
             compare, unchanged by loss, retransmission or coalescing *)
          let sent = ref 0 and delivered = ref 0 in
          let ctl = ref 0 and pay = ref 0 in
          let per_node_sent = Array.make n 0 in
          let per_node_received = Array.make n 0 in
          (* reliability-layer accounting, reported separately *)
          let segs_count = ref 0 and retransmits = ref 0 and acks = ref 0 in
          let piggybacked = ref 0 and frames = ref 0 in
          let dups = ref 0 and overhead = ref 0 in
          let ack_value src dst =
            if config.stable_acks then stable.(src).(dst)
            else expected.(src).(dst)
          in
          (* one wire frame carrying [segs] (all fresh or all retransmit),
             with a cumulative ack piggybacked when one is owed *)
          let emit_data ~retransmit ~src ~dst segs =
            let k = Array.length segs in
            incr frames;
            segs_count := !segs_count + k;
            overhead := !overhead + seg_header_bytes + (coal_entry_bytes * (k - 1));
            let cb = ref 0 and pb = ref 0 in
            Array.iter
              (fun (_, c, p, _) ->
                cb := !cb + c;
                pb := !pb + p)
              segs;
            if retransmit then begin
              retransmits := !retransmits + k;
              overhead := !overhead + !cb + !pb
            end;
            let ack =
              if ack_pending.(src).(dst) then begin
                ack_pending.(src).(dst) <- false;
                incr piggybacked;
                ack_value src dst
              end
              else -1
            in
            tr.Transport.send ~src ~dst ~control_bytes:!cb ~payload_bytes:!pb
              (Segs { ack; segs })
          in
          let send_ack ~from_ ~to_ =
            incr acks;
            incr frames;
            overhead := !overhead + ack_bytes;
            tr.Transport.send ~src:from_ ~dst:to_ ~control_bytes:ack_bytes
              ~payload_bytes:0 (Ack { next = ack_value from_ to_ })
          in
          let ack_flush p s =
            if ack_pending.(p).(s) then begin
              ack_pending.(p).(s) <- false;
              send_ack ~from_:p ~to_:s
            end
          in
          let arm_ack p s =
            if config.ack_delay = 0 then ack_flush p s
            else if not ack_armed.(p).(s) then begin
              ack_armed.(p).(s) <- true;
              tr.Transport.schedule ~delay:config.ack_delay (fun () ->
                  ack_armed.(p).(s) <- false;
                  ack_flush p s)
            end
          in
          let chunked segs =
            (* split a segment run into frames of at most [coalesce] *)
            let total = Array.length segs in
            let rec go off acc =
              if off >= total then List.rev acc
              else
                let k = min config.coalesce (total - off) in
                go (off + k) (Array.sub segs off k :: acc)
            in
            go 0 []
          in
          let flush src dst =
            match outq.(src).(dst) with
            | [] -> ()
            | q ->
                outq.(src).(dst) <- [];
                let segs = Array.of_list (List.rev q) in
                List.iter (emit_data ~retransmit:false ~src ~dst) (chunked segs)
          in
          let rec arm src dst =
            if not timer_armed.(src).(dst) then begin
              timer_armed.(src).(dst) <- true;
              acked_since_arm.(src).(dst) <- false;
              let delay =
                cur_timeout.(src).(dst)
                + (if config.jitter > 0 then Rng.int jitter_rng (config.jitter + 1)
                   else 0)
              in
              tr.Transport.schedule ~delay (fun () ->
                  timer_armed.(src).(dst) <- false;
                  (* anything still queued goes out fresh first, so the
                     window replay below never double-sends it as new *)
                  flush src dst;
                  let w = window.(src).(dst) in
                  if not (Ringbuf.is_empty w) then
                    if acked_since_arm.(src).(dst) then
                      (* progress since arming: nothing in the window has
                         been outstanding for a full timeout yet *)
                      arm src dst
                    else begin
                      let segs = Array.of_list (Ringbuf.to_list w) in
                      List.iter
                        (emit_data ~retransmit:true ~src ~dst)
                        (chunked segs);
                      cur_timeout.(src).(dst) <-
                        min config.backoff_max (2 * cur_timeout.(src).(dst));
                      arm src dst
                    end)
            end
          in
          let prune_window p s next =
            let w = window.(p).(s) in
            let progressed = ref false in
            let rec prune () =
              match Ringbuf.peek_front w with
              | Some (seq, _, _, _) when seq < next ->
                  ignore (Ringbuf.pop_front w);
                  progressed := true;
                  prune ()
              | _ -> ()
            in
            prune ();
            if !progressed then begin
              cur_timeout.(p).(s) <- config.retransmit_after;
              acked_since_arm.(p).(s) <- true
            end
          in
          let on_wrapped p (env : m wrapped Net.envelope) =
            let s = env.Net.src in
            match env.Net.msg with
            | Segs { ack; segs } ->
                if ack >= 0 then prune_window p s ack;
                (* owe the sender a cumulative ack before delivering: a
                   synchronous protocol reply then carries it for free *)
                ack_pending.(p).(s) <- true;
                Array.iter
                  (fun (seq, cb, pb, msg) ->
                    if seq = expected.(p).(s) then begin
                      expected.(p).(s) <- seq + 1;
                      incr delivered;
                      per_node_received.(p) <- per_node_received.(p) + 1;
                      handlers.(p)
                        {
                          Net.src = s;
                          dst = env.Net.dst;
                          send_time = env.Net.send_time;
                          deliver_time = env.Net.deliver_time;
                          control_bytes = cb;
                          payload_bytes = pb;
                          msg;
                        }
                    end
                    else if seq < expected.(p).(s) then incr dups
                    (* out-of-order segments are discarded (go-back-N) *))
                  segs;
                (* still owed (no data went back): a standalone ack after
                   the idle delay covers every arrival cumulatively *)
                if ack_pending.(p).(s) then arm_ack p s
            | Ack { next } -> prune_window p s next
          in
          for p = 0 to n - 1 do
            tr.Transport.set_handler p (on_wrapped p)
          done;
          let session_stats () =
            {
              segs_sent = !segs_count;
              retransmits = !retransmits;
              acks_sent = !acks;
              acks_piggybacked = !piggybacked;
              frames_sent = !frames;
              dups_suppressed = !dups;
              overhead_bytes = !overhead;
            }
          in
          let snapshot () : string =
            (* flush queues are not part of the state: queued segments are
               already in their windows, and retransmission replays them *)
            let windows = Array.map (Array.map Ringbuf.to_list) window in
            let st : m state =
              ( next_seq, windows, cur_timeout, expected, stable,
                ( !sent, !delivered, !ctl, !pay, !segs_count, !retransmits,
                  !acks, !overhead ),
                per_node_sent, per_node_received )
            in
            Marshal.to_string (st, (!dups, !piggybacked, !frames)) []
          in
          let blit_matrix dst src =
            Array.iteri (fun i row -> Array.blit src.(i) 0 row 0 (Array.length row)) dst
          in
          let restore blob =
            let (st : m state), (dups', piggy', frames') =
              Marshal.from_string blob 0
            in
            let nq, windows, ct, ex, stb, counters, pns, pnr = st in
            let s, d, c, p, sg, rt, ak, ov = counters in
            blit_matrix next_seq nq;
            blit_matrix cur_timeout ct;
            blit_matrix expected ex;
            blit_matrix stable stb;
            Array.blit pns 0 per_node_sent 0 n;
            Array.blit pnr 0 per_node_received 0 n;
            sent := s; delivered := d; ctl := c; pay := p;
            segs_count := sg; retransmits := rt; acks := ak; overhead := ov;
            dups := dups';
            piggybacked := piggy';
            frames := frames';
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                let w = window.(i).(j) in
                Ringbuf.clear w;
                List.iter (Ringbuf.push_back w) windows.(i).(j);
                (* unacked segments survive the restart: resume their
                   retransmission cycle *)
                if not (Ringbuf.is_empty w) then arm i j
              done
            done
          in
          let mark_stable () =
            for i = 0 to n - 1 do
              Array.blit expected.(i) 0 stable.(i) 0 n
            done
          in
          installed :=
            Some
              {
                stats = session_stats;
                mark_stable;
                snapshot;
                restore;
                delivered = (fun () -> !delivered);
              };
          {
            Transport.n_nodes = n;
            scope = tr.Transport.scope;
            send =
              (fun ~src ~dst ~control_bytes ~payload_bytes msg ->
                let seq = next_seq.(src).(dst) in
                next_seq.(src).(dst) <- seq + 1;
                Ringbuf.push_back window.(src).(dst)
                  (seq, control_bytes, payload_bytes, msg);
                incr sent;
                ctl := !ctl + control_bytes;
                pay := !pay + payload_bytes;
                per_node_sent.(src) <- per_node_sent.(src) + 1;
                let seg = (seq, control_bytes, payload_bytes, msg) in
                if config.coalesce = 1 then
                  (* no flush budget: transmit synchronously, exactly the
                     uncoalesced wire behaviour *)
                  emit_data ~retransmit:false ~src ~dst [| seg |]
                else begin
                  outq.(src).(dst) <- seg :: outq.(src).(dst);
                  if not flush_armed.(src).(dst) then begin
                    flush_armed.(src).(dst) <- true;
                    tr.Transport.schedule ~delay:0 (fun () ->
                        flush_armed.(src).(dst) <- false;
                        flush src dst)
                  end
                end;
                arm src dst);
            set_handler = (fun node f -> handlers.(node) <- f);
            schedule = tr.Transport.schedule;
            step = tr.Transport.step;
            quiesce = tr.Transport.quiesce;
            now = tr.Transport.now;
            stats =
              (fun () ->
                let i = tr.Transport.stats () in
                {
                  Net.sent = !sent;
                  delivered = !delivered;
                  dropped = i.Net.dropped;
                  duplicated = i.Net.duplicated;
                  total_control_bytes = !ctl;
                  total_payload_bytes = !pay;
                  retransmits = !retransmits;
                  dups_suppressed = !dups;
                  reconnects = i.Net.reconnects;
                  overhead_bytes = !overhead + i.Net.overhead_bytes;
                  per_node_sent = Array.copy per_node_sent;
                  per_node_received = Array.copy per_node_received;
                });
            set_tracing = tr.Transport.set_tracing;
            trace =
              (fun () ->
                List.concat_map
                  (fun ev ->
                    let unwrap wrap_ev (env : m wrapped Net.envelope) =
                      match env.Net.msg with
                      | Segs { segs; _ } ->
                          Array.to_list segs
                          |> List.map (fun (_, cb, pb, msg) ->
                                 wrap_ev
                                   {
                                     Net.src = env.Net.src;
                                     dst = env.Net.dst;
                                     send_time = env.Net.send_time;
                                     deliver_time = env.Net.deliver_time;
                                     control_bytes = cb;
                                     payload_bytes = pb;
                                     msg;
                                   })
                      | Ack _ -> []
                    in
                    match ev with
                    | Net.Sent e -> unwrap (fun e -> Net.Sent e) e
                    | Net.Delivered e -> unwrap (fun e -> Net.Delivered e) e
                    | Net.Dropped e -> unwrap (fun e -> Net.Dropped e) e)
                  (tr.Transport.trace ()));
          });
    }
  in
  (factory, control)

module Net = Repro_msgpass.Net
module Rng = Repro_util.Rng
module Ringbuf = Repro_util.Ringbuf

type config = {
  retransmit_after : int;
  backoff_max : int;
  jitter : int;
  seed : int;
  stable_acks : bool;
}

let default =
  { retransmit_after = 40; backoff_max = 320; jitter = 10; seed = 0;
    stable_acks = false }

type 'msg wrapped = Seg of { seq : int; msg : 'msg } | Ack of { next : int }

(* Reliability bytes, in the same declared-size currency as the protocols'
   control bytes but accounted apart from them: a sequence number per
   segment, a cumulative counter per ack. *)
let seg_header_bytes = 8

let ack_bytes = 8

type stats = {
  segs_sent : int;
  retransmits : int;
  acks_sent : int;
  dups_suppressed : int;
  overhead_bytes : int;
}

type control = {
  stats : unit -> stats;
  mark_stable : unit -> unit;
  snapshot : unit -> string;
  restore : string -> unit;
}

(* What [snapshot] marshals: plain data only (window messages are protocol
   messages, which are marshal-safe by the live backend's own contract). *)
type 'msg state =
  int array array
  * (int * int * int * 'msg) list array array
  * int array array
  * int array array
  * int array array
  * (int * int * int * int * int * int * int * int)
  * int array
  * int array

let wrap ?(config = default) (inner : Transport.factory) :
    Transport.factory * control =
  if config.retransmit_after < 1 then
    invalid_arg "Session.wrap: retransmit_after must be >= 1";
  if config.backoff_max < config.retransmit_after then
    invalid_arg "Session.wrap: backoff_max below retransmit_after";
  let installed : control option ref = ref None in
  let the () =
    match !installed with
    | Some c -> c
    | None -> invalid_arg "Session: transport not created yet"
  in
  let control =
    {
      stats = (fun () -> (the ()).stats ());
      mark_stable = (fun () -> (the ()).mark_stable ());
      snapshot = (fun () -> (the ()).snapshot ());
      restore = (fun blob -> (the ()).restore blob);
    }
  in
  let factory =
    {
      Transport.create =
        (fun (type m) ~n : m Transport.t ->
          let tr : m wrapped Transport.t = inner.Transport.create ~n in
          let handlers : (m Net.envelope -> unit) array =
            Array.make n (fun _ -> ())
          in
          (* go-back-N sender state per directed link *)
          let next_seq = Array.make_matrix n n 0 in
          let window : (int * int * int * m) Ringbuf.t array array =
            Array.init n (fun _ -> Array.init n (fun _ -> Ringbuf.create ()))
          in
          let timer_armed = Array.make_matrix n n false in
          let cur_timeout = Array.make_matrix n n config.retransmit_after in
          (* receiver state per directed link (indexed receiver, sender) *)
          let expected = Array.make_matrix n n 0 in
          (* positions covered by the receiver's last checkpoint; in
             stable-acks mode acks advance only this floor, so peers keep
             retransmitting anything a crash could roll back *)
          let stable = Array.make_matrix n n 0 in
          let jitter_rng = Rng.create (config.seed lxor 0x5E55) in
          (* protocol-level accounting: first transmissions and in-order
             first deliveries only — the numbers the paper's experiments
             compare, unchanged by loss or retransmission *)
          let sent = ref 0 and delivered = ref 0 in
          let ctl = ref 0 and pay = ref 0 in
          let per_node_sent = Array.make n 0 in
          let per_node_received = Array.make n 0 in
          (* reliability-layer accounting, reported separately *)
          let segs = ref 0 and retransmits = ref 0 and acks = ref 0 in
          let dups = ref 0 and overhead = ref 0 in
          let transmit ~retransmit ~src ~dst (seq, cb, pb, msg) =
            incr segs;
            if retransmit then begin
              incr retransmits;
              overhead := !overhead + seg_header_bytes + cb + pb
            end
            else overhead := !overhead + seg_header_bytes;
            tr.Transport.send ~src ~dst ~control_bytes:cb ~payload_bytes:pb
              (Seg { seq; msg })
          in
          let send_ack ~from_ ~to_ =
            let next =
              if config.stable_acks then stable.(from_).(to_)
              else expected.(from_).(to_)
            in
            incr acks;
            overhead := !overhead + ack_bytes;
            tr.Transport.send ~src:from_ ~dst:to_ ~control_bytes:ack_bytes
              ~payload_bytes:0 (Ack { next })
          in
          let rec arm src dst =
            if not timer_armed.(src).(dst) then begin
              timer_armed.(src).(dst) <- true;
              let delay =
                cur_timeout.(src).(dst)
                + (if config.jitter > 0 then Rng.int jitter_rng (config.jitter + 1)
                   else 0)
              in
              tr.Transport.schedule ~delay (fun () ->
                  timer_armed.(src).(dst) <- false;
                  let w = window.(src).(dst) in
                  if not (Ringbuf.is_empty w) then begin
                    Ringbuf.iter w (transmit ~retransmit:true ~src ~dst);
                    cur_timeout.(src).(dst) <-
                      min config.backoff_max (2 * cur_timeout.(src).(dst));
                    arm src dst
                  end)
            end
          in
          let on_wrapped p (env : m wrapped Net.envelope) =
            let s = env.Net.src in
            match env.Net.msg with
            | Seg { seq; msg } ->
                if seq = expected.(p).(s) then begin
                  expected.(p).(s) <- seq + 1;
                  incr delivered;
                  per_node_received.(p) <- per_node_received.(p) + 1;
                  handlers.(p)
                    {
                      Net.src = s;
                      dst = env.Net.dst;
                      send_time = env.Net.send_time;
                      deliver_time = env.Net.deliver_time;
                      control_bytes = env.Net.control_bytes;
                      payload_bytes = env.Net.payload_bytes;
                      msg;
                    }
                end
                else if seq < expected.(p).(s) then incr dups;
                (* out-of-order segments are discarded (go-back-N); every
                   arrival refreshes the cumulative ack *)
                send_ack ~from_:p ~to_:s
            | Ack { next } ->
                let w = window.(p).(s) in
                let progressed = ref false in
                let rec prune () =
                  match Ringbuf.peek_front w with
                  | Some (seq, _, _, _) when seq < next ->
                      ignore (Ringbuf.pop_front w);
                      progressed := true;
                      prune ()
                  | _ -> ()
                in
                prune ();
                if !progressed then
                  cur_timeout.(p).(s) <- config.retransmit_after
          in
          for p = 0 to n - 1 do
            tr.Transport.set_handler p (on_wrapped p)
          done;
          let session_stats () =
            {
              segs_sent = !segs;
              retransmits = !retransmits;
              acks_sent = !acks;
              dups_suppressed = !dups;
              overhead_bytes = !overhead;
            }
          in
          let snapshot () : string =
            let windows =
              Array.map (Array.map Ringbuf.to_list) window
            in
            let st : m state =
              ( next_seq, windows, cur_timeout, expected, stable,
                ( !sent, !delivered, !ctl, !pay, !segs, !retransmits, !acks,
                  !overhead ),
                per_node_sent, per_node_received )
            in
            Marshal.to_string (st, !dups) []
          in
          let blit_matrix dst src =
            Array.iteri (fun i row -> Array.blit src.(i) 0 row 0 (Array.length row)) dst
          in
          let restore blob =
            let (st : m state), dups' = Marshal.from_string blob 0 in
            let nq, windows, ct, ex, stb, counters, pns, pnr = st in
            let s, d, c, p, sg, rt, ak, ov = counters in
            blit_matrix next_seq nq;
            blit_matrix cur_timeout ct;
            blit_matrix expected ex;
            blit_matrix stable stb;
            Array.blit pns 0 per_node_sent 0 n;
            Array.blit pnr 0 per_node_received 0 n;
            sent := s; delivered := d; ctl := c; pay := p;
            segs := sg; retransmits := rt; acks := ak; overhead := ov;
            dups := dups';
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                let w = window.(i).(j) in
                Ringbuf.clear w;
                List.iter (Ringbuf.push_back w) windows.(i).(j);
                (* unacked segments survive the restart: resume their
                   retransmission cycle *)
                if not (Ringbuf.is_empty w) then arm i j
              done
            done
          in
          let mark_stable () =
            for i = 0 to n - 1 do
              Array.blit expected.(i) 0 stable.(i) 0 n
            done
          in
          installed :=
            Some
              { stats = session_stats; mark_stable; snapshot; restore };
          {
            Transport.n_nodes = n;
            scope = tr.Transport.scope;
            send =
              (fun ~src ~dst ~control_bytes ~payload_bytes msg ->
                let seq = next_seq.(src).(dst) in
                next_seq.(src).(dst) <- seq + 1;
                Ringbuf.push_back window.(src).(dst)
                  (seq, control_bytes, payload_bytes, msg);
                incr sent;
                ctl := !ctl + control_bytes;
                pay := !pay + payload_bytes;
                per_node_sent.(src) <- per_node_sent.(src) + 1;
                transmit ~retransmit:false ~src ~dst
                  (seq, control_bytes, payload_bytes, msg);
                arm src dst);
            set_handler = (fun node f -> handlers.(node) <- f);
            schedule = tr.Transport.schedule;
            step = tr.Transport.step;
            quiesce = tr.Transport.quiesce;
            now = tr.Transport.now;
            stats =
              (fun () ->
                let i = tr.Transport.stats () in
                {
                  Net.sent = !sent;
                  delivered = !delivered;
                  dropped = i.Net.dropped;
                  duplicated = i.Net.duplicated;
                  total_control_bytes = !ctl;
                  total_payload_bytes = !pay;
                  retransmits = !retransmits;
                  dups_suppressed = !dups;
                  reconnects = i.Net.reconnects;
                  overhead_bytes = !overhead + i.Net.overhead_bytes;
                  per_node_sent = Array.copy per_node_sent;
                  per_node_received = Array.copy per_node_received;
                });
            set_tracing = tr.Transport.set_tracing;
            trace =
              (fun () ->
                List.filter_map
                  (fun ev ->
                    let unwrap (env : m wrapped Net.envelope) =
                      match env.Net.msg with
                      | Seg { msg; _ } ->
                          Some
                            {
                              Net.src = env.Net.src;
                              dst = env.Net.dst;
                              send_time = env.Net.send_time;
                              deliver_time = env.Net.deliver_time;
                              control_bytes = env.Net.control_bytes;
                              payload_bytes = env.Net.payload_bytes;
                              msg;
                            }
                      | Ack _ -> None
                    in
                    match ev with
                    | Net.Sent e -> Option.map (fun e -> Net.Sent e) (unwrap e)
                    | Net.Delivered e ->
                        Option.map (fun e -> Net.Delivered e) (unwrap e)
                    | Net.Dropped e ->
                        Option.map (fun e -> Net.Dropped e) (unwrap e))
                  (tr.Transport.trace ()));
          });
    }
  in
  (factory, control)

(* Client RPC codec: the bodies of [Wire.Creq] / [Wire.Cresp] frames.

   Hand-rolled big-endian encoding, symmetric with the Wire framing
   discipline: every decode is strict (bad tags, truncation, trailing
   bytes, negative counts are all errors), so a corrupt client cannot
   poison a node.  Values travel as 8-byte integers — the same
   [value_bytes] currency the protocols declare for payload accounting.

   The hot path avoids intermediate strings in both directions: [emit_*]
   writes a body straight into a (pooled) frame buffer at an offset, and
   [decode_*_at] parses one straight out of a decoder's buffer slice
   ({!Wire.view}).  The string-based [encode_*]/[decode_*] remain as
   wrappers. *)

type op = Read of { var : int } | Write of { var : int; value : int }

type request = Op of op | Batch of op array

type outcome = Got of int option | Stored | Failed of string

let max_batch = 0xFFFF

let ops = function Op op -> [| op |] | Batch ops -> ops

(* --- encoding ------------------------------------------------------------- *)

let check_var var = if var < 0 || var > 0x7FFFFFFF then invalid_arg "Rpc: bad var"

let op_len = function Read _ -> 5 | Write _ -> 13

let put_op buf off = function
  | Read { var } ->
      check_var var;
      Bytes.set_uint8 buf off 0;
      Bytes.set_int32_be buf (off + 1) (Int32.of_int var);
      off + 5
  | Write { var; value } ->
      check_var var;
      Bytes.set_uint8 buf off 1;
      Bytes.set_int32_be buf (off + 1) (Int32.of_int var);
      Bytes.set_int64_be buf (off + 5) (Int64.of_int value);
      off + 13

let request_body_len = function
  | Op op -> 4 + op_len op
  | Batch ops -> 4 + 1 + 2 + Array.fold_left (fun a op -> a + op_len op) 0 ops

let emit_request buf off ~id req =
  if id < 0 || id > 0x7FFFFFFF then invalid_arg "Rpc.emit_request: bad id";
  match req with
  | Op op ->
      (* single ops share the per-op layout: tag byte then operands *)
      Bytes.set_int32_be buf off (Int32.of_int id);
      put_op buf (off + 4) op
  | Batch ops ->
      let count = Array.length ops in
      if count > max_batch then invalid_arg "Rpc.emit_request: batch too large";
      Bytes.set_int32_be buf off (Int32.of_int id);
      Bytes.set_uint8 buf (off + 4) 2;
      Bytes.set_uint16_be buf (off + 5) count;
      let o = ref (off + 7) in
      Array.iter (fun op -> o := put_op buf !o op) ops;
      !o

let encode_request ~id req =
  let len = request_body_len req in
  let buf = Bytes.create len in
  let off = emit_request buf 0 ~id req in
  assert (off = len);
  Bytes.unsafe_to_string buf

let outcome_len = function
  | Got None -> 1
  | Got (Some _) -> 9
  | Stored -> 1
  | Failed msg ->
      if String.length msg > 0xFFFF then
        invalid_arg "Rpc: error message too long";
      3 + String.length msg

let response_body_len outcomes =
  4 + 2 + Array.fold_left (fun a o -> a + outcome_len o) 0 outcomes

let emit_response buf off ~id outcomes =
  if id < 0 || id > 0x7FFFFFFF then invalid_arg "Rpc.emit_response: bad id";
  let count = Array.length outcomes in
  if count > max_batch then invalid_arg "Rpc.emit_response: too many outcomes";
  Bytes.set_int32_be buf off (Int32.of_int id);
  Bytes.set_uint16_be buf (off + 4) count;
  let o = ref (off + 6) in
  Array.iter
    (fun oc ->
      (match oc with
      | Got None -> Bytes.set_uint8 buf !o 0
      | Got (Some v) ->
          Bytes.set_uint8 buf !o 1;
          Bytes.set_int64_be buf (!o + 1) (Int64.of_int v)
      | Stored -> Bytes.set_uint8 buf !o 2
      | Failed msg ->
          Bytes.set_uint8 buf !o 3;
          Bytes.set_uint16_be buf (!o + 1) (String.length msg);
          Bytes.blit_string msg 0 buf (!o + 3) (String.length msg));
      o := !o + outcome_len oc)
    outcomes;
  !o

let encode_response ~id outcomes =
  let len = response_body_len outcomes in
  let buf = Bytes.create len in
  let off = emit_response buf 0 ~id outcomes in
  assert (off = len);
  Bytes.unsafe_to_string buf

(* --- decoding ------------------------------------------------------------- *)

(* A tiny strict reader over a byte slice: every primitive checks the
   remaining length, and [finish] rejects trailing bytes, so decode
   accepts exactly the images of encode. *)
type reader = { buf : Bytes.t; mutable pos : int; limit : int }

exception Bad of string

let need r k = if r.pos + k > r.limit then raise (Bad "truncated body")

let u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let u16 r =
  need r 2;
  let v = Bytes.get_uint16_be r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let i32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let i64 r =
  need r 8;
  let v = Int64.to_int (Bytes.get_int64_be r.buf r.pos) in
  r.pos <- r.pos + 8;
  v

let str r len =
  need r len;
  let v = Bytes.sub_string r.buf r.pos len in
  r.pos <- r.pos + len;
  v

let finish r v = if r.pos <> r.limit then raise (Bad "trailing bytes") else v

let var_of r =
  let var = i32 r in
  if var < 0 then raise (Bad "negative var");
  var

let op_of r =
  match u8 r with
  | 0 -> Read { var = var_of r }
  | 1 ->
      let var = var_of r in
      Write { var; value = i64 r }
  | k -> raise (Bad (Printf.sprintf "unknown op tag %d" k))

let run_decode_at f buf ~pos ~len =
  let r = { buf; pos; limit = pos + len } in
  match f r with v -> Ok v | exception Bad msg -> Error msg

let request_of r =
  let id = i32 r in
  if id < 0 then raise (Bad "negative request id");
  let req =
    match u8 r with
    | 0 -> Op (Read { var = var_of r })
    | 1 ->
        let var = var_of r in
        Op (Write { var; value = i64 r })
    | 2 ->
        let count = u16 r in
        Batch (Array.init count (fun _ -> op_of r))
    | k -> raise (Bad (Printf.sprintf "unknown request tag %d" k))
  in
  finish r (id, req)

let response_of r =
  let id = i32 r in
  if id < 0 then raise (Bad "negative request id");
  let count = u16 r in
  let outcomes =
    Array.init count (fun _ ->
        match u8 r with
        | 0 -> Got None
        | 1 -> Got (Some (i64 r))
        | 2 -> Stored
        | 3 ->
            let len = u16 r in
            Failed (str r len)
        | k -> raise (Bad (Printf.sprintf "unknown outcome tag %d" k)))
  in
  finish r (id, outcomes)

let decode_request_at buf ~pos ~len = run_decode_at request_of buf ~pos ~len

let decode_response_at buf ~pos ~len = run_decode_at response_of buf ~pos ~len

(* Reading never mutates, so viewing the string's bytes in place is safe. *)
let decode_request body =
  decode_request_at
    (Bytes.unsafe_of_string body)
    ~pos:0 ~len:(String.length body)

let decode_response body =
  decode_response_at
    (Bytes.unsafe_of_string body)
    ~pos:0 ~len:(String.length body)

(* --- declared-size accounting --------------------------------------------- *)

let value_bytes = 8

let op_payload = function Read _ -> 0 | Write _ -> value_bytes

let request_payload_bytes req =
  Array.fold_left (fun a op -> a + op_payload op) 0 (ops req)

let response_payload_bytes outcomes =
  Array.fold_left
    (fun a o -> a + match o with Got (Some _) -> value_bytes | _ -> 0)
    0 outcomes

(** Pluggable message transport for the protocol layer.

    Every protocol in [lib/core] is written against one {!t} record: point
    messages with declared control/payload accounting, per-node delivery
    handlers, timers, a step/quiesce event loop and a clock.  Two backends
    produce the record:

    - {!sim} wraps the deterministic discrete-event simulator
      ({!Repro_msgpass.Net}) — every run reproducible from a seed, all [n]
      nodes hosted in one address space.  This is the default and is
      byte-for-byte identical to the pre-seam behaviour.
    - {!Live.factory} (see {!Live}) speaks length-prefixed binary frames
      over Unix TCP sockets; the record then represents {e one} node of a
      multi-process cluster and [scope] is [Node self].

    Handlers receive {!Repro_msgpass.Net.envelope} values in both cases, so
    protocol code is backend-agnostic. *)

module Net = Repro_msgpass.Net

type scope =
  | All_nodes  (** one address space hosts every node (simulator) *)
  | Node of int  (** this process is node [i] of a live cluster *)

type 'msg t = {
  n_nodes : int;
  scope : scope;
  send :
    src:int -> dst:int -> control_bytes:int -> payload_bytes:int -> 'msg -> unit;
      (** Declared byte counts feed the accounting, exactly as in
          {!Net.send}.  Live backends additionally refuse [src] other than
          their own node. *)
  set_handler : int -> ('msg Net.envelope -> unit) -> unit;
      (** Install node [i]'s delivery callback.  Live backends silently
          ignore installs for remote nodes (protocols install all [n]). *)
  schedule : delay:int -> (unit -> unit) -> unit;
      (** Run a thunk [delay] ticks from now (simulated ticks, or
          milliseconds on the live backend). *)
  step : unit -> bool;
      (** Process one batch of pending work.  [false] means nothing is
          currently pending — final on the simulator, transient on a live
          backend (a socket may become readable later). *)
  quiesce : unit -> unit;
      (** Simulator: run to the empty queue.  Live: drain whatever is
          immediately available without blocking. *)
  now : unit -> int;
  stats : unit -> Net.stats;
      (** Same counters in both backends; a live node counts its own sends
          (and the declared bytes they carry) and its own deliveries. *)
  set_tracing : bool -> unit;
  trace : unit -> 'msg Net.event list;
}

type factory = { create : 'msg. ?codec:'msg Codec.t -> int -> 'msg t }
(** A backend constructor: [create ?codec n] builds the transport for an
    [n]-node instance.  Polymorphic in the protocol's message type so
    one factory value can build any registered protocol.  The optional
    {!Codec.t} is the protocol's strict binary message codec: the live
    backend uses it to encode frame bodies in place (falling back to
    [Marshal] when absent — tests and the legacy baseline arm), wrappers
    ({!Session}, {!Chaos}) thread it through, and the simulator ignores
    it — sim behaviour is byte-identical with or without one. *)

val of_net : 'msg Net.t -> 'msg t
(** View an existing simulator network as a transport. *)

val sim :
  ?faults:Repro_msgpass.Fault.t ->
  ?service_time:int ->
  latency:Repro_msgpass.Latency.t ->
  seed:int ->
  unit ->
  factory
(** The simulator backend.  Fault probabilities are validated here, at
    configuration time, so a bad drop/duplicate probability fails fast —
    before any network (or worse, any mid-run sample) sees it.
    @raise Invalid_argument on fault probabilities outside [\[0,1\]]. *)

type kind = Data | Hello | Done | Creq | Cresp

type frame = {
  kind : kind;
  src : int;
  dst : int;
  control_bytes : int;
  payload_bytes : int;
  body : string;
}

let magic = 0xD5

(* header bytes counted by the length field (magic..payload_bytes) *)
let header_bytes = 14

let max_frame_bytes = 1 lsl 24

let kind_byte = function
  | Data -> 0
  | Hello -> 1
  | Done -> 2
  | Creq -> 3
  | Cresp -> 4

let kind_of_byte = function
  | 0 -> Some Data
  | 1 -> Some Hello
  | 2 -> Some Done
  | 3 -> Some Creq
  | 4 -> Some Cresp
  | _ -> None

let encode frame =
  if frame.src < 0 || frame.src > 0xFFFF then invalid_arg "Wire.encode: bad src";
  if frame.dst < 0 || frame.dst > 0xFFFF then invalid_arg "Wire.encode: bad dst";
  if frame.control_bytes < 0 || frame.control_bytes > 0x7FFFFFFF then
    invalid_arg "Wire.encode: bad control byte count";
  if frame.payload_bytes < 0 || frame.payload_bytes > 0x7FFFFFFF then
    invalid_arg "Wire.encode: bad payload byte count";
  let body_len = String.length frame.body in
  let len = header_bytes + body_len in
  if len > max_frame_bytes then invalid_arg "Wire.encode: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.set_uint8 buf 4 magic;
  Bytes.set_uint8 buf 5 (kind_byte frame.kind);
  Bytes.set_uint16_be buf 6 frame.src;
  Bytes.set_uint16_be buf 8 frame.dst;
  Bytes.set_int32_be buf 10 (Int32.of_int frame.control_bytes);
  Bytes.set_int32_be buf 14 (Int32.of_int frame.payload_bytes);
  Bytes.blit_string frame.body 0 buf 18 body_len;
  buf

(* Decode one frame starting at [off]; the length prefix has already been
   read and validated to fit in the buffer. *)
let decode_at buf off len =
  if Bytes.get_uint8 buf (off + 4) <> magic then Error "bad magic"
  else
    match kind_of_byte (Bytes.get_uint8 buf (off + 5)) with
    | None -> Error "unknown frame kind"
    | Some kind ->
        let control_bytes = Int32.to_int (Bytes.get_int32_be buf (off + 10)) in
        let payload_bytes = Int32.to_int (Bytes.get_int32_be buf (off + 14)) in
        if control_bytes < 0 || payload_bytes < 0 then
          Error "negative byte count"
        else
          Ok
            {
              kind;
              src = Bytes.get_uint16_be buf (off + 6);
              dst = Bytes.get_uint16_be buf (off + 8);
              control_bytes;
              payload_bytes;
              body = Bytes.sub_string buf (off + 18) (len - header_bytes);
            }

let check_length len =
  if len < header_bytes then Error "undersized frame"
  else if len > max_frame_bytes then Error "oversized frame"
  else Ok ()

let of_bytes buf =
  let total = Bytes.length buf in
  if total < 4 then Error "truncated frame"
  else
    let len = Int32.to_int (Bytes.get_int32_be buf 0) in
    match check_length len with
    | Error _ as e -> e
    | Ok () ->
        if total < 4 + len then Error "truncated frame"
        else if total > 4 + len then Error "trailing garbage"
        else decode_at buf 0 len

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable fill : int;  (* bytes valid in [buf] *)
  mutable poisoned : string option;
}

let decoder () = { buf = Bytes.create 4096; start = 0; fill = 0; poisoned = None }

let pending d = d.fill - d.start

let feed d src len =
  if len < 0 || len > Bytes.length src then invalid_arg "Wire.feed";
  if d.poisoned = None && len > 0 then begin
    (* compact, then grow if the tail still cannot take [len] bytes *)
    if d.fill + len > Bytes.length d.buf then begin
      let live = pending d in
      if live > 0 then Bytes.blit d.buf d.start d.buf 0 live;
      d.start <- 0;
      d.fill <- live;
      if d.fill + len > Bytes.length d.buf then begin
        let cap = ref (Bytes.length d.buf) in
        while d.fill + len > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit d.buf 0 bigger 0 d.fill;
        d.buf <- bigger
      end
    end;
    Bytes.blit src 0 d.buf d.fill len;
    d.fill <- d.fill + len
  end

let next d =
  match d.poisoned with
  | Some msg -> Error msg
  | None ->
      if pending d < 4 then Ok None
      else
        let len = Int32.to_int (Bytes.get_int32_be d.buf d.start) in
        (match check_length len with
        | Error msg ->
            d.poisoned <- Some msg;
            Error msg
        | Ok () ->
            if pending d < 4 + len then Ok None
            else
              let result = decode_at d.buf d.start len in
              (match result with
              | Ok frame ->
                  d.start <- d.start + 4 + len;
                  if d.start = d.fill then begin
                    d.start <- 0;
                    d.fill <- 0
                  end;
                  Ok (Some frame)
              | Error msg ->
                  d.poisoned <- Some msg;
                  Error msg))

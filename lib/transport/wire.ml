type kind =
  | Data
  | Hello
  | Done
  | Creq
  | Cresp
  | Join
  | Leave
  | Transfer
  | Epoch
  | Ping
  | Pong

type frame = {
  kind : kind;
  src : int;
  dst : int;
  epoch : int;
  control_bytes : int;
  payload_bytes : int;
  body : string;
}

let magic = 0xD5

(* header bytes counted by the length field (magic..payload_bytes) *)
let header_bytes = 16

(* where a frame body starts inside a buffer holding the whole frame,
   length prefix included *)
let body_offset = 4 + header_bytes

let max_frame_bytes = 1 lsl 24

let kind_byte = function
  | Data -> 0
  | Hello -> 1
  | Done -> 2
  | Creq -> 3
  | Cresp -> 4
  | Join -> 5
  | Leave -> 6
  | Transfer -> 7
  | Epoch -> 8
  | Ping -> 9
  | Pong -> 10

let kind_of_byte = function
  | 0 -> Some Data
  | 1 -> Some Hello
  | 2 -> Some Done
  | 3 -> Some Creq
  | 4 -> Some Cresp
  | 5 -> Some Join
  | 6 -> Some Leave
  | 7 -> Some Transfer
  | 8 -> Some Epoch
  | 9 -> Some Ping
  | 10 -> Some Pong
  | _ -> None

(* Write the length prefix and header into [buf.(0..body_offset-1)]; the
   caller emits the body at [body_offset] (possibly before this call —
   the regions are disjoint).  This is the zero-copy encode path: the
   same buffer goes straight to the socket, so no per-frame allocation
   happens once the buffer itself comes from a pool. *)
let set_header ?(epoch = 0) buf ~kind ~src ~dst ~control_bytes ~payload_bytes
    ~body_len =
  if src < 0 || src > 0xFFFF then invalid_arg "Wire.set_header: bad src";
  if dst < 0 || dst > 0xFFFF then invalid_arg "Wire.set_header: bad dst";
  if epoch < 0 || epoch > 0xFFFF then invalid_arg "Wire.set_header: bad epoch";
  if control_bytes < 0 || control_bytes > 0x7FFFFFFF then
    invalid_arg "Wire.set_header: bad control byte count";
  if payload_bytes < 0 || payload_bytes > 0x7FFFFFFF then
    invalid_arg "Wire.set_header: bad payload byte count";
  let len = header_bytes + body_len in
  if body_len < 0 || len > max_frame_bytes then
    invalid_arg "Wire.set_header: frame too large";
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.set_uint8 buf 4 magic;
  Bytes.set_uint8 buf 5 (kind_byte kind);
  Bytes.set_uint16_be buf 6 src;
  Bytes.set_uint16_be buf 8 dst;
  Bytes.set_uint16_be buf 10 epoch;
  Bytes.set_int32_be buf 12 (Int32.of_int control_bytes);
  Bytes.set_int32_be buf 16 (Int32.of_int payload_bytes)

let encode frame =
  let body_len = String.length frame.body in
  let buf = Bytes.create (body_offset + body_len) in
  set_header buf ~kind:frame.kind ~src:frame.src ~dst:frame.dst
    ~epoch:frame.epoch ~control_bytes:frame.control_bytes
    ~payload_bytes:frame.payload_bytes ~body_len;
  Bytes.blit_string frame.body 0 buf body_offset body_len;
  buf

(* --- buffer pool ----------------------------------------------------------- *)

(* Size-classed freelists of frame buffers.  [acquire] rounds the request
   up to a class and reuses a recycled buffer when one is free, so the
   steady-state encode→flush cycle allocates nothing; [release] returns a
   buffer to its class (dropping it when the class is full or the buffer
   came from the oversize fallback).  Buffers larger than the top class
   are rare (frames are bounded by max_frame_bytes but typically tiny)
   and are simply allocated fresh. *)
module Pool = struct
  let classes = [| 256; 1024; 4096; 16384; 65536 |]

  let class_cap = 64 (* buffers kept per class *)

  type t = { free : Bytes.t list array; count : int array }

  let create () =
    {
      free = Array.make (Array.length classes) [];
      count = Array.make (Array.length classes) 0;
    }

  (* -1 for oversize, not an option: acquire/release run per message on
     the hot path and must not box the class index *)
  let class_of n =
    let rec go i =
      if i >= Array.length classes then -1
      else if n <= classes.(i) then i
      else go (i + 1)
    in
    go 0

  let acquire t n =
    match class_of n with
    | -1 -> Bytes.create n
    | i -> (
        match t.free.(i) with
        | b :: rest ->
            t.free.(i) <- rest;
            t.count.(i) <- t.count.(i) - 1;
            b
        | [] -> Bytes.create classes.(i))

  let release t b =
    let len = Bytes.length b in
    let i = class_of len in
    if i >= 0 && classes.(i) = len && t.count.(i) < class_cap then begin
      t.free.(i) <- b :: t.free.(i);
      t.count.(i) <- t.count.(i) + 1
    end
end

(* --- decoding --------------------------------------------------------------- *)

(* A decoded frame whose body still lives in the decoder's buffer: valid
   until the next [feed] (which may move or replace the buffer).  The
   zero-copy receive path parses message bodies straight out of it. *)
type view = {
  v_kind : kind;
  v_src : int;
  v_dst : int;
  v_epoch : int;
  v_control_bytes : int;
  v_payload_bytes : int;
  v_buf : Bytes.t;
  v_off : int;  (* body start *)
  v_len : int;  (* body length *)
}

let view_body v = Bytes.sub_string v.v_buf v.v_off v.v_len

(* Decode one frame's header starting at [off]; the length prefix has
   already been read and validated to fit in the buffer. *)
let view_at buf off len =
  if Bytes.get_uint8 buf (off + 4) <> magic then Error "bad magic"
  else
    match kind_of_byte (Bytes.get_uint8 buf (off + 5)) with
    | None -> Error "unknown frame kind"
    | Some kind ->
        let control_bytes = Int32.to_int (Bytes.get_int32_be buf (off + 12)) in
        let payload_bytes = Int32.to_int (Bytes.get_int32_be buf (off + 16)) in
        if control_bytes < 0 || payload_bytes < 0 then
          Error "negative byte count"
        else
          Ok
            {
              v_kind = kind;
              v_src = Bytes.get_uint16_be buf (off + 6);
              v_dst = Bytes.get_uint16_be buf (off + 8);
              v_epoch = Bytes.get_uint16_be buf (off + 10);
              v_control_bytes = control_bytes;
              v_payload_bytes = payload_bytes;
              v_buf = buf;
              v_off = off + body_offset;
              v_len = len - header_bytes;
            }

let frame_of_view v =
  {
    kind = v.v_kind;
    src = v.v_src;
    dst = v.v_dst;
    epoch = v.v_epoch;
    control_bytes = v.v_control_bytes;
    payload_bytes = v.v_payload_bytes;
    body = view_body v;
  }

let check_length len =
  if len < header_bytes then Error "undersized frame"
  else if len > max_frame_bytes then Error "oversized frame"
  else Ok ()

let of_bytes buf =
  let total = Bytes.length buf in
  if total < 4 then Error "truncated frame"
  else
    let len = Int32.to_int (Bytes.get_int32_be buf 0) in
    match check_length len with
    | Error _ as e -> e
    | Ok () ->
        if total < 4 + len then Error "truncated frame"
        else if total > 4 + len then Error "trailing garbage"
        else Result.map frame_of_view (view_at buf 0 len)

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable fill : int;  (* bytes valid in [buf] *)
  mutable poisoned : string option;
  mutable quiet : int;  (* consecutive small feeds while oversized *)
}

let base_capacity = 4096

(* A buffer grown for one large frame shrinks back once [shrink_after]
   consecutive feeds would each have fit in the base capacity — sized
   traffic pays for its peak only while the peak lasts. *)
let shrink_after = 32

let decoder () =
  {
    buf = Bytes.create base_capacity;
    start = 0;
    fill = 0;
    poisoned = None;
    quiet = 0;
  }

let pending d = d.fill - d.start

let capacity d = Bytes.length d.buf

let feed d src len =
  if len < 0 || len > Bytes.length src then invalid_arg "Wire.feed";
  if d.poisoned = None && len > 0 then begin
    (* shrink-after-idle: a buffer inflated by a past large frame returns
       to base size once enough consecutive feeds stay small *)
    if Bytes.length d.buf > base_capacity then begin
      if pending d + len <= base_capacity then begin
        d.quiet <- d.quiet + 1;
        if d.quiet >= shrink_after then begin
          let small = Bytes.create base_capacity in
          let live = pending d in
          if live > 0 then Bytes.blit d.buf d.start small 0 live;
          d.buf <- small;
          d.start <- 0;
          d.fill <- live;
          d.quiet <- 0
        end
      end
      else d.quiet <- 0
    end;
    (* compact, then grow if the tail still cannot take [len] bytes *)
    if d.fill + len > Bytes.length d.buf then begin
      let live = pending d in
      if live > 0 then Bytes.blit d.buf d.start d.buf 0 live;
      d.start <- 0;
      d.fill <- live;
      if d.fill + len > Bytes.length d.buf then begin
        let cap = ref (Bytes.length d.buf) in
        while d.fill + len > !cap do
          cap := !cap * 2
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit d.buf 0 bigger 0 d.fill;
        d.buf <- bigger
      end
    end;
    Bytes.blit src 0 d.buf d.fill len;
    d.fill <- d.fill + len
  end

let next_view d =
  match d.poisoned with
  | Some msg -> Error msg
  | None ->
      if pending d < 4 then Ok None
      else
        let len = Int32.to_int (Bytes.get_int32_be d.buf d.start) in
        (match check_length len with
        | Error msg ->
            d.poisoned <- Some msg;
            Error msg
        | Ok () ->
            if pending d < 4 + len then Ok None
            else
              let result = view_at d.buf d.start len in
              (match result with
              | Ok view ->
                  d.start <- d.start + 4 + len;
                  if d.start = d.fill then begin
                    d.start <- 0;
                    d.fill <- 0
                  end;
                  Ok (Some view)
              | Error msg ->
                  d.poisoned <- Some msg;
                  Error msg))

let next d =
  match next_view d with
  | Ok (Some v) -> Ok (Some (frame_of_view v))
  | Ok None -> Ok None
  | Error _ as e -> e

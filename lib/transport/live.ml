module Net = Repro_msgpass.Net
module Pqueue = Repro_util.Pqueue
module Ringbuf = Repro_util.Ringbuf
module Rng = Repro_util.Rng

type config = {
  self : int;
  n : int;
  peers : Unix.sockaddr array;
  fingerprint : string;
  resilient : bool;
  incarnation : int;
}

type conn = { fd : Unix.file_descr; dec : Wire.decoder; mutable closed : bool }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  epoch : float;
  out_fds : Unix.file_descr option array;
  mutable conns : conn list;
  timers : (int * int, unit -> unit) Pqueue.t;
  mutable timer_seq : int;
  mutable on_data : Wire.frame -> unit;
  mutable on_client : (reply:(Wire.frame -> unit) -> Wire.frame -> unit) option;
  mutable client_reqs : int;
  hello_seen : bool array;
  done_seen : bool array;
  mutable sent : int;
  mutable delivered : int;
  mutable total_control_bytes : int;
  mutable total_payload_bytes : int;
  per_node_sent : int array;
  per_node_received : int array;
  mutable draining : bool;
  mutable activity : int;  (* frames written or dispatched; timer fires excluded *)
  mutable factory_used : bool;
  mutable done_sent : bool;
  mutable reconnects : int;
  mutable dropped_frames : int;
  reconnect_pending : bool array;
  peer_inc : int array;  (* highest incarnation seen in a peer's Hello *)
  jrng : Rng.t;  (* backoff jitter; liveness only, never determinism *)
  rbuf : Bytes.t;
}

let now_ms t = int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1000.)

let bind addr =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 64;
  fd

let listen_addr fd = Unix.getsockname fd

let create cfg ~listen_fd =
  if cfg.self < 0 || cfg.self >= cfg.n then invalid_arg "Live.create: bad self";
  if Array.length cfg.peers <> cfg.n then invalid_arg "Live.create: bad peers";
  (* a peer exiting first must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Unix.set_nonblock listen_fd;
  let hello_seen = Array.make cfg.n false in
  let done_seen = Array.make cfg.n false in
  hello_seen.(cfg.self) <- true;
  done_seen.(cfg.self) <- true;
  {
    cfg;
    listen_fd;
    epoch = Unix.gettimeofday ();
    out_fds = Array.make cfg.n None;
    conns = [];
    timers = Pqueue.create ~cmp:compare ();
    timer_seq = 0;
    on_data = (fun _ -> ());
    on_client = None;
    client_reqs = 0;
    hello_seen;
    done_seen;
    sent = 0;
    delivered = 0;
    total_control_bytes = 0;
    total_payload_bytes = 0;
    per_node_sent = Array.make cfg.n 0;
    per_node_received = Array.make cfg.n 0;
    draining = false;
    activity = 0;
    factory_used = false;
    done_sent = false;
    reconnects = 0;
    dropped_frames = 0;
    reconnect_pending = Array.make cfg.n false;
    peer_inc = Array.make cfg.n 0;
    jrng = Rng.create ((cfg.self + 1) * (Unix.getpid () + 1));
    rbuf = Bytes.create 65536;
  }

let add_timer t ~delay f =
  let due = now_ms t + max delay 0 in
  t.timer_seq <- t.timer_seq + 1;
  Pqueue.push t.timers (due, t.timer_seq) f

let write_all t fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  try
    go 0;
    true
  with
  | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
    when t.draining || t.cfg.resilient ->
    false

(* The satellite's error taxonomy, shared by the first dial and every
   reconnection: a refused or reset connection means the peer is not up
   (yet / anymore) — retry with backoff; anything else (bad address,
   unreachable network, permission) will not heal by waiting — fail fast. *)
let transient_connect_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EINTR | Unix.EAGAIN -> true
  | _ -> false

(* The Hello body carries the config fingerprint plus the sender's
   incarnation, so peers can tell a respawned node from a fresh one. *)
let hello_body t = Printf.sprintf "%s\ninc=%d" t.cfg.fingerprint t.cfg.incarnation

let split_hello body =
  match String.rindex_opt body '\n' with
  | Some i -> (
      let fp = String.sub body 0 i in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      match
        if String.length rest > 4 && String.sub rest 0 4 = "inc=" then
          int_of_string_opt (String.sub rest 4 (String.length rest - 4))
        else None
      with
      | Some inc -> (fp, inc)
      | None -> (body, 0))
  | None -> (body, 0)

let dial addr =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () ->
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

let hello_frame t dst =
  {
    Wire.kind = Wire.Hello;
    src = t.cfg.self;
    dst;
    control_bytes = 0;
    payload_bytes = 0;
    body = hello_body t;
  }

let done_frame t dst =
  { Wire.kind = Wire.Done; src = t.cfg.self; dst; control_bytes = 0;
    payload_bytes = 0; body = "" }

let rec send_frame t (fr : Wire.frame) =
  if fr.dst = t.cfg.self then begin
    (* self-sends take the timer queue, like the simulator: no synchronous
       shortcut past messages already in flight *)
    t.activity <- t.activity + 1;
    add_timer t ~delay:0 (fun () -> dispatch t fr)
  end
  else
    match t.out_fds.(fr.dst) with
    | None ->
        if t.cfg.resilient then begin
          (* the frame is lost; a session layer above retransmits it once
             the link is back *)
          t.dropped_frames <- t.dropped_frames + 1;
          schedule_reconnect t fr.dst
        end
        else if not t.draining then
          failwith (Printf.sprintf "live: no connection to node %d" fr.dst)
    | Some fd ->
        if write_all t fd (Wire.encode fr) then t.activity <- t.activity + 1
        else if t.cfg.resilient && not t.draining then begin
          t.dropped_frames <- t.dropped_frames + 1;
          mark_peer_lost t fr.dst
        end

and mark_peer_lost t i =
  (match t.out_fds.(i) with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.out_fds.(i) <- None
  | None -> ());
  schedule_reconnect t i

(* Bounded exponential backoff with jitter; attempts continue until the
   node's own run timeout cuts the loop, so a slow restart is survived and
   a permanent failure still terminates. *)
and schedule_reconnect t i =
  if not t.reconnect_pending.(i) then begin
    t.reconnect_pending.(i) <- true;
    let rec attempt ~delay () =
      match dial t.cfg.peers.(i) with
      | Ok fd ->
          t.reconnect_pending.(i) <- false;
          t.out_fds.(i) <- Some fd;
          t.reconnects <- t.reconnects + 1;
          ignore (write_all t fd (Wire.encode (hello_frame t i)))
      | Error e when transient_connect_error e ->
          let delay = min 500 (delay * 2) in
          add_timer t ~delay:(delay + Rng.int t.jrng 20) (attempt ~delay)
      | Error e ->
          t.reconnect_pending.(i) <- false;
          if not t.draining then
            failwith
              (Printf.sprintf "live: reconnect to node %d failed: %s" i
                 (Unix.error_message e))
    in
    add_timer t ~delay:10 (attempt ~delay:10)
  end

(* A peer announced a fresh incarnation: our outbound socket (if any)
   points at its dead predecessor.  Replace it and replay the handshake —
   including Done if our program already finished, which the respawned
   peer's barrier needs. *)
and refresh_peer t i =
  (match t.out_fds.(i) with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.out_fds.(i) <- None
  | None -> ());
  (match dial t.cfg.peers.(i) with
  | Ok fd ->
      t.out_fds.(i) <- Some fd;
      t.reconnects <- t.reconnects + 1;
      ignore (write_all t fd (Wire.encode (hello_frame t i)))
  | Error e when transient_connect_error e -> schedule_reconnect t i
  | Error e ->
      failwith
        (Printf.sprintf "live: reconnect to node %d failed: %s" i
           (Unix.error_message e)));
  if t.done_sent then
    match t.out_fds.(i) with
    | Some fd -> ignore (write_all t fd (Wire.encode (done_frame t i)))
    | None -> ()

and dispatch ?reply t (fr : Wire.frame) =
  match fr.kind with
  | Wire.Creq ->
      (* client traffic: src is a client id, deliberately outside the node
         range, and the reply goes back on the connection the request came
         in on — never through the peer mesh *)
      t.activity <- t.activity + 1;
      t.client_reqs <- t.client_reqs + 1;
      (match (t.on_client, reply) with
      | Some handler, Some r -> handler ~reply:r fr
      | _ -> () (* no front door installed: drop, the client times out *))
  | Wire.Cresp -> () (* nodes never consume responses; tolerate strays *)
  | Wire.Hello | Wire.Done | Wire.Data -> dispatch_peer t fr

and dispatch_peer t (fr : Wire.frame) =
  if fr.src < 0 || fr.src >= t.cfg.n then
    failwith (Printf.sprintf "live: frame from unknown node %d" fr.src);
  t.activity <- t.activity + 1;
  match fr.kind with
  | Wire.Creq | Wire.Cresp -> assert false (* handled by [dispatch] *)
  | Wire.Hello ->
      let fp, inc = split_hello fr.body in
      if not (String.equal fp t.cfg.fingerprint) then
        failwith
          (Printf.sprintf "live: fingerprint mismatch with node %d (%S vs %S)"
             fr.src fp t.cfg.fingerprint);
      t.hello_seen.(fr.src) <- true;
      if t.cfg.resilient && inc > 0 && inc > t.peer_inc.(fr.src) then begin
        t.peer_inc.(fr.src) <- inc;
        refresh_peer t fr.src
      end
  | Wire.Done -> t.done_seen.(fr.src) <- true
  | Wire.Data ->
      t.delivered <- t.delivered + 1;
      t.per_node_received.(t.cfg.self) <- t.per_node_received.(t.cfg.self) + 1;
      t.on_data fr

let fire_due t =
  let fired = ref false in
  let rec loop () =
    match Pqueue.peek t.timers with
    | Some ((due, _), _) when due <= now_ms t ->
        let _, f = Pqueue.pop_exn t.timers in
        fired := true;
        f ();
        loop ()
    | _ -> ()
  in
  loop ();
  !fired

let accept_ready t =
  let rec loop acted =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
        t.conns <- { fd; dec = Wire.decoder (); closed = false } :: t.conns;
        loop true
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> acted
  in
  loop false

let service_conn t c =
  let nread =
    try Unix.read c.fd t.rbuf 0 (Bytes.length t.rbuf) with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> -1
    | Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0
  in
  if nread < 0 then false
  else if nread = 0 then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    (* a resilient node treats a truncated stream like a lost frame: the
       peer crashed mid-write and the session layer will resend *)
    if Wire.pending c.dec > 0 && not t.draining && not t.cfg.resilient then
      failwith "live: peer closed mid-frame";
    true
  end
  else begin
    Wire.feed c.dec t.rbuf nread;
    (* replies to client requests go out on the requesting connection; a
       client that hung up mid-reply is its own problem, never the node's *)
    let reply fr =
      match write_all t c.fd (Wire.encode fr) with
      | ok -> if ok then t.activity <- t.activity + 1
      | exception Unix.Unix_error _ -> ()
    in
    let rec pump () =
      match Wire.next c.dec with
      | Ok (Some fr) ->
          dispatch ~reply t fr;
          pump ()
      | Ok None -> ()
      | Error msg -> failwith ("live: corrupt stream: " ^ msg)
    in
    pump ();
    true
  end

let step t ~block =
  let timeout =
    if not block then 0.
    else
      match Pqueue.peek t.timers with
      | Some ((due, _), _) ->
          Float.min 0.001 (Float.max 0. (float_of_int (due - now_ms t) /. 1000.))
      | None -> 0.001
  in
  t.conns <- List.filter (fun c -> not c.closed) t.conns;
  let read_fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  let ready, _, _ =
    try Unix.select read_fds [] [] timeout
    with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
  in
  let acted = ref false in
  if List.memq t.listen_fd ready then if accept_ready t then acted := true;
  List.iter
    (fun c ->
      if (not c.closed) && List.memq c.fd ready then
        if service_conn t c then acted := true)
    t.conns;
  if fire_due t then acted := true;
  !acted

(* First dial, at startup: daemons come up in any order, so refused/reset
   connections are retried on a bounded exponential backoff with jitter
   (starting at 10 ms, capped at 500 ms); any other error fails fast. *)
let connect_peer t ~deadline i =
  let rec attempt ~delay =
    match dial t.cfg.peers.(i) with
    | Ok fd -> fd
    | Error e when transient_connect_error e ->
        if now_ms t > deadline then
          failwith (Printf.sprintf "live: cannot connect to node %d" i);
        Unix.sleepf (float_of_int (delay + Rng.int t.jrng 10) /. 1000.);
        attempt ~delay:(min 500 (delay * 2))
    | Error e ->
        failwith
          (Printf.sprintf "live: cannot connect to node %d: %s" i
             (Unix.error_message e))
  in
  let fd = attempt ~delay:10 in
  t.out_fds.(i) <- Some fd;
  ignore (write_all t fd (Wire.encode (hello_frame t i)))

let all_hello t = Array.for_all Fun.id t.hello_seen

let all_done t = Array.for_all Fun.id t.done_seen

let wait_peers t ~timeout_ms =
  let deadline = now_ms t + timeout_ms in
  for i = 0 to t.cfg.n - 1 do
    if i <> t.cfg.self then connect_peer t ~deadline i
  done;
  while not (all_hello t) do
    if now_ms t > deadline then failwith "live: timed out waiting for hellos";
    ignore (step t ~block:true)
  done

let finish_program t =
  t.done_sent <- true;
  for i = 0 to t.cfg.n - 1 do
    if i <> t.cfg.self then
      match t.out_fds.(i) with
      | Some fd -> ignore (write_all t fd (Wire.encode (done_frame t i)))
      | None -> ()
  done

let drain t ~quiet_ms ~max_ms =
  t.draining <- true;
  let started = now_ms t in
  let last = ref (now_ms t) in
  let quiet = ref false in
  while not !quiet do
    let before = t.activity in
    ignore (step t ~block:true);
    if t.activity <> before then last := now_ms t;
    let now = now_ms t in
    if now - !last >= quiet_ms || now - started >= max_ms then quiet := true
  done

let close t =
  let shut fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Array.iter (Option.iter shut) t.out_fds;
  List.iter (fun c -> if not c.closed then shut c.fd) t.conns;
  t.conns <- [];
  shut t.listen_fd

let stats t : Net.stats =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped_frames;
    duplicated = 0;
    total_control_bytes = t.total_control_bytes;
    total_payload_bytes = t.total_payload_bytes;
    retransmits = 0;
    dups_suppressed = 0;
    reconnects = t.reconnects;
    overhead_bytes = 0;
    per_node_sent = Array.copy t.per_node_sent;
    per_node_received = Array.copy t.per_node_received;
  }

let set_client_handler t h = t.on_client <- Some h

let client_reqs t = t.client_reqs

let factory t =
  {
    Transport.create =
      (fun (type msg) ~n : msg Transport.t ->
        if t.factory_used then invalid_arg "Live.factory: already used";
        if n <> t.cfg.n then
          invalid_arg
            (Printf.sprintf "Live.factory: protocol wants %d nodes, cluster has %d"
               n t.cfg.n);
        t.factory_used <- true;
        let self = t.cfg.self in
        let handler : (msg Net.envelope -> unit) ref = ref (fun _ -> ()) in
        let tracing = ref false in
        let trace_buf : msg Net.event Ringbuf.t = Ringbuf.create () in
        t.on_data <-
          (fun fr ->
            let (send_time, msg) : int * msg = Marshal.from_string fr.body 0 in
            let env : msg Net.envelope =
              {
                src = fr.src;
                dst = fr.dst;
                send_time;
                deliver_time = now_ms t;
                control_bytes = fr.control_bytes;
                payload_bytes = fr.payload_bytes;
                msg;
              }
            in
            if !tracing then Ringbuf.push_back trace_buf (Net.Delivered env);
            !handler env);
        {
          Transport.n_nodes = t.cfg.n;
          scope = Transport.Node self;
          send =
            (fun ~src ~dst ~control_bytes ~payload_bytes msg ->
              if src <> self then
                invalid_arg
                  (Printf.sprintf "live: node %d cannot send as node %d" self
                     src);
              if dst < 0 || dst >= t.cfg.n then invalid_arg "live: bad dst";
              let now = now_ms t in
              let body = Marshal.to_string (now, msg) [] in
              t.sent <- t.sent + 1;
              t.total_control_bytes <- t.total_control_bytes + control_bytes;
              t.total_payload_bytes <- t.total_payload_bytes + payload_bytes;
              t.per_node_sent.(self) <- t.per_node_sent.(self) + 1;
              if !tracing then
                Ringbuf.push_back trace_buf
                  (Net.Sent
                     {
                       src;
                       dst;
                       send_time = now;
                       deliver_time = now;
                       control_bytes;
                       payload_bytes;
                       msg;
                     });
              send_frame t
                { Wire.kind = Wire.Data; src; dst; control_bytes; payload_bytes; body });
          set_handler = (fun node f -> if node = self then handler := f);
          schedule = (fun ~delay f -> add_timer t ~delay f);
          step = (fun () -> step t ~block:true);
          quiesce =
            (fun () ->
              while step t ~block:false do
                ()
              done);
          now = (fun () -> now_ms t);
          stats = (fun () -> stats t);
          set_tracing = (fun flag -> tracing := flag);
          trace = (fun () -> Ringbuf.to_list trace_buf);
        })
  }

module Net = Repro_msgpass.Net
module Pqueue = Repro_util.Pqueue
module Ringbuf = Repro_util.Ringbuf
module Rng = Repro_util.Rng

type config = {
  self : int;
  n : int;
  peers : Unix.sockaddr array;
  fingerprint : string;
  resilient : bool;
  incarnation : int;
  connect_timeout_ms : int;
      (* cap on one reconnection episode's retries; 0 = keep trying until
         the run timeout cuts the loop (the pre-watchdog behaviour) *)
}

type reply =
  dst:int ->
  control_bytes:int ->
  payload_bytes:int ->
  body_len:int ->
  emit:(Bytes.t -> int -> int) ->
  unit

(* Reply on the connection a membership/heartbeat frame arrived on —
   the supervisor's control channel is an inbound connection, never part
   of the peer mesh. *)
type control_reply = kind:Wire.kind -> dst:int -> body:string -> unit

(* A queue of encoded frames awaiting one scatter-gather flush: chunks of
   (pooled buffer, offset, length), with the partial-write cursor as
   (first unsent chunk, bytes of it already written). *)
module Outq = struct
  type t = {
    mutable chunks : (Bytes.t * int * int) array;
    mutable len : int;
    mutable head : int;
    mutable skip : int;
  }

  let dummy = (Bytes.empty, 0, 0)

  let create () = { chunks = Array.make 16 dummy; len = 0; head = 0; skip = 0 }

  let is_empty q = q.head >= q.len

  let unsent q = q.len - q.head

  let push q chunk =
    if q.len = Array.length q.chunks then begin
      let bigger = Array.make (2 * q.len) dummy in
      Array.blit q.chunks 0 bigger 0 q.len;
      q.chunks <- bigger
    end;
    q.chunks.(q.len) <- chunk;
    q.len <- q.len + 1

  let advance q n =
    let n = ref n in
    while !n > 0 do
      let _, _, len = q.chunks.(q.head) in
      let left = len - q.skip in
      if !n >= left then begin
        n := !n - left;
        q.head <- q.head + 1;
        q.skip <- 0
      end
      else begin
        q.skip <- q.skip + !n;
        n := 0
      end
    done

  (* recycle every chunk buffer (flushed or dropped) and empty the queue *)
  let reset q pool =
    for i = 0 to q.len - 1 do
      let b, _, _ = q.chunks.(i) in
      Wire.Pool.release pool b;
      q.chunks.(i) <- dummy
    done;
    q.len <- 0;
    q.head <- 0;
    q.skip <- 0
end

type conn = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable closed : bool;
  cq : Outq.t;  (* client replies awaiting flush on this connection *)
  mutable cq_dirty : bool;
}

type t = {
  cfg : config;
  legacy : bool;
      (* REPRO_LIVE_LEGACY: the pre-hotpath baseline arm — Marshal bodies,
         one write(2) per frame, per-iteration select rebuild.  Kept
         selectable so bench --load can record both arms. *)
  listen_fd : Unix.file_descr;
  epoch : float;
  out_fds : Unix.file_descr option array;
  outqs : Outq.t array;  (* per-peer frames awaiting one writev *)
  mutable dirty_peers : int list;  (* peers with a nonempty outq *)
  mutable dirty_conns : conn list;
  pool : Wire.Pool.t;
  mutable conns : conn list;
  mutable read_fds : Unix.file_descr list;
      (* persistent poll set: listen_fd + live conn fds, updated only on
         accept/close (the legacy arm rebuilds per iteration instead) *)
  timers : (int * int, unit -> unit) Pqueue.t;
  mutable timer_seq : int;
  mutable on_data_view : Wire.view -> unit;
  mutable on_client : (reply:reply -> Wire.view -> unit) option;
  mutable on_control : (reply:control_reply -> Wire.view -> unit) option;
  mutable client_reqs : int;
  mutable cur_epoch : int;  (* configuration epoch stamped into every frame *)
  mutable stale_epochs : int;  (* data-plane frames dropped for an old epoch *)
  hello_seen : bool array;
  done_seen : bool array;
  mutable sent : int;
  mutable delivered : int;
  mutable total_control_bytes : int;
  mutable total_payload_bytes : int;
  per_node_sent : int array;
  per_node_received : int array;
  mutable draining : bool;
  mutable activity : int;  (* frames written or dispatched; timer fires excluded *)
  mutable factory_used : bool;
  mutable done_sent : bool;
  mutable reconnects : int;
  mutable dropped_frames : int;
  reconnect_pending : bool array;
  peer_inc : int array;  (* highest incarnation seen in a peer's Hello *)
  jrng : Rng.t;  (* backoff jitter; liveness only, never determinism *)
  rbuf : Bytes.t;
}

let now_ms t = int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1000.)

let bind addr =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 64;
  fd

let listen_addr fd = Unix.getsockname fd

let legacy_env () =
  match Sys.getenv_opt "REPRO_LIVE_LEGACY" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let create cfg ~listen_fd =
  if cfg.self < 0 || cfg.self >= cfg.n then invalid_arg "Live.create: bad self";
  if Array.length cfg.peers <> cfg.n then invalid_arg "Live.create: bad peers";
  (* a peer exiting first must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Unix.set_nonblock listen_fd;
  let hello_seen = Array.make cfg.n false in
  let done_seen = Array.make cfg.n false in
  hello_seen.(cfg.self) <- true;
  done_seen.(cfg.self) <- true;
  {
    cfg;
    legacy = legacy_env ();
    listen_fd;
    epoch = Unix.gettimeofday ();
    out_fds = Array.make cfg.n None;
    outqs = Array.init cfg.n (fun _ -> Outq.create ());
    dirty_peers = [];
    dirty_conns = [];
    pool = Wire.Pool.create ();
    conns = [];
    read_fds = [ listen_fd ];
    timers = Pqueue.create ~cmp:compare ();
    timer_seq = 0;
    on_data_view = (fun _ -> ());
    on_client = None;
    on_control = None;
    client_reqs = 0;
    cur_epoch = 0;
    stale_epochs = 0;
    hello_seen;
    done_seen;
    sent = 0;
    delivered = 0;
    total_control_bytes = 0;
    total_payload_bytes = 0;
    per_node_sent = Array.make cfg.n 0;
    per_node_received = Array.make cfg.n 0;
    draining = false;
    activity = 0;
    factory_used = false;
    done_sent = false;
    reconnects = 0;
    dropped_frames = 0;
    reconnect_pending = Array.make cfg.n false;
    peer_inc = Array.make cfg.n 0;
    jrng = Rng.create ((cfg.self + 1) * (Unix.getpid () + 1));
    rbuf = Bytes.create 65536;
  }

(* The arm marker rides the fingerprint, so a legacy node and a fast node
   can never silently exchange differently-encoded bodies: the Hello
   barrier rejects the mix. *)
let arm_fingerprint t =
  if t.legacy then t.cfg.fingerprint ^ "+legacy" else t.cfg.fingerprint

let add_timer t ~delay f =
  let due = now_ms t + max delay 0 in
  t.timer_seq <- t.timer_seq + 1;
  Pqueue.push t.timers (due, t.timer_seq) f

let write_all t fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  try
    go 0;
    true
  with
  | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
    when t.draining || t.cfg.resilient ->
    false

(* The satellite's error taxonomy, shared by the first dial and every
   reconnection: a refused or reset connection means the peer is not up
   (yet / anymore) — retry with backoff; anything else (bad address,
   unreachable network, permission) will not heal by waiting — fail fast. *)
let transient_connect_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EINTR | Unix.EAGAIN -> true
  | _ -> false

(* The Hello body carries the config fingerprint plus the sender's
   incarnation, so peers can tell a respawned node from a fresh one. *)
let hello_body t = Printf.sprintf "%s\ninc=%d" (arm_fingerprint t) t.cfg.incarnation

let split_hello body =
  match String.rindex_opt body '\n' with
  | Some i -> (
      let fp = String.sub body 0 i in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      match
        if String.length rest > 4 && String.sub rest 0 4 = "inc=" then
          int_of_string_opt (String.sub rest 4 (String.length rest - 4))
        else None
      with
      | Some inc -> (fp, inc)
      | None -> (body, 0))
  | None -> (body, 0)

let dial addr =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () ->
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e

let hello_frame t dst =
  {
    Wire.kind = Wire.Hello;
    src = t.cfg.self;
    dst;
    epoch = t.cur_epoch;
    control_bytes = 0;
    payload_bytes = 0;
    body = hello_body t;
  }

let done_frame t dst =
  { Wire.kind = Wire.Done; src = t.cfg.self; dst; epoch = t.cur_epoch;
    control_bytes = 0; payload_bytes = 0; body = "" }

(* --- batched link flushes -------------------------------------------------- *)

(* Drop whatever is still queued for peer [i] (its link just broke or is
   gone): the session layer above retransmits. *)
let drop_outq t i =
  let q = t.outqs.(i) in
  if not (Outq.is_empty q) then
    t.dropped_frames <- t.dropped_frames + Outq.unsent q;
  Outq.reset q t.pool

let rec flush_peer t i =
  let q = t.outqs.(i) in
  match t.out_fds.(i) with
  | None -> drop_outq t i
  | Some fd -> (
      match
        while not (Outq.is_empty q) do
          match
            Vecio.writev fd q.chunks ~start:q.head ~skip:q.skip
              ~count:(Outq.unsent q)
          with
          | n -> Outq.advance q n
          | exception Unix.Unix_error (EINTR, _, _) -> ()
        done
      with
      | () -> Outq.reset q t.pool
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
        when t.draining || t.cfg.resilient ->
          drop_outq t i;
          if t.cfg.resilient && not t.draining then mark_peer_lost t i)

and mark_peer_lost t i =
  drop_outq t i;
  (match t.out_fds.(i) with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.out_fds.(i) <- None
  | None -> ());
  schedule_reconnect t i

(* Bounded exponential backoff with jitter.  With [connect_timeout_ms = 0]
   attempts continue until the node's own run timeout cuts the loop, so a
   slow restart is survived and a permanent failure still terminates; a
   positive cap abandons the episode instead (the frames already count as
   dropped, the membership layer's failure detector does the demoting),
   and a later send to the peer opens a fresh episode. *)
and schedule_reconnect t i =
  if not t.reconnect_pending.(i) then begin
    t.reconnect_pending.(i) <- true;
    let started = now_ms t in
    let rec attempt ~delay () =
      match dial t.cfg.peers.(i) with
      | Ok fd ->
          t.reconnect_pending.(i) <- false;
          t.out_fds.(i) <- Some fd;
          t.reconnects <- t.reconnects + 1;
          ignore (write_all t fd (Wire.encode (hello_frame t i)))
      | Error e when transient_connect_error e ->
          if
            t.cfg.connect_timeout_ms > 0
            && now_ms t - started >= t.cfg.connect_timeout_ms
          then t.reconnect_pending.(i) <- false
          else
            let delay = min 500 (delay * 2) in
            add_timer t ~delay:(delay + Rng.int t.jrng 20) (attempt ~delay)
      | Error e ->
          t.reconnect_pending.(i) <- false;
          if not t.draining then
            failwith
              (Printf.sprintf "live: reconnect to node %d failed: %s" i
                 (Unix.error_message e))
    in
    add_timer t ~delay:10 (attempt ~delay:10)
  end

(* Flush a connection's pending client replies.  Accepted sockets are
   nonblocking: EAGAIN leaves the rest queued (and the conn dirty) for the
   next step; a vanished client's backlog is discarded — its problem. *)
let flush_conn t c =
  let q = c.cq in
  let rec go () =
    if not (Outq.is_empty q) then
      match
        Vecio.writev c.fd q.chunks ~start:q.head ~skip:q.skip
          ~count:(Outq.unsent q)
      with
      | n ->
          Outq.advance q n;
          go ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (EAGAIN, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> Outq.reset q t.pool
  in
  go ();
  if Outq.is_empty q then begin
    Outq.reset q t.pool;
    c.cq_dirty <- false
  end

let flush_all t =
  (match t.dirty_peers with
  | [] -> ()
  | peers ->
      t.dirty_peers <- [];
      List.iter (flush_peer t) peers);
  match t.dirty_conns with
  | [] -> ()
  | conns ->
      t.dirty_conns <- [];
      List.iter
        (fun c ->
          if not c.closed then begin
            flush_conn t c;
            if c.cq_dirty then t.dirty_conns <- c :: t.dirty_conns
          end
          else Outq.reset c.cq t.pool)
        conns

(* Queue one encoded frame (a pooled buffer holding the complete wire
   image) for peer [dst]; it leaves in the next writev flush. *)
let enqueue_peer t dst buf total =
  match t.out_fds.(dst) with
  | None ->
      Wire.Pool.release t.pool buf;
      if t.cfg.resilient then begin
        t.dropped_frames <- t.dropped_frames + 1;
        schedule_reconnect t dst
      end
      else if not t.draining then
        failwith (Printf.sprintf "live: no connection to node %d" dst)
  | Some _ ->
      let q = t.outqs.(dst) in
      if Outq.is_empty q then t.dirty_peers <- dst :: t.dirty_peers;
      Outq.push q (buf, 0, total);
      t.activity <- t.activity + 1

(* Legacy arm: one blocking write per frame, exactly the pre-hotpath
   behaviour. *)
let send_frame_legacy t (fr : Wire.frame) =
  match t.out_fds.(fr.dst) with
  | None ->
      if t.cfg.resilient then begin
        t.dropped_frames <- t.dropped_frames + 1;
        schedule_reconnect t fr.dst
      end
      else if not t.draining then
        failwith (Printf.sprintf "live: no connection to node %d" fr.dst)
  | Some fd ->
      if write_all t fd (Wire.encode fr) then t.activity <- t.activity + 1
      else if t.cfg.resilient && not t.draining then begin
        t.dropped_frames <- t.dropped_frames + 1;
        mark_peer_lost t fr.dst
      end

and refresh_peer t i =
  (* A peer announced a fresh incarnation: our outbound socket (if any)
     points at its dead predecessor.  Replace it and replay the handshake —
     including Done if our program already finished, which the respawned
     peer's barrier needs. *)
  drop_outq t i;
  (match t.out_fds.(i) with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.out_fds.(i) <- None
  | None -> ());
  (match dial t.cfg.peers.(i) with
  | Ok fd ->
      t.out_fds.(i) <- Some fd;
      t.reconnects <- t.reconnects + 1;
      ignore (write_all t fd (Wire.encode (hello_frame t i)))
  | Error e when transient_connect_error e -> schedule_reconnect t i
  | Error e ->
      failwith
        (Printf.sprintf "live: reconnect to node %d failed: %s" i
           (Unix.error_message e)));
  if t.done_sent then
    match t.out_fds.(i) with
    | Some fd -> ignore (write_all t fd (Wire.encode (done_frame t i)))
    | None -> ()

(* Build one client-reply frame into a pooled buffer and queue it on the
   requesting connection (legacy arm: write it immediately, per-frame). *)
let conn_reply t c ~dst ~control_bytes ~payload_bytes ~body_len ~emit =
  let total = Wire.body_offset + body_len in
  let buf =
    if t.legacy then Bytes.create total else Wire.Pool.acquire t.pool total
  in
  Wire.set_header buf ~kind:Wire.Cresp ~src:t.cfg.self ~dst ~control_bytes
    ~payload_bytes ~body_len;
  let off = emit buf Wire.body_offset in
  if off <> total then invalid_arg "live: reply emit size mismatch";
  if t.legacy then begin
    match write_all t c.fd (if Bytes.length buf = total then buf else Bytes.sub buf 0 total) with
    | ok -> if ok then t.activity <- t.activity + 1
    | exception Unix.Unix_error _ -> ()
  end
  else begin
    if not c.cq_dirty then begin
      c.cq_dirty <- true;
      t.dirty_conns <- c :: t.dirty_conns
    end;
    Outq.push c.cq (buf, 0, total);
    t.activity <- t.activity + 1
  end

(* Queue a control-plane frame (membership, heartbeat) on an inbound
   connection.  Low-rate traffic: a fresh pooled buffer per frame is fine. *)
let conn_control t c ~kind ~dst ~body =
  let body_len = String.length body in
  let total = Wire.body_offset + body_len in
  let buf =
    if t.legacy then Bytes.create total else Wire.Pool.acquire t.pool total
  in
  Wire.set_header buf ~kind ~src:t.cfg.self ~dst ~epoch:t.cur_epoch
    ~control_bytes:0 ~payload_bytes:0 ~body_len;
  Bytes.blit_string body 0 buf Wire.body_offset body_len;
  if t.legacy then begin
    match
      write_all t c.fd (if Bytes.length buf = total then buf else Bytes.sub buf 0 total)
    with
    | ok -> if ok then t.activity <- t.activity + 1
    | exception Unix.Unix_error _ -> ()
  end
  else begin
    if not c.cq_dirty then begin
      c.cq_dirty <- true;
      t.dirty_conns <- c :: t.dirty_conns
    end;
    Outq.push c.cq (buf, 0, total);
    t.activity <- t.activity + 1
  end

(* Same, over the peer mesh (a member pushing Transfer frames to a peer). *)
let send_control t ~dst ~kind ~body =
  if dst < 0 || dst >= t.cfg.n then invalid_arg "live: bad control dst";
  let body_len = String.length body in
  let total = Wire.body_offset + body_len in
  let buf = Wire.Pool.acquire t.pool total in
  Wire.set_header buf ~kind ~src:t.cfg.self ~dst ~epoch:t.cur_epoch
    ~control_bytes:0 ~payload_bytes:0 ~body_len;
  Bytes.blit_string body 0 buf Wire.body_offset body_len;
  enqueue_peer t dst buf total

let dispatch ?conn t (v : Wire.view) =
  match v.Wire.v_kind with
  | Wire.Join | Wire.Leave | Wire.Transfer | Wire.Epoch | Wire.Ping
  | Wire.Pong -> (
      (* membership / heartbeat control plane: src may be the supervisor's
         sentinel id (outside the node range), and the reply goes back on
         the connection the frame arrived on.  A Transfer stamped with an
         epoch older than ours is a straggler from a superseded
         configuration: reject it here, at the seam, and count it.  The
         other control kinds must cross epochs — they are how a node
         {e learns} of a newer epoch (or how the supervisor spots a stale
         one), so they pass through and the handler decides. *)
      t.activity <- t.activity + 1;
      if v.Wire.v_kind = Wire.Transfer && v.Wire.v_epoch < t.cur_epoch then
        t.stale_epochs <- t.stale_epochs + 1
      else
        match (t.on_control, conn) with
        | Some handler, Some c ->
            handler
              ~reply:(fun ~kind ~dst ~body -> conn_control t c ~kind ~dst ~body)
              v
        | Some handler, None ->
            handler ~reply:(fun ~kind:_ ~dst:_ ~body:_ -> ()) v
        | None, _ -> () (* static cluster: stray control frames are inert *))
  | Wire.Creq -> (
      (* client traffic: src is a client id, deliberately outside the node
         range, and the reply goes back on the connection the request came
         in on — never through the peer mesh *)
      t.activity <- t.activity + 1;
      t.client_reqs <- t.client_reqs + 1;
      match (t.on_client, conn) with
      | Some handler, Some c ->
          handler
            ~reply:(fun ~dst ~control_bytes ~payload_bytes ~body_len ~emit ->
              conn_reply t c ~dst ~control_bytes ~payload_bytes ~body_len ~emit)
            v
      | _ -> () (* no front door installed: drop, the client times out *))
  | Wire.Cresp -> () (* nodes never consume responses; tolerate strays *)
  | Wire.Hello | Wire.Done | Wire.Data ->
      if v.Wire.v_src < 0 || v.Wire.v_src >= t.cfg.n then
        failwith (Printf.sprintf "live: frame from unknown node %d" v.Wire.v_src);
      t.activity <- t.activity + 1;
      (match v.Wire.v_kind with
      | Wire.Creq | Wire.Cresp -> assert false
      | Wire.Hello ->
          let fp, inc = split_hello (Wire.view_body v) in
          if not (String.equal fp (arm_fingerprint t)) then
            failwith
              (Printf.sprintf "live: fingerprint mismatch with node %d (%S vs %S)"
                 v.Wire.v_src fp (arm_fingerprint t));
          t.hello_seen.(v.Wire.v_src) <- true;
          if t.cfg.resilient && inc > 0 && inc > t.peer_inc.(v.Wire.v_src) then begin
            t.peer_inc.(v.Wire.v_src) <- inc;
            refresh_peer t v.Wire.v_src
          end
      | Wire.Done -> t.done_seen.(v.Wire.v_src) <- true
      | Wire.Data ->
          (* epoch fence: a data frame from a configuration older than
             ours (a peer that has not heard of the reconfiguration, or a
             crashed node recovering at its pre-crash epoch) is dropped
             and counted, never delivered *)
          if v.Wire.v_epoch < t.cur_epoch then
            t.stale_epochs <- t.stale_epochs + 1
          else t.on_data_view v
      | Wire.Join | Wire.Leave | Wire.Transfer | Wire.Epoch | Wire.Ping
      | Wire.Pong ->
          assert false)

let fire_due t =
  let fired = ref false in
  let rec loop () =
    match Pqueue.peek t.timers with
    | Some ((due, _), _) when due <= now_ms t ->
        let _, f = Pqueue.pop_exn t.timers in
        fired := true;
        f ();
        loop ()
    | _ -> ()
  in
  loop ();
  !fired

let rebuild_read_fds t =
  t.conns <- List.filter (fun c -> not c.closed) t.conns;
  t.read_fds <- t.listen_fd :: List.map (fun c -> c.fd) t.conns

let accept_ready t =
  let rec loop acted =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
        let c =
          { fd; dec = Wire.decoder (); closed = false; cq = Outq.create ();
            cq_dirty = false }
        in
        t.conns <- c :: t.conns;
        t.read_fds <- fd :: t.read_fds;
        loop true
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> acted
  in
  loop false

let service_conn t c =
  let nread =
    try Unix.read c.fd t.rbuf 0 (Bytes.length t.rbuf) with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> -1
    | Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0
  in
  if nread < 0 then false
  else if nread = 0 then begin
    c.closed <- true;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Outq.reset c.cq t.pool;
    rebuild_read_fds t;
    (* a resilient node treats a truncated stream like a lost frame: the
       peer crashed mid-write and the session layer will resend *)
    if Wire.pending c.dec > 0 && not t.draining && not t.cfg.resilient then
      failwith "live: peer closed mid-frame";
    true
  end
  else begin
    Wire.feed c.dec t.rbuf nread;
    (* each view is parsed before the next [next_view]/[feed], so bodies
       are consumed straight out of the decoder's buffer *)
    let rec pump () =
      match Wire.next_view c.dec with
      | Ok (Some v) ->
          dispatch ~conn:c t v;
          pump ()
      | Ok None -> ()
      | Error msg -> failwith ("live: corrupt stream: " ^ msg)
    in
    pump ();
    true
  end

let step t ~block =
  (* anything queued outside the loop (program sends between steps) goes
     out before we wait on the poll set *)
  flush_all t;
  let timeout =
    if not block then 0.
    else
      match Pqueue.peek t.timers with
      | Some ((due, _), _) ->
          Float.min 0.001 (Float.max 0. (float_of_int (due - now_ms t) /. 1000.))
      | None -> 0.001
  in
  let read_fds =
    if t.legacy then begin
      (* baseline arm: rebuild the fd list every iteration *)
      t.conns <- List.filter (fun c -> not c.closed) t.conns;
      t.listen_fd :: List.map (fun c -> c.fd) t.conns
    end
    else t.read_fds
  in
  let ready, _, _ =
    try Unix.select read_fds [] [] timeout
    with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
  in
  let acted = ref false in
  if List.memq t.listen_fd ready then if accept_ready t then acted := true;
  List.iter
    (fun c ->
      if (not c.closed) && List.memq c.fd ready then
        if service_conn t c then acted := true)
    t.conns;
  if fire_due t then acted := true;
  (* one writev per dirty link covers everything this step produced *)
  flush_all t;
  !acted

(* First dial, at startup: daemons come up in any order, so refused/reset
   connections are retried on a bounded exponential backoff with jitter
   (starting at 10 ms, capped at 500 ms); any other error fails fast. *)
let connect_peer t ~deadline i =
  let rec attempt ~delay =
    match dial t.cfg.peers.(i) with
    | Ok fd -> fd
    | Error e when transient_connect_error e ->
        if now_ms t > deadline then
          failwith (Printf.sprintf "live: cannot connect to node %d" i);
        Unix.sleepf (float_of_int (delay + Rng.int t.jrng 10) /. 1000.);
        attempt ~delay:(min 500 (delay * 2))
    | Error e ->
        failwith
          (Printf.sprintf "live: cannot connect to node %d: %s" i
             (Unix.error_message e))
  in
  let fd = attempt ~delay:10 in
  t.out_fds.(i) <- Some fd;
  ignore (write_all t fd (Wire.encode (hello_frame t i)))

let all_hello t = Array.for_all Fun.id t.hello_seen

let all_done t = Array.for_all Fun.id t.done_seen

let wait_peers t ~timeout_ms =
  let deadline = now_ms t + timeout_ms in
  for i = 0 to t.cfg.n - 1 do
    if i <> t.cfg.self then connect_peer t ~deadline i
  done;
  while not (all_hello t) do
    if now_ms t > deadline then failwith "live: timed out waiting for hellos";
    ignore (step t ~block:true)
  done

let finish_program t =
  flush_all t;
  t.done_sent <- true;
  for i = 0 to t.cfg.n - 1 do
    if i <> t.cfg.self then
      match t.out_fds.(i) with
      | Some fd -> ignore (write_all t fd (Wire.encode (done_frame t i)))
      | None -> ()
  done

let drain t ~quiet_ms ~max_ms =
  t.draining <- true;
  let started = now_ms t in
  let last = ref (now_ms t) in
  let quiet = ref false in
  while not !quiet do
    let before = t.activity in
    ignore (step t ~block:true);
    if t.activity <> before then last := now_ms t;
    let now = now_ms t in
    if now - !last >= quiet_ms || now - started >= max_ms then quiet := true
  done

let close t =
  flush_all t;
  let shut fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Array.iter (Option.iter shut) t.out_fds;
  List.iter (fun c -> if not c.closed then shut c.fd) t.conns;
  t.conns <- [];
  t.read_fds <- [];
  shut t.listen_fd

let stats t : Net.stats =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped_frames;
    duplicated = 0;
    total_control_bytes = t.total_control_bytes;
    total_payload_bytes = t.total_payload_bytes;
    retransmits = 0;
    dups_suppressed = 0;
    reconnects = t.reconnects;
    overhead_bytes = 0;
    per_node_sent = Array.copy t.per_node_sent;
    per_node_received = Array.copy t.per_node_received;
  }

let set_client_handler t h = t.on_client <- Some h

let client_reqs t = t.client_reqs

let set_control_handler t h = t.on_control <- Some h

let set_epoch t e =
  if e < 0 || e > 0xFFFF then invalid_arg "Live.set_epoch";
  if e > t.cur_epoch then t.cur_epoch <- e

let current_epoch t = t.cur_epoch

let stale_epochs t = t.stale_epochs

(* Data bodies on the fast path: 4-byte send timestamp, then the
   codec-encoded message, parsed in place on receive.  Without a codec
   (tests, arbitrary message types) the body is the marshalled pair, as
   on the legacy arm. *)
let send_time_bytes = 4

let oracle_env () =
  match Sys.getenv_opt "REPRO_CODEC_ORACLE" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let factory t =
  {
    Transport.create =
      (fun (type msg) ?codec n : msg Transport.t ->
        if t.factory_used then invalid_arg "Live.factory: already used";
        if n <> t.cfg.n then
          invalid_arg
            (Printf.sprintf "Live.factory: protocol wants %d nodes, cluster has %d"
               n t.cfg.n);
        t.factory_used <- true;
        let self = t.cfg.self in
        let handler : (msg Net.envelope -> unit) ref = ref (fun _ -> ()) in
        let tracing = ref false in
        let trace_buf : msg Net.event Ringbuf.t = Ringbuf.create () in
        let oracle = oracle_env () in
        let codec = if t.legacy then None else codec in
        let deliver (env : msg Net.envelope) =
          t.delivered <- t.delivered + 1;
          t.per_node_received.(self) <- t.per_node_received.(self) + 1;
          if !tracing then Ringbuf.push_back trace_buf (Net.Delivered env);
          !handler env
        in
        t.on_data_view <-
          (fun v ->
            let send_time, msg =
              match codec with
              | Some c -> (
                  let limit = v.Wire.v_off + v.Wire.v_len in
                  match
                    let st, pos = Codec.get_i32 v.Wire.v_buf v.Wire.v_off limit in
                    let m, pos = c.Codec.parse v.Wire.v_buf pos limit in
                    if pos <> limit then raise (Codec.Bad "trailing bytes");
                    (st, m)
                  with
                  | r -> r
                  | exception Codec.Bad e ->
                      failwith ("live: corrupt data body: " ^ e))
              | None ->
                  let (st, (m : msg)) = Marshal.from_string (Wire.view_body v) 0 in
                  (st, m)
            in
            deliver
              {
                src = v.Wire.v_src;
                dst = v.Wire.v_dst;
                send_time;
                deliver_time = now_ms t;
                control_bytes = v.Wire.v_control_bytes;
                payload_bytes = v.Wire.v_payload_bytes;
                msg;
              });
        {
          Transport.n_nodes = t.cfg.n;
          scope = Transport.Node self;
          send =
            (fun ~src ~dst ~control_bytes ~payload_bytes msg ->
              if src <> self then
                invalid_arg
                  (Printf.sprintf "live: node %d cannot send as node %d" self
                     src);
              if dst < 0 || dst >= t.cfg.n then invalid_arg "live: bad dst";
              let now = now_ms t in
              t.sent <- t.sent + 1;
              t.total_control_bytes <- t.total_control_bytes + control_bytes;
              t.total_payload_bytes <- t.total_payload_bytes + payload_bytes;
              t.per_node_sent.(self) <- t.per_node_sent.(self) + 1;
              if !tracing then
                Ringbuf.push_back trace_buf
                  (Net.Sent
                     {
                       src;
                       dst;
                       send_time = now;
                       deliver_time = now;
                       control_bytes;
                       payload_bytes;
                       msg;
                     });
              match codec with
              | Some c ->
                  if dst = self then begin
                    (* self-sends take the timer queue, like the simulator:
                       no synchronous shortcut past messages in flight —
                       and with a codec, no serialization either *)
                    t.activity <- t.activity + 1;
                    add_timer t ~delay:0 (fun () ->
                        t.activity <- t.activity + 1;
                        deliver
                          {
                            src;
                            dst;
                            send_time = now;
                            deliver_time = now_ms t;
                            control_bytes;
                            payload_bytes;
                            msg;
                          })
                  end
                  else begin
                    let body_len = send_time_bytes + c.Codec.size msg in
                    let total = Wire.body_offset + body_len in
                    let buf = Wire.Pool.acquire t.pool total in
                    Wire.set_header buf ~kind:Wire.Data ~src ~dst
                      ~epoch:t.cur_epoch ~control_bytes ~payload_bytes ~body_len;
                    let off = Codec.put_i32 buf Wire.body_offset now in
                    let off = c.Codec.emit buf off msg in
                    if off <> total then
                      invalid_arg "live: codec emit size mismatch";
                    if oracle then begin
                      (* REPRO_CODEC_ORACLE: decode what we just encoded and
                         compare against the original, structurally *)
                      let m', p =
                        c.Codec.parse buf (Wire.body_offset + send_time_bytes)
                          total
                      in
                      if
                        p <> total
                        || not
                             (String.equal
                                (Marshal.to_string msg [])
                                (Marshal.to_string m' []))
                      then failwith "live: codec oracle mismatch"
                    end;
                    enqueue_peer t dst buf total
                  end
              | None ->
                  let body = Marshal.to_string (now, msg) [] in
                  let fr =
                    { Wire.kind = Wire.Data; src; dst; epoch = t.cur_epoch;
                      control_bytes; payload_bytes; body }
                  in
                  if dst = self then begin
                    t.activity <- t.activity + 1;
                    add_timer t ~delay:0 (fun () ->
                        t.activity <- t.activity + 1;
                        let (st, (m : msg)) = Marshal.from_string fr.body 0 in
                        deliver
                          {
                            src;
                            dst;
                            send_time = st;
                            deliver_time = now_ms t;
                            control_bytes;
                            payload_bytes;
                            msg = m;
                          })
                  end
                  else if t.legacy then send_frame_legacy t fr
                  else begin
                    let body_len = String.length body in
                    let total = Wire.body_offset + body_len in
                    let buf = Wire.Pool.acquire t.pool total in
                    Wire.set_header buf ~kind:Wire.Data ~src ~dst
                      ~epoch:t.cur_epoch ~control_bytes ~payload_bytes ~body_len;
                    Bytes.blit_string body 0 buf Wire.body_offset body_len;
                    enqueue_peer t dst buf total
                  end);
          set_handler = (fun node f -> if node = self then handler := f);
          schedule = (fun ~delay f -> add_timer t ~delay f);
          step = (fun () -> step t ~block:true);
          quiesce =
            (fun () ->
              while step t ~block:false do
                ()
              done);
          now = (fun () -> now_ms t);
          stats = (fun () -> stats t);
          set_tracing = (fun flag -> tracing := flag);
          trace = (fun () -> Ringbuf.to_list trace_buf);
        })
  }

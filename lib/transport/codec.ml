(* Strict binary codecs for protocol message types.

   The live backend used to [Marshal] every message body; a codec replaces
   that with a hand-rolled big-endian layout in the style of {!Rpc}: the
   encoder writes into a caller-supplied buffer at a caller-supplied
   offset (so pooled frame buffers need no intermediate copy), and the
   decoder is strict — truncation, unknown tags and trailing bytes are
   all hard errors, never best-effort values.

   A codec value is just three functions; each protocol module defines its
   own and hands it to {!Proto_base.create}, which threads it through the
   transport factory seam ({!Transport.factory}).  The simulator ignores
   codecs entirely (its messages never leave the address space), so sim
   behaviour — and every golden digest — is untouched. *)

exception Bad of string

type 'msg t = {
  size : 'msg -> int;  (** exact encoded size in bytes *)
  emit : Bytes.t -> int -> 'msg -> int;
      (** [emit buf off msg] writes exactly [size msg] bytes at [off] and
          returns the offset past them.  The caller guarantees room. *)
  parse : Bytes.t -> int -> int -> 'msg * int;
      (** [parse buf pos limit] reads one message from [pos], never past
          [limit], and returns it with the offset past it.
          @raise Bad on truncation or corruption. *)
}

(* --- writer primitives ---------------------------------------------------- *)

let check_i32 what v =
  if v < -0x80000000 || v > 0x7FFFFFFF then
    invalid_arg (Printf.sprintf "Codec: %s out of i32 range (%d)" what v)

let put_u8 buf off v =
  Bytes.set_uint8 buf off v;
  off + 1

let put_u16 buf off v =
  if v < 0 || v > 0xFFFF then invalid_arg "Codec: u16 out of range";
  Bytes.set_uint16_be buf off v;
  off + 2

let put_i32 buf off v =
  check_i32 "i32" v;
  Bytes.set_int32_be buf off (Int32.of_int v);
  off + 4

let put_i64 buf off v =
  Bytes.set_int64_be buf off (Int64.of_int v);
  off + 8

(* --- strict reader primitives --------------------------------------------- *)

let need buf pos limit k =
  if pos + k > limit || pos + k > Bytes.length buf then raise (Bad "truncated message")

let get_u8 buf pos limit =
  need buf pos limit 1;
  (Bytes.get_uint8 buf pos, pos + 1)

let get_u16 buf pos limit =
  need buf pos limit 2;
  (Bytes.get_uint16_be buf pos, pos + 2)

let get_i32 buf pos limit =
  need buf pos limit 4;
  (Int32.to_int (Bytes.get_int32_be buf pos), pos + 4)

let get_i64 buf pos limit =
  need buf pos limit 8;
  (Int64.to_int (Bytes.get_int64_be buf pos), pos + 8)

(* --- whole-message helpers ------------------------------------------------ *)

let encode c msg =
  let n = c.size msg in
  let buf = Bytes.create n in
  let off = c.emit buf 0 msg in
  if off <> n then
    invalid_arg
      (Printf.sprintf "Codec.encode: emit wrote %d bytes, size promised %d" off n);
  buf

let decode c buf ~pos ~len =
  let limit = pos + len in
  let msg, pos' = c.parse buf pos limit in
  if pos' <> limit then raise (Bad "trailing bytes");
  msg

(* The Marshal cross-check oracle: encode, decode, and compare the result
   against the original structurally (via Marshal images — the message
   types are immutable trees of ints, for which equal structure gives
   equal bytes).  Used by tests and, when REPRO_CODEC_ORACLE is set, on
   every live send. *)
let roundtrip_ok c msg =
  match decode c (encode c msg) ~pos:0 ~len:(c.size msg) with
  | msg' -> String.equal (Marshal.to_string msg []) (Marshal.to_string msg' [])
  | exception Bad _ -> false

module Net = Repro_msgpass.Net
module Plan = Repro_msgpass.Fault.Plan
module Rng = Repro_util.Rng

exception Injected_crash of int

type stats = { drops : int; duplicates : int; delays : int; crashes : int }

type control = { stats : unit -> stats }

let wrap ?(incarnation = 0) ~plan (inner : Transport.factory) :
    Transport.factory * control =
  Plan.validate plan;
  let drops = ref 0 and dups = ref 0 and delays = ref 0 and crashes = ref 0 in
  let control =
    {
      stats =
        (fun () ->
          { drops = !drops; duplicates = !dups; delays = !delays;
            crashes = !crashes });
    }
  in
  let factory =
    {
      Transport.create =
        (fun (type m) ?codec n : m Transport.t ->
          Plan.validate ~n plan;
          let tr : m Transport.t = inner.Transport.create ?codec n in
          (* One private decision stream per directed link: five draws per
             send, unconditionally, so a link's decisions depend only on
             its own send index — identical on sim and live backends. *)
          let link_rng =
            Array.init n (fun s ->
                Array.init n (fun d ->
                    Rng.create (Plan.link_seed plan ~src:s ~dst:d)))
          in
          let sends_by = Array.make n 0 in
          (* A restarted process must not re-trigger its crash: the plan's
             schedule fired in incarnation 0. *)
          let crash_arm =
            Array.init n (fun i ->
                if incarnation = 0 then Plan.crash_for plan i else None)
          in
          (* Simulator crash approximation: the node goes silent (sends and
             deliveries dropped) for the restart window, state intact.  On
             a live backend crashes raise instead — see below. *)
          let down_until = Array.make n min_int in
          let is_down node now = now < down_until.(node) in
          {
            Transport.n_nodes = n;
            scope = tr.Transport.scope;
            send =
              (fun ~src ~dst ~control_bytes ~payload_bytes msg ->
                let now = tr.Transport.now () in
                let link = Plan.link_for plan ~src ~dst in
                let r = link_rng.(src).(dst) in
                let u_drop = Rng.float r 1.0 in
                let u_dup = Rng.float r 1.0 in
                let u_reorder = Rng.float r 1.0 in
                let d1 = 1 + Rng.int r plan.Plan.delay_max in
                let d2 = 1 + Rng.int r plan.Plan.delay_max in
                if is_down src now then incr drops
                else if Plan.partitioned plan ~now ~src ~dst then incr drops
                else if u_drop < link.Plan.drop then incr drops
                else begin
                  let transmit delay =
                    if delay = 0 then
                      tr.Transport.send ~src ~dst ~control_bytes ~payload_bytes
                        msg
                    else
                      tr.Transport.schedule ~delay (fun () ->
                          tr.Transport.send ~src ~dst ~control_bytes
                            ~payload_bytes msg)
                  in
                  let base =
                    if u_reorder < link.Plan.reorder then begin
                      incr delays;
                      d1
                    end
                    else 0
                  in
                  transmit base;
                  if u_dup < link.Plan.duplicate then begin
                    incr dups;
                    transmit (base + d2)
                  end
                end;
                sends_by.(src) <- sends_by.(src) + 1;
                match crash_arm.(src) with
                | Some c when sends_by.(src) >= c.Plan.after_sends -> begin
                    crash_arm.(src) <- None;
                    incr crashes;
                    match tr.Transport.scope with
                    | Transport.Node self when self = src ->
                        (* live: this process IS the node — die for real;
                           the supervisor respawns from the checkpoint *)
                        raise (Injected_crash src)
                    | _ ->
                        down_until.(src) <-
                          (match c.Plan.restart_after with
                          | Some d -> now + d
                          | None -> max_int)
                  end
                | _ -> ());
            set_handler =
              (fun node f ->
                tr.Transport.set_handler node (fun env ->
                    if is_down node (tr.Transport.now ()) then incr drops
                    else f env));
            schedule = tr.Transport.schedule;
            step = tr.Transport.step;
            quiesce = tr.Transport.quiesce;
            now = tr.Transport.now;
            stats =
              (fun () ->
                let s = tr.Transport.stats () in
                {
                  s with
                  Net.dropped = s.Net.dropped + !drops;
                  duplicated = s.Net.duplicated + !dups;
                });
            set_tracing = tr.Transport.set_tracing;
            trace = tr.Transport.trace;
          });
    }
  in
  (factory, control)

(** Reliable per-link session layer over any {!Transport} backend.

    Generalizes the go-back-N scheme prototyped in [pram_reliable] into a
    reusable wrapper: per-directed-link sequence numbers, cumulative acks,
    retransmission timers with exponential backoff and seeded jitter, and
    duplicate suppression.  Any protocol can opt in by wrapping its factory
    — the wrapped transport presents the exact {!Transport.t} interface, so
    protocol code is unchanged.

    {b Accounting.}  The wrapper's [stats] report {e protocol-level}
    numbers: [sent]/[delivered] and control/payload bytes count first
    transmissions and first in-order deliveries only, exactly what the
    paper's efficiency experiments compare.  Everything the reliability
    layer adds — segment headers, retransmitted copies, acks — is summed
    apart in [overhead_bytes] (with [retransmits] and [dups_suppressed]
    counters), so the control-information gap of Theorem 2 stays visible
    under loss.

    {b Recovery.}  With [stable_acks] on, acks advance only to the
    receiver's last checkpointed position ({!control.mark_stable}); senders
    therefore keep (and keep retransmitting) anything a crash could roll
    back, which is what makes checkpoint-restart recovery lossless. *)

type config = {
  retransmit_after : int;  (** Initial retransmission timeout, ticks/ms. *)
  backoff_max : int;  (** Cap for the exponential backoff. *)
  jitter : int;  (** Max additive jitter per re-arm, from a seeded stream. *)
  seed : int;
  stable_acks : bool;
      (** Ack the checkpoint floor instead of the live cursor; enable only
          when something calls {!control.mark_stable}, else windows never
          drain. *)
}

val default : config
(** 40-tick initial timeout, 320 cap, jitter 10, [stable_acks = false]. *)

type 'msg wrapped = Seg of { seq : int; msg : 'msg } | Ack of { next : int }
(** The wire type the inner backend carries.  Exposed for tests. *)

val seg_header_bytes : int

val ack_bytes : int

type stats = {
  segs_sent : int;  (** Segment transmissions, including retransmits. *)
  retransmits : int;
  acks_sent : int;
  dups_suppressed : int;
  overhead_bytes : int;
}

type control = {
  stats : unit -> stats;
  mark_stable : unit -> unit;
      (** Declare everything received so far as checkpointed: acks may now
          cover it.  Call right after persisting a checkpoint. *)
  snapshot : unit -> string;
      (** Marshalled session state (windows, cursors, counters). *)
  restore : string -> unit;
      (** Inverse of [snapshot]; re-arms retransmission timers for links
          with unacked segments.  Call before any traffic. *)
}

val wrap : ?config:config -> Transport.factory -> Transport.factory * control
(** [wrap inner] layers the session protocol over [inner].  The [control]
    handle becomes usable once the factory has been used (it raises
    [Invalid_argument] before that). *)

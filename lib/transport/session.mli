(** Reliable per-link session layer over any {!Transport} backend.

    Generalizes the go-back-N scheme prototyped in [pram_reliable] into a
    reusable wrapper: per-directed-link sequence numbers, cumulative acks,
    retransmission timers with exponential backoff and seeded jitter, and
    duplicate suppression.  Any protocol can opt in by wrapping its factory
    — the wrapped transport presents the exact {!Transport.t} interface, so
    protocol code is unchanged.

    {b Acks.}  Receivers do not ack every segment.  An arrival marks the
    link as {e owing} a cumulative ack, which then travels for free in the
    header of the next data frame going back (piggybacking); only if the
    reverse direction stays idle for [ack_delay] ticks does a standalone
    [Ack] frame go out.  On request/reply traffic this removes almost every
    standalone ack from the wire, and the saving is visible directly in
    [overhead_bytes].

    {b Coalescing.}  With [coalesce = k > 1], a send enqueues its segment
    and schedules a zero-delay flush; every segment the protocol produces
    before the flush runs (one timer-queue turn — on the live backend, one
    socket pump) is packed into shared wire frames, at most [k] segments
    each.  One frame costs one syscall and one {!seg_header_bytes} header
    (+{!coal_entry_bytes} per extra segment) instead of [k] of each.
    Retransmissions replay the window in coalesced frames too.  With the
    default [coalesce = 1] a send transmits synchronously, byte-for-byte
    the uncoalesced behaviour.

    {b Accounting.}  The wrapper's [stats] report {e protocol-level}
    numbers: [sent]/[delivered] and control/payload bytes count first
    transmissions and first in-order deliveries only, exactly what the
    paper's efficiency experiments compare — coalescing and ack policy
    change neither.  Everything the reliability layer adds — frame
    headers, retransmitted copies, standalone acks — is summed apart in
    [overhead_bytes] (with [retransmits], [acks_sent], [acks_piggybacked],
    [frames_sent] and [dups_suppressed] counters), so the
    control-information gap of Theorem 2 stays visible under loss, and the
    syscall/byte savings of coalescing are measurable without touching
    protocol parity.

    {b Recovery.}  With [stable_acks] on, acks advance only to the
    receiver's last checkpointed position ({!control.mark_stable}); senders
    therefore keep (and keep retransmitting) anything a crash could roll
    back, which is what makes checkpoint-restart recovery lossless. *)

type config = {
  retransmit_after : int;  (** Initial retransmission timeout, ticks/ms. *)
  backoff_max : int;  (** Cap for the exponential backoff. *)
  jitter : int;  (** Max additive jitter per re-arm, from a seeded stream. *)
  seed : int;
  stable_acks : bool;
      (** Ack the checkpoint floor instead of the live cursor; enable only
          when something calls {!control.mark_stable}, else windows never
          drain. *)
  ack_delay : int;
      (** Idle ticks before an owed ack goes out standalone; until then it
          waits to piggyback on reverse-direction data.  Must stay below
          [retransmit_after] or clean links would retransmit spuriously;
          [0] acks at once (one per frame, still piggybacking first). *)
  coalesce : int;
      (** Max segments packed into one wire frame; [1] disables the flush
          budget entirely (synchronous transmission). *)
}

val default : config
(** 40-tick initial timeout, 320 cap, jitter 10, [stable_acks = false],
    [ack_delay = 20], [coalesce = 1]. *)

type 'msg wrapped =
  | Segs of { ack : int; segs : (int * int * int * 'msg) array }
      (** A data frame: consecutive segments [(seq, control, payload,
          msg)], plus a piggybacked cumulative ack ([-1] when none is
          owed).  Uncoalesced traffic is the singleton case. *)
  | Ack of { next : int }
(** The wire type the inner backend carries.  Exposed for tests. *)

val wrapped_codec : 'msg Codec.t -> 'msg wrapped Codec.t
(** Lift a protocol message codec to the session's wire type; [wrap]
    applies this to any codec the protocol passed down, so session frames
    ride the live backend's zero-copy path too.  Exposed for tests. *)

val seg_header_bytes : int
(** Per-frame header cost: base sequence number + cumulative-ack slot
    (piggybacked acks are therefore free). *)

val ack_bytes : int
(** Standalone ack frame cost. *)

val coal_entry_bytes : int
(** Extra cost per segment packed beyond a frame's first. *)

type stats = {
  segs_sent : int;  (** Segment transmissions, including retransmits. *)
  retransmits : int;
  acks_sent : int;  (** Standalone ack frames only. *)
  acks_piggybacked : int;  (** Acks that rode a data frame for free. *)
  frames_sent : int;  (** Wire frames: data frames + standalone acks. *)
  dups_suppressed : int;
  overhead_bytes : int;
}

type control = {
  stats : unit -> stats;
  mark_stable : unit -> unit;
      (** Declare everything received so far as checkpointed: acks may now
          cover it.  Call right after persisting a checkpoint. *)
  snapshot : unit -> string;
      (** Marshalled session state (windows, cursors, counters). *)
  restore : string -> unit;
      (** Inverse of [snapshot]; re-arms retransmission timers for links
          with unacked segments.  Call before any traffic. *)
  delivered : unit -> int;
      (** In-order first deliveries so far.  After [restore] this resumes
          from the snapshotted value and advances as peers retransmit, so a
          recovering node can wait until redeliveries reach the delivery
          watermark its WAL recorded (the replay-to-live barrier). *)
}

val wrap : ?config:config -> Transport.factory -> Transport.factory * control
(** [wrap inner] layers the session protocol over [inner].  The [control]
    handle becomes usable once the factory has been used (it raises
    [Invalid_argument] before that). *)

/* Scatter-gather write for the live transport's batched link flushes.
 *
 * OCaml's Unix library has no writev binding, so we carry a minimal one:
 * the caller passes an array of (bytes, off, len) chunks, the index of
 * the first unsent chunk, how many bytes of that chunk were already
 * written by a previous partial write, and how many chunks to cover.
 *
 * Errors return as negative codes instead of raising through
 * unixsupport (keeping the stub free of any dependency on the Unix
 * library's C internals); the OCaml side maps them back to
 * Unix.Unix_error.  No runtime-lock release: the callers are
 * single-threaded node/client processes, and the iovecs point straight
 * into OCaml bytes, which must not move while the syscall runs.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <errno.h>
#include <sys/uio.h>

#define REPRO_MAX_IOV 64

CAMLprim value repro_writev(value vfd, value vchunks, value vstart,
                            value vskip, value vcount)
{
  struct iovec iov[REPRO_MAX_IOV];
  int fd = Int_val(vfd);
  long start = Long_val(vstart);
  long skip = Long_val(vskip);
  long count = Long_val(vcount);
  long i;
  ssize_t n;

  if (count > REPRO_MAX_IOV) count = REPRO_MAX_IOV;
  for (i = 0; i < count; i++) {
    value t = Field(vchunks, start + i); /* (bytes, off, len) */
    long off = Long_val(Field(t, 1));
    long len = Long_val(Field(t, 2));
    if (i == 0) { off += skip; len -= skip; }
    iov[i].iov_base = Bytes_val(Field(t, 0)) + off;
    iov[i].iov_len = (size_t)len;
  }
  n = writev(fd, iov, (int)count);
  if (n >= 0) return Val_long(n);
  switch (errno) {
    case EINTR: return Val_long(-1);
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return Val_long(-2);
    case EPIPE: return Val_long(-3);
    case ECONNRESET: return Val_long(-4);
    case EBADF: return Val_long(-5);
    default: return Val_long(-6);
  }
}

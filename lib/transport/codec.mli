(** Strict binary codecs for protocol message types.

    A ['msg t] replaces [Marshal] on the live hot path: [emit] writes the
    big-endian image of a message directly into a caller-supplied buffer
    (a pooled frame, typically) and [parse] reads one back without
    copying the body first.  Decoding is strict in the {!Rpc} style —
    truncation, unknown tags and trailing bytes raise {!Bad} — so a
    corrupt or foreign stream can never produce a silently-wrong message.

    Protocol modules build codecs from the primitives below and pass them
    to [Proto_base.create]; the factory seam ({!Transport.factory})
    carries them to the live backend.  The simulator ignores them. *)

exception Bad of string

type 'msg t = {
  size : 'msg -> int;  (** exact encoded size in bytes *)
  emit : Bytes.t -> int -> 'msg -> int;
      (** [emit buf off msg] writes exactly [size msg] bytes at [off] and
          returns the offset past them.  The caller guarantees room. *)
  parse : Bytes.t -> int -> int -> 'msg * int;
      (** [parse buf pos limit] reads one message at [pos], never past
          [limit]; returns it with the offset past it.  @raise Bad. *)
}

(** {1 Writer primitives} — each returns the offset past what it wrote.
    Range violations raise [Invalid_argument] at encode time (an encoder
    bug), never a silent wrap on the wire. *)

val put_u8 : Bytes.t -> int -> int -> int
val put_u16 : Bytes.t -> int -> int -> int
val put_i32 : Bytes.t -> int -> int -> int
val put_i64 : Bytes.t -> int -> int -> int

(** {1 Reader primitives} — each returns [(value, next_pos)] and raises
    {!Bad} when fewer bytes remain before [limit] than it needs. *)

val get_u8 : Bytes.t -> int -> int -> int * int
val get_u16 : Bytes.t -> int -> int -> int * int
val get_i32 : Bytes.t -> int -> int -> int * int
val get_i64 : Bytes.t -> int -> int -> int * int

val need : Bytes.t -> int -> int -> int -> unit
(** [need buf pos limit k] raises {!Bad} unless [k] bytes remain. *)

(** {1 Whole messages} *)

val encode : 'msg t -> 'msg -> Bytes.t
(** Fresh exact-size buffer; for tests and one-off encodes.  The hot path
    uses [emit] into a pooled frame instead. *)

val decode : 'msg t -> Bytes.t -> pos:int -> len:int -> 'msg
(** Strict: the message must occupy exactly [len] bytes.  @raise Bad. *)

val roundtrip_ok : 'msg t -> 'msg -> bool
(** Marshal cross-check oracle: encode → decode → compare structurally
    (via Marshal images) against the original. *)

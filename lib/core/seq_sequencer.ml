module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fiber = Repro_msgpass.Fiber
module Distribution = Repro_sharegraph.Distribution

type msg =
  | Submit of { var : int; value : Memory.value; writer : int; write_id : int }
  | Ordered of {
      var : int;
      value : Memory.value;
      writer : int;
      write_id : int;
      global_seq : int;
    }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Submit { var; value; writer; _ } ->
      Printf.sprintf "submit x%d:=%s w%d" var (value_text value) writer
  | Ordered { var; value; global_seq; _ } ->
      Printf.sprintf "ordered x%d:=%s @%d" var (value_text value) global_seq

let create ?(latency = Latency.lan) ?service_time ?transport ~dist ~seed () =
  let base = Proto_base.create ?service_time ~extra_nodes:1 ?transport ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let sequencer = n in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* completed.(p): highest write_id of p's own writes applied at p *)
  let completed = Array.make n (-1) in
  let next_write_id = Array.make n 0 in
  let global_seq = ref 0 in
  let on_sequencer (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Submit { var; value; writer; write_id } ->
        let seq = !global_seq in
        incr global_seq;
        List.iter
          (fun peer ->
            Proto_base.send base ~src:sequencer ~dst:peer
              ~control_bytes:16 (* global sequence number + write id *)
              ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
              (Ordered { var; value; writer; write_id; global_seq = seq }))
          (Distribution.holders dist var)
    | Ordered _ -> invalid_arg "Seq_sequencer: unexpected message at sequencer"
  in
  let on_process p (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Ordered { var; value; writer; write_id; global_seq = _ } ->
        (* Channel sequencer→p is FIFO, so arrivals are already in global
           order restricted to p's variables. *)
        store.(p).(var) <- value;
        Proto_base.count_apply base;
        if writer = p then completed.(p) <- Stdlib.max completed.(p) write_id
    | Submit _ -> invalid_arg "Seq_sequencer: unexpected submit at a process"
  in
  Proto_base.set_handler base sequencer on_sequencer;
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_process p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    let write_id = next_write_id.(proc) in
    next_write_id.(proc) <- write_id + 1;
    Proto_base.send base ~src:proc ~dst:sequencer
      ~control_bytes:16 (* write id + variable id *)
      ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
      (Submit { var; value; writer = proc; write_id });
    Fiber.await (fun () -> completed.(proc) >= write_id)
  in
  Proto_base.finish base ~name:"seq-sequencer" ~read ~write ~blocking_writes:true
    ~label ()

(** Partial-replication slow memory (Hutto–Ahamad; Sinha 93).

    Weaker than PRAM: a process must observe each writer's writes {e to
    each individual variable} in order, but writes by one writer to
    different variables may be observed interleaved arbitrarily.

    The implementation makes the weakening physical: the instance runs on a
    deliberately non-FIFO transport, and the receiver enforces order only
    per (writer, variable) lane with an 8-byte lane sequence number.
    Update messages still travel only to [C(x)] — slow memory is at least
    as "efficient" as PRAM in the paper's sense.

    §5 cites Sinha: totally asynchronous iterative fixpoint computations
    converge on slow memory; the {!Repro_apps} Jacobi example exercises
    exactly this. *)

type msg = Update of { var : int; value : Memory.value; lane_seq : int }

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t

(** Shared scaffolding for protocol implementations: a transport plus the
    accounting every protocol must keep (byte counters are per-message
    inputs; the mention audit and applied-update counter are maintained
    here).

    Protocols are written against this module only — never against a
    concrete backend — so the same protocol code runs whole-instance on
    the deterministic simulator (the default) or as one node of a live
    socket cluster when a {!Repro_transport.Transport.factory} is
    supplied. *)

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fault = Repro_msgpass.Fault
module Transport = Repro_transport.Transport
module Codec = Repro_transport.Codec
module Distribution = Repro_sharegraph.Distribution

(** {1 Shared wire-format helpers}

    Building blocks for the per-protocol {!Codec.t} values: every protocol
    message carries a {!Memory.value}, and the causal family carries vector
    clocks.  One layout each, shared by all protocols. *)

val value_size : Memory.value -> int
(** [Init] is 1 byte (tag), [Val v] is 9 (tag + i64). *)

val emit_value : Bytes.t -> int -> Memory.value -> int
val parse_value : Bytes.t -> int -> int -> Memory.value * int

val ts_size : int array -> int
(** u16 length prefix + one i32 per entry. *)

val emit_ts : Bytes.t -> int -> int array -> int
val parse_ts : Bytes.t -> int -> int -> int array * int

type 'msg t

val create :
  ?faults:Fault.t ->
  ?service_time:int ->
  ?extra_nodes:int ->
  ?transport:Transport.factory ->
  ?codec:'msg Codec.t ->
  dist:Distribution.t ->
  latency:Latency.t ->
  seed:int ->
  unit ->
  'msg t
(** One network node per MCS process, plus [extra_nodes] infrastructure
    nodes (e.g. a sequencer) numbered after the processes.

    Without [transport] this builds the simulator backend from [faults],
    [service_time], [latency] and [seed] — byte-identical to the historical
    direct [Net.create].  With [transport], those four parameters are
    ignored (a live backend has real latency and real loss).

    [codec] is the protocol's strict binary message codec, forwarded to the
    backend factory; the live backend uses it to serialise frame bodies in
    place of [Marshal], the simulator ignores it. *)

val dist : 'msg t -> Distribution.t

val n_procs : 'msg t -> int
(** MCS process count (excludes extra nodes). *)

val scope : 'msg t -> Transport.scope
(** [All_nodes] on the simulator; [Node i] when this process hosts only
    node [i] of a live cluster. *)

val set_handler : 'msg t -> int -> ('msg Net.envelope -> unit) -> unit
(** Install node [i]'s delivery callback.  On a live backend, installs for
    nodes other than the hosted one are ignored. *)

val at : 'msg t -> delay:int -> (unit -> unit) -> unit
(** Schedule a thunk [delay] transport ticks from now. *)

val send :
  'msg t ->
  src:int ->
  dst:int ->
  control_bytes:int ->
  payload_bytes:int ->
  mentions:int list ->
  'msg ->
  unit
(** Send and record that [dst] will learn about the [mentions] variables.
    (The audit marks at send time; protocols use reliable channels, so
    every sent message is eventually delivered.) *)

val count_apply : 'msg t -> unit
(** Record one remote update applied to a replica. *)

val metrics : 'msg t -> Memory.metrics

val finish :
  'msg t ->
  name:string ->
  read:(proc:int -> var:int -> Memory.value) ->
  write:(proc:int -> var:int -> Memory.value -> unit) ->
  blocking_writes:bool ->
  ?blocking_reads:bool ->
  ?label:('msg -> string) ->
  ?on_set_tracing:(bool -> unit) ->
  ?state:(unit -> string) * (string -> unit) ->
  unit ->
  Memory.t
(** Assemble the {!Memory.t} record: [step]/[quiesce]/[now]/[schedule] are
    wired to the transport, and [read]/[write] are wrapped with
    {!Memory.check_access}.  [on_set_tracing] runs before each tracing
    toggle reaches the transport — protocols recycling message stamps use
    it to {!Stamp_pool.freeze} their pool, since traced envelopes alias
    the stamps.

    [state] is the protocol's own [(snapshot, restore)] pair for
    checkpoint-restart recovery; when given, the resulting memory's
    [snapshot]/[restore] wrap it together with the base accounting (the
    applied-update counter and the mention audit).  Protocol [restore]
    implementations must copy into the arrays their closures captured,
    never replace them. *)

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution

type msg =
  | Update of { var : int; value : Memory.value; writer : int; ts : int array }
  | Meta of { var : int; writer : int; ts : int array }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; writer; _ } ->
      Printf.sprintf "upd x%d:=%s w%d" var (value_text value) writer
  | Meta { var; writer; _ } -> Printf.sprintf "meta x%d w%d" var writer

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size = function
    | Update { value; ts; _ } ->
        1 + 4 + Proto_base.value_size value + 4 + Proto_base.ts_size ts
    | Meta { ts; _ } -> 1 + 4 + 4 + Proto_base.ts_size ts
  in
  let emit buf off = function
    | Update { var; value; writer; ts } ->
        let off = Codec.put_u8 buf off 0 in
        let off = Codec.put_i32 buf off var in
        let off = Proto_base.emit_value buf off value in
        let off = Codec.put_i32 buf off writer in
        Proto_base.emit_ts buf off ts
    | Meta { var; writer; ts } ->
        let off = Codec.put_u8 buf off 1 in
        let off = Codec.put_i32 buf off var in
        let off = Codec.put_i32 buf off writer in
        Proto_base.emit_ts buf off ts
  in
  let parse buf pos limit =
    let tag, pos = Codec.get_u8 buf pos limit in
    match tag with
    | 0 ->
        let var, pos = Codec.get_i32 buf pos limit in
        let value, pos = Proto_base.parse_value buf pos limit in
        let writer, pos = Codec.get_i32 buf pos limit in
        let ts, pos = Proto_base.parse_ts buf pos limit in
        (Update { var; value; writer; ts }, pos)
    | 1 ->
        let var, pos = Codec.get_i32 buf pos limit in
        let writer, pos = Codec.get_i32 buf pos limit in
        let ts, pos = Proto_base.parse_ts buf pos limit in
        (Meta { var; writer; ts }, pos)
    | t -> raise (Codec.Bad (Printf.sprintf "causal-partial: unknown tag %d" t))
  in
  { Codec.size; emit; parse }

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  let base = Proto_base.create ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  let pool = Stamp_pool.create ~width:n in
  (* bufs.(p)'s vector clock counts writes processed (applied or noted) at
     [p]; [Meta] notices advance it without touching the store. *)
  let bufs =
    Array.init n (fun p ->
        Causal_buf.create
          ~release:(Stamp_pool.release pool)
          ~n
          ~apply:(fun m ->
            match m with
            | Update { var; value; _ } ->
                store.(p).(var) <- value;
                Proto_base.count_apply base
            | Meta _ -> ())
          ())
  in
  let on_message p (envelope : msg Net.envelope) =
    let m = envelope.Net.msg in
    let writer, ts =
      match m with Update { writer; ts; _ } | Meta { writer; ts; _ } -> (writer, ts)
    in
    Causal_buf.add bufs.(p) ~writer ~ts m
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    Causal_buf.tick bufs.(proc) proc;
    let vc = Causal_buf.vc bufs.(proc) in
    for peer = 0 to n - 1 do
      if peer <> proc then begin
        (* each recipient gets a private stamp so its buffer can recycle it *)
        let ts = Stamp_pool.alloc pool vc in
        if Distribution.holds dist ~proc:peer ~var then
          Proto_base.send base ~src:proc ~dst:peer
            ~control_bytes:(8 * n)
            ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
            (Update { var; value; writer = proc; ts })
        else
          Proto_base.send base ~src:proc ~dst:peer
            ~control_bytes:((8 * n) + 8) (* vector clock + variable id *)
            ~payload_bytes:0 ~mentions:[ var ]
            (Meta { var; writer = proc; ts })
      end
    done
  in
  Proto_base.finish base ~name:"causal-partial" ~read ~write ~blocking_writes:false
    ~label
    ~on_set_tracing:(fun flag -> if flag then Stamp_pool.freeze pool)
    ()

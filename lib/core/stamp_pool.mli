(** Freelist of fixed-width vector-clock stamps.

    Causal protocols copy a writer's vector clock into every update they
    emit; at steady state those copies dominate the allocation profile.
    The pool recycles stamp arrays whose ownership is provably unique —
    each message carries its own copy, and the receiving delivery buffer
    returns it here once the update has been applied.

    Recycling must stop the moment the network trace can observe stamps:
    traced envelopes alias the arrays, and overwriting them would corrupt
    rendered message labels.  {!freeze} is therefore permanent; protocols
    call it the first time tracing is switched on. *)

type t

val create : width:int -> t
(** [width] is the vector-clock length (number of processes). *)

val alloc : t -> int array -> int array
(** [alloc t src] returns a private copy of [src]: a recycled array when
    one is available, a fresh one otherwise. *)

val release : t -> int array -> unit
(** Return a stamp whose last reader is done with it.  The caller must be
    the unique owner.  No-op once frozen. *)

val freeze : t -> unit
(** Permanently disable recycling and drop the freelist (stamps may now be
    aliased by trace envelopes with unbounded lifetime). *)

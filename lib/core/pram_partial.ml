module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution

type msg = Update of { var : int; value : Memory.value; seq : int }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; seq } -> Printf.sprintf "upd x%d:=%s #%d" var (value_text value) seq

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size (Update { value; _ }) = 4 + Proto_base.value_size value + 4 in
  let emit buf off (Update { var; value; seq }) =
    let off = Codec.put_i32 buf off var in
    let off = Proto_base.emit_value buf off value in
    Codec.put_i32 buf off seq
  in
  let parse buf pos limit =
    let var, pos = Codec.get_i32 buf pos limit in
    let value, pos = Proto_base.parse_value buf pos limit in
    let seq, pos = Codec.get_i32 buf pos limit in
    (Update { var; value; seq }, pos)
  in
  { Codec.size; emit; parse }

let create ?faults ?(latency = Latency.lan) ?service_time ?(sequence_guard = true)
    ?transport ~dist ~seed () =
  let base =
    Proto_base.create ?faults ?service_time ?transport ~codec ~dist ~latency
      ~seed ()
  in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* Per-channel sequence numbers: duplicates are detected and ignored;
     with FIFO transport [next_expected] simply increments. *)
  let sent_seq = Array.make_matrix n n 0 in
  let next_expected = Array.make_matrix n n 0 in
  let on_message dst (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Update { var; value; seq } ->
        let src = envelope.Net.src in
        if (not sequence_guard) || seq >= next_expected.(dst).(src) then begin
          next_expected.(dst).(src) <- seq + 1;
          store.(dst).(var) <- value;
          Proto_base.count_apply base
        end
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    List.iter
      (fun peer ->
        if peer <> proc then begin
          let seq = sent_seq.(proc).(peer) in
          sent_seq.(proc).(peer) <- seq + 1;
          Proto_base.send base ~src:proc ~dst:peer
            ~control_bytes:8 (* the sequence number *)
            ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
            (Update { var; value; seq })
        end)
      (Distribution.holders dist var)
  in
  (* checkpoint-restart support: the whole protocol state is three plain
     matrices; restore copies element-wise into the arrays the closures
     above captured *)
  let snapshot () = Marshal.to_string (store, sent_seq, next_expected) [] in
  let restore blob =
    let (store', sent', expected')
          : Memory.value array array * int array array * int array array =
      Marshal.from_string blob 0
    in
    let blit dst src =
      Array.iteri (fun i row -> Array.blit src.(i) 0 row 0 (Array.length row)) dst
    in
    blit store store';
    blit sent_seq sent';
    blit next_expected expected'
  in
  Proto_base.finish base ~name:"pram-partial" ~read ~write ~blocking_writes:false
    ~label ~state:(snapshot, restore) ()

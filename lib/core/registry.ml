module Checker = Repro_history.Checker

type spec = {
  name : string;
  guarantees : Checker.criterion;
  requires_full_replication : bool;
  blocking : bool;
  efficient : bool;
  make :
    ?latency:Repro_msgpass.Latency.t ->
    ?transport:Repro_transport.Transport.factory ->
    dist:Repro_sharegraph.Distribution.t ->
    seed:int ->
    unit ->
    Memory.t;
}

let all =
  [
    {
      name = "atomic-primary";
      guarantees = Checker.Sequential;
      requires_full_replication = false;
      blocking = true;
      efficient = true;
      make = (fun ?latency ?transport ~dist ~seed () -> Atomic_primary.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "seq-sequencer";
      guarantees = Checker.Sequential;
      requires_full_replication = false;
      blocking = true;
      efficient = false;
      make = (fun ?latency ?transport ~dist ~seed () -> Seq_sequencer.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "causal-full";
      guarantees = Checker.Causal;
      requires_full_replication = true;
      blocking = false;
      efficient = false;
      make = (fun ?latency ?transport ~dist ~seed () -> Causal_full.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "causal-delta";
      guarantees = Checker.Causal;
      requires_full_replication = true;
      blocking = false;
      efficient = false;
      make = (fun ?latency ?transport ~dist ~seed () -> Causal_delta.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "causal-partial";
      guarantees = Checker.Causal;
      requires_full_replication = false;
      blocking = false;
      efficient = false;
      make = (fun ?latency ?transport ~dist ~seed () -> Causal_partial.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "causal-gossip";
      guarantees = Checker.Causal;
      requires_full_replication = false;
      blocking = false;
      efficient = false;
      (* component-scoped, not clique-scoped: leaks along hoops *)
      make = (fun ?latency ?transport ~dist ~seed () -> Causal_gossip.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "causal-adhoc";
      (* causal only on hoop-free distributions; PRAM in general *)
      guarantees = Checker.Pram;
      requires_full_replication = false;
      blocking = false;
      efficient = true;
      make = (fun ?latency ?transport ~dist ~seed () -> Causal_adhoc.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "pram-partial";
      guarantees = Checker.Pram;
      requires_full_replication = false;
      blocking = false;
      efficient = true;
      make = (fun ?latency ?transport ~dist ~seed () -> Pram_partial.create ?latency ?transport ~dist ~seed ());
    };
    {
      name = "pram-reliable";
      guarantees = Checker.Pram;
      requires_full_replication = false;
      blocking = false;
      efficient = true;
      make =
        (fun ?latency ?transport ~dist ~seed () ->
          (* the registry runs it over clean channels; the lossy default
             is exercised by the dedicated tests *)
          Pram_reliable.create ~faults:Repro_msgpass.Fault.none ?latency ?transport ~dist ~seed ());
    };
    {
      name = "slow-partial";
      guarantees = Checker.Slow;
      requires_full_replication = false;
      blocking = false;
      efficient = true;
      make = (fun ?latency ?transport ~dist ~seed () -> Slow_partial.create ?latency ?transport ~dist ~seed ());
    };
  ]

let find name = List.find_opt (fun spec -> spec.name = name) all

let names = List.map (fun spec -> spec.name) all

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fault = Repro_msgpass.Fault
module Distribution = Repro_sharegraph.Distribution

type msg = Update of { var : int; value : Memory.value; lane_seq : int }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; lane_seq } ->
      Printf.sprintf "upd x%d:=%s lane#%d" var (value_text value) lane_seq

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size (Update { value; _ }) = 4 + Proto_base.value_size value + 4 in
  let emit buf off (Update { var; value; lane_seq }) =
    let off = Codec.put_i32 buf off var in
    let off = Proto_base.emit_value buf off value in
    Codec.put_i32 buf off lane_seq
  in
  let parse buf pos limit =
    let var, pos = Codec.get_i32 buf pos limit in
    let value, pos = Proto_base.parse_value buf pos limit in
    let lane_seq, pos = Codec.get_i32 buf pos limit in
    (Update { var; value; lane_seq }, pos)
  in
  { Codec.size; emit; parse }

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  (* Non-FIFO transport: messages race; per-lane sequencing below restores
     exactly the per-(writer, variable) order slow memory needs. *)
  let faults = { Fault.none with Fault.reorder = true } in
  let base = Proto_base.create ~faults ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* Lane state per (receiver, sender, var). *)
  let expected = Array.init n (fun _ -> Array.make_matrix n n_vars 0) in
  let sent = Array.init n (fun _ -> Array.make_matrix n n_vars 0) in
  let stashed : (int * int * int * int, Memory.value) Hashtbl.t = Hashtbl.create 64 in
  let rec deliver_in_order p src var =
    let seq = expected.(p).(src).(var) in
    match Hashtbl.find_opt stashed (p, src, var, seq) with
    | None -> ()
    | Some value ->
        Hashtbl.remove stashed (p, src, var, seq);
        expected.(p).(src).(var) <- seq + 1;
        store.(p).(var) <- value;
        Proto_base.count_apply base;
        deliver_in_order p src var
  in
  let on_message p (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Update { var; value; lane_seq } ->
        Hashtbl.replace stashed (p, envelope.Net.src, var, lane_seq) value;
        deliver_in_order p envelope.Net.src var
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    List.iter
      (fun peer ->
        if peer <> proc then begin
          let lane_seq = sent.(proc).(peer).(var) in
          sent.(proc).(peer).(var) <- lane_seq + 1;
          Proto_base.send base ~src:proc ~dst:peer
            ~control_bytes:8 (* the lane sequence number *)
            ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
            (Update { var; value; lane_seq })
        end)
      (Distribution.holders dist var)
  in
  Proto_base.finish base ~name:"slow-partial" ~read ~write ~blocking_writes:false
    ~label ()

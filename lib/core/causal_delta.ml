module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution

type msg = Update of {
  var : int;
  value : Memory.value;
  writer : int;
  deltas : (int * int) list; (* vector-clock entries that changed *)
}

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; writer; deltas } ->
      Printf.sprintf "upd x%d:=%s w%d deltas:%d" var (value_text value) writer
        (List.length deltas)

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size (Update { value; deltas; _ }) =
    4 + Proto_base.value_size value + 4 + 2 + (8 * List.length deltas)
  in
  let emit buf off (Update { var; value; writer; deltas }) =
    let off = Codec.put_i32 buf off var in
    let off = Proto_base.emit_value buf off value in
    let off = Codec.put_i32 buf off writer in
    let off = Codec.put_u16 buf off (List.length deltas) in
    List.fold_left
      (fun off (k, c) ->
        let off = Codec.put_i32 buf off k in
        Codec.put_i32 buf off c)
      off deltas
  in
  let parse buf pos limit =
    let var, pos = Codec.get_i32 buf pos limit in
    let value, pos = Proto_base.parse_value buf pos limit in
    let writer, pos = Codec.get_i32 buf pos limit in
    let count, pos = Codec.get_u16 buf pos limit in
    let rec read_deltas acc pos = function
      | 0 -> (List.rev acc, pos)
      | i ->
          let k, pos = Codec.get_i32 buf pos limit in
          let c, pos = Codec.get_i32 buf pos limit in
          read_deltas ((k, c) :: acc) pos (i - 1)
    in
    let deltas, pos = read_deltas [] pos count in
    (Update { var; value; writer; deltas }, pos)
  in
  { Codec.size; emit; parse }

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  if not (Distribution.is_full_replication dist) then
    invalid_arg "Causal_delta.create: requires full replication";
  let base = Proto_base.create ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* last vector stamp transmitted per (sender, receiver) channel, and its
     mirror per (receiver, sender); FIFO keeps them in sync *)
  let sent_stamp = Array.init n (fun _ -> Array.make_matrix n n 0) in
  let recv_stamp = Array.init n (fun _ -> Array.make_matrix n n 0) in
  (* Stamps are reconstructed per received message (the wire carries only
     deltas), so each is uniquely owned by its buffer entry and recycles. *)
  let pool = Stamp_pool.create ~width:n in
  let bufs =
    Array.init n (fun p ->
        Causal_buf.create
          ~release:(Stamp_pool.release pool)
          ~n
          ~apply:(fun (var, value) ->
            store.(p).(var) <- value;
            Proto_base.count_apply base)
          ())
  in
  let on_message p (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Update { var; value; writer; deltas } ->
        (* reconstruct the full stamp from the per-channel mirror *)
        let mirror = recv_stamp.(p).(writer) in
        List.iter (fun (k, v) -> mirror.(k) <- v) deltas;
        Causal_buf.add bufs.(p) ~writer ~ts:(Stamp_pool.alloc pool mirror)
          (var, value)
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    Causal_buf.tick bufs.(proc) proc;
    let ts = Causal_buf.vc bufs.(proc) in
    for peer = 0 to n - 1 do
      if peer <> proc then begin
        let last = sent_stamp.(proc).(peer) in
        let deltas = ref [] in
        for k = n - 1 downto 0 do
          if ts.(k) <> last.(k) then begin
            deltas := (k, ts.(k)) :: !deltas;
            last.(k) <- ts.(k)
          end
        done;
        Proto_base.send base ~src:proc ~dst:peer
          ~control_bytes:(12 * List.length !deltas) (* (index, count) pairs *)
          ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
          (Update { var; value; writer = proc; deltas = !deltas })
      end
    done
  in
  Proto_base.finish base ~name:"causal-delta" ~read ~write ~blocking_writes:false
    ~label
    ~on_set_tracing:(fun flag -> if flag then Stamp_pool.freeze pool)
    ()

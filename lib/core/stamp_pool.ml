type t = {
  width : int;
  mutable free : int array list;
  mutable frozen : bool;
}

let create ~width = { width; free = []; frozen = false }

let alloc t src =
  if Array.length src <> t.width then invalid_arg "Stamp_pool.alloc: bad width";
  match t.free with
  | dst :: rest when not t.frozen ->
      t.free <- rest;
      Array.blit src 0 dst 0 t.width;
      dst
  | _ -> Array.copy src

let release t stamp =
  if (not t.frozen) && Array.length stamp = t.width then
    t.free <- stamp :: t.free

let freeze t =
  t.frozen <- true;
  t.free <- []

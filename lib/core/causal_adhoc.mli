(** Static-distribution "ad-hoc" causal protocol (paper §3.3).

    The paper observes that when the variable distribution is known a
    priori, an implementation can be tailored to it: only processes on
    x-hoops need information about [x].  This module implements the
    extreme point of that design space — dependency metadata restricted to
    the variables the {e sender and receiver share}:

    a write of [x] by [i] travels only to [C(x)]; its control information
    is, per receiver [j], the counts of writes [i] has applied per writer
    and per variable in [X_i ∩ X_j].  The receiver defers application until
    it has applied at least as much.

    Consequences, matching Theorem 1 exactly:
    - on a {e hoop-free} distribution every run is causally consistent
      (all causal paths between operations visible at [j] traverse pairwise
      shared variables, so no dependency escapes the summaries);
    - on a distribution {e with} hoops, causality can leak through a hoop —
      a dependency chain (Definition 4) whose intermediate variables are
      invisible to the summaries — and runs exist whose histories are not
      causal.  Tests construct such a violation deterministically.
    - every run is still PRAM-consistent (per-writer FIFO is preserved),
      so the protocol degrades exactly to the criterion the paper proves
      implementable.

    Mention audit: information about [y] reaches only processes holding
    [y]; the protocol is "efficient" in the paper's sense — which is why it
    cannot be causal in general. *)

type msg = Update of {
  var : int;
  value : Memory.value;
  writer : int;
  deps : (int * int * int) list;
}

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t

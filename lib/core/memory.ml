module Distribution = Repro_sharegraph.Distribution
module Bitset = Repro_util.Bitset

type value = Repro_history.Op.value

type metrics = {
  messages_sent : int;
  messages_delivered : int;
  control_bytes : int;
  payload_bytes : int;
  overhead_bytes : int;
  mentioned_at : Bitset.t array;
  applied_writes : int;
}

type t = {
  name : string;
  dist : Distribution.t;
  read : proc:int -> var:int -> value;
  write : proc:int -> var:int -> value -> unit;
  step : unit -> bool;
  quiesce : unit -> unit;
  now : unit -> int;
  schedule : delay:int -> (unit -> unit) -> unit;
  metrics : unit -> metrics;
  blocking_writes : bool;
  blocking_reads : bool;
  set_tracing : bool -> unit;
  msc : unit -> string;
  snapshot : (unit -> string) option;
  restore : (string -> unit) option;
}

let check_access t ~proc ~var =
  if not (Distribution.holds t.dist ~proc ~var) then
    invalid_arg
      (Printf.sprintf "%s: process %d does not hold variable x%d" t.name proc var)

let value_bytes = 8

let mentions_outside_clique t ~var =
  let metrics = t.metrics () in
  let holders = Distribution.holders_set t.dist var in
  (* Nodes beyond the process range are infrastructure (e.g. a sequencer);
     they are never in a clique, so any mention there counts as leakage. *)
  Bitset.fold
    (fun p acc ->
      if p < Bitset.capacity holders && Bitset.mem holders p then acc else p :: acc)
    metrics.mentioned_at.(var) []
  |> List.rev

let total_offclique_mentions t =
  let n_vars = Distribution.n_vars t.dist in
  let total = ref 0 in
  for x = 0 to n_vars - 1 do
    total := !total + List.length (mentions_outside_clique t ~var:x)
  done;
  !total

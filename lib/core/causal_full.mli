(** Full-replication causal memory (Ahamad et al. 1995).

    The classic baseline the paper's §1 describes: every MCS process
    replicates every variable; writes are broadcast with a vector clock and
    applied when causally ready; reads are local and wait-free.

    Control information per message is one [n]-entry vector clock
    (8·n bytes) — it grows with the system, which is precisely the
    scalability critique motivating partial replication. *)

type msg = Update of { var : int; value : Memory.value; writer : int; ts : int array }

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t
(** @raise Invalid_argument unless the distribution is full replication
    ({!Repro_sharegraph.Distribution.is_full_replication}). *)

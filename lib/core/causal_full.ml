module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution

type msg = Update of { var : int; value : Memory.value; writer : int; ts : int array }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; writer; ts } ->
      Printf.sprintf "upd x%d:=%s w%d vc[%s]" var (value_text value) writer
        (String.concat "," (Array.to_list (Array.map string_of_int ts)))

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size (Update { value; ts; _ }) =
    4 + Proto_base.value_size value + 4 + Proto_base.ts_size ts
  in
  let emit buf off (Update { var; value; writer; ts }) =
    let off = Codec.put_i32 buf off var in
    let off = Proto_base.emit_value buf off value in
    let off = Codec.put_i32 buf off writer in
    Proto_base.emit_ts buf off ts
  in
  let parse buf pos limit =
    let var, pos = Codec.get_i32 buf pos limit in
    let value, pos = Proto_base.parse_value buf pos limit in
    let writer, pos = Codec.get_i32 buf pos limit in
    let ts, pos = Proto_base.parse_ts buf pos limit in
    (Update { var; value; writer; ts }, pos)
  in
  { Codec.size; emit; parse }

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  if not (Distribution.is_full_replication dist) then
    invalid_arg "Causal_full.create: requires full replication";
  let base = Proto_base.create ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  let pool = Stamp_pool.create ~width:n in
  (* Causal broadcast delivery: [bufs.(p)] applies the update from [writer]
     stamped [ts] once it is the next write of [writer] and every
     dependency is satisfied; its vector clock counts writes applied at [p]
     (own writes immediate, via [tick]). *)
  let bufs =
    Array.init n (fun p ->
        Causal_buf.create
          ~release:(Stamp_pool.release pool)
          ~n
          ~apply:(fun (var, value) ->
            store.(p).(var) <- value;
            Proto_base.count_apply base)
          ())
  in
  let on_message p (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Update { var; value; writer; ts } ->
        Causal_buf.add bufs.(p) ~writer ~ts (var, value)
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    Causal_buf.tick bufs.(proc) proc;
    let vc = Causal_buf.vc bufs.(proc) in
    for peer = 0 to n - 1 do
      if peer <> proc then
        (* each recipient gets a private stamp so its buffer can recycle it *)
        Proto_base.send base ~src:proc ~dst:peer
          ~control_bytes:(8 * n) (* the vector clock *)
          ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
          (Update { var; value; writer = proc; ts = Stamp_pool.alloc pool vc })
    done
  in
  Proto_base.finish base ~name:"causal-full" ~read ~write ~blocking_writes:false
    ~label
    ~on_set_tracing:(fun flag -> if flag then Stamp_pool.freeze pool)
    ()

(** Partial-replication causal memory — correct but {e inefficient}, the
    protocol shape the paper's §3.3 argues is unavoidable in general.

    Values travel only to replica holders, but {e metadata about every
    write is broadcast to every process}: a write of [x] by [i] carries
    [i]'s dependency vector (counting all writes per writer, 8·n bytes) and
    is sent as an [Update] to the other members of [C(x)] and as a [Meta]
    notification to everyone else.  A process applies (or notes) writes in
    causal order; since it hears about {e all} writes, the vector-clock
    delivery condition is always eventually satisfiable, and the replicas
    it holds are updated causally.

    Consequence visible in the mention audit: every process is informed
    about every variable — the exact scalability failure of Theorem 1's
    general case ("each process in the system has to transmit control
    information regarding all the shared data"). *)

type msg =
  | Update of { var : int; value : Memory.value; writer : int; ts : int array }
  | Meta of { var : int; writer : int; ts : int array }

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t

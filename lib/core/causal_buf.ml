(* Round-exact causal delivery buffering.

   The protocols used to keep one pending list per process and, on every
   arrival, repeatedly [List.partition] it against the vector clock —
   O(pending²) per drain.  This module reproduces that drain order exactly
   (see "round semantics" below) in amortized O(1) per applied update:

   - Per-writer ring windows.  An update from [writer] stamped [ts] can
     only become deliverable when it is the writer's next unapplied write,
     i.e. [ts.(writer) = vc.(writer) + 1].  Updates are therefore filed in
     a circular window per writer, indexed by [ts.(writer)] relative to the
     window base [vc.(writer) + 1]; only the window head is ever a
     delivery candidate.  Gossip floods can deliver a writer's notices out
     of order, which the sparse slots absorb.

   - Counter-indexed readiness.  A blocked head scans its dependency
     vector left to right and parks on the first entry [k] with
     [vc.(k) < ts.(k)].  It is re-examined only when [vc.(k)] advances,
     resuming the scan where it parked (vector clocks only grow, so
     entries already satisfied stay satisfied).  Each update is thus
     scanned O(n) total over its lifetime instead of O(n) per drain pass.

   Round semantics.  The historical drain applied, in arrival order, every
   update ready against the vector clock as it stood at the start of the
   pass, then re-partitioned.  An update unblocked mid-pass waited for the
   next pass even if it arrived before a later update of the same pass.
   Apply order is observable (last-writer-wins stores), so the engine
   emulates passes: heads unblocked while a round is applied are collected
   and sorted by arrival index to form the next round.  Between arrivals
   the buffer is at fixpoint, and a fresh arrival can unblock nothing but
   itself, so its round is the singleton historical partition produced. *)

type 'a entry = {
  e_ts : int array;
  e_arrival : int;
  e_payload : 'a;
  mutable e_scan : int; (* dependency-scan resume position *)
}

(* Circular per-writer window; slot [ (head + i) mod capacity ] holds the
   update with ts.(writer) = base + i, where base = vc.(writer) + 1. *)
type 'a window = {
  mutable slots : 'a entry option array;
  mutable head : int;
}

type 'a t = {
  n : int;
  vc : int array; (* vc.(k): number of k's writes processed here *)
  windows : 'a window array;
  waiters : int list array; (* waiters.(k): writers parked on entry k *)
  mutable next_round : (int * 'a entry) list;
  mutable arrivals : int;
  apply : 'a -> unit;
  release : int array -> unit;
}

let create ?(release = fun _ -> ()) ~n ~apply () =
  {
    n;
    vc = Array.make n 0;
    windows = Array.init n (fun _ -> { slots = [||]; head = 0 });
    waiters = Array.make n [];
    next_round = [];
    arrivals = 0;
    apply;
    release;
  }

let vc t = t.vc

let tick t k = t.vc.(k) <- t.vc.(k) + 1

let window_get w off =
  let cap = Array.length w.slots in
  if off >= cap then None else w.slots.((w.head + off) mod cap)

let window_set w off entry =
  let cap = Array.length w.slots in
  if off >= cap then begin
    let rec fit c = if c > off then c else fit (2 * c) in
    let slots = Array.make (fit (max 4 cap)) None in
    for i = 0 to cap - 1 do
      slots.(i) <- w.slots.((w.head + i) mod cap)
    done;
    w.slots <- slots;
    w.head <- 0
  end;
  w.slots.((w.head + off) mod Array.length w.slots) <- Some entry

let window_advance w =
  w.slots.(w.head) <- None;
  w.head <- (w.head + 1) mod Array.length w.slots

(* Examine the head of [writer]'s window: queue it for the next round if
   every dependency is met, otherwise park it on the first unmet entry.
   Callers guarantee the head is neither parked nor queued already. *)
let check_head t writer =
  match window_get t.windows.(writer) 0 with
  | None -> ()
  | Some entry ->
      let rec scan k =
        if k >= t.n then t.next_round <- (writer, entry) :: t.next_round
        else if k = writer || t.vc.(k) >= entry.e_ts.(k) then scan (k + 1)
        else begin
          entry.e_scan <- k;
          t.waiters.(k) <- writer :: t.waiters.(k)
        end
      in
      scan entry.e_scan

let apply_entry t writer entry =
  t.apply entry.e_payload;
  t.vc.(writer) <- t.vc.(writer) + 1;
  window_advance t.windows.(writer);
  t.release entry.e_ts;
  check_head t writer;
  match t.waiters.(writer) with
  | [] -> ()
  | woken ->
      t.waiters.(writer) <- [];
      List.iter (check_head t) woken

let by_arrival (_, a) (_, b) = compare a.e_arrival b.e_arrival

let rec run_rounds t =
  match t.next_round with
  | [] -> ()
  | batch ->
      t.next_round <- [];
      let batch = List.sort by_arrival batch in
      List.iter (fun (writer, entry) -> apply_entry t writer entry) batch;
      run_rounds t

let add t ~writer ~ts payload =
  let off = ts.(writer) - (t.vc.(writer) + 1) in
  (* off < 0: already applied (a late duplicate); occupied slot: queued
     duplicate.  Both were inert in the historical pending list. *)
  if off >= 0 && window_get t.windows.(writer) off = None then begin
    let entry =
      { e_ts = ts; e_arrival = t.arrivals; e_payload = payload; e_scan = 0 }
    in
    t.arrivals <- t.arrivals + 1;
    window_set t.windows.(writer) off entry;
    if off = 0 then check_head t writer;
    run_rounds t
  end

(** Partial-replication PRAM memory — the efficient implementation whose
    existence Theorem 2 licenses.

    A write of [x] by process [i] is applied locally, then sent {e only} to
    the other members of [C(x)].  Because the transport delivers each
    channel FIFO, every process applies process [i]'s writes (to variables
    it shares with [i]) in [i]'s program order, which is all PRAM demands.
    Reads are local and wait-free.

    Per-message control information is a single per-channel sequence number
    (8 bytes), independent of the system size — contrast with the causal
    protocols.  The mention audit of a run never leaves [C(x)] for any [x]:
    this protocol is {e efficient} in the paper's sense. *)

type msg = Update of { var : int; value : Memory.value; seq : int }

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?faults:Repro_msgpass.Fault.t ->
  ?latency:Repro_msgpass.Latency.t ->
  ?service_time:int ->
  ?sequence_guard:bool ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t
(** Default latency {!Repro_msgpass.Latency.lan}.

    [sequence_guard] (default [true]) applies an update only when its
    per-channel sequence number is not older than the newest applied one.
    With the guard, duplication and reordering faults cannot violate PRAM
    (each replica applies a monotone subsequence of the writer's program
    order, and skipped writes can always be serialized immediately before
    the writer's next applied write); they only cost update freshness.
    Disabling the guard recovers the textbook protocol whose correctness
    rests entirely on FIFO channels — tests use this to show reordering
    then produces PRAM violations. *)

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fault = Repro_msgpass.Fault
module Transport = Repro_transport.Transport
module Distribution = Repro_sharegraph.Distribution
module Bitset = Repro_util.Bitset

type 'msg t = {
  tr : 'msg Transport.t;
  dist : Distribution.t;
  mentioned : Bitset.t array; (* per variable: processes informed about it *)
  mutable applied : int;
}

let create ?faults ?service_time ?(extra_nodes = 0) ?transport ~dist ~latency
    ~seed () =
  let n = Distribution.n_procs dist in
  let factory =
    match transport with
    | Some f -> f
    | None -> Transport.sim ?faults ?service_time ~latency ~seed ()
  in
  let tr = factory.Transport.create ~n:(n + extra_nodes) in
  {
    tr;
    dist;
    mentioned = Array.init (Distribution.n_vars dist) (fun _ -> Bitset.create (n + extra_nodes));
    applied = 0;
  }

let dist t = t.dist

let n_procs t = Distribution.n_procs t.dist

let scope t = t.tr.Transport.scope

let set_handler t node f = t.tr.Transport.set_handler node f

let at t ~delay f = t.tr.Transport.schedule ~delay f

let send t ~src ~dst ~control_bytes ~payload_bytes ~mentions msg =
  List.iter (fun x -> Bitset.add t.mentioned.(x) dst) mentions;
  t.tr.Transport.send ~src ~dst ~control_bytes ~payload_bytes msg

let count_apply t = t.applied <- t.applied + 1

let metrics t =
  let s = t.tr.Transport.stats () in
  {
    Memory.messages_sent = s.Net.sent;
    messages_delivered = s.Net.delivered;
    control_bytes = s.Net.total_control_bytes;
    payload_bytes = s.Net.total_payload_bytes;
    overhead_bytes = s.Net.overhead_bytes;
    mentioned_at = Array.map Bitset.copy t.mentioned;
    applied_writes = t.applied;
  }

let finish t ~name ~read ~write ~blocking_writes ?(blocking_reads = false)
    ?(label = fun _ -> "msg") ?(on_set_tracing = fun _ -> ()) ?state () =
  let check proc var =
    if not (Distribution.holds t.dist ~proc ~var) then
      invalid_arg
        (Printf.sprintf "%s: process %d does not hold variable x%d" name proc var)
  in
  {
    Memory.name;
    dist = t.dist;
    read =
      (fun ~proc ~var ->
        check proc var;
        read ~proc ~var);
    write =
      (fun ~proc ~var value ->
        check proc var;
        write ~proc ~var value);
    step = (fun () -> t.tr.Transport.step ());
    quiesce = (fun () -> t.tr.Transport.quiesce ());
    now = (fun () -> t.tr.Transport.now ());
    schedule = (fun ~delay f -> t.tr.Transport.schedule ~delay f);
    metrics = (fun () -> metrics t);
    blocking_writes;
    blocking_reads;
    set_tracing =
      (fun flag ->
        on_set_tracing flag;
        t.tr.Transport.set_tracing flag);
    msc =
      (fun () ->
        Repro_msgpass.Msc.render ~n_nodes:t.tr.Transport.n_nodes ~label
          (t.tr.Transport.trace ()));
    (* a checkpoint must carry the base accounting along with the
       protocol's own state, or a restored node would under-report *)
    snapshot =
      Option.map
        (fun (snap, _) () ->
          Marshal.to_string (t.applied, t.mentioned, snap ()) [])
        state;
    restore =
      Option.map
        (fun (_, rest) blob ->
          let (applied, mentioned, inner) : int * Bitset.t array * string =
            Marshal.from_string blob 0
          in
          t.applied <- applied;
          Array.iteri (fun i b -> t.mentioned.(i) <- b) mentioned;
          rest inner)
        state;
  }

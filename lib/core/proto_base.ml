module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fault = Repro_msgpass.Fault
module Transport = Repro_transport.Transport
module Codec = Repro_transport.Codec
module Distribution = Repro_sharegraph.Distribution
module Bitset = Repro_util.Bitset

(* Shared wire-format helpers for the protocol codecs.  Every protocol
   message carries a {!Memory.value} and most carry a vector clock or a
   short dependency list; centralising their layouts keeps the per-protocol
   codecs small and guarantees the formats agree across protocols. *)

let value_size : Memory.value -> int = function
  | Repro_history.Op.Init -> 1
  | Repro_history.Op.Val _ -> 9

let emit_value buf off : Memory.value -> int = function
  | Repro_history.Op.Init -> Codec.put_u8 buf off 0
  | Repro_history.Op.Val v ->
      let off = Codec.put_u8 buf off 1 in
      Codec.put_i64 buf off v

let parse_value buf pos limit : Memory.value * int =
  let tag, pos = Codec.get_u8 buf pos limit in
  match tag with
  | 0 -> (Repro_history.Op.Init, pos)
  | 1 ->
      let v, pos = Codec.get_i64 buf pos limit in
      (Repro_history.Op.Val v, pos)
  | t -> raise (Codec.Bad (Printf.sprintf "value: unknown tag %d" t))

let ts_size a = 2 + (4 * Array.length a)

(* toplevel recursion, not [Array.fold_left] with a closure: emit must not
   allocate on the steady-state send path *)
let rec emit_ints buf off (a : int array) i =
  if i = Array.length a then off
  else emit_ints buf (Codec.put_i32 buf off a.(i)) a (i + 1)

let emit_ts buf off (a : int array) =
  emit_ints buf (Codec.put_u16 buf off (Array.length a)) a 0

let parse_ts buf pos limit : int array * int =
  let len, pos0 = Codec.get_u16 buf pos limit in
  let a = Array.make len 0 in
  let pos = ref pos0 in
  for i = 0 to len - 1 do
    let x, p = Codec.get_i32 buf !pos limit in
    a.(i) <- x;
    pos := p
  done;
  (a, !pos)

type 'msg t = {
  tr : 'msg Transport.t;
  dist : Distribution.t;
  mentioned : Bitset.t array; (* per variable: processes informed about it *)
  mutable applied : int;
}

let create ?faults ?service_time ?(extra_nodes = 0) ?transport ?codec ~dist
    ~latency ~seed () =
  let n = Distribution.n_procs dist in
  let factory =
    match transport with
    | Some f -> f
    | None -> Transport.sim ?faults ?service_time ~latency ~seed ()
  in
  let tr = factory.Transport.create ?codec (n + extra_nodes) in
  {
    tr;
    dist;
    mentioned = Array.init (Distribution.n_vars dist) (fun _ -> Bitset.create (n + extra_nodes));
    applied = 0;
  }

let dist t = t.dist

let n_procs t = Distribution.n_procs t.dist

let scope t = t.tr.Transport.scope

let set_handler t node f = t.tr.Transport.set_handler node f

let at t ~delay f = t.tr.Transport.schedule ~delay f

let send t ~src ~dst ~control_bytes ~payload_bytes ~mentions msg =
  List.iter (fun x -> Bitset.add t.mentioned.(x) dst) mentions;
  t.tr.Transport.send ~src ~dst ~control_bytes ~payload_bytes msg

let count_apply t = t.applied <- t.applied + 1

let metrics t =
  let s = t.tr.Transport.stats () in
  {
    Memory.messages_sent = s.Net.sent;
    messages_delivered = s.Net.delivered;
    control_bytes = s.Net.total_control_bytes;
    payload_bytes = s.Net.total_payload_bytes;
    overhead_bytes = s.Net.overhead_bytes;
    mentioned_at = Array.map Bitset.copy t.mentioned;
    applied_writes = t.applied;
  }

let finish t ~name ~read ~write ~blocking_writes ?(blocking_reads = false)
    ?(label = fun _ -> "msg") ?(on_set_tracing = fun _ -> ()) ?state () =
  let check proc var =
    if not (Distribution.holds t.dist ~proc ~var) then
      invalid_arg
        (Printf.sprintf "%s: process %d does not hold variable x%d" name proc var)
  in
  {
    Memory.name;
    dist = t.dist;
    read =
      (fun ~proc ~var ->
        check proc var;
        read ~proc ~var);
    write =
      (fun ~proc ~var value ->
        check proc var;
        write ~proc ~var value);
    step = (fun () -> t.tr.Transport.step ());
    quiesce = (fun () -> t.tr.Transport.quiesce ());
    now = (fun () -> t.tr.Transport.now ());
    schedule = (fun ~delay f -> t.tr.Transport.schedule ~delay f);
    metrics = (fun () -> metrics t);
    blocking_writes;
    blocking_reads;
    set_tracing =
      (fun flag ->
        on_set_tracing flag;
        t.tr.Transport.set_tracing flag);
    msc =
      (fun () ->
        Repro_msgpass.Msc.render ~n_nodes:t.tr.Transport.n_nodes ~label
          (t.tr.Transport.trace ()));
    (* a checkpoint must carry the base accounting along with the
       protocol's own state, or a restored node would under-report *)
    snapshot =
      Option.map
        (fun (snap, _) () ->
          Marshal.to_string (t.applied, t.mentioned, snap ()) [])
        state;
    restore =
      Option.map
        (fun (_, rest) blob ->
          let (applied, mentioned, inner) : int * Bitset.t array * string =
            Marshal.from_string blob 0
          in
          t.applied <- applied;
          Array.iteri (fun i b -> t.mentioned.(i) <- b) mentioned;
          rest inner)
        state;
  }

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution

(* Dependency summary: (writer, var, count) triples meaning "I had applied
   [count] writes of [writer] to [var] when I issued this write". *)
type msg = Update of {
  var : int;
  value : Memory.value;
  writer : int;
  deps : (int * int * int) list;
}

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; writer; deps } ->
      Printf.sprintf "upd x%d:=%s w%d deps:%d" var (value_text value) writer
        (List.length deps)

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size (Update { value; deps; _ }) =
    4 + Proto_base.value_size value + 4 + 2 + (12 * List.length deps)
  in
  let emit buf off (Update { var; value; writer; deps }) =
    let off = Codec.put_i32 buf off var in
    let off = Proto_base.emit_value buf off value in
    let off = Codec.put_i32 buf off writer in
    let off = Codec.put_u16 buf off (List.length deps) in
    List.fold_left
      (fun off (k, y, c) ->
        let off = Codec.put_i32 buf off k in
        let off = Codec.put_i32 buf off y in
        Codec.put_i32 buf off c)
      off deps
  in
  let parse buf pos limit =
    let var, pos = Codec.get_i32 buf pos limit in
    let value, pos = Proto_base.parse_value buf pos limit in
    let writer, pos = Codec.get_i32 buf pos limit in
    let count, pos = Codec.get_u16 buf pos limit in
    let rec read_deps acc pos = function
      | 0 -> (List.rev acc, pos)
      | i ->
          let k, pos = Codec.get_i32 buf pos limit in
          let y, pos = Codec.get_i32 buf pos limit in
          let c, pos = Codec.get_i32 buf pos limit in
          read_deps ((k, y, c) :: acc) pos (i - 1)
    in
    let deps, pos = read_deps [] pos count in
    (Update { var; value; writer; deps }, pos)
  in
  { Codec.size; emit; parse }

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  let base = Proto_base.create ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* applied.(p).(k).(y): number of k's writes to y applied at p. *)
  let applied = Array.init n (fun _ -> Array.make_matrix n n_vars 0) in
  let pending = Array.make n [] in
  let shared_vars =
    (* shared_vars.(i).(j): X_i ∩ X_j, precomputed. *)
    Array.init n (fun i ->
        Array.init n (fun j ->
            List.filter
              (fun y -> Distribution.holds dist ~proc:j ~var:y)
              (Distribution.vars_of dist i)))
  in
  let ready p deps =
    List.for_all (fun (k, y, c) -> applied.(p).(k).(y) >= c) deps
  in
  let apply p = function
    | Update { var; value; writer; _ } ->
        store.(p).(var) <- value;
        applied.(p).(writer).(var) <- applied.(p).(writer).(var) + 1;
        Proto_base.count_apply base
  in
  let rec drain p =
    let appliable, blocked =
      List.partition (fun (Update { deps; _ }) -> ready p deps) pending.(p)
    in
    match appliable with
    | [] -> ()
    | _ ->
        pending.(p) <- blocked;
        List.iter (apply p) appliable;
        drain p
  in
  let on_message p (envelope : msg Net.envelope) =
    pending.(p) <- pending.(p) @ [ envelope.Net.msg ];
    drain p
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    (* Summaries snapshot the writer's state before counting this write. *)
    let counts = applied.(proc) in
    store.(proc).(var) <- value;
    List.iter
      (fun peer ->
        if peer <> proc then begin
          let deps =
            List.concat_map
              (fun y ->
                List.filter_map
                  (fun k -> if counts.(k).(y) > 0 then Some (k, y, counts.(k).(y)) else None)
                  (List.init n Fun.id))
              shared_vars.(proc).(peer)
          in
          let mentions =
            var :: List.map (fun (_, y, _) -> y) deps |> List.sort_uniq compare
          in
          Proto_base.send base ~src:proc ~dst:peer
            ~control_bytes:(12 * List.length deps)
            ~payload_bytes:Memory.value_bytes ~mentions
            (Update { var; value; writer = proc; deps })
        end)
      (Distribution.holders dist var);
    applied.(proc).(proc).(var) <- applied.(proc).(proc).(var) + 1
  in
  Proto_base.finish base ~name:"causal-adhoc" ~read ~write ~blocking_writes:false
    ~label ()

(** PRAM memory over {e unreliable} channels.

    The paper's model (§1) assumes a message-passing system "with a certain
    quality of service in terms of ordering and reliability"; the plain
    {!Pram_partial} inherits both from the simulator.  This variant
    manufactures that quality of service itself: updates travel over a
    lossy, duplicating transport and each directed channel runs go-back-N
    ARQ — cumulative acknowledgements, a retransmission timer, in-order
    delivery to the protocol layer.

    The memory semantics is exactly PRAM (per-writer order is the ARQ
    channel order), and — unlike the guarded {!Pram_partial} under faults —
    {e no update is ever lost}: after quiescence every replica has applied
    every relevant write.  The price is acks and retransmissions, measured
    by the usual metrics.  Mention audit still never leaves [C(x)]. *)

type msg =
  | Data of { var : int; value : Memory.value; seq : int }
  | Ack of { next : int }

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?faults:Repro_msgpass.Fault.t ->
  ?latency:Repro_msgpass.Latency.t ->
  ?retransmit_after:int ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t
(** [faults] defaults to a 20% drop / 10% duplication profile (this
    protocol exists to beat faults; pass {!Repro_msgpass.Fault.none} to
    run it over a clean network).  [retransmit_after] (default 50 ticks)
    is the per-channel retransmission timeout; it should comfortably
    exceed one round trip. *)

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fault = Repro_msgpass.Fault
module Distribution = Repro_sharegraph.Distribution
module Ringbuf = Repro_util.Ringbuf

type msg =
  | Data of { var : int; value : Memory.value; seq : int }
  | Ack of { next : int }  (** cumulative: everything below [next] received *)

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Data { var; value; seq } -> Printf.sprintf "data x%d:=%s #%d" var (value_text value) seq
  | Ack { next } -> Printf.sprintf "ack<%d" next

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size = function
    | Data { value; _ } -> 1 + 4 + Proto_base.value_size value + 4
    | Ack _ -> 1 + 4
  in
  let emit buf off = function
    | Data { var; value; seq } ->
        let off = Codec.put_u8 buf off 0 in
        let off = Codec.put_i32 buf off var in
        let off = Proto_base.emit_value buf off value in
        Codec.put_i32 buf off seq
    | Ack { next } ->
        let off = Codec.put_u8 buf off 1 in
        Codec.put_i32 buf off next
  in
  let parse buf pos limit =
    let tag, pos = Codec.get_u8 buf pos limit in
    match tag with
    | 0 ->
        let var, pos = Codec.get_i32 buf pos limit in
        let value, pos = Proto_base.parse_value buf pos limit in
        let seq, pos = Codec.get_i32 buf pos limit in
        (Data { var; value; seq }, pos)
    | 1 ->
        let next, pos = Codec.get_i32 buf pos limit in
        (Ack { next }, pos)
    | t -> raise (Codec.Bad (Printf.sprintf "pram-reliable: unknown tag %d" t))
  in
  { Codec.size; emit; parse }

let default_faults = { Fault.drop = 0.2; duplicate = 0.1; reorder = false }

let create ?(faults = default_faults) ?(latency = Latency.lan)
    ?(retransmit_after = 50) ?transport ~dist ~seed () =
  if retransmit_after < 1 then invalid_arg "Pram_reliable.create: bad timeout";
  let base = Proto_base.create ~faults ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* go-back-N sender state, per (src, dst) channel; the retransmission
     window is a deque — sends append, cumulative acks pop the prefix *)
  let out_buf : (int * (int * Memory.value)) Ringbuf.t array array =
    Array.init n (fun _ -> Array.init n (fun _ -> Ringbuf.create ()))
  in
  let next_seq = Array.make_matrix n n 0 in
  let timer_armed = Array.make_matrix n n false in
  (* receiver state *)
  let expected = Array.make_matrix n n 0 in
  let send_data ~src ~dst (seq, (var, value)) =
    Proto_base.send base ~src ~dst ~control_bytes:8
      ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
      (Data { var; value; seq })
  in
  let send_ack ~src ~dst =
    Proto_base.send base ~src ~dst ~control_bytes:8 ~payload_bytes:0 ~mentions:[]
      (Ack { next = expected.(src).(dst) })
  in
  let rec arm_timer src dst =
    if not timer_armed.(src).(dst) then begin
      timer_armed.(src).(dst) <- true;
      Proto_base.at base ~delay:retransmit_after (fun () ->
          timer_armed.(src).(dst) <- false;
          let pending = out_buf.(src).(dst) in
          if not (Ringbuf.is_empty pending) then begin
            (* everything acknowledged: stay quiet instead *)
            Ringbuf.iter pending (send_data ~src ~dst);
            arm_timer src dst
          end)
    end
  in
  let on_message p (envelope : msg Net.envelope) =
    let src = envelope.Net.src in
    match envelope.Net.msg with
    | Data { var; value; seq } ->
        if seq = expected.(p).(src) then begin
          store.(p).(var) <- value;
          Proto_base.count_apply base;
          expected.(p).(src) <- seq + 1
        end;
        (* out-of-order or duplicate: discard, but always (re)acknowledge
           the current cumulative position *)
        send_ack ~src:p ~dst:src
    | Ack { next } ->
        (* p is the original sender; sequence numbers sit in the window in
           ascending order, so a cumulative ack prunes a prefix *)
        let window = out_buf.(p).(src) in
        let rec prune () =
          match Ringbuf.peek_front window with
          | Some (seq, _) when seq < next ->
              ignore (Ringbuf.pop_front window);
              prune ()
          | _ -> ()
        in
        prune ()
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    List.iter
      (fun peer ->
        if peer <> proc then begin
          let seq = next_seq.(proc).(peer) in
          next_seq.(proc).(peer) <- seq + 1;
          Ringbuf.push_back out_buf.(proc).(peer) (seq, (var, value));
          send_data ~src:proc ~dst:peer (seq, (var, value));
          arm_timer proc peer
        end)
      (Distribution.holders dist var)
  in
  Proto_base.finish base ~name:"pram-reliable" ~read ~write ~blocking_writes:false
    ~label ()

(** Partial-replication causal memory with share-graph-scoped gossip.

    A middle point between {!Causal_partial} (metadata broadcast to
    everyone) and {!Causal_adhoc} (no off-clique metadata at all): write
    values travel directly to [C(x)], while write {e notices} flood along
    the edges of the share graph — each process forwards a notice it has
    not seen before to its share-graph neighbours.

    Because causal dependency chains travel through shared variables
    (paper §3.2, the sufficiency half of Theorem 1), they can never cross
    a share-graph component boundary; a process that hears about every
    write {e in its component} can therefore order its replicas causally.
    Each run is causally consistent on any distribution.

    The cost structure this trades into:
    - on a distribution whose share graph is disconnected (e.g. clusters),
      information about [x] reaches only [x]'s component — the mention
      audit stays component-local;
    - on a connected share graph the component is everything and the
      protocol degenerates to a (more expensive, multi-hop) broadcast —
      Theorem 1 again: when hoops abound, someone must carry the news. *)

type msg =
  | Update of { var : int; value : Memory.value; writer : int; seq : int; ts : int array }
  | Gossip of { var : int; writer : int; seq : int; ts : int array }

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t

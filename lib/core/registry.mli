(** Protocol registry: one entry per implementation, with the consistency
    criterion each run is guaranteed to satisfy.  Tests iterate this list
    to check every protocol against its contract; the CLI and benchmarks
    look implementations up by name. *)

type spec = {
  name : string;
  guarantees : Repro_history.Checker.criterion;
      (** Strongest criterion of {!Repro_history.Checker.all_criteria} that
          every history produced by this protocol satisfies. *)
  requires_full_replication : bool;
  blocking : bool;  (** Has blocking reads or writes (needs fibers). *)
  efficient : bool;
      (** Paper §3: information about [x] never reaches a process outside
          [C(x)] (checked by the mention audit in tests). *)
  make :
    ?latency:Repro_msgpass.Latency.t ->
    ?transport:Repro_transport.Transport.factory ->
    dist:Repro_sharegraph.Distribution.t ->
    seed:int ->
    unit ->
    Memory.t;
      (** [latency] seeds the simulator backend and is ignored when a
          [transport] factory (e.g. a live socket backend) is supplied. *)
}

val all : spec list
(** atomic-primary, seq-sequencer, causal-full, causal-delta,
    causal-partial, causal-gossip, causal-adhoc, pram-partial,
    pram-reliable, slow-partial. *)

val find : string -> spec option

val names : string list

module Fiber = Repro_msgpass.Fiber
module Op = Repro_history.Op
module History = Repro_history.History
module Timed = Repro_history.Timed
module Distribution = Repro_sharegraph.Distribution

type api = {
  proc : int;
  n_procs : int;
  read : int -> Memory.value;
  write : int -> Memory.value -> unit;
  peek : int -> Memory.value;
  yield : unit -> unit;
  await : (unit -> bool) -> unit;
  sleep : int -> unit;
}

type entry = Op.kind * int * Memory.value * int * int

exception Livelock of string

let instrument (memory : Memory.t) ~proc ~record =
  let n = Distribution.n_procs memory.Memory.dist in
  {
    proc;
    n_procs = n;
    read =
      (fun var ->
        let invoked = memory.Memory.now () in
        let value = memory.Memory.read ~proc ~var in
        record ((Op.Read, var, value, invoked, memory.Memory.now ()) : entry);
        value);
    write =
      (fun var value ->
        let invoked = memory.Memory.now () in
        memory.Memory.write ~proc ~var value;
        record ((Op.Write, var, value, invoked, memory.Memory.now ()) : entry);
        ());
    peek = (fun var -> memory.Memory.read ~proc ~var);
    yield = Fiber.yield;
    await = Fiber.await;
    sleep = Fiber.sleep;
  }

let run_raw ?(max_events = 10_000_000) (memory : Memory.t) ~programs =
  let n = Distribution.n_procs memory.Memory.dist in
  if Array.length programs > n then
    invalid_arg "Runner.run: more programs than processes";
  let recorded = Array.make n [] in
  let finished = Array.make n false in
  let api_for proc =
    instrument memory ~proc ~record:(fun entry ->
        recorded.(proc) <- entry :: recorded.(proc))
  in
  Array.iteri
    (fun proc program ->
      Fiber.spawn
        ~schedule:(fun ~delay f -> memory.Memory.schedule ~delay f)
        ~on_done:(fun () -> finished.(proc) <- true)
        (fun () -> program (api_for proc)))
    programs;
  let budget = ref max_events in
  let rec drive () =
    if memory.Memory.step () then begin
      decr budget;
      if !budget <= 0 then begin
        let stuck =
          List.filter
            (fun i -> i < Array.length programs && not finished.(i))
            (List.init n Fun.id)
        in
        raise
          (Livelock
             (Printf.sprintf "event budget exhausted; unfinished processes: %s"
                (String.concat ", " (List.map string_of_int stuck))))
      end;
      drive ()
    end
  in
  drive ();
  Array.iteri
    (fun proc ok ->
      if proc < Array.length programs && not ok then
        raise (Livelock (Printf.sprintf "process %d never finished" proc)))
    finished;
  Array.to_list (Array.map List.rev recorded)

let run ?max_events memory ~programs =
  run_raw ?max_events memory ~programs
  |> List.map (List.map (fun (kind, var, value, _, _) -> (kind, var, value)))
  |> History.of_lists

let run_timed ?max_events memory ~programs =
  Timed.of_lists (run_raw ?max_events memory ~programs)

(** Per-process delivery buffer for vector-clock-stamped updates.

    Replaces the pending-list-plus-partition drain the causal protocols
    shared, preserving its apply order exactly (the drain's pass structure
    is emulated, see the implementation notes) while making each applied
    update amortized O(1): per-writer ring windows hold blocked updates and
    each blocked update is re-examined only when the vector-clock entry it
    parked on advances. *)

type 'a t

val create : ?release:(int array -> unit) -> n:int -> apply:('a -> unit) -> unit -> 'a t
(** [create ~n ~apply ()] builds the buffer for one process in an [n]-writer
    system.  [apply] receives each payload at the moment the historical
    drain would have applied it; the buffer increments its own vector clock
    entry for the update's writer immediately afterwards.  [release], if
    given, receives each update's stamp once it can no longer be read
    (e.g. to recycle it through a {!Stamp_pool}). *)

val vc : 'a t -> int array
(** The live vector clock: [vc.(k)] counts writer [k]'s updates processed
    at this process.  Callers may read it (e.g. to stamp outgoing writes)
    but must mutate it only through {!tick}. *)

val tick : 'a t -> int -> unit
(** [tick t k] records a local write by [k] (the owning process), advancing
    [vc.(k)] without draining — local writes can never unblock a buffered
    remote update, because no update may depend on more local writes than
    the local process has issued. *)

val add : 'a t -> writer:int -> ts:int array -> 'a -> unit
(** File an update and apply every buffered update this makes deliverable,
    in the historical drain order.  Updates whose [ts.(writer)] slot was
    already applied or is already occupied are ignored (late or queued
    duplicates, inert in the historical pending list too). *)

(** The Memory Consistency System interface.

    A {!t} is one running MCS instance: [n] MCS processes on top of a
    simulated network, each managing replicas of the variables its
    application process accesses (the distribution), and exposing the
    paper's two operations — [read] and [write] — to application code.

    Every protocol implementation in this library produces this record, so
    applications, the runner, the tests and the benchmarks are all
    protocol-generic.

    {b Accounting.}  Besides raw message/byte counts, every instance keeps
    the {e mention audit}: for each variable [x], the set of processes that
    have received any message carrying information about [x] (a value or
    metadata).  Theorem 1 is about exactly this set — an implementation is
    {e efficient} for [x] when the audit never leaves [C(x)]. *)

module Distribution = Repro_sharegraph.Distribution

type value = Repro_history.Op.value

type metrics = {
  messages_sent : int;
  messages_delivered : int;
  control_bytes : int;
      (** Total consistency-metadata bytes shipped (vector clocks, sequence
          numbers, dependency summaries). *)
  payload_bytes : int;  (** Total application-data bytes shipped. *)
  overhead_bytes : int;
      (** Reliability-layer bytes (session headers, retransmitted copies,
          acks) — kept apart from [control_bytes] so the paper's
          control-information accounting is unchanged by a lossy substrate. *)
  mentioned_at : Repro_util.Bitset.t array;
      (** [mentioned_at.(x)]: processes that received a message mentioning
          variable [x]. *)
  applied_writes : int;  (** Remote updates applied across all processes. *)
}

type t = {
  name : string;
  dist : Distribution.t;
  read : proc:int -> var:int -> value;
      (** Wait-free local read of a replica.
          @raise Invalid_argument when [proc] does not hold [var]. *)
  write : proc:int -> var:int -> value -> unit;
      (** Write; local application is immediate for the non-blocking
          protocols.  Blocking protocols (sequencer, primary-copy) must be
          called from inside a {!Repro_msgpass.Fiber} — see
          [blocking_writes].
          @raise Invalid_argument when [proc] does not hold [var]. *)
  step : unit -> bool;  (** Process one network event. *)
  quiesce : unit -> unit;  (** Run the network until no event is pending. *)
  now : unit -> int;  (** Simulation time. *)
  schedule : delay:int -> (unit -> unit) -> unit;
      (** Scheduler hook, suitable for {!Repro_msgpass.Fiber.spawn}. *)
  metrics : unit -> metrics;
  blocking_writes : bool;
      (** True when [write] suspends the calling fiber until the update is
          ordered (sequencer / primary protocols). *)
  blocking_reads : bool;
      (** True when [read] suspends the calling fiber (primary-copy
          protocol); all other protocols serve reads locally, wait-free. *)
  set_tracing : bool -> unit;
      (** Record the network trace (off by default). *)
  msc : unit -> string;
      (** Message sequence chart of the trace recorded so far (empty
          without tracing), with protocol-specific message labels. *)
  snapshot : (unit -> string) option;
      (** Marshalled protocol state (replica stores, sequence cursors, the
          mention audit), for checkpoint-restart recovery.  [None] when the
          protocol does not support checkpointing. *)
  restore : (string -> unit) option;
      (** Inverse of [snapshot]; must run before any traffic. *)
}

val check_access : t -> proc:int -> var:int -> unit
(** @raise Invalid_argument when [proc] does not hold [var] under the
    instance's distribution. *)

val value_bytes : int
(** Wire size we charge for one value (8). *)

val mentions_outside_clique : t -> var:int -> int list
(** Processes outside [C(x)] that nevertheless received information about
    [x] — the inefficiency witness of §3.3.  Ascending. *)

val total_offclique_mentions : t -> int
(** Sum over variables of [|mentions_outside_clique|]. *)

module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Fiber = Repro_msgpass.Fiber
module Distribution = Repro_sharegraph.Distribution

type msg =
  | Read_req of { var : int; req_id : int; requester : int }
  | Write_req of { var : int; value : Memory.value; req_id : int; requester : int }
  | Reply of { req_id : int; value : Memory.value }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Read_req { var; requester; _ } -> Printf.sprintf "read x%d? p%d" var requester
  | Write_req { var; value; requester; _ } ->
      Printf.sprintf "write x%d:=%s p%d" var (value_text value) requester
  | Reply { value; _ } -> Printf.sprintf "reply %s" (value_text value)

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  let base = Proto_base.create ?transport ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let primary_of =
    Array.init n_vars (fun x ->
        match Distribution.holders dist x with
        | p :: _ -> p
        | [] -> -1 (* unreplicated variable: unusable, caught by check_access *))
  in
  (* Authoritative copies live at primaries only. *)
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  let next_req = Array.make n 0 in
  let replies : (int * int, Memory.value) Hashtbl.t = Hashtbl.create 64 in
  let on_message p (envelope : msg Net.envelope) =
    match envelope.Net.msg with
    | Read_req { var; req_id; requester } ->
        Proto_base.send base ~src:p ~dst:requester ~control_bytes:8
          ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
          (Reply { req_id; value = store.(p).(var) })
    | Write_req { var; value; req_id; requester } ->
        store.(p).(var) <- value;
        Proto_base.count_apply base;
        Proto_base.send base ~src:p ~dst:requester ~control_bytes:8
          ~payload_bytes:0 ~mentions:[ var ]
          (Reply { req_id; value })
    | Reply { req_id; value } -> Hashtbl.replace replies (p, req_id) value
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let rpc ~proc msg_of_req_id =
    let req_id = next_req.(proc) in
    next_req.(proc) <- req_id + 1;
    msg_of_req_id req_id;
    Fiber.await (fun () -> Hashtbl.mem replies (proc, req_id));
    let value = Hashtbl.find replies (proc, req_id) in
    Hashtbl.remove replies (proc, req_id);
    value
  in
  let read ~proc ~var =
    let primary = primary_of.(var) in
    if primary = proc then store.(proc).(var)
    else
      rpc ~proc (fun req_id ->
          Proto_base.send base ~src:proc ~dst:primary ~control_bytes:16
            ~payload_bytes:0 ~mentions:[ var ]
            (Read_req { var; req_id; requester = proc }))
  in
  let write ~proc ~var value =
    let primary = primary_of.(var) in
    if primary = proc then begin
      store.(proc).(var) <- value;
      Proto_base.count_apply base
    end
    else
      ignore
        (rpc ~proc (fun req_id ->
             Proto_base.send base ~src:proc ~dst:primary ~control_bytes:16
               ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
               (Write_req { var; value; req_id; requester = proc })))
  in
  Proto_base.finish base ~name:"atomic-primary" ~read ~write ~blocking_writes:true
    ~blocking_reads:true ~label ()

(** Sequentially consistent memory via a sequencer node (partial
    replication, "fast reads / slow writes", after Attiya–Welch).

    All writes are funnelled through one extra infrastructure node that
    stamps them with a global sequence number and forwards each to the
    variable's replica holders; every process applies updates in global
    order (its channel from the sequencer is FIFO).  A writer blocks until
    its own write has been applied locally, which is what makes the
    combination with local reads sequentially consistent.  Reads are local
    and wait-free.

    Cost profile: every write pays a round trip to the sequencer (2 hops to
    reach replicas), the sequencer is a throughput bottleneck, and writes
    block — the latency the weaker criteria exist to avoid (paper §3.3).

    Because [write] suspends, application code must run inside
    {!Repro_msgpass.Fiber} (the {!Runner} does this). *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?service_time:int ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t
(** [service_time] (default 0) rates-limits every node's message intake
    (see {!Repro_msgpass.Net.create}); under write load the sequencer is
    the hot spot, making the centralization bottleneck measurable. *)

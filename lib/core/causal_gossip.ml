module Net = Repro_msgpass.Net
module Latency = Repro_msgpass.Latency
module Distribution = Repro_sharegraph.Distribution
module Share_graph = Repro_sharegraph.Share_graph

(* A notice of write number [seq] by [writer] to [var], stamped with the
   writer's dependency vector; [Update] also carries the value (sent to
   replica holders only), [Gossip] is the value-free flooded form. *)
type msg =
  | Update of { var : int; value : Memory.value; writer : int; seq : int; ts : int array }
  | Gossip of { var : int; writer : int; seq : int; ts : int array }

let value_text = function
  | Repro_history.Op.Init -> "_"
  | Repro_history.Op.Val v -> string_of_int v

let label = function
  | Update { var; value; writer; seq; _ } ->
      Printf.sprintf "upd x%d:=%s w%d#%d" var (value_text value) writer seq
  | Gossip { var; writer; seq; _ } -> Printf.sprintf "gossip x%d w%d#%d" var writer seq

module Codec = Repro_transport.Codec

let codec : msg Codec.t =
  let size = function
    | Update { value; ts; _ } ->
        1 + 4 + Proto_base.value_size value + 4 + 4 + Proto_base.ts_size ts
    | Gossip { ts; _ } -> 1 + 4 + 4 + 4 + Proto_base.ts_size ts
  in
  let emit buf off = function
    | Update { var; value; writer; seq; ts } ->
        let off = Codec.put_u8 buf off 0 in
        let off = Codec.put_i32 buf off var in
        let off = Proto_base.emit_value buf off value in
        let off = Codec.put_i32 buf off writer in
        let off = Codec.put_i32 buf off seq in
        Proto_base.emit_ts buf off ts
    | Gossip { var; writer; seq; ts } ->
        let off = Codec.put_u8 buf off 1 in
        let off = Codec.put_i32 buf off var in
        let off = Codec.put_i32 buf off writer in
        let off = Codec.put_i32 buf off seq in
        Proto_base.emit_ts buf off ts
  in
  let parse buf pos limit =
    let tag, pos = Codec.get_u8 buf pos limit in
    match tag with
    | 0 ->
        let var, pos = Codec.get_i32 buf pos limit in
        let value, pos = Proto_base.parse_value buf pos limit in
        let writer, pos = Codec.get_i32 buf pos limit in
        let seq, pos = Codec.get_i32 buf pos limit in
        let ts, pos = Proto_base.parse_ts buf pos limit in
        (Update { var; value; writer; seq; ts }, pos)
    | 1 ->
        let var, pos = Codec.get_i32 buf pos limit in
        let writer, pos = Codec.get_i32 buf pos limit in
        let seq, pos = Codec.get_i32 buf pos limit in
        let ts, pos = Proto_base.parse_ts buf pos limit in
        (Gossip { var; writer; seq; ts }, pos)
    | t -> raise (Codec.Bad (Printf.sprintf "causal-gossip: unknown tag %d" t))
  in
  { Codec.size; emit; parse }

type notice = {
  n_var : int;
  n_value : Memory.value option;
  n_writer : int;
  n_seq : int;
  n_ts : int array;
}

let create ?(latency = Latency.lan) ?transport ~dist ~seed () =
  let base = Proto_base.create ?transport ~codec ~dist ~latency ~seed () in
  let n = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let neighbours =
    let sg = Share_graph.of_distribution dist in
    Array.init n (fun p -> Share_graph.neighbours sg p)
  in
  let store = Array.make_matrix n n_vars Repro_history.Op.Init in
  (* bufs.(p)'s vector clock counts writes processed (applied or noted) at
     [p].  Flooded notices reach a process along several paths, so a
     writer's notices can arrive out of order; the buffer's seq-indexed
     windows absorb that, and its duplicate dropping replaces the explicit
     pending-list membership test.  Stamps are aliased by every forwarded
     copy of a notice, so they are not pooled here. *)
  let bufs =
    Array.init n (fun p ->
        Causal_buf.create ~n
          ~apply:(fun notice ->
            match notice.n_value with
            | Some value ->
                store.(p).(notice.n_var) <- value;
                Proto_base.count_apply base
            | None -> ())
          ())
  in
  (* seen.(p): notices already received (for gossip dedup), (writer, seq) *)
  let seen = Array.init n (fun _ -> Hashtbl.create 64) in
  let forward p ~came_from notice =
    List.iter
      (fun peer ->
        if peer <> came_from then
          Proto_base.send base ~src:p ~dst:peer
            ~control_bytes:((8 * n) + 16)
            ~payload_bytes:0 ~mentions:[ notice.n_var ]
            (Gossip
               {
                 var = notice.n_var;
                 writer = notice.n_writer;
                 seq = notice.n_seq;
                 ts = notice.n_ts;
               }))
      neighbours.(p)
  in
  let consume p notice =
    Causal_buf.add bufs.(p) ~writer:notice.n_writer ~ts:notice.n_ts notice
  in
  let on_message p (envelope : msg Net.envelope) =
    let notice, has_value =
      match envelope.Net.msg with
      | Update { var; value; writer; seq; ts } ->
          ({ n_var = var; n_value = Some value; n_writer = writer; n_seq = seq; n_ts = ts }, true)
      | Gossip { var; writer; seq; ts } ->
          ({ n_var = var; n_value = None; n_writer = writer; n_seq = seq; n_ts = ts }, false)
    in
    let key = (notice.n_writer, notice.n_seq) in
    let holder = Distribution.holds dist ~proc:p ~var:notice.n_var in
    if not (Hashtbl.mem seen.(p) key) then begin
      (* First contact with this write.  A holder must wait for the valued
         form; its gossip copy is recorded as seen-but-not-consumed so the
         flood still spreads exactly once. *)
      Hashtbl.add seen.(p) key ();
      forward p ~came_from:envelope.Net.src notice;
      if (not holder) || has_value then consume p notice
    end
    else if holder && has_value then
      (* the valued form arriving after the gossip copy: consume it; the
         buffer ignores it if it was already queued or applied *)
      consume p notice
  in
  for p = 0 to n - 1 do
    Proto_base.set_handler base p (on_message p)
  done;
  let write_seq = Array.make n 0 in
  let read ~proc ~var = store.(proc).(var) in
  let write ~proc ~var value =
    store.(proc).(var) <- value;
    Causal_buf.tick bufs.(proc) proc;
    let seq = write_seq.(proc) in
    write_seq.(proc) <- seq + 1;
    let ts = Array.copy (Causal_buf.vc bufs.(proc)) in
    Hashtbl.add seen.(proc) (proc, seq) ();
    (* value to the other replica holders *)
    List.iter
      (fun peer ->
        if peer <> proc then
          Proto_base.send base ~src:proc ~dst:peer
            ~control_bytes:((8 * n) + 8)
            ~payload_bytes:Memory.value_bytes ~mentions:[ var ]
            (Update { var; value; writer = proc; seq; ts }))
      (Distribution.holders dist var);
    (* notice to the share-graph neighbourhood *)
    forward proc ~came_from:proc
      { n_var = var; n_value = None; n_writer = proc; n_seq = seq; n_ts = ts }
  in
  Proto_base.finish base ~name:"causal-gossip" ~read ~write ~blocking_writes:false
    ~label ()

(** Full-replication causal memory with delta-compressed control
    information (after the propagation-optimal protocols of Baldoni,
    Milani & Tucci-Piergiovanni — the paper's reference [8]).

    Semantically identical to {!Causal_full}: writes are broadcast and
    applied under the vector-clock causal-delivery condition.  The
    difference is the wire format: instead of the whole n-entry vector, a
    message to peer [j] carries only the entries that changed since the
    sender's previous message to [j] (sound because channels are FIFO, so
    the receiver can reconstruct the full stamp incrementally).

    Control cost is therefore proportional to the sender's {e recent
    causal activity}, not to the system size — typically far below
    [Causal_full]'s 8·n bytes but still strictly above PRAM's constant, and
    the mention audit still informs every process about every variable:
    compression does not evade Theorem 1, it only shrinks the bytes. *)

type msg = Update of {
  var : int;
  value : Memory.value;
  writer : int;
  deltas : (int * int) list;
}

val codec : msg Repro_transport.Codec.t
(** Strict binary wire codec for {!msg}; the live backend uses it in place
    of [Marshal].  Exposed for the codec round-trip tests. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t
(** @raise Invalid_argument unless the distribution is full replication. *)

(** Executing application programs against a memory instance and recording
    the resulting history.

    Each application process is a fiber ({!Repro_msgpass.Fiber}) running a
    user function over {!api}; the runner collects every recorded operation
    in per-process program order and assembles a {!Repro_history.History.t}
    ready for the {!Repro_history.Checker}. *)

type api = {
  proc : int;
  n_procs : int;
  read : int -> Memory.value;
      (** Recorded read of a variable (must be held by this process). *)
  write : int -> Memory.value -> unit;  (** Recorded write. *)
  peek : int -> Memory.value;
      (** Unrecorded read, for busy-wait conditions: the paper's
          synchronization loops (Fig. 7 line 6) read shared variables at
          every poll; recording each poll would bloat the checked history
          without changing consistency, so condition polling uses [peek].
          Semantically identical to [read]. *)
  yield : unit -> unit;
  await : (unit -> bool) -> unit;
      (** Busy-wait until the condition holds; the condition typically uses
          [peek] and must not use blocking operations. *)
  sleep : int -> unit;  (** Let simulated time pass. *)
}

type entry = Repro_history.Op.kind * int * Memory.value * int * int
(** One recorded operation: kind, variable, value, invocation time,
    response time. *)

exception Livelock of string
(** Raised when the event budget is exhausted before every program
    finished — an unsatisfiable [await] or a protocol deadlock. *)

val instrument : Memory.t -> proc:int -> record:(entry -> unit) -> api
(** The recording wrapper {!run} builds for each process, exposed for
    drivers with their own event loop (the live cluster node cannot use
    {!run}'s drive-to-quiescence loop: on a socket transport an empty
    queue means "idle", not "finished").  [read]/[write] go through the
    memory and emit an {!entry}; [peek] is unrecorded; [yield]/[await]/
    [sleep] are fiber operations, valid only inside a fiber spawned with
    the memory's [schedule]. *)

val run :
  ?max_events:int ->
  Memory.t ->
  programs:(api -> unit) array ->
  Repro_history.History.t
(** [run memory ~programs] spawns [programs.(i)] as process [i] (the array
    must not exceed the distribution's process count; missing processes run
    nothing), drives the network to quiescence, and returns the recorded
    history.  [max_events] defaults to 10_000_000.

    @raise Livelock as documented above. *)

val run_timed :
  ?max_events:int ->
  Memory.t ->
  programs:(api -> unit) array ->
  Repro_history.Timed.t
(** Like {!run} but each operation also records its invocation and
    response simulation times (they differ only for blocking protocols).
    Feed the result to {!Repro_history.Timed.check_linearizable} to decide
    atomicity. *)

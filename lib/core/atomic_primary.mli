(** Atomic (linearizable) memory via a primary copy per variable.

    Each variable has a single authoritative copy at its lowest-numbered
    holder; both reads and writes are round-trip RPCs to that primary (or
    local operations when the caller {e is} the primary).  Operations on a
    variable serialize at its primary between invocation and response, so
    the memory is atomic in Lamport's sense [12].

    This is the strongest — and slowest — point of the criterion lattice:
    every remote operation pays a round trip, which is what the causal /
    PRAM literature ([2], §3.3) is trying to avoid.  Information about [x]
    never leaves [C(x)]: atomicity via a primary is "efficient" in the
    mention-audit sense, but gives up wait-free local reads entirely.

    Both [read] and [write] suspend the calling fiber. *)

val create :
  ?latency:Repro_msgpass.Latency.t ->
  ?transport:Repro_transport.Transport.factory ->
  dist:Repro_sharegraph.Distribution.t ->
  seed:int ->
  unit ->
  Memory.t

(** One open-loop load-generator client.

    A client builds a {e deterministic} arrival schedule (pure function of
    its seed, mix, distribution, rate and duration — asserted by tests),
    connects to every node, and replays the schedule against the wall
    clock: requests go out when due regardless of outstanding replies
    (open loop), pipelined over one connection per node, and replies are
    matched back by request id whenever the sockets have them.  When the
    offered rate exceeds cluster capacity, completions approach capacity
    and the latency percentiles show the queueing — exactly the curves the
    load tier records. *)

type event = { at_us : int; target : int; request : Repro_transport.Rpc.request }
(** One scheduled request: fire at [at_us] (µs since client start) against
    node [target]. *)

val client_src : int -> int
(** Wire [src] id for a client (node ids with the 0x8000 bit set).
    @raise Invalid_argument outside [0, 0x7FFF]. *)

val plan :
  mix:Mix.t ->
  dist:Repro_sharegraph.Distribution.t ->
  rate:float ->
  duration_ms:int ->
  seed:int ->
  event array
(** Poisson arrivals at [rate] ops/sec (seeded exponential gaps) over
    [duration_ms]; operation kinds drawn from [mix]; each single
    read/write targets a uniformly drawn variable and a uniformly drawn
    holder of it, scans target one replica's own consecutive variables.
    Same arguments → identical array.
    @raise Invalid_argument when [rate <= 0]. *)

type report = {
  attempted_ops : int;  (** Ops actually written to a socket. *)
  completed_ops : int;  (** Ops whose outcome came back. *)
  failed_ops : int;  (** Outcomes that were [Failed]. *)
  unsent : int;  (** Plan events never submitted (cutoff or dead node). *)
  timeouts : int;  (** Requests still unanswered when grace expired. *)
  bytes_out : int;
  bytes_in : int;
  send_span_us : int;  (** Elapsed µs when the last request was sent. *)
  completion_span_us : int;
      (** Elapsed µs when the last reply arrived (or grace expired) —
          the fair throughput denominator under saturation, when replies
          trail the submission window. *)
  lat_us : Repro_util.Stats.t;  (** Per-request latency sketch, µs. *)
  read_us : Repro_util.Stats.t;
  write_us : Repro_util.Stats.t;
  scan_us : Repro_util.Stats.t;
}

val run :
  client_id:int ->
  peers:Unix.sockaddr array ->
  events:event array ->
  drain_plan:bool ->
  duration_ms:int ->
  grace_ms:int ->
  ?connect_timeout_ms:int ->
  unit ->
  report
(** Replay [events].  With [drain_plan] false the client stops submitting
    at [duration_ms] (open-loop measurement window); with it true the
    whole plan is submitted however long that takes — the mode the
    coalescing comparison uses, so both runs offer byte-identical op
    multisets.  After submission, in-flight requests get [grace_ms] to
    complete.  Latency sketches are {!Repro_util.Stats.create_sketch}
    accumulators: bounded memory at any op count. *)

(** Read/write/scan operation mixes for the load tier (YCSB-style).

    A mix is three fractions summing to 1 plus a scan length.  Reads and
    writes are single-variable RPCs routed to a replica holding the
    variable; a scan is a {!Repro_transport.Rpc.request.Batch} of
    [scan_len] reads over consecutive variables of one replica — the
    pipelined multi-op primitive. *)

type t = { read : float; write : float; scan : float; scan_len : int }

val read_heavy : t
(** 80% reads / 20% writes — the mix the paper's efficiency argument
    favours partial replication on. *)

val write_heavy : t
(** 20% reads / 80% writes — maximal replication traffic, the coalescing
    showcase. *)

val balanced : t
(** 50/50. *)

val scans : t
(** 60/20/20 with scan length 8. *)

val named : (string * t) list

val validate : t -> (t, string) result

val parse : string -> (t, string) result
(** A name from {!named}, or ["r=0.6,w=0.2,s=0.2,len=8"] (omitted
    fractions default to 0, [len] to 8). *)

val to_string : t -> string
(** The name when the mix is a named one, else the key=value form;
    [parse]-able either way. *)

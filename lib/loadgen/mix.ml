type t = { read : float; write : float; scan : float; scan_len : int }

let validate m =
  if m.read < 0.0 || m.write < 0.0 || m.scan < 0.0 then
    Error "mix: negative fraction"
  else if Float.abs (m.read +. m.write +. m.scan -. 1.0) > 1e-6 then
    Error "mix: fractions must sum to 1"
  else if m.scan > 0.0 && m.scan_len < 1 then Error "mix: scan length must be >= 1"
  else Ok m

let read_heavy = { read = 0.8; write = 0.2; scan = 0.0; scan_len = 8 }

let write_heavy = { read = 0.2; write = 0.8; scan = 0.0; scan_len = 8 }

let balanced = { read = 0.5; write = 0.5; scan = 0.0; scan_len = 8 }

let scans = { read = 0.6; write = 0.2; scan = 0.2; scan_len = 8 }

let named =
  [
    ("read-heavy", read_heavy);
    ("write-heavy", write_heavy);
    ("balanced", balanced);
    ("scans", scans);
  ]

let to_string m =
  match List.find_opt (fun (_, v) -> v = m) named with
  | Some (name, _) -> name
  | None ->
      Printf.sprintf "r=%g,w=%g,s=%g,len=%d" m.read m.write m.scan m.scan_len

let parse text =
  match List.assoc_opt text named with
  | Some m -> Ok m
  | None -> (
      (* "r=0.6,w=0.2,s=0.2,len=8" with any subset of keys; omitted
         fractions default to 0, len to 8 *)
      let parts = String.split_on_char ',' (String.trim text) in
      let acc = ref { read = 0.0; write = 0.0; scan = 0.0; scan_len = 8 } in
      let bad = ref None in
      List.iter
        (fun part ->
          match String.index_opt part '=' with
          | None -> bad := Some (Printf.sprintf "mix: expected key=value in %S" part)
          | Some i -> (
              let key = String.trim (String.sub part 0 i) in
              let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
              match (key, float_of_string_opt v, int_of_string_opt v) with
              | ("r" | "read"), Some f, _ -> acc := { !acc with read = f }
              | ("w" | "write"), Some f, _ -> acc := { !acc with write = f }
              | ("s" | "scan"), Some f, _ -> acc := { !acc with scan = f }
              | ("len" | "scan-len"), _, Some k -> acc := { !acc with scan_len = k }
              | _ -> bad := Some (Printf.sprintf "mix: bad component %S" part)))
        parts;
      match !bad with
      | Some msg -> Error msg
      | None -> (
          match validate !acc with
          | Ok m -> Ok m
          | Error msg ->
              Error
                (Printf.sprintf "%s (known names: %s)" msg
                   (String.concat ", " (List.map fst named)))))

(** Forked open-loop load experiment: [n] replica daemons plus a client
    fleet, one process each, over loopback sockets.

    Nodes run {!Repro_cluster.Node.run} on the no-op ["load"] /
    ["load-full"] workload (the peer mesh comes up, the protocol serves
    the client front door, programs issue nothing themselves), with the
    session layer on so coalescing and ack piggybacking are in play.
    Clients replay deterministic {!Client.plan} schedules.  The parent
    drains every child's marshalled report over a pipe, then reaps it —
    reports can exceed the pipe buffer, so drain-before-reap is what
    keeps the tree deadlock-free. *)

type config = {
  protocol : Repro_core.Registry.spec;  (** Must be non-blocking. *)
  n : int;  (** Replica count. *)
  clients : int;  (** Fleet size; offered rate is split evenly. *)
  rate : float;  (** Aggregate offered ops/sec across the fleet. *)
  duration_ms : int;
  mix : Mix.t;
  seed : int;  (** Seeds distribution, sessions and client plans. *)
  coalesce : int;  (** Session flush budget; 1 = coalescing off. *)
  drain_plan : bool;
      (** Submit whole plans regardless of duration (byte-identity mode,
          see {!Client.run}). *)
  gc_space_overhead : int option;
      (** When set, [Gc.space_overhead] for every forked node and client
          process (must be ≥ 1) — the GC-pressure knob of the hot-path
          experiments. *)
}

type result = {
  protocol : string;
  workload : string;
  n : int;
  clients : int;
  mix : string;
  rate : float;
  duration_ms : int;
  seed : int;
  coalesce : int;
  drain_plan : bool;
  attempted_ops : int;
  completed_ops : int;
  failed_ops : int;
  unsent : int;
  timeouts : int;
  bytes_out : int;  (** Client-side socket bytes (requests). *)
  bytes_in : int;  (** Client-side socket bytes (responses). *)
  span_us : int;  (** Longest per-client submission span. *)
  ops_per_sec : float;
      (** Completed ops over the longest client completion span (last
          reply, or grace expiry).  Unsaturated this tracks the offered
          rate; saturated it converges on cluster capacity. *)
  lat_us : Repro_util.Stats.t;  (** Fleet-merged latency sketch, µs. *)
  read_us : Repro_util.Stats.t;
  write_us : Repro_util.Stats.t;
  scan_us : Repro_util.Stats.t;
  client_ops_served : int;  (** Front-door ops summed over nodes. *)
  messages_sent : int;  (** Protocol lane, summed over nodes. *)
  control_bytes : int;
  payload_bytes : int;
  overhead_bytes : int;  (** Overhead lane (headers, acks, retransmits). *)
  frames_sent : int;  (** Session frames (coalescing shrinks this). *)
  segs_sent : int;
  acks_sent : int;  (** Standalone ack frames. *)
  acks_piggybacked : int;
  retransmits : int;
  node_wall_ms : int;
  node_cpu_s : float;  (** Fleet node CPU (user+sys), seconds. *)
  ops_per_node_cpu_s : float;
      (** Completed client ops per node CPU-second — the
          scheduler-noise-immune efficiency measure: wall-clock ops/sec
          on a contended box swings with CPU grants, but CPU time is
          attributed to the process that burned it, so a protocol that
          sends more replication traffic per op scores strictly lower. *)
}

val run : config -> (result, string) Stdlib.result
(** Fork, load, drain, reap, aggregate.  [Error] on invalid config or
    when any child fails (first failure reported). *)

val json_of_result : result -> Repro_util.Jsonout.t
(** Flat object with throughput, per-kind latency percentiles
    (p50/p95/p99 from the sketches) and both byte lanes. *)

val pp_result : Format.formatter -> result -> unit

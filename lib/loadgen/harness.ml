module Live = Repro_transport.Live
module Session = Repro_transport.Session
module Node = Repro_cluster.Node
module Workload_spec = Repro_cluster.Workload_spec
module Registry = Repro_core.Registry
module Memory = Repro_core.Memory
module Net = Repro_msgpass.Net
module Stats = Repro_util.Stats
module Jsonout = Repro_util.Jsonout

type config = {
  protocol : Registry.spec;
  n : int;
  clients : int;
  rate : float;
  duration_ms : int;
  mix : Mix.t;
  seed : int;
  coalesce : int;
  drain_plan : bool;
  gc_space_overhead : int option;
      (** [Gc.space_overhead] for every forked node and client process. *)
}

type result = {
  protocol : string;
  workload : string;
  n : int;
  clients : int;
  mix : string;
  rate : float;
  duration_ms : int;
  seed : int;
  coalesce : int;
  drain_plan : bool;
  attempted_ops : int;
  completed_ops : int;
  failed_ops : int;
  unsent : int;
  timeouts : int;
  bytes_out : int;
  bytes_in : int;
  span_us : int;
  ops_per_sec : float;
  lat_us : Stats.t;
  read_us : Stats.t;
  write_us : Stats.t;
  scan_us : Stats.t;
  client_ops_served : int;
  messages_sent : int;
  control_bytes : int;
  payload_bytes : int;
  overhead_bytes : int;
  frames_sent : int;
  segs_sent : int;
  acks_sent : int;
  acks_piggybacked : int;
  retransmits : int;
  node_wall_ms : int;
  node_cpu_s : float;
  ops_per_node_cpu_s : float;
}

type child_report =
  | Node_ok of Node.result * float  (** result, node-process CPU seconds *)
  | Client_ok of Client.report
  | Child_err of string

(* Fork [f]; the child marshals its report into a pipe and exits.  The
   parent must drain the pipe before reaping: reports can exceed the pipe
   buffer, and a blocked writer never exits. *)
let spawn f =
  let r, w = Unix.pipe () in
  (* the child inherits any buffered stdout/stderr; flush now so it can't
     re-flush the parent's pending output on exit *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let send v =
        let oc = Unix.out_channel_of_descr w in
        Marshal.to_channel oc (v : child_report) [];
        flush oc
      in
      let rc =
        match f () with
        | v ->
            send v;
            0
        | exception e ->
            (try send (Child_err (Printexc.to_string e)) with _ -> ());
            1
      in
      (* _exit: skip at_exit hooks and channel flushing inherited from the
         parent — the report pipe was flushed explicitly above *)
      Unix._exit rc
  | pid ->
      Unix.close w;
      (pid, r)

let collect (pid, r) =
  let ic = Unix.in_channel_of_descr r in
  let v =
    try (Marshal.from_channel ic : child_report)
    with _ -> Child_err "child exited without a report"
  in
  (try close_in ic with _ -> ());
  ignore (Unix.waitpid [] pid);
  v

let client_seed seed cid = seed + ((cid + 1) * 7919)

let run (cfg : config) =
  if cfg.n < 1 then Error "load: need at least one node"
  else if cfg.clients < 1 then Error "load: need at least one client"
  else if cfg.duration_ms < 1 then Error "load: duration must be positive"
  else if cfg.rate <= 0.0 then Error "load: rate must be positive"
  else if cfg.coalesce < 1 then Error "load: coalesce must be >= 1"
  else if (match cfg.gc_space_overhead with Some so -> so < 1 | None -> false)
  then Error "load: gc space overhead must be >= 1"
  else if cfg.protocol.Registry.blocking then
    Error
      (Printf.sprintf "load: protocol %s has blocking operations"
         cfg.protocol.Registry.name)
  else begin
    let workload_name =
      if cfg.protocol.Registry.requires_full_replication then "load-full"
      else "load"
    in
    match Workload_spec.make ~name:workload_name ~n:cfg.n ~seed:cfg.seed with
    | Error msg -> Error msg
    | Ok spec ->
        let listen_fds =
          Array.init cfg.n (fun _ ->
              Live.bind (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)))
        in
        let peers = Array.map Live.listen_addr listen_fds in
        let grace_ms = 5_000 in
        let run_timeout_ms = cfg.duration_ms + grace_ms + 40_000 in
        let apply_gc () =
          Option.iter
            (fun so -> Gc.set { (Gc.get ()) with Gc.space_overhead = so })
            cfg.gc_space_overhead
        in
        let nodes =
          Array.init cfg.n (fun self ->
              spawn (fun () ->
                  Array.iteri
                    (fun j fd -> if j <> self then Unix.close fd)
                    listen_fds;
                  let r =
                    Node.run ~self ~listen_fd:listen_fds.(self) ~peers
                      ~protocol:cfg.protocol ~workload:spec ~seed:cfg.seed
                      ~session:true ~coalesce:cfg.coalesce ~run_timeout_ms
                      ~quiet_ms:1_000 ?gc_space_overhead:cfg.gc_space_overhead
                      ()
                  in
                  let tms = Unix.times () in
                  Node_ok (r, tms.Unix.tms_utime +. tms.Unix.tms_stime)))
        in
        let clients =
          Array.init cfg.clients (fun cid ->
              spawn (fun () ->
                  apply_gc ();
                  Array.iter Unix.close listen_fds;
                  let events =
                    Client.plan ~mix:cfg.mix ~dist:spec.Workload_spec.dist
                      ~rate:(cfg.rate /. float_of_int cfg.clients)
                      ~duration_ms:cfg.duration_ms
                      ~seed:(client_seed cfg.seed cid)
                  in
                  Client_ok
                    (Client.run ~client_id:cid ~peers ~events
                       ~drain_plan:cfg.drain_plan ~duration_ms:cfg.duration_ms
                       ~grace_ms ())))
        in
        Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          listen_fds;
        (* clients finish first; draining their pipes first also keeps the
           parent from sitting on a full pipe while a child blocks in write *)
        let client_reports = Array.map collect clients in
        let node_reports = Array.map collect nodes in
        let errors = ref [] in
        let creps = ref [] and nreps = ref [] in
        Array.iteri
          (fun i -> function
            | Client_ok r -> creps := r :: !creps
            | Child_err msg ->
                errors := Printf.sprintf "client %d: %s" i msg :: !errors
            | Node_ok _ -> errors := Printf.sprintf "client %d: bad report" i :: !errors)
          client_reports;
        Array.iteri
          (fun i -> function
            | Node_ok (r, cpu) -> nreps := (r, cpu) :: !nreps
            | Child_err msg ->
                errors := Printf.sprintf "node %d: %s" i msg :: !errors
            | Client_ok _ -> errors := Printf.sprintf "node %d: bad report" i :: !errors)
          node_reports;
        match !errors with
        | e :: _ -> Error e
        | [] ->
            let creps = List.rev !creps and nreps = List.rev !nreps in
            let sum f l = List.fold_left (fun a x -> a + f x) 0 l in
            let maxi f l = List.fold_left (fun a x -> Stdlib.max a (f x)) 0 l in
            let merge_stats f l =
              List.fold_left
                (fun acc r -> Stats.merge acc (f r))
                (Stats.create_sketch ())
                l
            in
            let completed = sum (fun (r : Client.report) -> r.completed_ops) creps in
            let span_us = maxi (fun (r : Client.report) -> r.send_span_us) creps in
            (* completed work over the time it actually took: under
               saturation replies trail the submission window and the
               completion span — not the configured duration — is the
               honest denominator *)
            let denom_us =
              Stdlib.max 1
                (maxi (fun (r : Client.report) -> r.completion_span_us) creps)
            in
            let nsum f =
              List.fold_left (fun a ((r : Node.result), _) -> a + f r) 0 nreps
            in
            let node_cpu_s =
              List.fold_left (fun a (_, c) -> a +. c) 0.0 nreps
            in
            let sess f =
              nsum (fun r ->
                  match r.Node.session_stats with Some s -> f s | None -> 0)
            in
            Ok
              {
                protocol = cfg.protocol.Registry.name;
                workload = workload_name;
                n = cfg.n;
                clients = cfg.clients;
                mix = Mix.to_string cfg.mix;
                rate = cfg.rate;
                duration_ms = cfg.duration_ms;
                seed = cfg.seed;
                coalesce = cfg.coalesce;
                drain_plan = cfg.drain_plan;
                attempted_ops = sum (fun (r : Client.report) -> r.attempted_ops) creps;
                completed_ops = completed;
                failed_ops = sum (fun (r : Client.report) -> r.failed_ops) creps;
                unsent = sum (fun (r : Client.report) -> r.unsent) creps;
                timeouts = sum (fun (r : Client.report) -> r.timeouts) creps;
                bytes_out = sum (fun (r : Client.report) -> r.bytes_out) creps;
                bytes_in = sum (fun (r : Client.report) -> r.bytes_in) creps;
                span_us;
                ops_per_sec =
                  float_of_int completed *. 1e6 /. float_of_int denom_us;
                lat_us = merge_stats (fun (r : Client.report) -> r.lat_us) creps;
                read_us = merge_stats (fun (r : Client.report) -> r.read_us) creps;
                write_us = merge_stats (fun (r : Client.report) -> r.write_us) creps;
                scan_us = merge_stats (fun (r : Client.report) -> r.scan_us) creps;
                client_ops_served = nsum (fun r -> r.Node.client_ops);
                messages_sent = nsum (fun r -> r.Node.metrics.Memory.messages_sent);
                control_bytes = nsum (fun r -> r.Node.metrics.Memory.control_bytes);
                payload_bytes = nsum (fun r -> r.Node.metrics.Memory.payload_bytes);
                overhead_bytes = nsum (fun r -> r.Node.wire.Net.overhead_bytes);
                frames_sent = sess (fun s -> s.Session.frames_sent);
                segs_sent = sess (fun s -> s.Session.segs_sent);
                acks_sent = sess (fun s -> s.Session.acks_sent);
                acks_piggybacked = sess (fun s -> s.Session.acks_piggybacked);
                retransmits = sess (fun s -> s.Session.retransmits);
                node_wall_ms =
                  List.fold_left
                    (fun a ((r : Node.result), _) -> Stdlib.max a r.Node.wall_ms)
                    0 nreps;
                node_cpu_s;
                ops_per_node_cpu_s =
                  (if node_cpu_s > 0.0 then float_of_int completed /. node_cpu_s
                   else 0.0);
              }
  end

let pct st p = if Stats.count st = 0 then 0.0 else Stats.percentile st p

let lat_json st =
  if Stats.count st = 0 then Jsonout.Null
  else
    Jsonout.Obj
      [
        ("count", Jsonout.Int (Stats.count st));
        ("mean_us", Jsonout.Float (Stats.mean st));
        ("p50_us", Jsonout.Float (pct st 50.0));
        ("p95_us", Jsonout.Float (pct st 95.0));
        ("p99_us", Jsonout.Float (pct st 99.0));
        ("max_us", Jsonout.Float (Stats.max st));
      ]

let json_of_result r =
  Jsonout.Obj
    [
      ("protocol", Jsonout.String r.protocol);
      ("workload", Jsonout.String r.workload);
      ("n", Jsonout.Int r.n);
      ("clients", Jsonout.Int r.clients);
      ("mix", Jsonout.String r.mix);
      ("rate_ops_per_sec", Jsonout.Float r.rate);
      ("duration_ms", Jsonout.Int r.duration_ms);
      ("seed", Jsonout.Int r.seed);
      ("coalesce", Jsonout.Int r.coalesce);
      ("drain_plan", Jsonout.Bool r.drain_plan);
      ("attempted_ops", Jsonout.Int r.attempted_ops);
      ("completed_ops", Jsonout.Int r.completed_ops);
      ("failed_ops", Jsonout.Int r.failed_ops);
      ("unsent", Jsonout.Int r.unsent);
      ("timeouts", Jsonout.Int r.timeouts);
      ("ops_per_sec", Jsonout.Float r.ops_per_sec);
      ("latency", lat_json r.lat_us);
      ("latency_read", lat_json r.read_us);
      ("latency_write", lat_json r.write_us);
      ("latency_scan", lat_json r.scan_us);
      ("client_bytes_out", Jsonout.Int r.bytes_out);
      ("client_bytes_in", Jsonout.Int r.bytes_in);
      ("client_ops_served", Jsonout.Int r.client_ops_served);
      ("messages_sent", Jsonout.Int r.messages_sent);
      ("control_bytes", Jsonout.Int r.control_bytes);
      ("payload_bytes", Jsonout.Int r.payload_bytes);
      ("overhead_bytes", Jsonout.Int r.overhead_bytes);
      ("frames_sent", Jsonout.Int r.frames_sent);
      ("segs_sent", Jsonout.Int r.segs_sent);
      ("acks_sent", Jsonout.Int r.acks_sent);
      ("acks_piggybacked", Jsonout.Int r.acks_piggybacked);
      ("retransmits", Jsonout.Int r.retransmits);
      ("node_wall_ms", Jsonout.Int r.node_wall_ms);
      ("node_cpu_s", Jsonout.Float r.node_cpu_s);
      ("ops_per_node_cpu_s", Jsonout.Float r.ops_per_node_cpu_s);
    ]

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s on %s, n=%d, %d client(s), mix=%s, offered %.0f ops/s for %d ms%s@,\
     ops: attempted=%d completed=%d failed=%d unsent=%d timeouts=%d@,\
     throughput: %.0f ops/s (served by nodes: %d; %.0f ops per node \
     cpu-second over %.2fs)@,\
     latency (us): %a@,\
     protocol lane: msgs=%d control=%dB payload=%dB@,\
     overhead lane: %dB in %d frames (%d segs, acks %d standalone / %d \
     piggybacked, %d retransmits)@]"
    r.protocol r.workload r.n r.clients r.mix r.rate r.duration_ms
    (if r.coalesce > 1 then Printf.sprintf ", coalesce=%d" r.coalesce else "")
    r.attempted_ops r.completed_ops r.failed_ops r.unsent r.timeouts
    r.ops_per_sec r.client_ops_served r.ops_per_node_cpu_s r.node_cpu_s
    Stats.pp_summary r.lat_us r.messages_sent
    r.control_bytes r.payload_bytes r.overhead_bytes r.frames_sent r.segs_sent
    r.acks_sent r.acks_piggybacked r.retransmits

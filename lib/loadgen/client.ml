module Rpc = Repro_transport.Rpc
module Wire = Repro_transport.Wire
module Vecio = Repro_transport.Vecio
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats
module Distribution = Repro_sharegraph.Distribution

(* Mirror of the live backend's baseline switch: the legacy arm measures
   the whole pre-zero-copy stack, client included. *)
let legacy_env () =
  match Sys.getenv_opt "REPRO_LIVE_LEGACY" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

type event = { at_us : int; target : int; request : Rpc.request }

(* Client ids live above the node-id range; 0x8000 leaves room for 2^15
   nodes below and 2^15 clients within Wire's u16 src field. *)
let client_src id =
  if id < 0 || id > 0x7FFF then invalid_arg "Client: bad client id";
  0x8000 lor id

(* --- deterministic open-loop schedule -------------------------------------- *)

let plan ~mix ~dist ~rate ~duration_ms ~seed =
  if rate <= 0.0 then invalid_arg "Client.plan: rate must be positive";
  let rng = Rng.create seed in
  let n_procs = Distribution.n_procs dist in
  let n_vars = Distribution.n_vars dist in
  let vars_of =
    Array.init n_procs (fun p -> Array.of_list (Distribution.vars_of dist p))
  in
  let holders =
    Array.init n_vars (fun x -> Array.of_list (Distribution.holders dist x))
  in
  let mean_us = 1e6 /. rate in
  let duration_us = duration_ms * 1000 in
  let value = ref 0 in
  let events = ref [] in
  let clock = ref 0.0 in
  let running = ref true in
  while !running do
    clock := !clock +. Rng.exponential rng mean_us;
    let at_us = int_of_float !clock in
    if at_us >= duration_us then running := false
    else begin
      let u = Rng.float rng 1.0 in
      let ev =
        if u < mix.Mix.read then
          let var = Rng.int rng n_vars in
          {
            at_us;
            target = Rng.pick rng holders.(var);
            request = Rpc.Op (Rpc.Read { var });
          }
        else if u < mix.Mix.read +. mix.Mix.write then begin
          let var = Rng.int rng n_vars in
          incr value;
          {
            at_us;
            target = Rng.pick rng holders.(var);
            request = Rpc.Op (Rpc.Write { var; value = !value });
          }
        end
        else begin
          (* scan: consecutive variables of one replica, wrapped *)
          let target = Rng.int rng n_procs in
          let vars = vars_of.(target) in
          if Array.length vars = 0 then
            let var = Rng.int rng n_vars in
            {
              at_us;
              target = Rng.pick rng holders.(var);
              request = Rpc.Op (Rpc.Read { var });
            }
          else begin
            let len = Array.length vars in
            let k = Stdlib.min mix.Mix.scan_len len in
            let off = Rng.int rng len in
            let ops =
              Array.init k (fun i -> Rpc.Read { var = vars.((off + i) mod len) })
            in
            { at_us; target; request = Rpc.Batch ops }
          end
        end
      in
      events := ev :: !events
    end
  done;
  Array.of_list (List.rev !events)

(* --- wall-clock runner ------------------------------------------------------ *)

type report = {
  attempted_ops : int;
  completed_ops : int;
  failed_ops : int;
  unsent : int;
  timeouts : int;
  bytes_out : int;
  bytes_in : int;
  send_span_us : int;
  completion_span_us : int;
  lat_us : Stats.t;
  read_us : Stats.t;
  write_us : Stats.t;
  scan_us : Stats.t;
}

type conn = { fd : Unix.file_descr; dec : Wire.decoder; mutable alive : bool }

let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EINTR | Unix.EAGAIN -> true
  | _ -> false

(* Nodes come up in any order relative to clients: retry refused dials on
   a bounded backoff until the connect deadline. *)
let dial_retry addr ~deadline =
  let rec attempt ~delay =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
        Some fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if (not (transient e)) || Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf (float_of_int delay /. 1000.);
          attempt ~delay:(Stdlib.min 500 (delay * 2))
        end
  in
  attempt ~delay:10

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let kind_of = function
  | Rpc.Op (Rpc.Read _) -> `R
  | Rpc.Op (Rpc.Write _) -> `W
  | Rpc.Batch _ -> `S

let run ~client_id ~peers ~events ~drain_plan ~duration_ms ~grace_ms
    ?(connect_timeout_ms = 10_000) () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let start = Unix.gettimeofday () in
  let now_us () = int_of_float ((Unix.gettimeofday () -. start) *. 1e6) in
  let deadline = start +. (float_of_int connect_timeout_ms /. 1000.) in
  let conns =
    Array.map
      (fun addr ->
        match dial_retry addr ~deadline with
        | Some fd -> Some { fd; dec = Wire.decoder (); alive = true }
        | None -> None)
      peers
  in
  let src = client_src client_id in
  let rbuf = Bytes.create 65536 in
  let outstanding : (int, float * [ `R | `W | `S ]) Hashtbl.t =
    Hashtbl.create 1024
  in
  let attempted = ref 0 and completed = ref 0 and failed = ref 0 in
  let unsent = ref 0 and bytes_out = ref 0 and bytes_in = ref 0 in
  let lat_us = Stats.create_sketch () in
  let read_us = Stats.create_sketch () in
  let write_us = Stats.create_sketch () in
  let scan_us = Stats.create_sketch () in
  let next_id = ref 0 in
  let on_reply id outcomes =
    match Hashtbl.find_opt outstanding id with
    | None -> ()
    | Some (t0, kind) ->
        Hashtbl.remove outstanding id;
        let lat = (Unix.gettimeofday () -. t0) *. 1e6 in
        Stats.add lat_us lat;
        Stats.add
          (match kind with `R -> read_us | `W -> write_us | `S -> scan_us)
          lat;
        completed := !completed + Array.length outcomes;
        Array.iter
          (function Rpc.Failed _ -> incr failed | Rpc.Got _ | Rpc.Stored -> ())
          outcomes
  in
  let kill c =
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let legacy = legacy_env () in
  let service c =
    match Unix.read c.fd rbuf 0 (Bytes.length rbuf) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> kill c
    | 0 -> kill c
    | nread -> (
        bytes_in := !bytes_in + nread;
        Wire.feed c.dec rbuf nread;
        let step () =
          if legacy then
            match Wire.next c.dec with
            | Ok (Some fr) ->
                (match fr.Wire.kind with
                | Wire.Cresp -> (
                    match Rpc.decode_response fr.Wire.body with
                    | Ok (id, outcomes) -> on_reply id outcomes
                    | Error _ -> kill c)
                | _ -> () (* a well-behaved node sends nothing else *));
                true
            | Ok None -> false
            | Error _ ->
                kill c;
                false
          else
            (* responses are parsed straight out of the decoder buffer *)
            match Wire.next_view c.dec with
            | Ok (Some v) ->
                (match v.Wire.v_kind with
                | Wire.Cresp -> (
                    match
                      Rpc.decode_response_at v.Wire.v_buf ~pos:v.Wire.v_off
                        ~len:v.Wire.v_len
                    with
                    | Ok (id, outcomes) -> on_reply id outcomes
                    | Error _ -> kill c)
                | _ -> ());
                true
            | Ok None -> false
            | Error _ ->
                kill c;
                false
        in
        let rec pump () = if step () && c.alive then pump () in
        pump ())
  in
  let live_conns () =
    Array.to_list conns
    |> List.filter_map (fun c ->
           match c with Some c when c.alive -> Some c | _ -> None)
  in
  let poll timeout =
    match live_conns () with
    | [] -> Unix.sleepf timeout
    | live -> (
        let fds = List.map (fun c -> c.fd) live in
        match Unix.select fds [] [] timeout with
        | ready, _, _ ->
            List.iter (fun c -> if List.memq c.fd ready then service c) live
        | exception Unix.Unix_error (EINTR, _, _) -> ())
  in
  let send_legacy (ev : event) =
    match conns.(ev.target) with
    | Some c when c.alive -> (
        let id = !next_id in
        incr next_id;
        let body = Rpc.encode_request ~id ev.request in
        let payload = Rpc.request_payload_bytes ev.request in
        let buf =
          Wire.encode
            {
              Wire.kind = Wire.Creq;
              src;
              dst = ev.target;
              epoch = 0;
              control_bytes = String.length body - payload;
              payload_bytes = payload;
              body;
            }
        in
        match write_all c.fd buf with
        | () ->
            bytes_out := !bytes_out + Bytes.length buf;
            attempted := !attempted + Array.length (Rpc.ops ev.request);
            Hashtbl.replace outstanding id
              (Unix.gettimeofday (), kind_of ev.request)
        | exception Unix.Unix_error _ ->
            kill c;
            incr unsent)
    | _ -> incr unsent
  in
  (* Fast path: requests due in the same scheduling burst are emitted into
     pooled frames, queued per target, and flushed with one writev per
     connection — one syscall covers the burst instead of one per request. *)
  let pool = Wire.Pool.create () in
  let pending = Array.map (fun _ -> ref []) conns in
  let pending_n = Array.map (fun _ -> ref 0) conns in
  let rec enqueue (ev : event) =
    match conns.(ev.target) with
    | Some c when c.alive ->
        let id = !next_id in
        incr next_id;
        let body_len = Rpc.request_body_len ev.request in
        let total = Wire.body_offset + body_len in
        let buf = Wire.Pool.acquire pool total in
        ignore (Rpc.emit_request buf Wire.body_offset ~id ev.request : int);
        let payload = Rpc.request_payload_bytes ev.request in
        Wire.set_header buf ~kind:Wire.Creq ~src ~dst:ev.target
          ~control_bytes:(body_len - payload) ~payload_bytes:payload ~body_len;
        pending.(ev.target) := (buf, 0, total) :: !(pending.(ev.target));
        incr pending_n.(ev.target);
        attempted := !attempted + Array.length (Rpc.ops ev.request);
        Hashtbl.replace outstanding id (Unix.gettimeofday (), kind_of ev.request);
        (* flush once the queue fills a writev: keeps the burst inside the
           pool's per-class cap so steady state recycles instead of
           allocating, no matter how far the schedule has fallen behind *)
        if !(pending_n.(ev.target)) >= Vecio.max_iov then flush_target ev.target
    | _ -> incr unsent
  and flush_target ti =
    match !(pending.(ti)) with
    | [] -> ()
    | rev -> (
        pending.(ti) := [];
        pending_n.(ti) := 0;
        let chunks = Array.of_list (List.rev rev) in
        let count = Array.length chunks in
        (match conns.(ti) with
        | Some c when c.alive ->
            (* blocking fd: resume partial writes until the queue drains *)
            let rec advance start skip n =
              if n = 0 then (start, skip)
              else
                let _, _, l = chunks.(start) in
                let left = l - skip in
                if n >= left then advance (start + 1) 0 (n - left)
                else (start, skip + n)
            in
            let rec go start skip =
              if start < count then
                match
                  Vecio.writev c.fd chunks ~start ~skip ~count:(count - start)
                with
                | n ->
                    bytes_out := !bytes_out + n;
                    let start, skip = advance start skip n in
                    go start skip
                | exception Unix.Unix_error (EINTR, _, _) -> go start skip
                | exception Unix.Unix_error _ -> kill c
            in
            go 0 0
        | _ -> unsent := !unsent + count);
        Array.iter (fun (b, _, _) -> Wire.Pool.release pool b) chunks)
  in
  let flush_pending () =
    for ti = 0 to Array.length pending - 1 do
      flush_target ti
    done
  in
  let send = if legacy then send_legacy else enqueue in
  (* Flow control: past this many unanswered ops, stop submitting and
     drain replies.  Unsaturated it never binds (replies come back long
     before the window fills); past saturation it bounds kernel socket
     buffer occupancy in both directions, which is what keeps a node
     whose reply write blocks from deadlocking against a client that
     would otherwise never read between submissions. *)
  let max_outstanding = 1024 in
  let n_events = Array.length events in
  let duration_us = duration_ms * 1000 in
  let i = ref 0 in
  let cut = ref false in
  while !i < n_events && not !cut do
    let now = now_us () in
    if (not drain_plan) && now >= duration_us then cut := true
    else if Hashtbl.length outstanding >= max_outstanding then begin
      flush_pending ();
      poll 0.005
    end
    else if events.(!i).at_us <= now then begin
      (* drain the whole due burst before flushing: these frames coalesce
         into the same writev calls *)
      while
        !i < n_events
        && events.(!i).at_us <= now
        && Hashtbl.length outstanding < max_outstanding
      do
        send events.(!i);
        incr i
      done;
      flush_pending ()
    end
    else
      poll (float_of_int (Stdlib.min (events.(!i).at_us - now) 20_000) /. 1e6)
  done;
  flush_pending ();
  let send_span_us = now_us () in
  unsent := !unsent + (n_events - !i);
  (* grace: collect stragglers for in-flight requests, then give up *)
  let grace_deadline = now_us () + (grace_ms * 1000) in
  while Hashtbl.length outstanding > 0 && now_us () < grace_deadline do
    poll 0.01
  done;
  let completion_span_us = now_us () in
  let timeouts =
    Hashtbl.fold
      (fun _ (_, _) acc -> acc + 1)
      outstanding 0
  in
  Array.iter (function Some c when c.alive -> kill c | _ -> ()) conns;
  {
    attempted_ops = !attempted;
    completed_ops = !completed;
    failed_ops = !failed;
    unsent = !unsent;
    timeouts;
    bytes_out = !bytes_out;
    bytes_in = !bytes_in;
    send_span_us;
    completion_span_us;
    lat_us;
    read_us;
    write_us;
    scan_us;
  }

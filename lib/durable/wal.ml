type fsync_policy = Every of int | Interval_ms of int | Never

type stats = {
  appends : int;
  appended_bytes : int;
  syncs : int;
  rotations : int;
}

type recovered = {
  r_gen : int;
  r_base : int;
  r_next : int;
  r_checkpoint : string option;
  r_entries : (int * string) list;
  r_dropped_bytes : int;
  r_log : string;
  r_notes : string list;
}

type t = {
  dir : string;
  policy : fsync_policy;
  mutable fd : Unix.file_descr;
  mutable gen : int;
  mutable next_seq : int;
  mutable off : int;
  mutable synced_off : int;
  mutable unsynced : int;
  mutable last_sync : float;
  mutable closed : bool;
  mutable appends : int;
  mutable appended_bytes : int;
  mutable syncs : int;
  mutable rotations : int;
}

let magic = "RWAL"

let version = 1

let header_bytes = 26 (* magic(4) version(u16) gen(u64) base(u64) crc(u32) *)

let record_overhead = 20 (* marker(u32) seq(u64) len(u32) crc(u32) *)

let marker = 0x52454331 (* "REC1" *)

let ck_magic = "RCKP"

let ck_name = "ckpt.blob"

let log_name gen = Printf.sprintf "wal-%06d.log" gen

let log_gen_of name =
  if
    String.length name = 14
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 6)
  else None

let write_all fd b pos len =
  let off = ref pos in
  let stop = pos + len in
  while !off < stop do
    off := !off + Unix.write fd b !off (stop - !off)
  done

let make_header ~gen ~base =
  let h = Bytes.create header_bytes in
  Bytes.blit_string magic 0 h 0 4;
  Bytes.set_uint16_le h 4 version;
  Bytes.set_int64_le h 6 (Int64.of_int gen);
  Bytes.set_int64_le h 14 (Int64.of_int base);
  Bytes.set_int32_le h 22 (Int32.of_int (Crc32.update Crc32.init h ~pos:0 ~len:22));
  h

(* Ok (gen, base) when the 26 header bytes at the front of [buf] check out. *)
let parse_header buf size =
  if size < header_bytes then Error "truncated log header"
  else if Bytes.sub_string buf 0 4 <> magic then
    Error (Printf.sprintf "bad log magic %S" (Bytes.sub_string buf 0 4))
  else if Bytes.get_uint16_le buf 4 <> version then
    Error
      (Printf.sprintf "log format version %d (want %d)"
         (Bytes.get_uint16_le buf 4) version)
  else if
    Int32.to_int (Bytes.get_int32_le buf 22) land 0xFFFFFFFF
    <> Crc32.update Crc32.init buf ~pos:0 ~len:22
  then Error "log header CRC mismatch"
  else
    Ok
      ( Int64.to_int (Bytes.get_int64_le buf 6),
        Int64.to_int (Bytes.get_int64_le buf 14) )

(* The tail scan: records from [header_bytes] on, stopping cleanly at the
   first frame that is short, mis-marked, over-long, CRC-failing or out of
   sequence — everything before the stop is trusted, everything after is
   the damaged tail. *)
let scan_records buf size ~base =
  let entries = ref [] in
  let pos = ref header_bytes in
  let seq_expect = ref base in
  let stop = ref false in
  while not !stop do
    if size - !pos < record_overhead then stop := true
    else begin
      let mk = Int32.to_int (Bytes.get_int32_le buf !pos) land 0xFFFFFFFF in
      let seq = Int64.to_int (Bytes.get_int64_le buf (!pos + 4)) in
      let len = Int32.to_int (Bytes.get_int32_le buf (!pos + 12)) in
      let crc =
        Int32.to_int (Bytes.get_int32_le buf (!pos + 16)) land 0xFFFFFFFF
      in
      if mk <> marker || len < 0 || len > size - !pos - record_overhead then
        stop := true
      else begin
        let crc' =
          Crc32.update
            (Crc32.update Crc32.init buf ~pos:(!pos + 4) ~len:12)
            buf ~pos:(!pos + record_overhead) ~len
        in
        if crc' <> crc || seq <> !seq_expect then stop := true
        else begin
          entries :=
            (seq, Bytes.sub_string buf (!pos + record_overhead) len)
            :: !entries;
          pos := !pos + record_overhead + len;
          incr seq_expect
        end
      end
    end
  done;
  (List.rev !entries, !pos)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let buf = Bytes.create size in
      really_input ic buf 0 size;
      (buf, size))

let load ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let ck_file = Filename.concat dir ck_name in
    let ck =
      if not (Sys.file_exists ck_file) then Ok None
      else
        match Fsio.Blob.read ~path:ck_file ~magic:ck_magic ~version with
        | Ok (meta, payload) -> Ok (Some (meta, payload))
        | Error e -> Error (Printf.sprintf "%s: %s" ck_name e)
    in
    match ck with
    | Error _ as e -> e
    | Ok ck -> (
        let gen_ck, base_ck =
          match ck with Some ((g, b), _) -> (g, b) | None -> (0, 0)
        in
        let logs =
          Sys.readdir dir |> Array.to_list
          |> List.filter_map log_gen_of
          |> List.sort compare
        in
        match List.filter (fun g -> g > gen_ck) logs with
        | g :: _ ->
            Error
              (Printf.sprintf
                 "%s is from generation %d but the checkpoint opens \
                  generation %d"
                 (log_name g) g gen_ck)
        | [] ->
            List.iter
              (fun g -> if g < gen_ck - 1 then note "stale log %s" (log_name g))
              logs;
            let finish ~entries ~dropped ~log =
              let r_next =
                match List.rev entries with
                | (seq, _) :: _ -> seq + 1
                | [] -> base_ck
              in
              Ok
                {
                  r_gen = gen_ck;
                  r_base = base_ck;
                  r_next;
                  r_checkpoint = Option.map snd ck;
                  r_entries = entries;
                  r_dropped_bytes = dropped;
                  r_log = log;
                  r_notes = List.rev !notes;
                }
            in
            if List.mem gen_ck logs then begin
              let path = Filename.concat dir (log_name gen_ck) in
              let buf, size = read_file path in
              match parse_header buf size with
              | Error e ->
                  (* a log whose very header never reached disk carries no
                     records: equivalent to the crash-before-log-created
                     state, recover from the checkpoint alone *)
                  note "%s: %s; recovering from checkpoint alone"
                    (log_name gen_ck) e;
                  finish ~entries:[] ~dropped:size ~log:(log_name gen_ck)
              | Ok (g, b) ->
                  if g <> gen_ck || b <> base_ck then
                    Error
                      (Printf.sprintf
                         "%s header says generation %d base %d, checkpoint \
                          says %d/%d"
                         (log_name gen_ck) g b gen_ck base_ck)
                  else begin
                    let entries, valid_end = scan_records buf size ~base:base_ck in
                    if valid_end < size then
                      note "damaged tail: %d byte(s) dropped" (size - valid_end);
                    finish ~entries ~dropped:(size - valid_end)
                      ~log:(log_name gen_ck)
                  end
            end
            else begin
              if ck <> None then begin
                if List.mem (gen_ck - 1) logs then
                  note
                    "crash between checkpoint and log rotation: %s not yet \
                     created, %s superseded"
                    (log_name gen_ck)
                    (log_name (gen_ck - 1))
                else note "no log file for generation %d" gen_ck
              end;
              finish ~entries:[] ~dropped:0 ~log:""
            end)
  end

let digest r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "gen=%d base=%d next=%d ck=%s\n" r.r_gen r.r_base r.r_next
       (match r.r_checkpoint with
       | None -> "-"
       | Some p -> Digest.to_hex (Digest.string p)));
  List.iter
    (fun (seq, p) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s\n" seq (Digest.to_hex (Digest.string p))))
    r.r_entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let create_log dir ~gen ~base =
  let path = Filename.concat dir (log_name gen) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  write_all fd (make_header ~gen ~base) 0 header_bytes;
  Fsio.fsync_fd fd;
  Fsio.fsync_dir dir;
  fd

let install_powercut t =
  (* power-loss semantics for armed crash points: everything past the
     synced floor vanishes, as if the device lost its write cache *)
  Fsio.Crashpoint.set_powercut_hook (fun () ->
      if not t.closed then
        try Unix.ftruncate t.fd t.synced_off with Unix.Unix_error _ -> ())

let open_ ~dir ?(policy = Every 1) ?(fresh = false) () =
  (match policy with
  | Every k when k < 1 -> invalid_arg "Wal.open_: Every k needs k >= 1"
  | Interval_ms m when m < 0 -> invalid_arg "Wal.open_: negative interval"
  | _ -> ());
  if not (Sys.file_exists dir) then begin
    Unix.mkdir dir 0o700;
    Fsio.fsync_dir (Filename.dirname dir)
  end;
  if fresh then
    Array.iter
      (fun f ->
        if log_gen_of f <> None || f = ck_name || Filename.check_suffix f ".tmp"
        then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  match load ~dir with
  | Error e -> failwith (Printf.sprintf "Wal.open_ %s: %s" dir e)
  | Ok r ->
      (* stale generations are garbage once a newer checkpoint covers them *)
      Sys.readdir dir |> Array.to_list
      |> List.filter_map log_gen_of
      |> List.iter (fun g ->
             if g <> r.r_gen then
               try Sys.remove (Filename.concat dir (log_name g))
               with Sys_error _ -> ());
      let path = Filename.concat dir (log_name r.r_gen) in
      let fd, off =
        if r.r_log = "" || not (Sys.file_exists path) then
          (create_log dir ~gen:r.r_gen ~base:r.r_base, header_bytes)
        else begin
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
          let size = (Unix.fstat fd).Unix.st_size in
          let valid = size - r.r_dropped_bytes in
          if valid < header_bytes then begin
            (* header never reached disk: rebuild the generation file *)
            Unix.close fd;
            Sys.remove path;
            (create_log dir ~gen:r.r_gen ~base:r.r_base, header_bytes)
          end
          else begin
            if r.r_dropped_bytes > 0 then Unix.ftruncate fd valid;
            ignore (Unix.lseek fd valid Unix.SEEK_SET);
            (fd, valid)
          end
        end
      in
      let t =
        {
          dir;
          policy;
          fd;
          gen = r.r_gen;
          next_seq = r.r_next;
          off;
          synced_off = off;
          unsynced = 0;
          last_sync = Unix.gettimeofday ();
          closed = false;
          appends = 0;
          appended_bytes = 0;
          syncs = 0;
          rotations = 0;
        }
      in
      install_powercut t;
      (t, r)

let check_open t who = if t.closed then invalid_arg (who ^ ": WAL closed")

let sync t =
  check_open t "Wal.sync";
  if t.off > t.synced_off then begin
    Fsio.Crashpoint.hit "sync.pre";
    Fsio.fsync_fd t.fd;
    Fsio.Crashpoint.hit "sync.post";
    t.synced_off <- t.off;
    t.unsynced <- 0;
    t.last_sync <- Unix.gettimeofday ();
    t.syncs <- t.syncs + 1
  end

let append t payload =
  check_open t "Wal.append";
  let len = String.length payload in
  let frame = Bytes.create (record_overhead + len) in
  Bytes.set_int32_le frame 0 (Int32.of_int marker);
  Bytes.set_int64_le frame 4 (Int64.of_int t.next_seq);
  Bytes.set_int32_le frame 12 (Int32.of_int len);
  Bytes.blit_string payload 0 frame record_overhead len;
  let crc =
    Crc32.update
      (Crc32.update Crc32.init frame ~pos:4 ~len:12)
      frame ~pos:record_overhead ~len
  in
  Bytes.set_int32_le frame 16 (Int32.of_int crc);
  Fsio.Crashpoint.hit "append.pre";
  (match Fsio.Crashpoint.fire "append.mid" with
  | Some kill ->
      (* torn write: half the frame reaches the file, then the process
         dies — recovery must drop exactly this suffix *)
      write_all t.fd frame 0 (Bytes.length frame / 2);
      kill ()
  | None -> ());
  write_all t.fd frame 0 (Bytes.length frame);
  Fsio.Crashpoint.hit "append.post";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.off <- t.off + Bytes.length frame;
  t.unsynced <- t.unsynced + 1;
  t.appends <- t.appends + 1;
  t.appended_bytes <- t.appended_bytes + Bytes.length frame;
  (match t.policy with
  | Every k -> if t.unsynced >= k then sync t
  | Interval_ms m ->
      if (Unix.gettimeofday () -. t.last_sync) *. 1000.0 >= float m then sync t
  | Never -> ());
  seq

let checkpoint t payload =
  check_open t "Wal.checkpoint";
  (* 1. the records this checkpoint supersedes must be durable first: a
     checkpoint must never claim to cover state the log could not replay *)
  sync t;
  let gen' = t.gen + 1 and base' = t.next_seq in
  (* 2. atomically replace the checkpoint blob (hits ck.synced/ck.renamed) *)
  Fsio.Blob.write
    ~path:(Filename.concat t.dir ck_name)
    ~magic:ck_magic ~version ~meta:(gen', base') payload;
  (* 3. bring the next generation's log into existence, durably *)
  let fd' = create_log t.dir ~gen:gen' ~base:base' in
  (try Fsio.Crashpoint.hit "rotate.log.created"
   with e ->
     Unix.close fd';
     raise e);
  (* 4. switch over, then garbage-collect the superseded log *)
  let old_fd = t.fd and old_gen = t.gen in
  t.fd <- fd';
  t.gen <- gen';
  t.off <- header_bytes;
  t.synced_off <- header_bytes;
  t.unsynced <- 0;
  t.last_sync <- Unix.gettimeofday ();
  t.rotations <- t.rotations + 1;
  (try Unix.close old_fd with Unix.Unix_error _ -> ());
  (try Sys.remove (Filename.concat t.dir (log_name old_gen))
   with Sys_error _ -> ());
  Fsio.fsync_dir t.dir;
  Fsio.Crashpoint.hit "rotate.done"

let close t =
  if not t.closed then begin
    (try sync t with Unix.Unix_error _ -> ());
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let stats t =
  {
    appends = t.appends;
    appended_bytes = t.appended_bytes;
    syncs = t.syncs;
    rotations = t.rotations;
  }

(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The checksum every WAL record and checkpoint blob carries.  [update] is
    chainable: [update (update init a) b] equals the CRC of the
    concatenation, so framing code can fold header fields and payload
    without copying them into one buffer. *)

val init : int
(** Seed for a fresh checksum chain. *)

val update : int -> Bytes.t -> pos:int -> len:int -> int
(** Extend a running checksum with [len] bytes of [buf] at [pos]. *)

val bytes : Bytes.t -> int

val string : string -> int

val string_sub : string -> pos:int -> len:int -> int

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let init = 0

(* Pre/post-inverted per call, so the running value between calls is the
   plain CRC and chaining composes: update (update 0 a) b = crc (a ^ b). *)
let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes b = update init b ~pos:0 ~len:(Bytes.length b)

let string s = bytes (Bytes.unsafe_of_string s)

let string_sub s ~pos ~len = update init (Bytes.unsafe_of_string s) ~pos ~len

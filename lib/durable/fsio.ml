let fsync_fd fd = Unix.fsync fd

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd
       with Unix.Unix_error ((Unix.EINVAL | Unix.EBADF | Unix.EROFS), _, _) ->
         ());
      Unix.close fd

module Crashpoint = struct
  let points =
    [
      "append.pre"; "append.mid"; "append.post"; "sync.pre"; "sync.post";
      "ck.synced"; "ck.renamed"; "rotate.log.created"; "rotate.done";
    ]

  let is_point p = List.mem p points

  type armed = {
    point : string;
    mutable remaining : int;
    powercut : bool;
    action : unit -> unit;
  }

  let armed : armed list ref = ref []

  let powercut_hook : (unit -> unit) ref = ref (fun () -> ())

  let set_powercut_hook f = powercut_hook := f

  let arm ~point ?(after = 1) ?(powercut = false) action =
    if not (is_point point) then
      invalid_arg (Printf.sprintf "Crashpoint.arm: unknown point %S" point);
    if after < 1 then
      invalid_arg (Printf.sprintf "Crashpoint.arm: after=%d (need >= 1)" after);
    armed := { point; remaining = after; powercut; action } :: !armed

  let disarm () = armed := []

  let fire point =
    match List.find_opt (fun a -> a.point = point) !armed with
    | None -> None
    | Some a ->
        a.remaining <- a.remaining - 1;
        if a.remaining > 0 then None
        else begin
          armed := List.filter (fun x -> x != a) !armed;
          Some
            (fun () ->
              if a.powercut then !powercut_hook ();
              a.action ())
        end

  let hit point = match fire point with Some kill -> kill () | None -> ()
end

module Blob = struct
  (* magic(4) version(u16) meta1(u64) meta2(u64) len(u32) crc(u32) *)
  let header_bytes = 4 + 2 + 8 + 8 + 4 + 4

  let write ~path ~magic ~version ~meta:(m1, m2) payload =
    if String.length magic <> 4 then
      invalid_arg "Blob.write: magic must be 4 bytes";
    let len = String.length payload in
    let hdr = Bytes.create header_bytes in
    Bytes.blit_string magic 0 hdr 0 4;
    Bytes.set_uint16_le hdr 4 version;
    Bytes.set_int64_le hdr 6 (Int64.of_int m1);
    Bytes.set_int64_le hdr 14 (Int64.of_int m2);
    Bytes.set_int32_le hdr 22 (Int32.of_int len);
    (* the CRC covers the header fields too: a flipped meta slot or
       length must be as detectable as a flipped payload byte *)
    let crc =
      Crc32.update
        (Crc32.update Crc32.init hdr ~pos:0 ~len:26)
        (Bytes.unsafe_of_string payload)
        ~pos:0 ~len
    in
    Bytes.set_int32_le hdr 26 (Int32.of_int crc);
    let tmp = path ^ ".tmp" in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
    in
    let write_all b =
      let n = Bytes.length b in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write fd b !off (n - !off)
      done
    in
    write_all hdr;
    write_all (Bytes.unsafe_of_string payload);
    fsync_fd fd;
    Unix.close fd;
    Crashpoint.hit "ck.synced";
    Sys.rename tmp path;
    Crashpoint.hit "ck.renamed";
    fsync_dir (Filename.dirname path)

  let read ~path ~magic ~version =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          if size < header_bytes then Error "truncated header"
          else begin
            let hdr = Bytes.create header_bytes in
            really_input ic hdr 0 header_bytes;
            if Bytes.sub_string hdr 0 4 <> magic then
              Error
                (Printf.sprintf "bad magic %S (want %S)"
                   (Bytes.sub_string hdr 0 4) magic)
            else if Bytes.get_uint16_le hdr 4 <> version then
              Error
                (Printf.sprintf "format version %d (want %d)"
                   (Bytes.get_uint16_le hdr 4) version)
            else begin
              let m1 = Int64.to_int (Bytes.get_int64_le hdr 6) in
              let m2 = Int64.to_int (Bytes.get_int64_le hdr 14) in
              let len = Int32.to_int (Bytes.get_int32_le hdr 22) in
              let crc =
                Int32.to_int (Bytes.get_int32_le hdr 26) land 0xFFFFFFFF
              in
              if len < 0 || size - header_bytes <> len then
                Error
                  (Printf.sprintf "payload length %d does not match file size"
                     len)
              else begin
                let payload = really_input_string ic len in
                let crc' =
                  Crc32.update
                    (Crc32.update Crc32.init hdr ~pos:0 ~len:26)
                    (Bytes.unsafe_of_string payload)
                    ~pos:0 ~len
                in
                if crc' <> crc then Error "payload CRC mismatch"
                else Ok ((m1, m2), payload)
              end
            end
          end)
    with
    | r -> r
    | exception Sys_error msg -> Error msg
    | exception End_of_file -> Error "truncated payload"
end

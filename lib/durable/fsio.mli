(** Durable file IO: the fsync-ordering primitives the WAL and the node
    checkpoints are built on, plus the seeded crash-point registry that
    lets a chaos plan kill the process at named steps {e inside} the
    durability write path.

    The ordering rules (see DESIGN.md):
    - data reaches disk only after [fsync] on the file descriptor;
    - a rename is durable only after [fsync] on the {e parent directory};
    - therefore an atomic replace is: write tmp, fsync tmp, rename,
      fsync dir — in that order, nothing skipped. *)

val fsync_fd : Unix.file_descr -> unit

val fsync_dir : string -> unit
(** Fsync a directory by path (open read-only, fsync, close).  Filesystems
    that reject fsync on directories (EINVAL) are tolerated: there the
    rename is already as durable as the platform allows. *)

(** Named kill switches inside the durability write path.

    A chaos plan arms a point with a hit countdown; the WAL and blob
    writers call {!hit}/{!fire} at the matching step, and when the
    countdown reaches zero the armed action runs — in the cluster harness
    that action raises [Chaos.Injected_crash], so the process dies at
    exactly that step, deterministically.  [powercut] additionally invokes
    the registered hook first (the WAL truncates its log to the last
    synced offset), emulating media that loses write-cache contents, not
    just the process. *)
module Crashpoint : sig
  val points : string list
  (** The canonical point names, in write-path order:
      [append.pre] — before a record frame is written;
      [append.mid] — after half the frame is written (torn record);
      [append.post] — frame written, not yet synced;
      [sync.pre] / [sync.post] — around the log fsync;
      [ck.synced] — checkpoint blob tmp fsynced, before the rename;
      [ck.renamed] — blob renamed, before the directory fsync;
      [rotate.log.created] — next-generation log durable, before the old
      log is unlinked;
      [rotate.done] — old log unlinked and directory fsynced. *)

  val is_point : string -> bool

  val arm :
    point:string -> ?after:int -> ?powercut:bool -> (unit -> unit) -> unit
  (** Arm [point]: the [after]-th hit (default 1) invokes the action.
      @raise Invalid_argument on an unknown point or [after < 1]. *)

  val disarm : unit -> unit
  (** Clear every armed point (tests reuse the process). *)

  val set_powercut_hook : (unit -> unit) -> unit
  (** Installed by the WAL: truncate the live log to its synced floor. *)

  val fire : string -> (unit -> unit) option
  (** Count a hit at [point].  [Some kill] when an armed countdown just
      reached zero — the caller invokes [kill] at the precise step (e.g.
      after writing half a record).  [None] otherwise; free when nothing
      is armed. *)

  val hit : string -> unit
  (** [fire] and invoke immediately — the common case. *)
end

(** Self-describing durable blobs: a fixed header (magic, format version,
    two meta slots, payload length + CRC32) in front of an opaque payload,
    written with the full atomic-replace fsync discipline.  Node
    checkpoints and the WAL's rotation checkpoint both use this format, so
    a corrupt or foreign file is rejected with a clear error instead of
    being fed to [Marshal]. *)
module Blob : sig
  val header_bytes : int

  val write :
    path:string -> magic:string -> version:int -> meta:int * int ->
    string -> unit
  (** Atomic durable replace of [path] ([magic] must be 4 bytes).  Hits
      crash points [ck.synced] and [ck.renamed] at the matching steps. *)

  val read :
    path:string -> magic:string -> version:int ->
    ((int * int) * string, string) result
  (** Validate magic, version, length and CRC; [Error] describes exactly
      what is wrong ("bad magic", "payload CRC mismatch", ...). *)
end

(** Append-only write-ahead log with CRC-framed records, group commit, and
    checkpoint-as-compaction over a two-file rotation protocol.

    On-disk layout, one directory per log:
    - [wal-NNNNNN.log] — the current generation's record file.  A 26-byte
      header (magic ["RWAL"], format version, generation, base seqno,
      header CRC32) followed by length-prefixed records: marker word,
      record seqno (consecutive from the base), payload length, CRC32 over
      seqno+length+payload, payload bytes.
    - [ckpt.blob] — the latest checkpoint ({!Fsio.Blob}, magic ["RCKP"]),
      meta slots = (generation it opens, base seqno it covers up to).

    Recovery reads the checkpoint, replays the matching generation's
    records, and {e cleanly drops the damaged tail}: the scan stops at the
    first short, mis-marked, mis-sequenced or CRC-failing record, and
    [open_] truncates the file there, so a torn write costs exactly the
    unsynced suffix and never poisons earlier records.

    Rotation ([checkpoint]) is crash-safe at every step: sync the log,
    atomically replace [ckpt.blob] (tmp, fsync, rename, fsync dir), create
    and fsync the next generation's log, fsync the directory, only then
    unlink the old log.  A crash between any two steps leaves a state
    [load] maps back to a consistent (checkpoint, tail) pair. *)

type fsync_policy =
  | Every of int  (** fsync after every [k]-th appended record ([Every 1]
                      = synchronous durability). *)
  | Interval_ms of int  (** group commit on a time budget: fsync when an
                            append finds the last sync older than this. *)
  | Never  (** no fsync from [append]; only [sync]/[checkpoint] reach
               disk.  The measuring stick the bench's other policies are
               compared against. *)

type stats = {
  appends : int;
  appended_bytes : int;
  syncs : int;
  rotations : int;
}

type recovered = {
  r_gen : int;  (** Generation whose log holds the tail. *)
  r_base : int;  (** First seqno of that generation. *)
  r_next : int;  (** Next seqno to append (base + recovered tail length). *)
  r_checkpoint : string option;  (** Latest checkpoint payload, if any. *)
  r_entries : (int * string) list;  (** The recovered tail, (seqno, payload)
                                        in order. *)
  r_dropped_bytes : int;  (** Damaged/torn suffix dropped by the scan. *)
  r_log : string;  (** Basename of the log file scanned ([""] if none). *)
  r_notes : string list;  (** Anomalies repaired: stale logs, missing
                              generation file, truncated tail. *)
}

type t

val record_overhead : int
(** Framing bytes added per record. *)

val open_ :
  dir:string -> ?policy:fsync_policy -> ?fresh:bool -> unit -> t * recovered
(** Open (creating the directory and a generation-0 log if needed) and
    recover.  [fresh] wipes any previous contents first — a node's first
    incarnation must not resurrect a stale run.  Truncates a damaged tail,
    deletes stale-generation logs, and installs the power-cut hook
    ({!Fsio.Crashpoint.set_powercut_hook}: truncate the live log to its
    synced floor).  [policy] defaults to [Every 1].
    @raise Failure when the directory contents are unrecoverable. *)

val append : t -> string -> int
(** Append one record, return its seqno; fsyncs per the policy (group
    commit).  Hits crash points [append.pre]/[append.mid]/[append.post]. *)

val sync : t -> unit
(** Force the log to disk (no-op when nothing is pending).  Hits
    [sync.pre]/[sync.post]. *)

val checkpoint : t -> string -> unit
(** Compact: everything appended so far is superseded by this payload.
    Runs the rotation protocol above; hits [ck.synced]/[ck.renamed]/
    [rotate.log.created]/[rotate.done]. *)

val close : t -> unit
(** Sync and close.  Safe to call twice. *)

val stats : t -> stats

val load : dir:string -> (recovered, string) result
(** Read-only recovery — what [open_] would see, without mutating the
    directory.  [Error] only when the contents are unrecoverable (corrupt
    checkpoint blob, generation mismatch); a torn tail is {e recoverable}
    and reported via [r_dropped_bytes]. *)

val digest : recovered -> string
(** Hex digest over the recovered state (checkpoint payload + ordered tail
    records) — the oracle [repro wal] prints and recovery tests compare:
    two loads of the same surviving bytes must agree bit-for-bit. *)

(** Streaming and batch statistics for experiment reporting. *)

type t
(** A mutable accumulator of float observations (Welford's algorithm for
    mean/variance, exact min/max, plus either a retained sample or a
    bounded log-bucketed sketch for percentiles). *)

val create : unit -> t
(** Exact mode: every observation is retained, percentiles are exact
    order statistics.  Memory grows linearly with [count]. *)

val create_sketch : ?gamma:float -> unit -> t
(** Bounded-memory mode for million-observation runs: observations land
    in log-spaced buckets ([gamma^i, gamma^(i+1))), reported at the
    geometric bucket midpoint, so every percentile is within a relative
    error of [sqrt gamma - 1] of the true order statistic — under 1% for
    the default [gamma = 1.02] — while memory stays
    O(log(max/min)/log gamma) buckets (≈930 for values spanning 1..1e8),
    independent of [count].  Count, sum, mean, variance, min and max stay
    exact.  @raise Invalid_argument when [gamma <= 1]. *)

val is_sketch : t -> bool

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], linear interpolation between
    order statistics (exact, or bucket representatives within the sketch
    error bound, clamped to the exact [\[min, max\]]).
    @raise Invalid_argument when empty or [p] is out of range. *)

val merge : t -> t -> t
(** Combine two accumulators (observations of both).  The result is a
    sketch iff either side is one (an exact result cannot recover a
    sketch's discarded samples); sketch-sketch merging is bounded-memory —
    moments combine algebraically, bucket counts add. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/σ/min/p50/p99/max] summary. *)

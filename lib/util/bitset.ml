(* Packed int-array words (63 usable bits each).  The bytes-backed
   representation this replaces paid a Char round-trip per 8 bits on every
   union/inter; relation-closure rows are the checker's hottest data, so the
   word ops below must stay branch-light and allocation-free. *)

type t = { n : int; words : int array }

let bits = 63 (* usable bits per OCaml int on 64-bit platforms *)

let words_for n = (n + bits - 1) / bits

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (words_for n) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let add t i =
  check t i;
  let w = i / bits and b = i mod bits in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl b))

let remove t i =
  check t i;
  let w = i / bits and b = i mod bits in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w land lnot (1 lsl b))

let mem t i =
  check t i;
  let w = i / bits and b = i mod bits in
  Array.unsafe_get t.words w land (1 lsl b) <> 0

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t =
  let total = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    total := !total + popcount (Array.unsafe_get t.words i)
  done;
  !total

let is_empty t =
  let rec scan i =
    i >= Array.length t.words || (Array.unsafe_get t.words i = 0 && scan (i + 1))
  in
  scan 0

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    Array.unsafe_set dst.words i
      (Array.unsafe_get dst.words i lor Array.unsafe_get src.words i)
  done

let inter_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    Array.unsafe_set dst.words i
      (Array.unsafe_get dst.words i land Array.unsafe_get src.words i)
  done

let diff_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    Array.unsafe_set dst.words i
      (Array.unsafe_get dst.words i land lnot (Array.unsafe_get src.words i))
  done

let union a b =
  let r = copy a in
  union_into ~dst:r b;
  r

let inter a b =
  let r = copy a in
  inter_into ~dst:r b;
  r

let equal a b =
  a.n = b.n
  &&
  let rec scan i =
    i >= Array.length a.words
    || (Array.unsafe_get a.words i = Array.unsafe_get b.words i && scan (i + 1))
  in
  scan 0

let subset a b =
  check_same a b;
  let rec scan i =
    i >= Array.length a.words
    || Array.unsafe_get a.words i land lnot (Array.unsafe_get b.words i) = 0
       && scan (i + 1)
  in
  scan 0

let disjoint a b =
  check_same a b;
  let rec scan i =
    i >= Array.length a.words
    || Array.unsafe_get a.words i land Array.unsafe_get b.words i = 0
       && scan (i + 1)
  in
  scan 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref (Array.unsafe_get t.words w) in
    let base = w * bits in
    let b = ref 0 in
    while !word <> 0 do
      let skip = if !word land 0xff = 0 then 8 else 1 in
      if skip = 1 && !word land 1 <> 0 then f (base + !b);
      word := !word lsr skip;
      b := !b + skip
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n elems =
  let t = create n in
  List.iter (add t) elems;
  t

let to_raw_string t =
  (* 8 little-endian bytes per word; equal sets yield equal strings because
     words past [n] are never set. *)
  let buf = Bytes.create (8 * Array.length t.words) in
  for i = 0 to Array.length t.words - 1 do
    let w = Array.unsafe_get t.words i in
    for j = 0 to 7 do
      Bytes.unsafe_set buf ((8 * i) + j) (Char.unsafe_chr ((w lsr (8 * j)) land 0xff))
    done
  done;
  Bytes.unsafe_to_string buf

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements t)

type t = {
  n : int;
  adj : int list array; (* reversed insertion order *)
  matrix : Bitset.t array; (* matrix.(u) = successor set of u *)
}

let create n =
  {
    n;
    adj = Array.make n [];
    matrix = Array.init n (fun _ -> Bitset.create n);
  }

let n_vertices t = t.n

let mem_edge t u v = Bitset.mem t.matrix.(u) v

let add_edge t u v =
  if not (mem_edge t u v) then begin
    Bitset.add t.matrix.(u) v;
    t.adj.(u) <- v :: t.adj.(u)
  end

let succ t u = List.rev t.adj.(u)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    List.iter (fun v -> acc := (u, v) :: !acc) t.adj.(u)
  done;
  List.sort compare !acc

let n_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.adj

let copy t =
  { n = t.n; adj = Array.copy t.adj; matrix = Array.map Bitset.copy t.matrix }

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: size mismatch";
  let r = copy a in
  for u = 0 to b.n - 1 do
    List.iter (fun v -> add_edge r u v) (succ b u)
  done;
  r

let reachable_from t src =
  let seen = Bitset.create t.n in
  let rec visit u =
    List.iter
      (fun v ->
        if not (Bitset.mem seen v) then begin
          Bitset.add seen v;
          visit v
        end)
      t.adj.(u)
  in
  visit src;
  seen

let transitive_closure t =
  (* Warshall over bitset successor rows: row(u) |= row(via) whenever
     via ∈ row(u).  O(n³/w) word operations, no per-vertex DFS, and the
     inner step is a single word-wise union.  Exact for cyclic graphs too
     (u ∈ row(u) iff u lies on a cycle, matching the old DFS semantics). *)
  let r = create t.n in
  for u = 0 to t.n - 1 do
    Bitset.union_into ~dst:r.matrix.(u) t.matrix.(u)
  done;
  for via = 0 to t.n - 1 do
    let row_via = r.matrix.(via) in
    for u = 0 to t.n - 1 do
      if u <> via && Bitset.mem r.matrix.(u) via then
        Bitset.union_into ~dst:r.matrix.(u) row_via
    done
  done;
  for u = 0 to t.n - 1 do
    (* adj holds reversed order so that [succ] yields ascending vertices *)
    r.adj.(u) <- Bitset.fold (fun v acc -> v :: acc) r.matrix.(u) []
  done;
  r

let has_path t u v = Bitset.mem (reachable_from t u) v

let is_acyclic t =
  let check u = not (Bitset.mem (reachable_from t u) u) in
  let rec scan u = u >= t.n || (check u && scan (u + 1)) in
  scan 0

let topological_sort t =
  let indegree = Array.make t.n 0 in
  for u = 0 to t.n - 1 do
    List.iter (fun v -> indegree.(v) <- indegree.(v) + 1) t.adj.(u)
  done;
  let ready = Pqueue.create ~cmp:compare () in
  for u = 0 to t.n - 1 do
    if indegree.(u) = 0 then Pqueue.push ready u ()
  done;
  let rec drain acc placed =
    match Pqueue.pop ready with
    | None -> if placed = t.n then Some (List.rev acc) else None
    | Some (u, ()) ->
        List.iter
          (fun v ->
            indegree.(v) <- indegree.(v) - 1;
            if indegree.(v) = 0 then Pqueue.push ready v ())
          t.adj.(u);
        drain (u :: acc) (placed + 1)
  in
  drain [] 0

let transitive_reduction_edges t =
  if not (is_acyclic t) then invalid_arg "Graph.transitive_reduction_edges: cyclic";
  let closure = transitive_closure t in
  edges t
  |> List.filter (fun (u, v) ->
         (* (u,v) is redundant iff some other successor w of u reaches v. *)
         not
           (List.exists
              (fun w -> w <> v && Bitset.mem closure.matrix.(w) v)
              (succ t u)))

let simple_paths ?(max_paths = 10_000) t ~src ~dst =
  let found = ref [] in
  let n_found = ref 0 in
  let on_path = Bitset.create t.n in
  let rec explore u prefix =
    if !n_found < max_paths then begin
      if u = dst && prefix <> [] then begin
        found := List.rev (dst :: prefix) :: !found;
        incr n_found
      end
      else begin
        Bitset.add on_path u;
        List.iter
          (fun v ->
            if v = dst || not (Bitset.mem on_path v) then explore v (u :: prefix))
          (succ t u);
        Bitset.remove on_path u
      end
    end
  in
  explore src [];
  List.rev !found

let add_undirected_edge t u v =
  add_edge t u v;
  add_edge t v u

let components t =
  let uf = Union_find.create t.n in
  for u = 0 to t.n - 1 do
    List.iter (fun v -> Union_find.union uf u v) t.adj.(u)
  done;
  Union_find.classes uf

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let add_float buffer f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buffer "null"
  | _ -> Buffer.add_string buffer (Printf.sprintf "%.17g" f)

let rec add ~indent buffer v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (string_of_bool b)
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f -> add_float buffer f
  | String s -> add_escaped buffer s
  | List [] -> Buffer.add_string buffer "[]"
  | List items ->
      Buffer.add_string buffer "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buffer ",\n";
          Buffer.add_string buffer (pad (indent + 1));
          add ~indent:(indent + 1) buffer item)
        items;
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (pad indent);
      Buffer.add_char buffer ']'
  | Obj [] -> Buffer.add_string buffer "{}"
  | Obj fields ->
      Buffer.add_string buffer "{\n";
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_string buffer ",\n";
          Buffer.add_string buffer (pad (indent + 1));
          add_escaped buffer name;
          Buffer.add_string buffer ": ";
          add ~indent:(indent + 1) buffer value)
        fields;
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (pad indent);
      Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 256 in
  add ~indent:0 buffer v;
  Buffer.contents buffer

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

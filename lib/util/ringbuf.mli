(** Growable circular FIFO queue (amortized O(1) at both ends it supports).

    Replaces the [!queue @ [x]] list-append idiom in protocol buffers:
    go-back-N retransmission windows, per-writer pending queues, and the
    simulator's trace buffer.  Popped slots keep their last element until
    overwritten (no dummy value exists for a polymorphic array); capacity
    never shrinks. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** Amortized O(1). *)

val peek_front : 'a t -> 'a option

val pop_front : 'a t -> 'a option
(** O(1). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Front to back. *)

val clear : 'a t -> unit
(** Keeps the backing storage. *)

val to_list : 'a t -> 'a list
(** Front to back; O(n). *)

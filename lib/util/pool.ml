(* Work distribution: each parallel call publishes a batch; idle workers
   steal from the newest active batch (LIFO over batches, FIFO within one).
   The submitter participates in its own batch and blocks only once every
   task has been claimed, so nested parallel calls cannot deadlock: any
   blocked worker has first drained the unclaimed tasks of the batch it is
   waiting on, and waits only ever point at strictly newer batches.

   All scheduling state (queues, counters) lives under one mutex — tasks
   here are coarse (a consistency check, an experiment table), so claim
   contention is negligible.  Cancellation flags are atomics because task
   bodies read them outside the lock. *)

type batch = {
  tasks : (unit -> unit) array;
      (* wrapped task bodies: never raise, record their own results *)
  mutable next : int; (* first unclaimed task *)
  mutable unfinished : int; (* claimed-or-unclaimed tasks not yet settled *)
  cancelled : bool Atomic.t;
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t; (* a batch was published *)
  finished : Condition.t; (* some batch settled all its tasks *)
  mutable active : batch list; (* newest first *)
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let n_tasks b = Array.length b.tasks

(* Both helpers below run with [t.lock] held. *)

let settle_batch t b settled =
  b.unfinished <- b.unfinished - settled;
  if b.unfinished = 0 then begin
    t.active <- List.filter (fun b' -> b' != b) t.active;
    Condition.broadcast t.finished
  end

let rec claim t = function
  | [] -> None
  | b :: rest ->
      if Atomic.get b.cancelled && b.next < n_tasks b then begin
        let skipped = n_tasks b - b.next in
        b.next <- n_tasks b;
        settle_batch t b skipped
      end;
      if b.next < n_tasks b then begin
        let i = b.next in
        b.next <- i + 1;
        Some (b, i)
      end
      else claim t rest

let exec t b i =
  b.tasks.(i) ();
  Mutex.lock t.lock;
  settle_batch t b 1;
  Mutex.unlock t.lock

let rec worker t =
  Mutex.lock t.lock;
  let rec get () =
    match claim t t.active with
    | Some _ as found -> found
    | None ->
        if t.stopped then None
        else begin
          Condition.wait t.work t.lock;
          get ()
        end
  in
  let found = get () in
  Mutex.unlock t.lock;
  match found with
  | None -> ()
  | Some (b, i) ->
      exec t b i;
      worker t

let submit_and_help t b =
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool: pool is shut down"
  end;
  t.active <- b :: t.active;
  Condition.broadcast t.work;
  let rec help () =
    match claim t [ b ] with
    | Some (b, i) ->
        Mutex.unlock t.lock;
        exec t b i;
        Mutex.lock t.lock;
        help ()
    | None ->
        if b.unfinished > 0 then begin
          Condition.wait t.finished t.lock;
          help ()
        end
  in
  help ();
  Mutex.unlock t.lock

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j ->
        if j < 1 then invalid_arg "Pool.create: jobs < 1";
        j
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      active = [];
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.lock;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.work
  end;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains

(* Record the submission-order-first failure of a batch. *)
let record_failure failure cancelled i exn bt =
  let rec loop () =
    let current = Atomic.get failure in
    let earlier = match current with None -> true | Some (j, _, _) -> i < j in
    if earlier && not (Atomic.compare_and_set failure current (Some (i, exn, bt)))
    then loop ()
  in
  loop ();
  Atomic.set cancelled true

let reraise_failure failure =
  match Atomic.get failure with
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let run t thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | thunks when t.jobs = 1 -> List.map (fun f -> f ()) thunks
  | thunks ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      let results = Array.make n None in
      let failure = Atomic.make None in
      let cancelled = Atomic.make false in
      let tasks =
        Array.mapi
          (fun i f () ->
            if not (Atomic.get cancelled) then
              match f () with
              | v -> results.(i) <- Some v
              | exception exn ->
                  record_failure failure cancelled i exn
                    (Printexc.get_raw_backtrace ()))
          thunks
      in
      submit_and_help t { tasks; next = 0; unfinished = n; cancelled };
      reraise_failure failure;
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false (* no failure *))
           results)

let map t f xs = run t (List.map (fun x () -> f x) xs)

let for_all t pred xs =
  match xs with
  | [] -> true
  | [ x ] -> pred x
  | xs when t.jobs = 1 -> List.for_all pred xs
  | xs ->
      let xs = Array.of_list xs in
      let ok = Atomic.make true in
      let failure = Atomic.make None in
      let cancelled = Atomic.make false in
      let tasks =
        Array.mapi
          (fun i x () ->
            if not (Atomic.get cancelled) then
              match pred x with
              | true -> ()
              | false ->
                  Atomic.set ok false;
                  Atomic.set cancelled true
              | exception exn ->
                  record_failure failure cancelled i exn
                    (Printexc.get_raw_backtrace ()))
          xs
      in
      submit_and_help t
        { tasks; next = 0; unfinished = Array.length xs; cancelled };
      reraise_failure failure;
      Atomic.get ok

(* --- default pool ---------------------------------------------------------- *)

let env_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)
  | None -> None

let configured_jobs = ref None
let default_pool = ref None

let default_jobs () =
  match !configured_jobs with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Stdlib.max 1 (Domain.recommended_domain_count ()))

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ~jobs:(default_jobs ()) () in
      default_pool := Some p;
      (* worker domains must be joined before the runtime tears down *)
      at_exit (fun () -> shutdown p);
      p

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs < 1";
  configured_jobs := Some n;
  match !default_pool with
  | Some p when p.jobs = n -> ()
  | previous ->
      default_pool := None;
      (match previous with Some p -> shutdown p | None -> ())

(* Log-bucketed histogram for the sketch mode: bucket i holds magnitudes
   in [gamma^i, gamma^(i+1)), reported at the geometric midpoint, so any
   reconstructed value is within a factor sqrt(gamma) of the original. *)
type buckets = {
  gamma : float;
  lg : float;  (* log gamma, cached *)
  pos : (int, int) Hashtbl.t;
  neg : (int, int) Hashtbl.t;
  mutable zeros : int;
}

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable minimum : float;
  mutable maximum : float;
  mutable samples : float array;
  mutable filled : int;
  mutable sorted : bool;
  sketch : buckets option;
}

let make sketch =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    sum = 0.0;
    minimum = infinity;
    maximum = neg_infinity;
    samples = [||];
    filled = 0;
    sorted = true;
    sketch;
  }

let create () = make None

let create_sketch ?(gamma = 1.02) () =
  if gamma <= 1.0 then invalid_arg "Stats.create_sketch: gamma must be > 1";
  make
    (Some
       {
         gamma;
         lg = log gamma;
         pos = Hashtbl.create 64;
         neg = Hashtbl.create 8;
         zeros = 0;
       })

let is_sketch t = t.sketch <> None

let bump tbl k c =
  let cur = try Hashtbl.find tbl k with Not_found -> 0 in
  Hashtbl.replace tbl k (cur + c)

let bucket_of b x = int_of_float (Float.floor (log x /. b.lg))

let classify b c x =
  if x = 0.0 then b.zeros <- b.zeros + c
  else if x > 0.0 then bump b.pos (bucket_of b x) c
  else bump b.neg (bucket_of b (-.x)) c

let moments t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minimum then t.minimum <- x;
  if x > t.maximum then t.maximum <- x

let add t x =
  moments t x;
  match t.sketch with
  | Some b -> classify b 1 x
  | None ->
      if t.filled = Array.length t.samples then begin
        let capacity = Stdlib.max 16 (2 * Array.length t.samples) in
        let samples = Array.make capacity 0.0 in
        Array.blit t.samples 0 samples 0 t.filled;
        t.samples <- samples
      end;
      t.samples.(t.filled) <- x;
      t.filled <- t.filled + 1;
      t.sorted <- false

let add_int t x = add t (float_of_int x)

let count t = t.n

let total t = t.sum

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Stats.min: empty accumulator";
  t.minimum

let max t =
  if t.n = 0 then invalid_arg "Stats.max: empty accumulator";
  t.maximum

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.filled in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.filled;
    t.sorted <- true
  end

(* Bucket representatives in ascending value order, with counts. *)
let sketch_levels b =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let rep i = b.gamma ** (float_of_int i +. 0.5) in
  let neg =
    keys b.neg
    |> List.sort (fun a b -> compare b a)  (* larger magnitude first *)
    |> List.map (fun i -> (-.rep i, Hashtbl.find b.neg i))
  in
  let zero = if b.zeros > 0 then [ (0.0, b.zeros) ] else [] in
  let pos =
    keys b.pos |> List.sort compare
    |> List.map (fun i -> (rep i, Hashtbl.find b.pos i))
  in
  Array.of_list (neg @ zero @ pos)

let sketch_order_stat t b k =
  let levels = sketch_levels b in
  let i = ref 0 and seen = ref 0 in
  while !i < Array.length levels - 1 && !seen + snd levels.(!i) <= k do
    seen := !seen + snd levels.(!i);
    incr i
  done;
  (* clamp into the exact range: the outermost representatives may
     overshoot the true extremes by the bucket error *)
  Float.min t.maximum (Float.max t.minimum (fst levels.(!i)))

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty accumulator";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let rank = p /. 100.0 *. float_of_int (t.n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  let at =
    match t.sketch with
    | Some b -> sketch_order_stat t b
    | None ->
        ensure_sorted t;
        fun k -> t.samples.(k)
  in
  if lo = hi then at lo
  else begin
    let w = rank -. float_of_int lo in
    (at lo *. (1.0 -. w)) +. (at hi *. w)
  end

(* Chan et al.'s pairwise update: exact merge of count/mean/M2 without
   revisiting observations. *)
let combine_moments t o =
  if o.n > 0 then begin
    if t.n = 0 then begin
      t.n <- o.n;
      t.mean <- o.mean;
      t.m2 <- o.m2
    end
    else begin
      let n1 = float_of_int t.n and n2 = float_of_int o.n in
      let delta = o.mean -. t.mean in
      let nt = n1 +. n2 in
      t.m2 <- t.m2 +. o.m2 +. (delta *. delta *. n1 *. n2 /. nt);
      t.mean <- ((t.mean *. n1) +. (o.mean *. n2)) /. nt;
      t.n <- t.n + o.n
    end;
    t.sum <- t.sum +. o.sum;
    if o.minimum < t.minimum then t.minimum <- o.minimum;
    if o.maximum > t.maximum then t.maximum <- o.maximum
  end

let absorb t o =
  match (o.sketch, t.sketch) with
  | None, _ ->
      (* exact side: replay the retained samples *)
      for i = 0 to o.filled - 1 do
        add t o.samples.(i)
      done
  | Some ob, Some tb ->
      combine_moments t o;
      if ob.gamma = tb.gamma then begin
        Hashtbl.iter (fun k c -> bump tb.pos k c) ob.pos;
        Hashtbl.iter (fun k c -> bump tb.neg k c) ob.neg;
        tb.zeros <- tb.zeros + ob.zeros
      end
      else begin
        (* different resolutions: re-bucket the representatives *)
        let rep i = ob.gamma ** (float_of_int i +. 0.5) in
        Hashtbl.iter (fun k c -> classify tb c (rep k)) ob.pos;
        Hashtbl.iter (fun k c -> classify tb c (-.rep k)) ob.neg;
        tb.zeros <- tb.zeros + ob.zeros
      end
  | Some _, None ->
      invalid_arg "Stats.merge: cannot merge a sketch into an exact accumulator"

let merge a b =
  let t =
    match (a.sketch, b.sketch) with
    | None, None -> create ()
    | Some s, _ | _, Some s -> create_sketch ~gamma:s.gamma ()
  in
  absorb t a;
  absorb t b;
  t

let pp_summary ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
      t.n (mean t) (stddev t) t.minimum (percentile t 50.0) (percentile t 99.0)
      t.maximum

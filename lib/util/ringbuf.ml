type 'a t = {
  mutable buf : 'a array;
  mutable head : int; (* index of the front element *)
  mutable size : int;
}

let create () = { buf = [||]; head = 0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t seed =
  (* Seed fresh storage with the pushed element so no dummy is needed for
     the polymorphic array (popped slots retain their last element until
     overwritten, as in Pqueue). *)
  let capacity = max 8 (2 * Array.length t.buf) in
  let buf = Array.make capacity seed in
  for i = 0 to t.size - 1 do
    buf.(i) <- t.buf.((t.head + i) mod Array.length t.buf)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.size = Array.length t.buf then grow t x;
  t.buf.((t.head + t.size) mod Array.length t.buf) <- x;
  t.size <- t.size + 1

let peek_front t = if t.size = 0 then None else Some t.buf.(t.head)

let pop_front t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.size <- t.size - 1;
    Some x
  end

let iter t f =
  for i = 0 to t.size - 1 do
    f t.buf.((t.head + i) mod Array.length t.buf)
  done

let clear t =
  t.head <- 0;
  t.size <- 0

let to_list t =
  List.init t.size (fun i -> t.buf.((t.head + i) mod Array.length t.buf))

(** Monomorphic int-keyed binary min-heap.

    The discrete-event scheduler's hot path: keys are immediate ints (the
    simulator packs [(deliver_time, seq)] into one word), so pushes and pops
    run without allocating and compare keys with unboxed [<] instead of a
    closure.  The generic {!Pqueue} remains for composite or polymorphic
    keys. *)

type 'a t
(** Mutable min-heap of ['a] values keyed by ints (smallest key first).
    Equal keys come out in unspecified order — callers needing a total
    order must make keys distinct (the simulator folds a sequence number
    into the key). *)

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** O(log n), allocation-free (amortized: the backing arrays double). *)

val min_key : 'a t -> int
(** Smallest key, without removing it.  O(1), allocation-free.
    @raise Invalid_argument on an empty heap. *)

val pop_min : 'a t -> 'a
(** Remove the smallest binding and return its value.  O(log n),
    allocation-free; read {!min_key} first when the key is needed.
    @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> (int * 'a) option

val pop : 'a t -> (int * 'a) option
(** Allocating convenience wrapper over {!min_key} + {!pop_min}. *)

val clear : 'a t -> unit

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Heap order, not sorted order. *)

val to_sorted_list : 'a t -> (int * 'a) list
(** Drain a copy in key order; the heap is unchanged.  O(n log n);
    intended for tests and debugging. *)

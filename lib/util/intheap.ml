type 'a t = {
  mutable size : int;
  mutable keys : int array;
  mutable vals : 'a array;
}

let create () = { size = 0; keys = [||]; vals = [||] }

let length t = t.size

let is_empty t = t.size = 0

let grow t value =
  (* Seed fresh value storage with the pushed element so no dummy is needed
     for the polymorphic array; keys are plain ints. *)
  let capacity = max 16 (2 * Array.length t.keys) in
  let keys = Array.make capacity 0 in
  let vals = Array.make capacity value in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

(* Sift loops move the hole instead of swapping, so each step is two array
   writes and an unboxed int comparison — no closure dispatch, no boxing. *)
let sift_up t i key value =
  let i = ref i in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key < t.keys.(parent) then begin
      t.keys.(!i) <- t.keys.(parent);
      t.vals.(!i) <- t.vals.(parent);
      i := parent
    end
    else continue_ := false
  done;
  t.keys.(!i) <- key;
  t.vals.(!i) <- value

let sift_down t key value =
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 in
    if l >= t.size then continue_ := false
    else begin
      let r = l + 1 in
      let child = if r < t.size && t.keys.(r) < t.keys.(l) then r else l in
      if t.keys.(child) < key then begin
        t.keys.(!i) <- t.keys.(child);
        t.vals.(!i) <- t.vals.(child);
        i := child
      end
      else continue_ := false
    end
  done;
  t.keys.(!i) <- key;
  t.vals.(!i) <- value

let push t key value =
  if t.size = Array.length t.keys then grow t value;
  let i = t.size in
  t.size <- t.size + 1;
  sift_up t i key value

let min_key t =
  if t.size = 0 then invalid_arg "Intheap.min_key: empty heap";
  t.keys.(0)

let pop_min t =
  if t.size = 0 then invalid_arg "Intheap.pop_min: empty heap";
  let v = t.vals.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    sift_down t t.keys.(t.size) t.vals.(t.size);
    (* release the vacated tail slot so the heap does not retain the value *)
    t.vals.(t.size) <- t.vals.(0)
  end;
  v

let pop t =
  if t.size = 0 then None
  else
    let k = t.keys.(0) in
    let v = pop_min t in
    Some (k, v)

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let clear t = t.size <- 0

let iter t f =
  for i = 0 to t.size - 1 do
    f t.keys.(i) t.vals.(i)
  done

let to_sorted_list t =
  let copy =
    {
      size = t.size;
      keys = Array.sub t.keys 0 t.size;
      vals = Array.sub t.vals 0 t.size;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some binding -> drain (binding :: acc)
  in
  drain []

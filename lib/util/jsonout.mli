(** Minimal JSON emission (no external dependency) for the benchmark
    trajectory records and the CLI's machine-readable table dumps.

    Output is deterministic: object fields print in the order given,
    floats with ["%.17g"] (round-trippable), non-finite floats as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Pretty-printed with two-space indentation and a trailing newline —
    the files are meant to be diffed and accumulated in git. *)

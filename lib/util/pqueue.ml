type ('p, 'a) t = {
  cmp : 'p -> 'p -> int;
  mutable size : int;
  mutable keys : 'p array;
  mutable vals : 'a array;
}

let create ~cmp () = { cmp; size = 0; keys = [||]; vals = [||] }

let length t = t.size

let is_empty t = t.size = 0

let grow t key value =
  (* Seed fresh storage with the pushed binding so no dummy element is
     needed for the polymorphic arrays. *)
  let capacity = max 8 (2 * Array.length t.keys) in
  let keys = Array.make capacity key in
  let vals = Array.make capacity value in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.keys.(i) t.keys.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp t.keys.(l) t.keys.(i) < 0 then l else i in
  let smallest =
    if r < t.size && t.cmp t.keys.(r) t.keys.(smallest) < 0 then r else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push t key value =
  if t.size = Array.length t.keys then grow t key value;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    Some (k, v)
  end

let pop_exn t =
  match pop t with
  | Some binding -> binding
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let clear t = t.size <- 0

let to_sorted_list t =
  let copy =
    {
      cmp = t.cmp;
      size = t.size;
      keys = Array.sub t.keys 0 t.size;
      vals = Array.sub t.vals 0 t.size;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some binding -> drain (binding :: acc)
  in
  drain []

(** A work-stealing pool of OCaml 5 domains for CPU-bound fan-out.

    The pool owns [jobs - 1] worker domains; the caller of {!run} / {!map} /
    {!for_all} is the remaining worker, so a pool with [jobs = 1] spawns no
    domains and executes everything inline with zero scheduling overhead.

    Scheduling: each parallel call publishes a batch of tasks.  Idle workers
    steal tasks from the newest published batch first (LIFO over batches,
    FIFO within a batch), which keeps nested batches hot and bounds the
    number of live batches by the nesting depth.  The submitting worker
    participates in its own batch and only blocks once every task of the
    batch has been claimed; a worker blocked on a nested batch always
    drains that batch's unclaimed tasks itself first, so nesting parallel
    calls (an experiment table farming per-unit consistency checks, say)
    cannot deadlock.

    Results are joined in submission order, so the output of a parallel map
    is deterministic no matter how tasks were scheduled.  Exceptions raised
    by tasks cancel the rest of the batch and are re-raised in the
    submitter. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool of [jobs] workers ([jobs - 1] spawned
    domains plus the caller).  Default: {!Domain.recommended_domain_count}.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val run : t -> (unit -> 'a) list -> 'a list
(** Execute the thunks, possibly in parallel, and return their results in
    submission order.  Re-raises the first exception (in submission order)
    raised by a thunk, after the whole batch has settled. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is [run t (List.map (fun x () -> f x) xs)]. *)

val for_all : t -> ('a -> bool) -> 'a list -> bool
(** Parallel conjunction with early exit: once any task returns [false],
    unclaimed tasks of the batch are abandoned.  The predicate may run on
    elements past the first failing one (tasks already in flight are not
    interrupted). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must be idle.  Calling
    {!run} on a shut-down pool raises [Invalid_argument]. *)

(** {1 Default pool}

    A process-wide pool shared by the checker, the experiment harness and
    the benchmark driver, created on first use and resized by [--jobs]. *)

val default : unit -> t
(** The shared pool, created on first call with the default worker count
    (or [$REPRO_JOBS] when set to a positive integer). *)

val set_default_jobs : int -> unit
(** Replace the default pool with one of the given size (shutting the old
    one down).  This is what [--jobs N] calls.
    @raise Invalid_argument when [jobs < 1]. *)

val default_jobs : unit -> int
(** Worker count of the pool {!default} returns (without forcing its
    creation beyond reading the configuration). *)

(** One process of a reconfigurable cluster: the membership runtime.

    Unlike {!Node}, which hosts a static protocol instance, a member
    serves a live consistent-hash placement ({!Repro_sharegraph.Ring})
    that the reconfiguration supervisor ({!Reconfig}) reshapes at
    runtime.  The division of labour:

    - {e Writers are fixed}: variable [x] is written only by process
      [x mod n], forever — membership never moves write ownership, so
      every variable has a single writer and per-variable sequence
      numbers totally order its writes.
    - {e Holders follow the ring}: the current epoch's ring decides which
      members replicate (and serve reads of) each variable.  Writers
      push updates to the replica set; during a transition they push to
      the {e union} of old and new holders.
    - {e State transfer}: when a proposal makes this member a new holder
      of [x], the donor — the least-id surviving old holder — pushes its
      record of [x] (idempotent by sequence number), then a [done]
      marker per receiver; the batch is retried on a bounded backoff
      until the receiver acknowledges.  A variable with no surviving
      donor degrades gracefully to [Init].
    - {e Epoch fencing}: the committed epoch is stamped into every frame
      ({!Repro_transport.Live.set_epoch}); stale [Data]/[Transfer]
      frames are dropped and counted at the transport seam.
    - {e Durability}: every externalized effect (own op, applied remote
      record, membership transition, received [done]) is appended to a
      PR-8 write-ahead log {e before} it becomes visible, with [Every 1]
      fsync, so a crash mid-migration resumes exactly where it stopped:
      a respawned donor re-derives and re-sends its batches, a respawned
      receiver re-derives the donors it still owes an ack.

    The advertised criterion for this tier is {e cache consistency}
    (per-variable sequential): single-writer per-variable sequencing and
    monotone application make every per-variable projection serializable
    even across migrations.  PRAM does not survive reconfiguration — a
    donor whose view of a writer lags another donor's can migrate
    cross-variable state out of the writer's program order (DESIGN.md,
    "Why the reconfiguration tier advertises cache consistency"). *)

module Fault = Repro_msgpass.Fault
module Op = Repro_history.Op

val supervisor_id : int
(** Sentinel [src] (0xFFFF) the supervisor stamps on control frames —
    outside the node-id range, like client ids. *)

type config = {
  self : int;
  n : int;  (** total processes; writers are [x mod n] regardless of ring *)
  listen_fd : Unix.file_descr;
  peers : Unix.sockaddr array;
  seed : int;  (** ring seed and fingerprint stamp *)
  k : int;  (** replication degree *)
  vnodes : int;
  n_vars : int;
  initial_members : int list;  (** ring members at epoch 0 *)
  writes_target : int;  (** writes this process issues, paced *)
  write_period_ms : int;
  hello_timeout_ms : int;
  run_timeout_ms : int;
  quiet_ms : int;  (** drain quiet window after [finish] *)
  connect_timeout_ms : int;  (** per reconnection episode; 0 = unbounded *)
  chaos : Fault.Plan.t option;
      (** [crash=N\@K+R] counts {e migration-record sends} in this tier
          (deterministic given the ring); [dcrash] arms the WAL crash
          points as in the static durable tier. *)
  wal_dir : string option;  (** required for crash/recovery plans *)
  incarnation : int;
}

type result = {
  node : int;
  incarnation : int;
  ops : (Op.kind * int * Op.value) list;  (** program order *)
  writes_done : int;
  reads_done : int;
  committed_epoch : int;
  stale_epochs : int;  (** frames the epoch fence rejected at this node *)
  transfers_in : int;  (** migration records applied *)
  transfers_out : int;  (** migration records sent *)
  retries : int;  (** migration batch resends *)
  init_fallbacks : int;  (** owed variables with no surviving donor *)
  unavail_ms : int;
      (** longest proposal→ready/commit window during which this member
          owed state it could not yet serve *)
  recovered_ops : int;  (** ops replayed from the WAL on respawn *)
  wall_ms : int;
}

type wal_entry =
  | W_write of int * int * int  (** var, wseq, value *)
  | W_read of int * int option  (** var, value read ([None] = Init) *)
  | W_apply of int * int * int  (** var, wseq, value — remote or migrated *)
  | W_done of int * int  (** epoch, donor whose batch completed *)
  | W_epoch of int * int list * int list * bool
      (** epoch, members, down, committed *)
(** WAL record payloads ([Marshal]-framed), exposed so the supervisor can
    salvage a dead node's operations from its surviving log. *)

exception Crash of string

val run : config -> result
(** Run until the supervisor broadcasts [finish] (an [Epoch] frame), then
    drain and report.  A scheduled crash escapes as
    {!Repro_transport.Chaos.Injected_crash}; the supervisor maps it to
    exit 42 and respawns with [incarnation + 1].
    @raise Crash on timeout or a malformed control frame. *)

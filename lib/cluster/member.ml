module Live = Repro_transport.Live
module Wire = Repro_transport.Wire
module Chaos = Repro_transport.Chaos
module Fault = Repro_msgpass.Fault
module Ring = Repro_sharegraph.Ring
module Op = Repro_history.Op
module Wal = Repro_durable.Wal
module Fsio = Repro_durable.Fsio

let supervisor_id = 0xFFFF

type config = {
  self : int;
  n : int;
  listen_fd : Unix.file_descr;
  peers : Unix.sockaddr array;
  seed : int;
  k : int;
  vnodes : int;
  n_vars : int;
  initial_members : int list;
  writes_target : int;
  write_period_ms : int;
  hello_timeout_ms : int;
  run_timeout_ms : int;
  quiet_ms : int;
  connect_timeout_ms : int;
  chaos : Fault.Plan.t option;
  wal_dir : string option;
  incarnation : int;
}

type result = {
  node : int;
  incarnation : int;
  ops : (Op.kind * int * Op.value) list;
  writes_done : int;
  reads_done : int;
  committed_epoch : int;
  stale_epochs : int;
  transfers_in : int;
  transfers_out : int;
  retries : int;
  init_fallbacks : int;
  unavail_ms : int;
  recovered_ops : int;
  wall_ms : int;
}

exception Crash of string

let fail fmt = Printf.ksprintf (fun m -> raise (Crash m)) fmt

(* Everything that must survive a crash, appended (and fsynced, [Every 1])
   before the effect it records becomes externally visible.  That ordering
   is the whole recovery story: a write reaches the WAL before any peer
   can read it, so the reassembled history is closed under reads-from no
   matter where a crash lands. *)
type wal_entry =
  | W_write of int * int * int  (* var, wseq, value *)
  | W_read of int * int option  (* var, value read (None = Init) *)
  | W_apply of int * int * int  (* var, wseq, value — remote or migrated *)
  | W_done of int * int  (* epoch, donor whose batch completed *)
  | W_epoch of int * int list * int list * bool
      (* epoch, members, down, committed *)

(* An in-flight transition: proposal received, commit not yet. *)
type trans = {
  t_epoch : int;
  t_members : int list;
  t_down : int list;
  t_ring : Ring.t;
  mutable t_pending : int list;  (* donors still owed a [done] *)
  t_started : int;  (* now_ms at proposal, for the unavailability window *)
  t_owed : bool;  (* this member gains variables in the transition *)
  mutable t_next_query : int;
      (* next time to nudge pending donors: if receiver and donor ever
         disagree about who owes what (frames lost around a crash, a
         starved donor), the receiver pulls instead of waiting forever *)
}

(* A donor's outstanding migration batch: resent whole (idempotent by
   wseq) on a bounded exponential backoff until the receiver acks. *)
type batch = {
  b_epoch : int;
  b_receiver : int;
  b_records : (int * int * int) list;  (* var, wseq, value *)
  mutable b_next_ms : int;
  mutable b_delay_ms : int;
}

let ints_to_string is = String.concat "," (List.map string_of_int is)

let ints_of_string s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char ',' s)

let value_of_store = function None -> Op.Init | Some (_, v) -> Op.Val v

let run (cfg : config) : result =
  let t_start = Unix.gettimeofday () in
  if cfg.self < 0 || cfg.self >= cfg.n then fail "member: bad self";
  if cfg.k < 1 then fail "member: k must be >= 1";
  if cfg.n_vars < 1 then fail "member: n_vars must be >= 1";
  if cfg.initial_members = [] then fail "member: empty initial member set";
  let ring_of members =
    Ring.make ~seed:cfg.seed ~vnodes:cfg.vnodes ~members
  in
  (* --- durable state ------------------------------------------------------ *)
  let wal =
    Option.map
      (fun dir ->
        Wal.open_ ~dir ~policy:(Wal.Every 1) ~fresh:(cfg.incarnation = 0) ())
      cfg.wal_dir
  in
  (match cfg.chaos with
  | Some plan when cfg.incarnation = 0 && wal <> None ->
      Option.iter
        (fun (c : Fault.Plan.dcrash) ->
          Fsio.Crashpoint.arm ~point:c.Fault.Plan.point
            ~after:c.Fault.Plan.after_hits ~powercut:c.Fault.Plan.powercut
            (fun () -> raise (Chaos.Injected_crash cfg.self)))
        (Fault.Plan.dcrash_for plan cfg.self)
  | _ -> ());
  let wal_log e =
    match wal with
    | None -> ()
    | Some (w, _) -> ignore (Wal.append w (Marshal.to_string e []) : int)
  in
  (* --- replica state ------------------------------------------------------ *)
  let store : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let wseq : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let ops = ref [] in
  let writes_done = ref 0 in
  let reads_done = ref 0 in
  let members = ref (List.sort compare cfg.initial_members) in
  let committed = ref 0 in
  let trans : trans option ref = ref None in
  let recovered_dones : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let recovered_proposal = ref None in
  let transfers_in = ref 0 in
  let transfers_out = ref 0 in
  let retries = ref 0 in
  let init_fallbacks = ref 0 in
  let unavail_ms = ref 0 in
  let apply_record x s v =
    let fresh =
      match Hashtbl.find_opt store x with
      | Some (s0, _) -> s > s0
      | None -> true
    in
    if fresh then Hashtbl.replace store x (s, v);
    fresh
  in
  (* replay the log: reads return logged values, writes and applies are
     re-applied to the store, membership entries restore the epoch *)
  (match wal with
  | Some (_, recovered) when cfg.incarnation > 0 ->
      List.iter
        (fun (seq, payload) ->
          match (Marshal.from_string payload 0 : wal_entry) with
          | W_write (x, s, v) ->
              Hashtbl.replace wseq x s;
              ignore (apply_record x s v : bool);
              ops := Op.write ~var:x (Op.Val v) :: !ops;
              incr writes_done
          | W_read (x, vo) ->
              ops :=
                Op.read ~var:x
                  (match vo with Some v -> Op.Val v | None -> Op.Init)
                :: !ops;
              incr reads_done
          | W_apply (x, s, v) -> ignore (apply_record x s v : bool)
          | W_done (e, d) -> Hashtbl.replace recovered_dones (e, d) ()
          | W_epoch (e, ms, _, true) ->
              committed := e;
              members := ms;
              recovered_proposal := None
          | W_epoch (e, ms, dn, false) ->
              recovered_proposal := Some (e, ms, dn)
          | exception _ -> fail "member: WAL record %d undecodable" seq)
        recovered.Wal.r_entries
  | _ -> ());
  let recovered_ops = List.length !ops in
  let ring = ref (ring_of !members) in
  (* variables this member currently serves reads of *)
  let held = ref [||] in
  let refresh_held () =
    let l = ref [] in
    for x = cfg.n_vars - 1 downto 0 do
      if
        Ring.is_member !ring cfg.self
        && List.mem cfg.self (Ring.replicas !ring ~k:cfg.k x)
      then l := x :: !l
    done;
    held := Array.of_list !l
  in
  refresh_held ();
  (* --- transport ---------------------------------------------------------- *)
  let fingerprint =
    Printf.sprintf "member|n=%d|k=%d|vnodes=%d|seed=%d|vars=%d|w=%d|m=%s"
      cfg.n cfg.k cfg.vnodes cfg.seed cfg.n_vars cfg.writes_target
      (ints_to_string cfg.initial_members)
  in
  let lt =
    Live.create
      {
        Live.self = cfg.self;
        n = cfg.n;
        peers = cfg.peers;
        fingerprint;
        resilient = true;
        incarnation = cfg.incarnation;
        connect_timeout_ms = cfg.connect_timeout_ms;
      }
      ~listen_fd:cfg.listen_fd
  in
  Live.set_epoch lt !committed;
  let crash_sched =
    match cfg.chaos with
    | Some p when cfg.incarnation = 0 -> Fault.Plan.crash_for p cfg.self
    | _ -> None
  in
  let migr_sent = ref 0 in
  (* In this tier [crash=N@K] counts migration-record sends: the ring makes
     a donor's batch deterministic, so K lands the crash at an exact point
     inside the state transfer. *)
  let count_migration_send () =
    incr migr_sent;
    match crash_sched with
    | Some c when !migr_sent = c.Fault.Plan.after_sends ->
        raise (Chaos.Injected_crash cfg.self)
    | _ -> ()
  in
  let batches : batch list ref = ref [] in
  let send_batch b =
    List.iter
      (fun (x, s, v) ->
        Live.send_control lt ~dst:b.b_receiver ~kind:Wire.Transfer
          ~body:(Printf.sprintf "m|%d|%d|%d" x s v);
        incr transfers_out;
        count_migration_send ())
      b.b_records;
    Live.send_control lt ~dst:b.b_receiver ~kind:Wire.Transfer
      ~body:
        (Printf.sprintf "d|%d|%d" b.b_epoch (List.length b.b_records))
  in
  let finish_requested = ref false in
  (* --- the transition state machine -------------------------------------- *)
  let close_window tr =
    if tr.t_owed then
      unavail_ms :=
        Stdlib.max !unavail_ms (Live.now_ms lt - tr.t_started)
  in
  let on_proposal e new_members down =
    let superseded b = b.b_epoch < e in
    if e > !committed
       && (match !trans with Some tr -> e > tr.t_epoch | None -> true)
    then begin
      batches := List.filter (fun b -> not (superseded b)) !batches;
      let new_members = List.sort compare new_members in
      let new_ring = ring_of new_members in
      wal_log (W_epoch (e, new_members, down, false));
      (* receiver side: variables this proposal makes us a holder of, and
         the donors (least-id surviving old holders) we expect them from *)
      let donors = ref [] in
      let owed = ref false in
      if List.mem cfg.self new_members then
        for x = 0 to cfg.n_vars - 1 do
          let now_holds = List.mem cfg.self (Ring.replicas new_ring ~k:cfg.k x) in
          let had = List.mem cfg.self (Ring.replicas !ring ~k:cfg.k x) in
          if now_holds && not had then begin
            owed := true;
            match
              List.filter
                (fun p -> not (List.mem p down))
                (Ring.replicas !ring ~k:cfg.k x)
            with
            | [] -> incr init_fallbacks  (* no surviving donor: serve Init *)
            | d :: _ -> if not (List.mem d !donors) then donors := d :: !donors
          end
        done;
      let pending =
        List.filter
          (fun d -> not (Hashtbl.mem recovered_dones (e, d)))
          !donors
      in
      trans :=
        Some
          {
            t_epoch = e;
            t_members = new_members;
            t_down = down;
            t_ring = new_ring;
            t_pending = pending;
            t_started = Live.now_ms lt;
            t_owed = !owed;
            t_next_query = Live.now_ms lt + 500;
          };
      (* donor side: for each receiver, the variables whose least-id
         surviving old holder is this member *)
      if List.mem cfg.self !members && not (List.mem cfg.self down) then
        List.iter
          (fun r ->
            if r <> cfg.self then begin
              let records = ref [] in
              for x = cfg.n_vars - 1 downto 0 do
                let gains =
                  List.mem r (Ring.replicas new_ring ~k:cfg.k x)
                  && not (List.mem r (Ring.replicas !ring ~k:cfg.k x))
                in
                if gains then
                  match
                    List.filter
                      (fun p -> not (List.mem p down))
                      (Ring.replicas !ring ~k:cfg.k x)
                  with
                  | d :: _ when d = cfg.self -> (
                      match Hashtbl.find_opt store x with
                      | Some (s, v) -> records := (x, s, v) :: !records
                      | None -> () (* never written: receiver defaults Init *))
                  | _ -> ()
              done;
              let gains_any =
                !records <> []
                || List.exists
                     (fun x ->
                       List.mem r (Ring.replicas new_ring ~k:cfg.k x)
                       && not (List.mem r (Ring.replicas !ring ~k:cfg.k x))
                       &&
                       match
                         List.filter
                           (fun p -> not (List.mem p down))
                           (Ring.replicas !ring ~k:cfg.k x)
                       with
                       | d :: _ -> d = cfg.self
                       | [] -> false)
                     (List.init cfg.n_vars Fun.id)
              in
              if gains_any then begin
                let b =
                  {
                    b_epoch = e;
                    b_receiver = r;
                    b_records = !records;
                    b_next_ms = Live.now_ms lt + 150;
                    b_delay_ms = 150;
                  }
                in
                batches := b :: !batches;
                send_batch b
              end
            end)
          new_members
    end
  in
  let on_commit e new_members =
    if e > !committed then begin
      (match !trans with
      | Some tr when tr.t_epoch = e ->
          close_window tr;
          committed := e;
          members := tr.t_members;
          ring := tr.t_ring;
          wal_log (W_epoch (e, tr.t_members, tr.t_down, true));
          trans := None
      | _ ->
          (* missed the proposal (we were down): adopt the committed
             membership without migration — surviving replicas keep
             serving, our copies degrade to what we have *)
          let ms = List.sort compare new_members in
          committed := e;
          members := ms;
          ring := ring_of ms;
          wal_log (W_epoch (e, ms, [], true));
          trans := None);
      refresh_held ();
      Live.set_epoch lt e
    end
  in
  let on_done ~donor e =
    (match !trans with
    | Some tr when tr.t_epoch = e && List.mem donor tr.t_pending ->
        wal_log (W_done (e, donor));
        tr.t_pending <- List.filter (fun d -> d <> donor) tr.t_pending;
        if tr.t_pending = [] then close_window tr
    | _ -> ());
    (* always ack: the donor retries until it hears one, and a duplicate
       [done] means the previous ack was lost *)
    if donor >= 0 && donor < cfg.n then
      Live.send_control lt ~dst:donor ~kind:Wire.Transfer
        ~body:(Printf.sprintf "a|%d" e)
  in
  let on_ack ~receiver e =
    batches :=
      List.filter
        (fun b -> not (b.b_epoch = e && b.b_receiver = receiver))
        !batches
  in
  (* --- control frames ----------------------------------------------------- *)
  let parse_proposal body =
    match String.split_on_char '|' body with
    | [ e; ms; dn ] -> (
        try (int_of_string e, ints_of_string ms, ints_of_string dn)
        with _ -> fail "member: bad proposal %S" body)
    | _ -> fail "member: bad proposal %S" body
  in
  let ready () =
    match !trans with Some tr -> tr.t_pending = [] | None -> false
  in
  Live.set_control_handler lt (fun ~reply (v : Wire.view) ->
      let body = Bytes.sub_string v.Wire.v_buf v.Wire.v_off v.Wire.v_len in
      match v.Wire.v_kind with
      | Wire.Ping ->
          reply ~kind:Wire.Pong ~dst:v.Wire.v_src
            ~body:
              (Printf.sprintf "e=%d;p=%d;r=%d;w=%d;s=%d" !committed
                 (match !trans with Some tr -> tr.t_epoch | None -> 0)
                 (if ready () then 1 else 0)
                 !writes_done (Live.stale_epochs lt))
      | Wire.Join | Wire.Leave ->
          let e, ms, dn = parse_proposal body in
          on_proposal e ms dn
      | Wire.Epoch -> (
          match String.split_on_char '|' body with
          | "finish" :: _ -> finish_requested := true
          | [ "commit"; e; ms ] -> (
              try on_commit (int_of_string e) (ints_of_string ms)
              with Crash _ as c -> raise c)
          | _ -> fail "member: bad epoch frame %S" body)
      | Wire.Transfer -> (
          match String.split_on_char '|' body with
          | [ "u"; x; s; vv ] ->
              let x = int_of_string x
              and s = int_of_string s
              and vv = int_of_string vv in
              if
                match Hashtbl.find_opt store x with
                | Some (s0, _) -> s > s0
                | None -> true
              then begin
                wal_log (W_apply (x, s, vv));
                Hashtbl.replace store x (s, vv)
              end
          | [ "m"; x; s; vv ] ->
              let x = int_of_string x
              and s = int_of_string s
              and vv = int_of_string vv in
              if
                match Hashtbl.find_opt store x with
                | Some (s0, _) -> s > s0
                | None -> true
              then begin
                wal_log (W_apply (x, s, vv));
                Hashtbl.replace store x (s, vv);
                incr transfers_in
              end
          | "d" :: e :: _ -> on_done ~donor:v.Wire.v_src (int_of_string e)
          | [ "a"; e ] -> on_ack ~receiver:v.Wire.v_src (int_of_string e)
          | [ "q"; e ] ->
              (* a receiver still waiting on us for epoch [e]: resend the
                 batch if we hold one, or answer an empty [done] if we
                 have processed the proposal and owe nothing — but stay
                 silent if the proposal has not reached us yet, so a
                 premature reply can never release the receiver before
                 the records exist *)
              let e = int_of_string e in
              let receiver = v.Wire.v_src in
              (match
                 List.find_opt
                   (fun b -> b.b_epoch = e && b.b_receiver = receiver)
                   !batches
               with
              | Some b -> send_batch b
              | None ->
                  let seen =
                    !committed >= e
                    || match !trans with
                       | Some tr -> tr.t_epoch >= e
                       | None -> false
                  in
                  if seen && receiver >= 0 && receiver < cfg.n then
                    Live.send_control lt ~dst:receiver ~kind:Wire.Transfer
                      ~body:(Printf.sprintf "d|%d|0" e))
          | _ -> fail "member: bad transfer frame %S" body)
      | Wire.Pong -> ()
      | _ -> ());
  Live.wait_peers lt ~timeout_ms:cfg.hello_timeout_ms;
  (* a respawned node that died mid-transition resumes it: the receiver
     side re-derives the donors it still owes an ack (minus logged dones),
     the donor side rebuilds and resends its batches (idempotent) *)
  (match !recovered_proposal with
  | Some (e, ms, dn) when e > !committed -> on_proposal e ms dn
  | _ -> ());
  (* --- the workload: fixed-writer paced writes, reads over held vars ------ *)
  let own_vars =
    Array.of_list
      (List.filter (fun x -> x mod cfg.n = cfg.self)
         (List.init cfg.n_vars Fun.id))
  in
  let next_write = ref 0 in
  let read_cursor = ref 0 in
  let targets_of x =
    let cur = Ring.replicas !ring ~k:cfg.k x in
    let next =
      match !trans with
      | Some tr -> Ring.replicas tr.t_ring ~k:cfg.k x
      | None -> []
    in
    List.sort_uniq compare (cur @ next)
  in
  let do_write () =
    if Array.length own_vars > 0 then begin
      let x = own_vars.(!writes_done mod Array.length own_vars) in
      let s = (match Hashtbl.find_opt wseq x with Some s -> s | None -> 0) + 1 in
      let v = (x * 1_000_000) + s in
      wal_log (W_write (x, s, v));
      Hashtbl.replace wseq x s;
      ignore (apply_record x s v : bool);
      ops := Op.write ~var:x (Op.Val v) :: !ops;
      incr writes_done;
      List.iter
        (fun dst ->
          if dst <> cfg.self then
            Live.send_control lt ~dst ~kind:Wire.Transfer
              ~body:(Printf.sprintf "u|%d|%d|%d" x s v))
        (targets_of x)
    end
    else incr writes_done
  in
  let do_read () =
    if Array.length !held > 0 then begin
      let x = !held.(!read_cursor mod Array.length !held) in
      incr read_cursor;
      let stored = Hashtbl.find_opt store x in
      wal_log
        (W_read (x, match stored with Some (_, v) -> Some v | None -> None));
      ops := Op.read ~var:x (value_of_store stored) :: !ops;
      incr reads_done
    end
  in
  let deadline = cfg.run_timeout_ms in
  (try
     while not !finish_requested do
       ignore (Live.step lt ~block:true : bool);
       let now = Live.now_ms lt in
       if now > deadline then fail "member: run timeout";
       if now >= !next_write && !writes_done < cfg.writes_target then begin
         next_write := now + cfg.write_period_ms;
         do_write ();
         do_read ()
       end;
       (* bounded-backoff retransmission of unacked migration batches *)
       List.iter
         (fun b ->
           if now >= b.b_next_ms then begin
             b.b_delay_ms <- Stdlib.min 1_600 (b.b_delay_ms * 2);
             b.b_next_ms <- now + b.b_delay_ms;
             incr retries;
             send_batch b
           end)
         !batches;
       (* pull from donors still owed a [done]: heals any receiver/donor
          disagreement about the migration plan instead of wedging *)
       (match !trans with
       | Some tr when tr.t_pending <> [] && now >= tr.t_next_query ->
           tr.t_next_query <- now + 400;
           List.iter
             (fun d ->
               if d >= 0 && d < cfg.n && d <> cfg.self then
                 Live.send_control lt ~dst:d ~kind:Wire.Transfer
                   ~body:(Printf.sprintf "q|%d" tr.t_epoch))
             tr.t_pending
       | _ -> ())
     done
   with Chaos.Injected_crash _ as c ->
     (match wal with Some (w, _) -> (try Wal.close w with _ -> ()) | None -> ());
     raise c);
  Live.finish_program lt;
  Live.drain lt ~quiet_ms:cfg.quiet_ms ~max_ms:(cfg.quiet_ms + 2_000);
  let stale = Live.stale_epochs lt in
  Live.close lt;
  (match wal with Some (w, _) -> Wal.close w | None -> ());
  {
    node = cfg.self;
    incarnation = cfg.incarnation;
    ops = List.rev !ops;
    writes_done = !writes_done;
    reads_done = !reads_done;
    committed_epoch = !committed;
    stale_epochs = stale;
    transfers_in = !transfers_in;
    transfers_out = !transfers_out;
    retries = !retries;
    init_fallbacks = !init_fallbacks;
    unavail_ms = !unavail_ms;
    recovered_ops;
    wall_ms = int_of_float ((Unix.gettimeofday () -. t_start) *. 1000.);
  }

(** One live replica: a whole protocol instance hosted in this process,
    with only node [self] active.

    Protocols allocate all-[n] state, but node [p]'s behaviour depends
    only on its own state slice plus incoming messages — so a process
    builds the full instance over a [Node self] transport, runs its
    workload slice as a fiber, and the other nodes' arrays simply stay
    at their initial values. *)

type result = {
  node : int;
  ops : Repro_core.Runner.entry list;  (** program order *)
  finals : (int * Repro_history.Op.value) list;
      (** The workload's [final_vars], read after the drain. *)
  metrics : Repro_core.Memory.metrics;
      (** This node's share of the accounting: its sends, its deliveries,
          its declared control/payload bytes. *)
  wall_ms : int;
}

exception Crash of string
(** Raised on timeout (peers missing, program stuck), protocol rejection
    (blocking protocols need a node for every fiber they suspend on),
    fingerprint mismatch, or a corrupt stream. *)

val run :
  self:int ->
  listen_fd:Unix.file_descr ->
  peers:Unix.sockaddr array ->
  protocol:Repro_core.Registry.spec ->
  workload:Workload_spec.t ->
  seed:int ->
  ?hello_timeout_ms:int ->
  ?run_timeout_ms:int ->
  ?quiet_ms:int ->
  unit ->
  result
(** Defaults: 10 s hello timeout, 60 s run timeout, 150 ms quiet window.
    The [seed] only stamps the fingerprint here — workload scripts were
    already drawn when [workload] was built. *)

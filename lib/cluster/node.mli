(** One live replica: a whole protocol instance hosted in this process,
    with only node [self] active.

    Protocols allocate all-[n] state, but node [p]'s behaviour depends
    only on its own state slice plus incoming messages — so a process
    builds the full instance over a [Node self] transport, runs its
    workload slice as a fiber, and the other nodes' arrays simply stay
    at their initial values.

    The transport stack grows inward from the wire:
    [Live] backend → {!Repro_transport.Chaos} (when a plan is given) →
    {!Repro_transport.Session} (when [session], forced on under chaos) →
    protocol.  Chaos is injected {e below} the session layer, so injected
    drops and duplicates exercise the retransmission machinery exactly as
    wire faults would. *)

type result = {
  node : int;
  incarnation : int;  (** 0 first launch; [k] after the [k]-th respawn. *)
  ops : Repro_core.Runner.entry list;  (** program order *)
  finals : (int * Repro_history.Op.value) list;
      (** The workload's [final_vars], read after the drain. *)
  metrics : Repro_core.Memory.metrics;
      (** This node's share of the accounting: its sends, its deliveries,
          its declared control/payload bytes.  Under a session layer these
          are protocol-level numbers (first transmissions only);
          reliability traffic is in [metrics.overhead_bytes] and the
          [wire] counters. *)
  wire : Repro_msgpass.Net.stats;
      (** Wire-level view: injected drops/duplicates folded in, session
          retransmits / suppressed duplicates, live-link reconnects. *)
  session_stats : Repro_transport.Session.stats option;
      (** Full session-layer counters (frames, piggybacked acks,
          coalescing) when a session layer ran; [None] otherwise. *)
  client_ops : int;
      (** Operations served through the client front door (batch ops
          counted individually). *)
  wall_ms : int;
  wal_stats : Repro_durable.Wal.stats option;
      (** Append/sync/rotation counters when the durability tier ran. *)
  recovered_ops : int;
      (** Ops seeded by recovery (checkpoint + WAL tail); 0 on a first
          incarnation. *)
  recovered_digest : string option;
      (** On a respawned durable node: {!Oplog.digest} over the recovered
          prefix of [ops] as actually replayed — the supervisor compares it
          against an independent decode of the surviving WAL files. *)
}

exception Crash of string
(** Raised on timeout (peers missing, program stuck), protocol rejection
    (blocking protocols need a node for every fiber they suspend on),
    fingerprint mismatch, a corrupt stream, or replay divergence during
    crash recovery. *)

val run :
  self:int ->
  listen_fd:Unix.file_descr ->
  peers:Unix.sockaddr array ->
  protocol:Repro_core.Registry.spec ->
  workload:Workload_spec.t ->
  seed:int ->
  ?hello_timeout_ms:int ->
  ?run_timeout_ms:int ->
  ?quiet_ms:int ->
  ?connect_timeout_ms:int ->
  ?chaos:Repro_msgpass.Fault.Plan.t ->
  ?session:bool ->
  ?coalesce:int ->
  ?checkpoint:string ->
  ?checkpoint_every_ms:int ->
  ?incarnation:int ->
  ?gc_space_overhead:int ->
  ?durable:string * Repro_durable.Wal.fsync_policy ->
  unit ->
  result
(** Defaults: 10 s hello timeout, 60 s run timeout, 150 ms quiet window
    (raised to ≥600 ms under chaos — the quiet window must outlast a full
    retransmission backoff).  [connect_timeout_ms] caps each reconnection
    episode to a dead peer (0 = retry until the run timeout; see
    {!Repro_transport.Live.config}).  The [seed] stamps the fingerprint and seeds
    the session layer's jitter; workload scripts were already drawn when
    [workload] was built.  [coalesce > 1] sets the session layer's flush
    budget (forcing the session layer on); peers with different budgets
    still interoperate — the wire type is unchanged.

    Every node serves the client front door: [Creq] frames on any accepted
    connection are answered with [Cresp] on the same connection, reads and
    writes applied to this replica's memory.  Client traffic stays outside
    the peer mesh and its protocol-level accounting.

    [checkpoint] is a file path: the node writes a checkpoint there before
    opening traffic, every [checkpoint_every_ms] (default 100) after, and
    when its program finishes — each write followed by
    [Session.mark_stable], so peers' acks never cover state a crash would
    roll back.  With [incarnation > 0] the node restores from that file
    and replays its operation log (reads return logged values, writes are
    suppressed) until it reaches the crash point, then continues live.
    Requires a protocol with snapshot/restore support.

    [durable = (dir, policy)] engages the durability tier instead: every
    recorded op is appended to a write-ahead log in [dir] (fsynced per the
    group-commit [policy]) and checkpoints compact the log through the
    crash-safe rotation protocol ({!Repro_durable.Wal}).  Recovery rebuilds
    state as checkpoint + WAL-tail replay: tail reads return logged values,
    tail writes are re-applied to memory (their effects postdate the
    snapshot), and the first live op waits until session redeliveries reach
    the delivery watermark the last tail record logged.  When the chaos
    plan carries a [dcrash] schedule for this node, the named crash point
    is armed inside the WAL write path (first incarnation only).
    [durable] takes precedence over [checkpoint].

    A scheduled crash from the chaos plan escapes as
    {!Repro_transport.Chaos.Injected_crash}; the caller decides whether to
    respawn (the cluster harness maps it to exit code 42).

    [gc_space_overhead] sets [Gc.space_overhead] for this process before
    any traffic (the hot-path experiments' GC knob: lower = tighter heap +
    more collector work, higher = fewer collections).  Raises {!Crash}
    when < 1. *)

module Live = Repro_transport.Live
module History = Repro_history.History
module Checker = Repro_history.Checker
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Runner = Repro_core.Runner

type outcome = {
  protocol : string;
  workload : string;
  n : int;
  seed : int;
  history : History.t;
  criterion : Checker.criterion;
  verdict : Checker.verdict;
  history_checked : bool;
  finals : (unit, string) result;
  node_results : Node.result array;
  messages_sent : int;
  control_bytes : int;
  payload_bytes : int;
  wall_ms : int;
}

(* what travels over the child's pipe *)
type report = Finished of Node.result | Crashed of string

let loopback = Unix.inet_addr_loopback

let child_main ~self ~listen_fds ~peers ~protocol ~spec ~seed ~timeouts wfd =
  let hello_timeout_ms, run_timeout_ms, quiet_ms = timeouts in
  Array.iteri (fun i fd -> if i <> self then try Unix.close fd with Unix.Unix_error _ -> ()) listen_fds;
  let report =
    try
      Finished
        (Node.run ~self ~listen_fd:listen_fds.(self) ~peers ~protocol
           ~workload:spec ~seed ?hello_timeout_ms ?run_timeout_ms ?quiet_ms ())
    with
    | Node.Crash msg -> Crashed msg
    | e -> Crashed (Printexc.to_string e)
  in
  (try
     let oc = Unix.out_channel_of_descr wfd in
     Marshal.to_channel oc (report : report) [];
     flush oc
   with _ -> ());
  Unix._exit (match report with Finished _ -> 0 | Crashed _ -> 1)

let run ~n ~protocol ~workload ~seed ?hello_timeout_ms ?run_timeout_ms ?quiet_ms
    () =
  match Workload_spec.make ~name:workload ~n ~seed with
  | Error _ as e -> e
  | Ok spec -> (
      if protocol.Registry.blocking then
        Error
          (Printf.sprintf
             "protocol %s has blocking operations; only non-blocking protocols \
              run live"
             protocol.Registry.name)
      else
        try
          let listen_fds =
            Array.init n (fun _ -> Live.bind (Unix.ADDR_INET (loopback, 0)))
          in
          let peers = Array.map Live.listen_addr listen_fds in
          let timeouts = (hello_timeout_ms, run_timeout_ms, quiet_ms) in
          (* children inherit OCaml's output buffers: flush now or crash
             reports get double-printed *)
          flush stdout;
          flush stderr;
          let children =
            Array.init n (fun self ->
                let rfd, wfd = Unix.pipe () in
                match Unix.fork () with
                | 0 ->
                    Unix.close rfd;
                    child_main ~self ~listen_fds ~peers ~protocol ~spec ~seed
                      ~timeouts wfd
                | pid ->
                    Unix.close wfd;
                    (pid, rfd))
          in
          Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listen_fds;
          let reports =
            Array.map
              (fun (_, rfd) ->
                let ic = Unix.in_channel_of_descr rfd in
                let report =
                  try (Marshal.from_channel ic : report)
                  with End_of_file | Failure _ ->
                    Crashed "exited without reporting"
                in
                close_in_noerr ic;
                report)
              children
          in
          Array.iter
            (fun (pid, _) ->
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            children;
          let crashes =
            Array.to_list reports
            |> List.mapi (fun i r ->
                   match r with
                   | Crashed msg -> Some (Printf.sprintf "node %d: %s" i msg)
                   | Finished _ -> None)
            |> List.filter_map Fun.id
          in
          if crashes <> [] then Error (String.concat "\n" crashes)
          else
            let node_results =
              Array.map
                (function Finished r -> r | Crashed _ -> assert false)
                reports
            in
            let history =
              History.of_lists
                (Array.to_list node_results
                |> List.map (fun r ->
                       List.map
                         (fun (kind, var, value, _, _) -> (kind, var, value))
                         r.Node.ops))
            in
            let finals =
              spec.Workload_spec.check_finals
                (Array.map (fun r -> r.Node.finals) node_results)
            in
            let sum f =
              Array.fold_left (fun acc r -> acc + f r.Node.metrics) 0 node_results
            in
            Ok
              {
                protocol = protocol.Registry.name;
                workload = spec.Workload_spec.name;
                n;
                seed;
                history;
                criterion = protocol.Registry.guarantees;
                verdict = Checker.check protocol.Registry.guarantees history;
                history_checked = spec.Workload_spec.differentiated;
                finals;
                node_results;
                messages_sent = sum (fun m -> m.Memory.messages_sent);
                control_bytes = sum (fun m -> m.Memory.control_bytes);
                payload_bytes = sum (fun m -> m.Memory.payload_bytes);
                wall_ms =
                  Array.fold_left
                    (fun acc r -> Stdlib.max acc r.Node.wall_ms)
                    0 node_results;
              }
        with Unix.Unix_error (err, fn, _) ->
          Error (Printf.sprintf "harness: %s failed: %s" fn (Unix.error_message err)))

type baseline = { history : History.t; metrics : Memory.metrics }

let sim_baseline ~n ~protocol ~workload ~seed =
  match Workload_spec.make ~name:workload ~n ~seed with
  | Error _ as e -> e
  | Ok spec ->
      let memory =
        protocol.Registry.make ~dist:spec.Workload_spec.dist ~seed ()
      in
      let history =
        Runner.run memory ~programs:spec.Workload_spec.programs
      in
      Ok { history; metrics = memory.Memory.metrics () }

module Live = Repro_transport.Live
module Chaos = Repro_transport.Chaos
module Session = Repro_transport.Session
module Transport = Repro_transport.Transport
module Fault = Repro_msgpass.Fault
module Latency = Repro_msgpass.Latency
module Net = Repro_msgpass.Net
module History = Repro_history.History
module Checker = Repro_history.Checker
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Runner = Repro_core.Runner
module Wal = Repro_durable.Wal

type outcome = {
  protocol : string;
  workload : string;
  n : int;
  seed : int;
  history : History.t;
  criterion : Checker.criterion;
  verdict : Checker.verdict;
  history_checked : bool;
  finals : (unit, string) result;
  node_results : Node.result array;
  messages_sent : int;
  control_bytes : int;
  payload_bytes : int;
  overhead_bytes : int;
  retransmits : int;
  dups_suppressed : int;
  dropped_frames : int;
  reconnects : int;
  restarts : int;
  chaos : string;
  session : bool;
  wall_ms : int;
  durable : bool;
  wal_parity : bool;
  wal_dir : string option;
}

(* what travels over the child's pipe *)
type report = Finished of Node.result | Crashed of string

let loopback = Unix.inet_addr_loopback

let child_main ~self ~listen_fds ~peers ~protocol ~spec ~seed ~timeouts ~chaos
    ~session ~checkpoint ~checkpoint_every_ms ~incarnation ~gc_space_overhead
    ~durable wfd =
  let hello_timeout_ms, run_timeout_ms, quiet_ms, connect_timeout_ms =
    timeouts
  in
  Array.iteri
    (fun i fd ->
      if i <> self then try Unix.close fd with Unix.Unix_error _ -> ())
    listen_fds;
  let report =
    try
      Finished
        (Node.run ~self ~listen_fd:listen_fds.(self) ~peers ~protocol
           ~workload:spec ~seed ?hello_timeout_ms ?run_timeout_ms ?quiet_ms
           ?connect_timeout_ms ?chaos ~session ?checkpoint
           ?checkpoint_every_ms ~incarnation ?gc_space_overhead ?durable ())
    with
    | Chaos.Injected_crash _ ->
        (* die like a real crash: no report, no cleanup — the supervisor
           recognizes the status and respawns from the checkpoint *)
        Unix._exit 42
    | Node.Crash msg -> Crashed msg
    | e -> Crashed (Printexc.to_string e)
  in
  (try
     let oc = Unix.out_channel_of_descr wfd in
     Marshal.to_channel oc (report : report) [];
     flush oc
   with _ -> ());
  Unix._exit (match report with Finished _ -> 0 | Crashed _ -> 1)

(* Supervisor bookkeeping for one node slot across respawns. *)
type slot = {
  mutable pid : int;
  mutable rfd : Unix.file_descr;
  buf : Buffer.t;
  mutable eof : bool;
  mutable status : Unix.process_status option;
  mutable incarnation : int;
  mutable restarts : int;
  mutable respawn_at : float option;
  mutable final : report option;
  mutable expected_digest : (string, string) result option;
      (* digest of the WAL contents that survived the crash, computed from
         a frozen copy before the respawn; the recovered node must
         reproduce it bit-for-bit *)
}

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* Freeze a crashed node's WAL directory: byte-for-byte copies of exactly
   the files that survived, taken before the respawned child may touch
   them, and the digest oracle the recovered node must match. *)
let freeze_wal ~src ~dst =
  rm_rf dst;
  (try Unix.mkdir dst 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter
    (fun f ->
      let sp = Filename.concat src f in
      if not (Sys.is_directory sp) then begin
        let data = In_channel.with_open_bin sp In_channel.input_all in
        Out_channel.with_open_bin (Filename.concat dst f) (fun oc ->
            Out_channel.output_string oc data)
      end)
    (Sys.readdir src);
  match Wal.load ~dir:dst with
  | Error e -> Error (Printf.sprintf "surviving WAL unrecoverable: %s" e)
  | Ok r ->
      let entries =
        List.filter_map
          (fun (_, payload) ->
            match Oplog.decode payload with
            | Ok (e, _) -> Some e
            | Error _ -> None)
          r.Wal.r_entries
      in
      if List.length entries <> List.length r.Wal.r_entries then
        Error "surviving WAL holds undecodable op records"
      else Ok (Oplog.digest ~ck:r.Wal.r_checkpoint ~entries)

let run ~n ~protocol ~workload ~seed ?hello_timeout_ms ?run_timeout_ms
    ?quiet_ms ?connect_timeout_ms ?deadline_ms ?chaos ?(session = false)
    ?checkpoint_every_ms ?gc_space_overhead ?durable ?wal_dir () =
  let chaos =
    match chaos with Some p when Fault.Plan.is_none p -> None | c -> c
  in
  let session = session || chaos <> None in
  let plan_error =
    match chaos with
    | None -> None
    | Some p -> (
        try
          Fault.Plan.validate ~n p;
          if p.Fault.Plan.dcrashes <> [] && durable = None then
            Some
              "chaos plan: a dcrash schedule needs the durability tier \
               (pass a fsync policy)"
          else None
        with Invalid_argument msg -> Some ("chaos plan: " ^ msg))
  in
  match plan_error with
  | Some msg -> Error msg
  | None -> (
      match Workload_spec.make ~name:workload ~n ~seed with
      | Error _ as e -> e
      | Ok spec -> (
          if protocol.Registry.blocking then
            Error
              (Printf.sprintf
                 "protocol %s has blocking operations; only non-blocking \
                  protocols run live"
                 protocol.Registry.name)
          else
            try
              let listen_fds =
                Array.init n (fun _ -> Live.bind (Unix.ADDR_INET (loopback, 0)))
              in
              let peers = Array.map Live.listen_addr listen_fds in
              let timeouts =
                (hello_timeout_ms, run_timeout_ms, quiet_ms, connect_timeout_ms)
              in
              let has_crashes =
                match chaos with
                | Some p ->
                    p.Fault.Plan.crashes <> [] || p.Fault.Plan.dcrashes <> []
                | None -> false
              in
              let ck_dir =
                if has_crashes && durable = None then begin
                  let dir =
                    Filename.concat
                      (Filename.get_temp_dir_name ())
                      (Printf.sprintf "repro-cluster-ck-%d" (Unix.getpid ()))
                  in
                  (try Unix.mkdir dir 0o700
                   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                  Some dir
                end
                else None
              in
              let ck_path self =
                Option.map
                  (fun d ->
                    Filename.concat d (Printf.sprintf "node-%d.ck" self))
                  ck_dir
              in
              let wal_root =
                match durable with
                | None -> None
                | Some _ ->
                    let dir =
                      match wal_dir with
                      | Some d -> d
                      | None ->
                          Filename.concat
                            (Filename.get_temp_dir_name ())
                            (Printf.sprintf "repro-cluster-wal-%d"
                               (Unix.getpid ()))
                    in
                    (try Unix.mkdir dir 0o700
                     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                    Some dir
              in
              let node_wal self =
                Option.map
                  (fun d ->
                    Filename.concat d (Printf.sprintf "node-%d.wal" self))
                  wal_root
              in
              let node_durable self =
                match (durable, node_wal self) with
                | Some policy, Some dir -> Some (dir, policy)
                | _ -> None
              in
              let spawn self incarnation =
                (* children inherit OCaml's output buffers: flush now or
                   crash reports get double-printed *)
                flush stdout;
                flush stderr;
                let rfd, wfd = Unix.pipe () in
                match Unix.fork () with
                | 0 ->
                    Unix.close rfd;
                    child_main ~self ~listen_fds ~peers ~protocol ~spec ~seed
                      ~timeouts ~chaos ~session ~checkpoint:(ck_path self)
                      ~checkpoint_every_ms ~incarnation ~gc_space_overhead
                      ~durable:(node_durable self) wfd
                | pid ->
                    Unix.close wfd;
                    (pid, rfd)
              in
              let slots =
                Array.init n (fun self ->
                    let pid, rfd = spawn self 0 in
                    {
                      pid;
                      rfd;
                      buf = Buffer.create 4096;
                      eof = false;
                      status = None;
                      incarnation = 0;
                      restarts = 0;
                      respawn_at = None;
                      final = None;
                      expected_digest = None;
                    })
              in
              (* Under chaos the parent keeps the listeners open: a peer
                 redialing a crashed node must land in the backlog instead
                 of getting ECONNREFUSED forever, and the respawned child
                 re-inherits the very same socket. *)
              let keep_listeners = chaos <> None in
              if not keep_listeners then
                Array.iter
                  (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                  listen_fds;
              let restart_delay self =
                match chaos with
                | None -> None
                | Some p -> (
                    match Fault.Plan.crash_for p self with
                    | Some c -> c.Fault.Plan.restart_after
                    | None -> (
                        match Fault.Plan.dcrash_for p self with
                        | Some c -> c.Fault.Plan.drestart_after
                        | None -> None))
              in
              (* watchdog: a wedged run (a child that neither reports nor
                 exits — stuck barrier, dead-peer redial loop) must fail in
                 bounded time, distinguishably from an ordinary crash *)
              let deadline =
                Unix.gettimeofday ()
                +.
                match deadline_ms with
                | Some d -> float d /. 1000.
                | None ->
                    (float (Option.value run_timeout_ms ~default:60_000)
                     /. 1000.)
                    +. 30.
              in
              let wedged = ref false in
              let all_final () =
                Array.for_all (fun s -> s.final <> None) slots
              in
              let chunk = Bytes.create 65536 in
              while (not (all_final ())) && Unix.gettimeofday () < deadline do
                (* 1. respawns that have come due *)
                let now = Unix.gettimeofday () in
                Array.iteri
                  (fun self s ->
                    match s.respawn_at with
                    | Some t when now >= t ->
                        s.respawn_at <- None;
                        s.incarnation <- s.incarnation + 1;
                        s.restarts <- s.restarts + 1;
                        let pid, rfd = spawn self s.incarnation in
                        s.pid <- pid;
                        s.rfd <- rfd;
                        Buffer.clear s.buf;
                        s.eof <- false;
                        s.status <- None
                    | _ -> ())
                  slots;
                (* 2. drain report pipes without ever blocking on one child
                   (a >pipe-buffer report would deadlock a blocking read
                   ordering) *)
                let live_slots =
                  Array.to_list slots
                  |> List.filter (fun s ->
                         s.final = None && s.respawn_at = None && not s.eof)
                in
                let timeout =
                  let next =
                    Array.fold_left
                      (fun acc s ->
                        match s.respawn_at with
                        | Some t -> Float.min acc t
                        | None -> acc)
                      infinity slots
                  in
                  if next = infinity then 0.2
                  else Float.max 0.01 (Float.min 0.2 (next -. now))
                in
                let ready =
                  match live_slots with
                  | [] ->
                      Unix.sleepf timeout;
                      []
                  | _ -> (
                      let fds = List.map (fun s -> s.rfd) live_slots in
                      match Unix.select fds [] [] timeout with
                      | ready, _, _ -> ready
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> [])
                in
                List.iter
                  (fun fd ->
                    match
                      List.find_opt (fun s -> s.rfd = fd) live_slots
                    with
                    | None -> ()
                    | Some s -> (
                        match Unix.read fd chunk 0 (Bytes.length chunk) with
                        | 0 ->
                            s.eof <- true;
                            (try Unix.close fd with Unix.Unix_error _ -> ())
                        | k -> Buffer.add_subbytes s.buf chunk 0 k
                        | exception Unix.Unix_error _ ->
                            s.eof <- true;
                            (try Unix.close fd with Unix.Unix_error _ -> ())))
                  ready;
                (* 3. reap exits *)
                Array.iter
                  (fun s ->
                    if s.final = None && s.respawn_at = None && s.status = None
                    then
                      match Unix.waitpid [ Unix.WNOHANG ] s.pid with
                      | 0, _ -> ()
                      | _, st -> s.status <- Some st
                      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                          s.status <- Some (Unix.WEXITED 255))
                  slots;
                (* 4. finalize slots whose pipe closed and process exited *)
                Array.iteri
                  (fun self s ->
                    if
                      s.final = None && s.respawn_at = None && s.eof
                      && s.status <> None
                    then
                      match s.status with
                      | Some (Unix.WEXITED 42) -> (
                          match restart_delay self with
                          | Some d when s.incarnation = 0 ->
                              (* durable tier: freeze exactly what the crash
                                 left on disk, before the respawn can touch
                                 it, and remember the digest the recovered
                                 node must reproduce *)
                              (match node_wal self with
                              | Some src when Sys.file_exists src ->
                                  s.expected_digest <-
                                    Some
                                      (freeze_wal ~src ~dst:(src ^ ".crash"))
                              | _ -> ());
                              s.respawn_at <-
                                Some
                                  (Unix.gettimeofday () +. (float d /. 1000.))
                          | _ ->
                              s.final <-
                                Some
                                  (Crashed
                                     "injected crash (no restart scheduled)"))
                      | Some st ->
                          let report =
                            try
                              (Marshal.from_string (Buffer.contents s.buf) 0
                                : report)
                            with _ ->
                              Crashed
                                (Printf.sprintf "exited without reporting (%s)"
                                   (match st with
                                   | Unix.WEXITED c ->
                                       Printf.sprintf "exit %d" c
                                   | Unix.WSIGNALED sg ->
                                       Printf.sprintf "signal %d" sg
                                   | Unix.WSTOPPED sg ->
                                       Printf.sprintf "stopped %d" sg))
                          in
                          s.final <- Some report
                      | None -> ())
                  slots
              done;
              (* deadline expiry: put the remaining children down *)
              Array.iter
                (fun s ->
                  if s.final = None then begin
                    wedged := true;
                    (try Unix.kill s.pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    (try ignore (Unix.waitpid [] s.pid)
                     with Unix.Unix_error _ -> ());
                    (try Unix.close s.rfd with Unix.Unix_error _ -> ());
                    s.final <- Some (Crashed "supervisor watchdog expired")
                  end)
                slots;
              if keep_listeners then
                Array.iter
                  (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                  listen_fds;
              Option.iter
                (fun d ->
                  Array.iteri
                    (fun self _ ->
                      let p = Filename.concat d (Printf.sprintf "node-%d.ck" self) in
                      List.iter
                        (fun f -> try Sys.remove f with Sys_error _ -> ())
                        [ p; p ^ ".tmp" ])
                    slots;
                  try Unix.rmdir d with Unix.Unix_error _ -> ())
                ck_dir;
              (* a caller-named WAL root is kept for post-mortem inspection
                 (repro wal); the anonymous tmp root is not *)
              if wal_dir = None then Option.iter rm_rf wal_root;
              let reports =
                Array.map (fun s -> Option.get s.final) slots
              in
              let crashes =
                Array.to_list reports
                |> List.mapi (fun i r ->
                       match r with
                       | Crashed msg -> Some (Printf.sprintf "node %d: %s" i msg)
                       | Finished _ -> None)
                |> List.filter_map Fun.id
              in
              if crashes <> [] then
                Error
                  ((if !wedged then "wedged: " else "")
                  ^ String.concat "\n" crashes)
              else
                let node_results =
                  Array.map
                    (function Finished r -> r | Crashed _ -> assert false)
                    reports
                in
                let history =
                  History.of_lists
                    (Array.to_list node_results
                    |> List.map (fun r ->
                           List.map
                             (fun (kind, var, value, _, _) ->
                               (kind, var, value))
                             r.Node.ops))
                in
                let finals =
                  spec.Workload_spec.check_finals
                    (Array.map (fun r -> r.Node.finals) node_results)
                in
                let sum f =
                  Array.fold_left
                    (fun acc r -> acc + f r.Node.metrics)
                    0 node_results
                in
                let wsum f =
                  Array.fold_left
                    (fun acc r -> acc + f r.Node.wire)
                    0 node_results
                in
                Ok
                  {
                    protocol = protocol.Registry.name;
                    workload = spec.Workload_spec.name;
                    n;
                    seed;
                    history;
                    criterion = protocol.Registry.guarantees;
                    verdict = Checker.check protocol.Registry.guarantees history;
                    history_checked = spec.Workload_spec.differentiated;
                    finals;
                    node_results;
                    messages_sent = sum (fun m -> m.Memory.messages_sent);
                    control_bytes = sum (fun m -> m.Memory.control_bytes);
                    payload_bytes = sum (fun m -> m.Memory.payload_bytes);
                    overhead_bytes = wsum (fun w -> w.Net.overhead_bytes);
                    retransmits = wsum (fun w -> w.Net.retransmits);
                    dups_suppressed = wsum (fun w -> w.Net.dups_suppressed);
                    dropped_frames = wsum (fun w -> w.Net.dropped);
                    reconnects = wsum (fun w -> w.Net.reconnects);
                    restarts =
                      Array.fold_left (fun acc s -> acc + s.restarts) 0 slots;
                    chaos =
                      (match chaos with
                      | None -> ""
                      | Some p -> Fault.Plan.to_string p);
                    session;
                    wall_ms =
                      Array.fold_left
                        (fun acc r -> Stdlib.max acc r.Node.wall_ms)
                        0 node_results;
                    durable = durable <> None;
                    wal_parity =
                      Array.for_all Fun.id
                        (Array.mapi
                           (fun i s ->
                             match s.expected_digest with
                             | None -> true
                             | Some (Error _) -> false
                             | Some (Ok d) ->
                                 node_results.(i).Node.recovered_digest
                                 = Some d)
                           slots);
                    wal_dir =
                      (match wal_dir with
                      | Some _ -> wal_root
                      | None -> None);
                  }
            with Unix.Unix_error (err, fn, _) ->
              Error
                (Printf.sprintf "harness: %s failed: %s" fn
                   (Unix.error_message err))))

type baseline = { history : History.t; metrics : Memory.metrics }

let sim_baseline ?chaos ?(session = false) ~n ~protocol ~workload ~seed () =
  match Workload_spec.make ~name:workload ~n ~seed with
  | Error _ as e -> e
  | Ok spec ->
      let chaos =
        match chaos with Some p when Fault.Plan.is_none p -> None | c -> c
      in
      let session = session || chaos <> None in
      let memory =
        if (not session) && chaos = None then
          protocol.Registry.make ~dist:spec.Workload_spec.dist ~seed ()
        else begin
          (* same stack order as a live node: backend → chaos → session →
             protocol, so the same plan reproduces deterministically *)
          let factory = Transport.sim ~latency:Latency.lan ~seed () in
          let factory =
            match chaos with
            | None -> factory
            | Some plan -> fst (Chaos.wrap ~plan factory)
          in
          let factory =
            if session then
              fst
                (Session.wrap
                   ~config:{ Session.default with seed = seed + 1 }
                   factory)
            else factory
          in
          protocol.Registry.make ~transport:factory
            ~dist:spec.Workload_spec.dist ~seed ()
        end
      in
      let history = Runner.run memory ~programs:spec.Workload_spec.programs in
      Ok { history; metrics = memory.Memory.metrics () }

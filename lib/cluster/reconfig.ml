module Live = Repro_transport.Live
module Wire = Repro_transport.Wire
module Chaos = Repro_transport.Chaos
module Fault = Repro_msgpass.Fault
module Ring = Repro_sharegraph.Ring
module History = Repro_history.History
module Checker = Repro_history.Checker
module Op = Repro_history.Op
module Wal = Repro_durable.Wal

type event = {
  ev_epoch : int;
  ev_kind : string;
  ev_node : int;
  ev_members : int list;
  ev_keys_moved : int;
  ev_rebalance_ms : int;
}

type outcome = {
  n : int;
  k : int;
  vnodes : int;
  seed : int;
  n_vars : int;
  committed_epoch : int;
  members : int list;
  events : event list;
  history : History.t;
  verdict : Checker.verdict;
  pram : Checker.verdict;
  stale_epochs : int;
  restarts : int;
  salvaged : int list;
  keys_moved_total : int;
  max_keys_moved : int;
  moved_gate : int;
  moved_ok : bool;
  unavail_ms : int;
  transfers : int;
  init_fallbacks : int;
  writes_total : int;
  reads_total : int;
  node_results : Member.result array;
  chaos : string;
  wall_ms : int;
}

type report = Finished of Member.result | Crashed of string

let loopback = Unix.inet_addr_loopback

(* --- child side ------------------------------------------------------------ *)

let child_main ~(cfg : Member.config) ~listen_fds wfd =
  Array.iteri
    (fun i fd ->
      if i <> cfg.Member.self then
        try Unix.close fd with Unix.Unix_error _ -> ())
    listen_fds;
  let report =
    try Finished (Member.run cfg) with
    | Chaos.Injected_crash _ -> Unix._exit 42
    | Member.Crash msg -> Crashed msg
    | e -> Crashed (Printexc.to_string e)
  in
  (try
     let oc = Unix.out_channel_of_descr wfd in
     Marshal.to_channel oc (report : report) [];
     flush oc
   with _ -> ());
  Unix._exit (match report with Finished _ -> 0 | Crashed _ -> 1)

(* --- supervisor bookkeeping ------------------------------------------------ *)

type slot = {
  mutable pid : int;
  mutable rfd : Unix.file_descr;
  buf : Buffer.t;
  mutable eof : bool;
  mutable status : Unix.process_status option;
  mutable incarnation : int;
  mutable restarts : int;
  mutable respawn_at : float option;
  mutable final : report option;
}

(* One control connection: a dialed socket speaking Wire frames with the
   supervisor sentinel as src.  The parent keeps every listener open, so
   a dial lands in the backlog even while the child is down and the
   respawned child simply accepts it. *)
type ctl = {
  node : int;
  mutable fd : Unix.file_descr option;
  mutable dec : Wire.decoder;
  mutable redial_at : float;
  (* latest pong *)
  mutable p_at : float;  (** 0. until the first pong *)
  mutable p_epoch : int;
  mutable p_proposed : int;
  mutable p_ready : bool;
  mutable p_writes : int;
  mutable p_stale : int;
  mutable catchup_at : float;
  mutable p_pings : int;
      (** pings sent since the last pong: the silence detector only fires
          after enough probes were actually delivered attempts, so a
          starved supervisor cannot blame a node it never probed *)
}

type pending = {
  pd_epoch : int;
  pd_members : int list;
  pd_down : int list;
  pd_kind : string;
  pd_node : int;
  pd_keys_moved : int;
  pd_proposed_at : float;
  mutable pd_rebroadcast_at : float;
      (** while the commit is outstanding, the whole proposal is re-sent
          to every proposed member on this cadence — a lost frame or a
          node that was mid-restart cannot stall the epoch forever *)
}

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let ints_to_string is = String.concat "," (List.map string_of_int is)

(* A dead node's externalized operations survive in its WAL (the member
   logs before it sends): decode them so the history stays closed under
   reads even when the process never reported. *)
let salvage ~node ~dir : Member.result option =
  match Wal.load ~dir with
  | Error _ -> None
  | Ok r -> (
      try
        let ops = ref [] in
        let w = ref 0 and rd = ref 0 and epoch = ref 0 in
        List.iter
          (fun (_, payload) ->
            match (Marshal.from_string payload 0 : Member.wal_entry) with
            | Member.W_write (x, _, v) ->
                ops := Op.write ~var:x (Op.Val v) :: !ops;
                incr w
            | Member.W_read (x, vo) ->
                ops :=
                  Op.read ~var:x
                    (match vo with Some v -> Op.Val v | None -> Op.Init)
                  :: !ops;
                incr rd
            | Member.W_epoch (e, _, _, true) -> epoch := e
            | _ -> ())
          r.Wal.r_entries;
        Some
          {
            Member.node;
            incarnation = 0;
            ops = List.rev !ops;
            writes_done = !w;
            reads_done = !rd;
            committed_epoch = !epoch;
            stale_epochs = 0;
            transfers_in = 0;
            transfers_out = 0;
            retries = 0;
            init_fallbacks = 0;
            unavail_ms = 0;
            recovered_ops = 0;
            wall_ms = 0;
          }
      with _ -> None)

let run ~n ~k ~vnodes ~n_vars ~seed ?(writes = 40) ?(write_period_ms = 5)
    ?(hello_timeout_ms = 10_000) ?(run_timeout_ms = 60_000) ?(quiet_ms = 300)
    ?(connect_timeout_ms = 0) ?deadline_ms ?(demote_after_ms = 2_500) ?chaos
    ?wal_dir () : (outcome, string) result =
  let t_start = Unix.gettimeofday () in
  let chaos =
    match chaos with Some p when Fault.Plan.is_none p -> None | c -> c
  in
  let plan_error =
    match chaos with
    | None -> None
    | Some p -> (
        try
          Fault.Plan.validate ~n p;
          None
        with Invalid_argument msg -> Some ("chaos plan: " ^ msg))
  in
  let joiners =
    match chaos with
    | None -> []
    | Some p -> List.map (fun r -> r.Fault.Plan.rnode) p.Fault.Plan.joins
  in
  let initial_members =
    List.filter (fun p -> not (List.mem p joiners)) (List.init n Fun.id)
  in
  match plan_error with
  | Some msg -> Error msg
  | None ->
      if n < 1 || n > 0x7FFF then Error "reconfig: n out of range"
      else if initial_members = [] then
        Error "reconfig: every node is a scheduled joiner"
      else if k < 1 then Error "reconfig: k must be >= 1"
      else begin
        try
          let listen_fds =
            Array.init n (fun _ -> Live.bind (Unix.ADDR_INET (loopback, 0)))
          in
          let peers = Array.map Live.listen_addr listen_fds in
          let wal_root =
            match wal_dir with
            | Some d ->
                (try Unix.mkdir d 0o700
                 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                d
            | None ->
                let d =
                  Filename.concat
                    (Filename.get_temp_dir_name ())
                    (Printf.sprintf "repro-reconfig-%d" (Unix.getpid ()))
                in
                (try Unix.mkdir d 0o700
                 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                d
          in
          let node_wal self =
            Filename.concat wal_root (Printf.sprintf "node-%d.wal" self)
          in
          let spawn self incarnation =
            flush stdout;
            flush stderr;
            let rfd, wfd = Unix.pipe () in
            match Unix.fork () with
            | 0 ->
                Unix.close rfd;
                child_main
                  ~cfg:
                    {
                      Member.self;
                      n;
                      listen_fd = listen_fds.(self);
                      peers;
                      seed;
                      k;
                      vnodes;
                      n_vars;
                      initial_members;
                      writes_target = writes;
                      write_period_ms;
                      hello_timeout_ms;
                      run_timeout_ms;
                      quiet_ms;
                      connect_timeout_ms;
                      chaos;
                      wal_dir = Some (node_wal self);
                      incarnation;
                    }
                  ~listen_fds wfd
            | pid ->
                Unix.close wfd;
                (pid, rfd)
          in
          let slots =
            Array.init n (fun self ->
                let pid, rfd = spawn self 0 in
                {
                  pid;
                  rfd;
                  buf = Buffer.create 4096;
                  eof = false;
                  status = None;
                  incarnation = 0;
                  restarts = 0;
                  respawn_at = None;
                  final = None;
                })
          in
          let ctls =
            Array.init n (fun node ->
                {
                  node;
                  fd = None;
                  dec = Wire.decoder ();
                  redial_at = 0.;
                  p_at = 0.;
                  p_epoch = 0;
                  p_proposed = 0;
                  p_ready = false;
                  p_writes = 0;
                  p_stale = 0;
                  catchup_at = 0.;
                  p_pings = 0;
                })
          in
          let kill_ctl c =
            (match c.fd with
            | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            | None -> ());
            c.fd <- None;
            c.dec <- Wire.decoder ();
            c.redial_at <- Unix.gettimeofday () +. 0.2
          in
          let dial_ctl c =
            let fd = Unix.socket PF_INET SOCK_STREAM 0 in
            match Unix.connect fd peers.(c.node) with
            | () ->
                (try Unix.setsockopt fd TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                c.fd <- Some fd;
                c.dec <- Wire.decoder ()
            | exception Unix.Unix_error _ ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                c.redial_at <- Unix.gettimeofday () +. 0.2
          in
          let committed_epoch = ref 0 in
          let members = ref initial_members in
          let send_ctl c ~kind ~body =
            match c.fd with
            | None -> ()
            | Some fd -> (
                let buf =
                  Wire.encode
                    {
                      Wire.kind;
                      src = Member.supervisor_id;
                      dst = c.node;
                      epoch = !committed_epoch;
                      control_bytes = 0;
                      payload_bytes = 0;
                      body;
                    }
                in
                try write_all fd buf
                with Unix.Unix_error _ -> kill_ctl c)
          in
          let broadcast ~kind ~body =
            Array.iter (fun c -> send_ctl c ~kind ~body) ctls
          in
          let pending : pending option ref = ref None in
          let events = ref [] in
          let demoted = ref [] in
          let down () = !demoted in
          let ring_of ms = Ring.make ~seed ~vnodes ~members:ms in
          let propose ~kind ~node new_members =
            let new_members = List.sort compare new_members in
            let e = (match !pending with
              | Some p -> p.pd_epoch
              | None -> !committed_epoch) + 1
            in
            let moved =
              Ring.moved ~before:(ring_of !members)
                ~after:(ring_of new_members) ~k ~n_vars
            in
            let body =
              Printf.sprintf "%d|%s|%s" e
                (ints_to_string new_members)
                (ints_to_string (down ()))
            in
            broadcast
              ~kind:(if kind = "join" then Wire.Join else Wire.Leave)
              ~body;
            pending :=
              Some
                {
                  pd_epoch = e;
                  pd_members = new_members;
                  pd_down = down ();
                  pd_kind = kind;
                  pd_node = node;
                  pd_keys_moved = moved;
                  pd_proposed_at = Unix.gettimeofday ();
                  pd_rebroadcast_at = Unix.gettimeofday () +. 1.5;
                }
          in
          (* scripted schedule, in time order *)
          let sched =
            (match chaos with
            | None -> []
            | Some p ->
                List.map
                  (fun r -> (r.Fault.Plan.at_ms, "join", r.Fault.Plan.rnode))
                  p.Fault.Plan.joins
                @ List.map
                    (fun r -> (r.Fault.Plan.at_ms, "leave", r.Fault.Plan.rnode))
                    p.Fault.Plan.leaves)
            |> List.sort compare
            |> ref
          in
          let restart_delay self =
            match chaos with
            | None -> None
            | Some p -> (
                match Fault.Plan.crash_for p self with
                | Some c -> c.Fault.Plan.restart_after
                | None -> (
                    match Fault.Plan.dcrash_for p self with
                    | Some c -> c.Fault.Plan.drestart_after
                    | None -> None))
          in
          let deadline =
            t_start
            +. float (Option.value deadline_ms
                        ~default:(run_timeout_ms + 30_000))
               /. 1000.
          in
          let t0 = ref None in
          let last_ping = ref 0. in
          let finish_sent = ref false in
          let wedged = ref false in
          let chunk = Bytes.create 65536 in
          let rbuf = Bytes.create 65536 in
          let all_final () = Array.for_all (fun s -> s.final <> None) slots in
          let node_alive i = slots.(i).final = None in
          let keep_going () =
            if Unix.gettimeofday () < deadline then true
            else begin
              wedged := true;
              false
            end
          in
          while (not (all_final ())) && keep_going () do
            let now = Unix.gettimeofday () in
            (* respawns due *)
            Array.iteri
              (fun self s ->
                match s.respawn_at with
                | Some t when now >= t ->
                    s.respawn_at <- None;
                    s.incarnation <- s.incarnation + 1;
                    s.restarts <- s.restarts + 1;
                    let pid, rfd = spawn self s.incarnation in
                    s.pid <- pid;
                    s.rfd <- rfd;
                    Buffer.clear s.buf;
                    s.eof <- false;
                    s.status <- None;
                    (* grace until the respawn's first pong: recovery time
                       must not count as silence *)
                    ctls.(self).p_at <- 0.;
                    ctls.(self).p_pings <- 0
                | _ -> ())
              slots;
            (* control connections: dial / redial *)
            Array.iter
              (fun c ->
                if c.fd = None && now >= c.redial_at && node_alive c.node then
                  dial_ctl c)
              ctls;
            (* heartbeats *)
            if now -. !last_ping >= 0.05 then begin
              last_ping := now;
              Array.iter
                (fun c ->
                  if c.fd <> None then begin
                    send_ctl c ~kind:Wire.Ping ~body:"";
                    c.p_pings <- c.p_pings + 1
                  end)
                ctls
            end;
            (* pump sockets and report pipes together *)
            let ctl_fds =
              Array.to_list ctls
              |> List.filter_map (fun c -> c.fd)
            in
            let pipe_slots =
              Array.to_list slots
              |> List.filter (fun s ->
                     s.final = None && s.respawn_at = None && not s.eof)
            in
            let pipe_fds = List.map (fun s -> s.rfd) pipe_slots in
            let ready =
              match Unix.select (ctl_fds @ pipe_fds) [] [] 0.02 with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
            in
            (* control socket reads: pongs *)
            Array.iter
              (fun c ->
                match c.fd with
                | Some fd when List.memq fd ready -> (
                    match Unix.read fd rbuf 0 (Bytes.length rbuf) with
                    | exception
                        Unix.Unix_error
                          ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                        ()
                    | exception Unix.Unix_error _ -> kill_ctl c
                    | 0 -> kill_ctl c
                    | nread -> (
                        Wire.feed c.dec rbuf nread;
                        let rec pump () =
                          match Wire.next c.dec with
                          | Ok (Some fr) ->
                              (match fr.Wire.kind with
                              | Wire.Pong ->
                                  List.iter
                                    (fun kv ->
                                      match String.split_on_char '=' kv with
                                      | [ "e"; x ] ->
                                          c.p_epoch <- int_of_string x
                                      | [ "p"; x ] ->
                                          c.p_proposed <- int_of_string x
                                      | [ "r"; x ] -> c.p_ready <- x = "1"
                                      | [ "w"; x ] ->
                                          c.p_writes <- int_of_string x
                                      | [ "s"; x ] ->
                                          c.p_stale <- int_of_string x
                                      | _ -> ())
                                    (String.split_on_char ';' fr.Wire.body);
                                  c.p_at <- Unix.gettimeofday ();
                                  c.p_pings <- 0
                              | _ -> ());
                              pump ()
                          | Ok None -> ()
                          | Error _ -> kill_ctl c
                        in
                        pump ()))
                | _ -> ())
              ctls;
            (* the schedule clock starts when the whole cluster has ponged *)
            if !t0 = None && Array.for_all (fun c -> c.p_at > 0.) ctls then
              t0 := Some (Unix.gettimeofday ());
            let run_ms =
              match !t0 with
              | None -> -1.
              | Some t -> (Unix.gettimeofday () -. t) *. 1000.
            in
            (* failure detector: a member whose process is gone for good is
               demoted as soon as the supervisor reaps it; a member still
               running but silent past the demotion window is demoted only
               after enough heartbeats were actually sent its way, so a
               starved box cannot produce spurious demotions *)
            (match !t0 with
            | Some _ when not !finish_sent ->
                Array.iter
                  (fun c ->
                    let s = slots.(c.node) in
                    let dead =
                      match s.final with Some (Crashed _) -> true | _ -> false
                    in
                    let silent =
                      c.p_at > 0.
                      && s.respawn_at = None
                      && (now -. c.p_at) *. 1000. > float demote_after_ms
                      && c.p_pings >= 8
                    in
                    let relevant =
                      List.mem c.node !members
                      || (match !pending with
                         | Some p -> List.mem c.node p.pd_members
                         | None -> false)
                    in
                    if (dead || silent) && relevant
                       && not (List.mem c.node !demoted)
                    then begin
                      demoted := List.sort compare (c.node :: !demoted);
                      (* supersede an in-flight proposal without losing its
                         membership change: drop the dead node from the
                         proposed set, not from the committed one *)
                      let base =
                        match !pending with
                        | Some p -> p.pd_members
                        | None -> !members
                      in
                      propose ~kind:"demote" ~node:c.node
                        (List.filter (fun p -> p <> c.node) base)
                    end)
                  ctls
            | _ -> ());
            (* scripted events fire only between transitions *)
            (match (!sched, !pending) with
            | (at, kind, node) :: rest, None when run_ms >= float at ->
                sched := rest;
                if List.mem node !demoted then ()
                else if kind = "join" && not (List.mem node !members) then
                  propose ~kind ~node (node :: !members)
                else if
                  kind = "leave" && List.mem node !members
                  && List.length !members > 1
                then
                  propose ~kind ~node
                    (List.filter (fun p -> p <> node) !members)
            | _ -> ());
            (* commit when every proposed member is ready for the epoch *)
            (match !pending with
            | Some p ->
                let ready_node m =
                  let c = ctls.(m) in
                  c.p_epoch >= p.pd_epoch
                  || (c.p_proposed = p.pd_epoch && c.p_ready
                      && c.p_at > p.pd_proposed_at)
                in
                if List.for_all ready_node p.pd_members then begin
                  broadcast ~kind:Wire.Epoch
                    ~body:
                      (Printf.sprintf "commit|%d|%s" p.pd_epoch
                         (ints_to_string p.pd_members));
                  committed_epoch := p.pd_epoch;
                  members := p.pd_members;
                  events :=
                    {
                      ev_epoch = p.pd_epoch;
                      ev_kind = p.pd_kind;
                      ev_node = p.pd_node;
                      ev_members = p.pd_members;
                      ev_keys_moved = p.pd_keys_moved;
                      ev_rebalance_ms =
                        int_of_float
                          ((Unix.gettimeofday () -. p.pd_proposed_at)
                          *. 1000.);
                    }
                    :: !events;
                  pending := None
                end
                else begin
                  (* straggler healing: re-send the proposal to nodes that
                     have not caught up (a respawned child recovers at its
                     pre-crash epoch and needs the proposal again) *)
                  List.iter
                    (fun m ->
                      let c = ctls.(m) in
                      if
                        (not (ready_node m))
                        && c.p_proposed < p.pd_epoch
                        && now -. c.catchup_at > 0.3
                      then begin
                        c.catchup_at <- now;
                        send_ctl c
                          ~kind:
                            (if p.pd_kind = "leave" then Wire.Leave
                             else Wire.Join)
                          ~body:
                            (Printf.sprintf "%d|%s|%s" p.pd_epoch
                               (ints_to_string p.pd_members)
                               (ints_to_string p.pd_down))
                      end)
                    p.pd_members;
                  (* belt and braces while a commit is outstanding: a
                     periodic full re-send costs one frame per member and
                     removes every lost-proposal stall from the state
                     space (members drop duplicates by epoch) *)
                  if now >= p.pd_rebroadcast_at then begin
                    p.pd_rebroadcast_at <- now +. 1.5;
                    broadcast
                      ~kind:
                        (if p.pd_kind = "leave" then Wire.Leave
                         else Wire.Join)
                      ~body:
                        (Printf.sprintf "%d|%s|%s" p.pd_epoch
                           (ints_to_string p.pd_members)
                           (ints_to_string p.pd_down))
                  end
                end
            | None ->
                (* catch-up for nodes behind the committed epoch *)
                Array.iter
                  (fun c ->
                    if
                      c.p_at > 0.
                      && c.p_epoch < !committed_epoch
                      && now -. c.catchup_at > 0.3
                    then begin
                      c.catchup_at <- now;
                      send_ctl c ~kind:Wire.Join
                        ~body:
                          (Printf.sprintf "%d|%s|%s" !committed_epoch
                             (ints_to_string !members)
                             (ints_to_string (down ())));
                      send_ctl c ~kind:Wire.Epoch
                        ~body:
                          (Printf.sprintf "commit|%d|%s" !committed_epoch
                             (ints_to_string !members))
                    end)
                  ctls);
            (* finish once the schedule is drained, nothing is in flight,
               and every reachable node has issued its writes *)
            if
              (not !finish_sent)
              && !sched = [] && !pending = None && !t0 <> None
              && Array.for_all
                   (fun c ->
                     (not (node_alive c.node))
                     || (c.p_at > 0. && c.p_writes >= writes)
                     || List.mem c.node !demoted)
                   ctls
            then begin
              finish_sent := true;
              broadcast ~kind:Wire.Epoch ~body:"finish"
            end;
            (* report pipes *)
            List.iter
              (fun s ->
                if List.memq s.rfd ready then
                  match Unix.read s.rfd chunk 0 (Bytes.length chunk) with
                  | 0 ->
                      s.eof <- true;
                      (try Unix.close s.rfd with Unix.Unix_error _ -> ())
                  | kk -> Buffer.add_subbytes s.buf chunk 0 kk
                  | exception Unix.Unix_error _ ->
                      s.eof <- true;
                      (try Unix.close s.rfd with Unix.Unix_error _ -> ()))
              pipe_slots;
            (* reap exits *)
            Array.iter
              (fun s ->
                if s.final = None && s.respawn_at = None && s.status = None
                then
                  match Unix.waitpid [ Unix.WNOHANG ] s.pid with
                  | 0, _ -> ()
                  | _, st -> s.status <- Some st
                  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                      s.status <- Some (Unix.WEXITED 255))
              slots;
            (* finalize *)
            Array.iteri
              (fun self s ->
                if
                  s.final = None && s.respawn_at = None && s.eof
                  && s.status <> None
                then
                  match s.status with
                  | Some (Unix.WEXITED 42) -> (
                      match restart_delay self with
                      | Some d when s.incarnation = 0 ->
                          s.respawn_at <-
                            Some (Unix.gettimeofday () +. (float d /. 1000.))
                      | _ ->
                          s.final <-
                            Some
                              (Crashed "injected crash (no restart scheduled)"))
                  | Some st ->
                      let report =
                        try
                          (Marshal.from_string (Buffer.contents s.buf) 0
                            : report)
                        with _ ->
                          Crashed
                            (Printf.sprintf "exited without reporting (%s)"
                               (match st with
                               | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                               | Unix.WSIGNALED sg ->
                                   Printf.sprintf "signal %d" sg
                               | Unix.WSTOPPED sg ->
                                   Printf.sprintf "stopped %d" sg))
                      in
                      s.final <- Some report
                  | None -> ())
              slots
          done;
          (* put down whatever is left *)
          Array.iter
            (fun s ->
              if s.final = None then begin
                (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] s.pid)
                 with Unix.Unix_error _ -> ());
                (try Unix.close s.rfd with Unix.Unix_error _ -> ());
                s.final <-
                  Some
                    (Crashed
                       (if !wedged then "wedged (supervisor deadline)"
                        else "supervisor stop"))
              end)
            slots;
          Array.iter (fun c -> kill_ctl c) ctls;
          Array.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            listen_fds;
          if !wedged then begin
            let states =
              Array.to_list slots
              |> List.mapi (fun i s ->
                     Printf.sprintf "node %d: %s" i
                       (match s.final with
                       | Some (Finished _) -> "finished"
                       | Some (Crashed m) -> m
                       | None -> "running"))
              |> String.concat "; "
            in
            if wal_dir = None then rm_rf wal_root;
            Error
              (Printf.sprintf
                 "wedged: supervisor deadline expired (epoch %d, pending %s) \
                  — %s"
                 !committed_epoch
                 (match !pending with
                 | Some p -> Printf.sprintf "epoch %d" p.pd_epoch
                 | None -> "none")
                 states)
          end
          else begin
            (* a demoted node that never reported still has a WAL *)
            let salvaged = ref [] in
            let reports =
              Array.mapi
                (fun i s ->
                  match Option.get s.final with
                  | Finished r -> Ok r
                  | Crashed msg -> (
                      (* an injected crash with no restart leaves a WAL the
                         member logged before every send: its ops can be
                         reconstructed even though it never reported *)
                      let injected =
                        String.length msg >= 8 && String.sub msg 0 8 = "injected"
                      in
                      match salvage ~node:i ~dir:(node_wal i) with
                      | Some r when injected ->
                          salvaged := i :: !salvaged;
                          Ok r
                      | _ -> Error (Printf.sprintf "node %d: %s" i msg)))
                slots
            in
            let errors =
              Array.to_list reports
              |> List.filter_map (function Error e -> Some e | Ok _ -> None)
            in
            if wal_dir = None then rm_rf wal_root;
            if errors <> [] then Error (String.concat "\n" errors)
            else
              let node_results =
                Array.map
                  (function Ok r -> r | Error _ -> assert false)
                  reports
              in
              let history =
                History.of_lists
                  (Array.to_list node_results
                  |> List.map (fun r -> r.Member.ops))
              in
              let sum f =
                Array.fold_left (fun acc r -> acc + f r) 0 node_results
              in
              let events = List.rev !events in
              let moved_gate =
                let nm = Stdlib.max 1 (List.length initial_members) in
                2 * k * n_vars / nm
              in
              let max_moved =
                List.fold_left
                  (fun acc e -> Stdlib.max acc e.ev_keys_moved)
                  0 events
              in
              Ok
                {
                  n;
                  k;
                  vnodes;
                  seed;
                  n_vars;
                  committed_epoch = !committed_epoch;
                  members = !members;
                  events;
                  history;
                  verdict = Checker.check Checker.Cache history;
                  pram = Checker.check Checker.Pram history;
                  stale_epochs = sum (fun r -> r.Member.stale_epochs);
                  restarts =
                    Array.fold_left (fun acc s -> acc + s.restarts) 0 slots;
                  salvaged = List.sort compare !salvaged;
                  keys_moved_total =
                    List.fold_left (fun acc e -> acc + e.ev_keys_moved) 0 events;
                  max_keys_moved = max_moved;
                  moved_gate;
                  moved_ok = max_moved <= moved_gate;
                  unavail_ms =
                    Array.fold_left
                      (fun acc r -> Stdlib.max acc r.Member.unavail_ms)
                      0 node_results;
                  transfers = sum (fun r -> r.Member.transfers_in);
                  init_fallbacks = sum (fun r -> r.Member.init_fallbacks);
                  writes_total = sum (fun r -> r.Member.writes_done);
                  reads_total = sum (fun r -> r.Member.reads_done);
                  node_results;
                  chaos =
                    (match chaos with
                    | None -> ""
                    | Some p -> Fault.Plan.to_string p);
                  wall_ms =
                    int_of_float ((Unix.gettimeofday () -. t_start) *. 1000.);
                }
          end
        with Unix.Unix_error (err, fn, _) ->
          Error
            (Printf.sprintf "reconfig: %s failed: %s" fn
               (Unix.error_message err))
      end

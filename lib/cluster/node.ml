module Live = Repro_transport.Live
module Chaos = Repro_transport.Chaos
module Session = Repro_transport.Session
module Fault = Repro_msgpass.Fault
module Net = Repro_msgpass.Net
module Fiber = Repro_msgpass.Fiber
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Runner = Repro_core.Runner
module Op = Repro_history.Op

module Wire = Repro_transport.Wire
module Rpc = Repro_transport.Rpc
module Wal = Repro_durable.Wal
module Fsio = Repro_durable.Fsio

type result = {
  node : int;
  incarnation : int;
  ops : Runner.entry list;
  finals : (int * Repro_history.Op.value) list;
  metrics : Memory.metrics;
  wire : Net.stats;
  session_stats : Session.stats option;
  client_ops : int;
  wall_ms : int;
  wal_stats : Wal.stats option;
  recovered_ops : int;
  recovered_digest : string option;
}

exception Crash of string

let crashf fmt = Printf.ksprintf (fun s -> raise (Crash s)) fmt

(* On-disk checkpoint: protocol state, session state, and the operation log
   up to the checkpoint.  The log is what makes recovery exact — a respawned
   node replays its program against the logged read values until it reaches
   the cursor, so its control flow arrives at the crash point with the same
   local state it had, and only then starts touching the restored memory. *)
type checkpoint = {
  ck_node : int;
  ck_incarnation : int;
  ck_ops : Runner.entry list; (* program order *)
  ck_finished : bool;
  ck_proto : string;
  ck_session : string option;
}

(* Checkpoint files are self-describing durable blobs: magic, format
   version, (node, incarnation) in the meta slots, payload length + CRC in
   front of the marshalled record.  Written with the full atomic-replace
   fsync discipline — tmp, fsync file, rename, fsync directory — so the
   restore point survives power loss, not just a process kill. *)
let ck_magic = "RNCK"

let ck_version = 1

let save_checkpoint path (ck : checkpoint) =
  Fsio.Blob.write ~path ~magic:ck_magic ~version:ck_version
    ~meta:(ck.ck_node, ck.ck_incarnation)
    (Marshal.to_string ck [])

let load_checkpoint path : checkpoint =
  match Fsio.Blob.read ~path ~magic:ck_magic ~version:ck_version with
  | Error e -> crashf "checkpoint %s rejected: %s" path e
  | Ok ((node, _), payload) ->
      let ck : checkpoint = Marshal.from_string payload 0 in
      if ck.ck_node <> node then
        crashf "checkpoint %s: header says node %d, payload says node %d" path
          node ck.ck_node;
      ck

(* The WAL payload of a node checkpoint (the rotation blob) is the same
   marshalled record. *)
let ck_of_payload path payload : checkpoint =
  try (Marshal.from_string payload 0 : checkpoint)
  with _ -> crashf "WAL checkpoint in %s: unreadable payload" path

let kind_text = function Op.Read -> "read" | Op.Write -> "write"

let run ~self ~listen_fd ~peers ~protocol ~workload ~seed
    ?(hello_timeout_ms = 10_000) ?(run_timeout_ms = 60_000) ?(quiet_ms = 150)
    ?(connect_timeout_ms = 0) ?chaos ?(session = false) ?(coalesce = 1)
    ?checkpoint ?(checkpoint_every_ms = 100) ?(incarnation = 0)
    ?gc_space_overhead ?durable () =
  Option.iter
    (fun so ->
      if so < 1 then crashf "gc space overhead must be >= 1, got %d" so;
      Gc.set { (Gc.get ()) with Gc.space_overhead = so })
    gc_space_overhead;
  if protocol.Registry.blocking then
    crashf "protocol %s has blocking operations; only non-blocking protocols run live"
      protocol.Registry.name;
  let n = workload.Workload_spec.n in
  let chaos =
    match chaos with Some p when Fault.Plan.is_none p -> None | c -> c
  in
  let session = session || chaos <> None || coalesce > 1 in
  (* lossy links hide in silence up to a full retransmission backoff; the
     quiet window must outlast one or nodes exit mid-recovery *)
  let quiet_ms = if chaos <> None then max quiet_ms 600 else quiet_ms in
  let plan_text =
    match chaos with None -> "" | Some p -> Fault.Plan.to_string p
  in
  let fingerprint =
    Workload_spec.fingerprint ~chaos:plan_text ~session workload
      ~protocol:protocol.Registry.name ~seed
  in
  let lt =
    Live.create
      { Live.self; n; peers; fingerprint; resilient = chaos <> None;
        incarnation; connect_timeout_ms }
      ~listen_fd
  in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Live.close lt;
        raise (Crash s))
      fmt
  in
  try
    let factory = Live.factory lt in
    let factory, chaos_ctl =
      match chaos with
      | None -> (factory, None)
      | Some plan ->
          let f, c = Chaos.wrap ~incarnation ~plan factory in
          (f, Some c)
    in
    let factory, sess =
      if session then begin
        let cfg =
          {
            Session.default with
            seed = seed + 1 + self;
            stable_acks = checkpoint <> None || durable <> None;
            coalesce;
          }
        in
        let f, c = Session.wrap ~config:cfg factory in
        (f, Some c)
      end
      else (factory, None)
    in
    let memory =
      protocol.Registry.make ~transport:factory
        ~dist:workload.Workload_spec.dist ~seed ()
    in
    if
      (checkpoint <> None || durable <> None)
      && memory.Memory.snapshot = None
    then
      fail "protocol %s has no snapshot/restore support; cannot checkpoint"
        protocol.Registry.name;
    (* durability tier: every recorded op is appended to a write-ahead log
       before the program proceeds, checkpoints compact it via the rotation
       protocol, and a seeded dcrash schedule may kill this process at a
       named point inside that write path *)
    let wal =
      Option.map
        (fun (dir, policy) ->
          Wal.open_ ~dir ~policy ~fresh:(incarnation = 0) ())
        durable
    in
    (match chaos with
    | Some plan when incarnation = 0 && wal <> None ->
        Option.iter
          (fun (c : Fault.Plan.dcrash) ->
            Fsio.Crashpoint.arm ~point:c.Fault.Plan.point
              ~after:c.Fault.Plan.after_hits ~powercut:c.Fault.Plan.powercut
              (fun () -> raise (Chaos.Injected_crash self)))
          (Fault.Plan.dcrash_for plan self)
    | _ -> ());
    (* client front door: serve Read/Write/Batch RPCs against this
       replica's memory.  Requests a partial replica cannot serve (a read
       of a variable it does not hold) come back [Failed] rather than
       killing the node — the client picked the wrong door. *)
    let client_ops = ref 0 in
    Live.set_client_handler lt (fun ~reply v ->
        match
          Rpc.decode_request_at v.Wire.v_buf ~pos:v.Wire.v_off ~len:v.Wire.v_len
        with
        | Error _ -> () (* corrupt request body: drop, never unmarshal on *)
        | Ok (id, req) ->
            let serve op =
              match op with
              | Rpc.Read { var } -> (
                  match memory.Memory.read ~proc:self ~var with
                  | Op.Init -> Rpc.Got None
                  | Op.Val v -> Rpc.Got (Some v)
                  | exception Invalid_argument msg -> Rpc.Failed msg)
              | Rpc.Write { var; value } -> (
                  match memory.Memory.write ~proc:self ~var (Op.Val value) with
                  | () -> Rpc.Stored
                  | exception Invalid_argument msg -> Rpc.Failed msg)
            in
            let outcomes = Array.map serve (Rpc.ops req) in
            client_ops := !client_ops + Array.length outcomes;
            (* the response is emitted straight into a pooled frame queued
               on this connection — no intermediate string *)
            reply ~dst:v.Wire.v_src ~control_bytes:0
              ~payload_bytes:(Rpc.response_payload_bytes outcomes)
              ~body_len:(Rpc.response_body_len outcomes)
              ~emit:(fun buf off -> Rpc.emit_response buf off ~id outcomes));
    let ops = ref [] in
    let finished = ref false in
    let restore_from (ck : checkpoint) =
      (match memory.Memory.restore with
      | Some restore -> restore ck.ck_proto
      | None -> fail "protocol %s cannot restore" protocol.Registry.name);
      (match (sess, ck.ck_session) with
      | Some c, Some blob -> c.Session.restore blob
      | _ -> ());
      finished := ck.ck_finished
    in
    (* Recovery seeding.  [replayed] pins control flow: until the cursor
       passes it, reads return logged values.  [n_reapply] marks the WAL
       tail — ops past the last checkpoint snapshot, whose write effects are
       NOT in the restored state and must be re-applied to memory.
       [watermark] is the session delivery count the last tail op observed:
       live operation may not start before redeliveries catch back up to it,
       or the first live read could see state older than the logged tail did
       (the replay-to-live barrier). *)
    let replayed, n_reapply, watermark, ck_payload_raw =
      match (wal, checkpoint) with
      | Some (_, recovered), _ when incarnation > 0 ->
          let ck_ops =
            match recovered.Wal.r_checkpoint with
            | None -> []
            | Some payload ->
                let ck = ck_of_payload (fst (Option.get durable)) payload in
                if ck.ck_node <> self then
                  fail "WAL checkpoint belongs to node %d, not %d" ck.ck_node
                    self;
                restore_from ck;
                ck.ck_ops
          in
          let tail, watermark =
            List.fold_left
              (fun (acc, _) (seq, payload) ->
                match Oplog.decode payload with
                | Ok (e, w) -> (e :: acc, w)
                | Error e -> fail "WAL record %d rejected: %s" seq e)
              ([], 0) recovered.Wal.r_entries
          in
          let tail = List.rev tail in
          let all = ck_ops @ tail in
          ops := List.rev all;
          ( Array.of_list all,
            List.length ck_ops,
            watermark,
            recovered.Wal.r_checkpoint )
      | _, Some path when incarnation > 0 && Sys.file_exists path ->
          let ck = load_checkpoint path in
          if ck.ck_node <> self then
            fail "checkpoint %s belongs to node %d, not %d" path ck.ck_node self;
          restore_from ck;
          ops := List.rev ck.ck_ops;
          (Array.of_list ck.ck_ops, List.length ck.ck_ops, 0, None)
      | _ -> ([||], 0, 0, None)
    in
    let write_ck =
      match memory.Memory.snapshot with
      | Some snap when wal <> None || checkpoint <> None ->
          Some
            (fun () ->
              let ck =
                {
                  ck_node = self;
                  ck_incarnation = incarnation;
                  ck_ops = List.rev !ops;
                  ck_finished = !finished;
                  ck_proto = snap ();
                  ck_session = Option.map (fun c -> c.Session.snapshot ()) sess;
                }
              in
              (match (wal, checkpoint) with
              | Some (w, _), _ ->
                  (* checkpoint-as-compaction: the rotation protocol makes
                     the blob durable and supersedes the logged tail *)
                  Wal.checkpoint w (Marshal.to_string ck [])
              | None, Some path -> save_checkpoint path ck
              | None, None -> assert false);
              (* only now may acks cover what we received: anything newer
                 would be lost by a crash, so senders must keep it *)
              Option.iter (fun c -> c.Session.mark_stable ()) sess)
      | _ -> None
    in
    (* initial checkpoint before any traffic, so a crash early in the run
       still finds a restore point; then a periodic timer that keeps firing
       through the drain phase (the ack floor must keep catching up) *)
    Option.iter (fun f -> f ()) write_ck;
    (match write_ck with
    | Some f ->
        let rec tick () =
          memory.Memory.schedule ~delay:checkpoint_every_ms (fun () ->
              f ();
              tick ())
        in
        tick ()
    | None -> ());
    Live.wait_peers lt ~timeout_ms:hello_timeout_ms;
    let record e =
      ops := e :: !ops;
      (* write-ahead: the op record reaches the log before the program can
         take another step on the strength of it; fsync follows the group
         commit policy *)
      match wal with
      | Some (w, _) ->
          let wm =
            match sess with Some c -> c.Session.delivered () | None -> 0
          in
          ignore (Wal.append w (Oplog.encode e ~watermark:wm) : int)
      | None -> ()
    in
    let raw = Runner.instrument memory ~proc:self ~record in
    let n_replay = Array.length replayed in
    let cursor = ref 0 in
    let barrier_passed = ref (watermark = 0) in
    let live_barrier () =
      if not !barrier_passed then begin
        barrier_passed := true;
        match sess with
        | Some c -> Fiber.await (fun () -> c.Session.delivered () >= watermark)
        | None -> ()
      end
    in
    let api =
      if n_replay = 0 then raw
      else begin
        (* message-logging replay: reads return logged values, pinning the
           program's control flow to its pre-crash path.  Writes are
           suppressed inside the checkpointed prefix (their effects are in
           the restored snapshot) but re-applied in the WAL-tail region,
           whose effects postdate the snapshot; the session layer's
           sequence numbers make the regenerated messages exactly-once at
           the receivers.  The first live op waits at [live_barrier]. *)
        let logged kind var =
          let k, v, value, _, _ = replayed.(!cursor) in
          if k <> kind || v <> var then
            crashf "node %d: replay divergence at op %d: log has %s x%d, program did %s x%d"
              self !cursor (kind_text k) v (kind_text kind) var;
          incr cursor;
          value
        in
        {
          raw with
          Runner.read =
            (fun var ->
              if !cursor < n_replay then logged Op.Read var
              else begin
                live_barrier ();
                raw.Runner.read var
              end);
          write =
            (fun var value ->
              if !cursor < n_replay then begin
                let in_tail = !cursor >= n_reapply in
                let logged_v = logged Op.Write var in
                if in_tail then memory.Memory.write ~proc:self ~var logged_v
              end
              else begin
                live_barrier ();
                raw.Runner.write var value
              end);
        }
      end
    in
    if not !finished then
      Fiber.spawn
        ~schedule:(fun ~delay f -> memory.Memory.schedule ~delay f)
        ~on_done:(fun () -> finished := true)
        (fun () -> workload.Workload_spec.programs.(self) api);
    while not !finished do
      if Live.now_ms lt > run_timeout_ms then
        fail "node %d: program still running after %d ms" self run_timeout_ms;
      ignore (Live.step lt ~block:true)
    done;
    (* make the finished flag durable before announcing it *)
    Option.iter (fun f -> f ()) write_ck;
    Live.finish_program lt;
    while not (Live.all_done lt) do
      if Live.now_ms lt > run_timeout_ms then
        fail "node %d: peers still running after %d ms" self run_timeout_ms;
      ignore (Live.step lt ~block:true)
    done;
    (* peers may still be producing handler-to-handler traffic (acks,
       gossip hops, retransmissions); serve until the cluster goes quiet *)
    Live.drain lt ~quiet_ms ~max_ms:run_timeout_ms;
    let finals =
      List.map
        (fun var -> (var, memory.Memory.read ~proc:self ~var))
        (workload.Workload_spec.final_vars self)
    in
    let metrics = memory.Memory.metrics () in
    let wire =
      let l = Live.stats lt in
      let l =
        match chaos_ctl with
        | None -> l
        | Some c ->
            let cs = c.Chaos.stats () in
            {
              l with
              Net.dropped = l.Net.dropped + cs.Chaos.drops;
              duplicated = l.Net.duplicated + cs.Chaos.duplicates;
            }
      in
      match sess with
      | None -> l
      | Some c ->
          let ss = c.Session.stats () in
          {
            l with
            Net.retransmits = ss.Session.retransmits;
            dups_suppressed = ss.Session.dups_suppressed;
            overhead_bytes = ss.Session.overhead_bytes;
          }
    in
    let session_stats = Option.map (fun c -> c.Session.stats ()) sess in
    let wall_ms = Live.now_ms lt in
    let wal_stats =
      Option.map
        (fun (w, _) ->
          let s = Wal.stats w in
          Wal.close w;
          s)
        wal
    in
    let final_ops = List.rev !ops in
    (* the digest half of the recovery oracle: re-encode the WAL-tail slice
       of the history this node actually reports, so the supervisor can
       compare it bit-for-bit against what survived on disk *)
    let recovered_digest =
      if wal <> None && incarnation > 0 then
        Some
          (Oplog.digest ~ck:ck_payload_raw
             ~entries:
               (List.filteri
                  (fun i _ -> i >= n_reapply && i < n_replay)
                  final_ops))
      else None
    in
    Live.close lt;
    { node = self; incarnation; ops = final_ops; finals; metrics; wire;
      session_stats; client_ops = !client_ops; wall_ms; wal_stats;
      recovered_ops = n_replay; recovered_digest }
  with
  | Crash _ as e -> raise e
  | Chaos.Injected_crash _ as e ->
      (* die abruptly, sockets and all — process exit closes the fds and
         peers observe a real connection reset *)
      raise e
  | Failure msg ->
      Live.close lt;
      raise (Crash msg)

module Live = Repro_transport.Live
module Fiber = Repro_msgpass.Fiber
module Memory = Repro_core.Memory
module Registry = Repro_core.Registry
module Runner = Repro_core.Runner

type result = {
  node : int;
  ops : Runner.entry list;
  finals : (int * Repro_history.Op.value) list;
  metrics : Memory.metrics;
  wall_ms : int;
}

exception Crash of string

let crashf fmt = Printf.ksprintf (fun s -> raise (Crash s)) fmt

let run ~self ~listen_fd ~peers ~protocol ~workload ~seed
    ?(hello_timeout_ms = 10_000) ?(run_timeout_ms = 60_000) ?(quiet_ms = 150) ()
    =
  if protocol.Registry.blocking then
    crashf "protocol %s has blocking operations; only non-blocking protocols run live"
      protocol.Registry.name;
  let n = workload.Workload_spec.n in
  let fingerprint =
    Workload_spec.fingerprint workload ~protocol:protocol.Registry.name ~seed
  in
  let lt = Live.create { Live.self; n; peers; fingerprint } ~listen_fd in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Live.close lt;
        raise (Crash s))
      fmt
  in
  try
    let memory =
      protocol.Registry.make ~transport:(Live.factory lt)
        ~dist:workload.Workload_spec.dist ~seed ()
    in
    Live.wait_peers lt ~timeout_ms:hello_timeout_ms;
    let ops = ref [] in
    let finished = ref false in
    let api =
      Runner.instrument memory ~proc:self ~record:(fun e -> ops := e :: !ops)
    in
    Fiber.spawn
      ~schedule:(fun ~delay f -> memory.Memory.schedule ~delay f)
      ~on_done:(fun () -> finished := true)
      (fun () -> workload.Workload_spec.programs.(self) api);
    while not !finished do
      if Live.now_ms lt > run_timeout_ms then
        fail "node %d: program still running after %d ms" self run_timeout_ms;
      ignore (Live.step lt ~block:true)
    done;
    Live.finish_program lt;
    while not (Live.all_done lt) do
      if Live.now_ms lt > run_timeout_ms then
        fail "node %d: peers still running after %d ms" self run_timeout_ms;
      ignore (Live.step lt ~block:true)
    done;
    (* peers may still be producing handler-to-handler traffic (acks,
       gossip hops); serve until the cluster goes quiet *)
    Live.drain lt ~quiet_ms ~max_ms:run_timeout_ms;
    let finals =
      List.map
        (fun var -> (var, memory.Memory.read ~proc:self ~var))
        (workload.Workload_spec.final_vars self)
    in
    let metrics = memory.Memory.metrics () in
    let wall_ms = Live.now_ms lt in
    Live.close lt;
    { node = self; ops = List.rev !ops; finals; metrics; wall_ms }
  with
  | Crash _ as e -> raise e
  | Failure msg ->
      Live.close lt;
      raise (Crash msg)

(** Named, seed-deterministic cluster workloads.

    Every node of a cluster (and the simulator baseline used for parity
    checks) rebuilds the same spec from [(name, n, seed)] alone: the
    distribution and the per-process operation scripts are drawn eagerly
    from seeded generators, so a spec is pure replay — independent of
    message timing, process scheduling, and which node evaluates it. *)

type t = {
  name : string;
  n : int;
  dist : Repro_sharegraph.Distribution.t;
  programs : (Repro_core.Runner.api -> unit) array;
      (** [programs.(p)] is node [p]'s slice; length [n]. *)
  differentiated : bool;
      (** Whether the recorded history is differentiated (unique written
          values), i.e. whether the consistency checker can decide it.
          The E1 workload is; Bellman-Ford is not (a node re-writes equal
          distances across rounds), so its acceptance is [check_finals]
          against the single-machine reference — the same validation the
          repository's §6 tests use. *)
  final_vars : int -> int list;
      (** Variables node [p] reports (unrecorded reads) after the run. *)
  check_finals : (int * Repro_history.Op.value) list array -> (unit, string) result;
      (** Application-level acceptance over all nodes' reported finals —
          e.g. Bellman-Ford distances against the single-machine
          reference. *)
}

val names : string list
(** ["e1"] — the E1 scaling workload (random reads/writes over a random
    3-replica distribution, the recipe of experiment E1); ["bellman-ford"]
    — the paper's §6 case study on the Fig. 8 network when [n] matches its
    size, else on a seeded random graph; ["load"] / ["load-full"] — the
    client-driven load workloads (no node programs; all operations come
    through the client front door) over a seeded random [min 2 n]-replica
    distribution resp. full replication. *)

val make : name:string -> n:int -> seed:int -> (t, string) result

val fingerprint :
  ?chaos:string -> ?session:bool -> t -> protocol:string -> seed:int -> string
(** What [Hello] frames carry: any two nodes that disagree on protocol,
    workload, cluster size, seed, chaos plan or session layering refuse to
    talk.  [chaos] is the plan's canonical text ([""] = fault-free). *)

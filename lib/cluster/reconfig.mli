(** The reconfiguration supervisor: a live cluster whose membership
    changes while it runs.

    Forks [n] {!Member} processes (all [n] keep listeners and a full
    mesh; {e ring membership} is the thing that changes), dials a
    control connection to each, and drives the epoch-fenced protocol:

    + heartbeat [Ping]/[Pong] doubles as failure detector and readiness
      poll — a member silent past [demote_after_ms] is demoted by a
      superseding proposal that excludes it;
    + a scripted [join=]/[leave=] event (from the chaos plan) or a
      demotion produces a {e proposal} ([Join]/[Leave] frame carrying
      the new member set and the down set) broadcast to every process;
    + when every member of the proposed set reports ready (migration
      complete), the supervisor broadcasts the {e commit} ([Epoch]
      frame) and the new epoch takes effect — stragglers are fenced at
      the transport seam;
    + crashed children (exit 42) are respawned with a bumped
      incarnation and recover from their WAL; a node that dies with no
      restart scheduled has its operations {e salvaged} from its
      surviving WAL so the reassembled history stays closed under
      reads.

    A watchdog deadline fails a wedged run with an error prefixed
    ["wedged:"] — the CLI maps it to a distinct exit code. *)

module Fault = Repro_msgpass.Fault
module History = Repro_history.History
module Checker = Repro_history.Checker

type event = {
  ev_epoch : int;
  ev_kind : string;  (** ["join"], ["leave"] or ["demote"] *)
  ev_node : int;
  ev_members : int list;  (** committed member set after the event *)
  ev_keys_moved : int;  (** (variable, member) assignments that moved *)
  ev_rebalance_ms : int;  (** proposal broadcast → commit broadcast *)
}

type outcome = {
  n : int;
  k : int;
  vnodes : int;
  seed : int;
  n_vars : int;
  committed_epoch : int;
  members : int list;  (** final committed member set *)
  events : event list;  (** in commit order *)
  history : History.t;
  verdict : Checker.verdict;  (** the advertised criterion: {!Checker.Cache} *)
  pram : Checker.verdict;
      (** informational: PRAM holds in static phases but is not
          guaranteed across a migration (see DESIGN.md) *)
  stale_epochs : int;  (** fence rejections summed over all nodes *)
  restarts : int;
  salvaged : int list;  (** nodes whose ops came from a surviving WAL *)
  keys_moved_total : int;
  max_keys_moved : int;
  moved_gate : int;  (** [2 * k * n_vars / n_members] per single change *)
  moved_ok : bool;
  unavail_ms : int;  (** worst per-node proposal→ready window *)
  transfers : int;  (** migration records applied, summed *)
  init_fallbacks : int;
  writes_total : int;
  reads_total : int;
  node_results : Member.result array;
  chaos : string;
  wall_ms : int;
}

val run :
  n:int ->
  k:int ->
  vnodes:int ->
  n_vars:int ->
  seed:int ->
  ?writes:int ->
  ?write_period_ms:int ->
  ?hello_timeout_ms:int ->
  ?run_timeout_ms:int ->
  ?quiet_ms:int ->
  ?connect_timeout_ms:int ->
  ?deadline_ms:int ->
  ?demote_after_ms:int ->
  ?chaos:Fault.Plan.t ->
  ?wal_dir:string ->
  unit ->
  (outcome, string) result
(** Initial ring membership is [0..n-1] minus the plan's scheduled
    joiners.  The WAL tier is always on (an anonymous temp root unless
    [wal_dir] names one to keep for post-mortem).  [deadline_ms]
    (default [run_timeout_ms + 30s]) is the supervisor watchdog; on
    expiry the error starts with ["wedged:"]. *)

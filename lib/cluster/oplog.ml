module Op = Repro_history.Op

type entry = Repro_core.Runner.entry

(* kind(u8) var(i32) value-tag(u8) value(i64) t_inv(i64) t_resp(i64)
   watermark(i64) — fixed 38 bytes, little-endian throughout *)
let encoded_bytes = 38

let encode ((kind, var, value, t_inv, t_resp) : entry) ~watermark =
  let b = Bytes.create encoded_bytes in
  Bytes.set_uint8 b 0 (match kind with Op.Read -> 0 | Op.Write -> 1);
  Bytes.set_int32_le b 1 (Int32.of_int var);
  (match value with
  | Op.Init -> begin
      Bytes.set_uint8 b 5 0;
      Bytes.set_int64_le b 6 0L
    end
  | Op.Val v -> begin
      Bytes.set_uint8 b 5 1;
      Bytes.set_int64_le b 6 (Int64.of_int v)
    end);
  Bytes.set_int64_le b 14 (Int64.of_int t_inv);
  Bytes.set_int64_le b 22 (Int64.of_int t_resp);
  Bytes.set_int64_le b 30 (Int64.of_int watermark);
  Bytes.unsafe_to_string b

let decode s =
  if String.length s <> encoded_bytes then
    Error
      (Printf.sprintf "op record is %d bytes, want %d" (String.length s)
         encoded_bytes)
  else begin
    let b = Bytes.unsafe_of_string s in
    match (Bytes.get_uint8 b 0, Bytes.get_uint8 b 5) with
    | ((0 | 1) as k), ((0 | 1) as vt) ->
        let kind = if k = 0 then Op.Read else Op.Write in
        let value =
          if vt = 0 then Op.Init
          else Op.Val (Int64.to_int (Bytes.get_int64_le b 6))
        in
        let var = Int32.to_int (Bytes.get_int32_le b 1) in
        let t_inv = Int64.to_int (Bytes.get_int64_le b 14) in
        let t_resp = Int64.to_int (Bytes.get_int64_le b 22) in
        let watermark = Int64.to_int (Bytes.get_int64_le b 30) in
        Ok ((kind, var, value, t_inv, t_resp), watermark)
    | k, vt -> Error (Printf.sprintf "bad op record tags %d/%d" k vt)
  end

let digest ~ck ~entries =
  let buf = Buffer.create 1024 in
  (match ck with
  | None -> Buffer.add_string buf "ck:-\n"
  | Some p ->
      Buffer.add_string buf
        (Printf.sprintf "ck:%s\n" (Digest.to_hex (Digest.string p))));
  List.iter (fun e -> Buffer.add_string buf (encode e ~watermark:0)) entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))

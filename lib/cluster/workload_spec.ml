module Distribution = Repro_sharegraph.Distribution
module Rng = Repro_util.Rng
module Workload = Repro_core.Workload
module Bellman_ford = Repro_apps.Bellman_ford
module Wgraph = Repro_apps.Wgraph
module Op = Repro_history.Op

type t = {
  name : string;
  n : int;
  dist : Distribution.t;
  programs : (Repro_core.Runner.api -> unit) array;
  differentiated : bool;
  final_vars : int -> int list;
  check_finals : (int * Op.value) list array -> (unit, string) result;
}

let names = [ "e1"; "bellman-ford"; "load"; "load-full" ]

(* Same recipe as experiment E1 (lib/experiments): random 3-replica
   distribution from [seed + n], workload scripts from [seed + 1]. *)
let e1 ~n ~seed =
  let dist =
    Distribution.random (Rng.create (seed + n)) ~n_procs:n ~n_vars:(2 * n)
      ~replicas_per_var:3
  in
  let profile = { Workload.ops_per_proc = 8; read_ratio = 0.4; max_think = 3 } in
  let programs = Workload.programs (Rng.create (seed + 1)) dist profile in
  {
    name = "e1";
    n;
    dist;
    programs;
    differentiated = true;
    final_vars = (fun _ -> []);
    check_finals = (fun _ -> Ok ());
  }

let bellman_ford ~n ~seed =
  let g =
    if n = Wgraph.n_nodes Wgraph.fig8 then Wgraph.fig8
    else Wgraph.random (Rng.create seed) ~n ~extra_edges:n ~max_weight:9
  in
  let source = 0 in
  let reference = Wgraph.reference_distances g ~source in
  let as_int = function Op.Val v -> v | Op.Init -> Wgraph.infinity_cost in
  let check_finals finals =
    let errors = ref [] in
    Array.iteri
      (fun node reported ->
        match List.assoc_opt (Bellman_ford.x_var node) reported with
        | None -> errors := Printf.sprintf "node %d reported no x_%d" node node :: !errors
        | Some v ->
            if as_int v <> reference.(node) then
              errors :=
                Printf.sprintf "node %d: distance %d, reference %d" node
                  (as_int v) reference.(node)
                :: !errors)
      finals;
    match !errors with
    | [] -> Ok ()
    | es -> Error (String.concat "; " (List.rev es))
  in
  {
    name = "bellman-ford";
    n;
    dist = Bellman_ford.variable_distribution g;
    programs = Bellman_ford.programs g ~source;
    differentiated = false;
    final_vars = (fun node -> [ Bellman_ford.x_var node ]);
    check_finals;
  }

(* Client-driven workloads: the nodes run no program of their own — every
   operation arrives through the client front door — so the spec is just a
   variable distribution.  The partial variant replicates each variable at
   [min 2 n] nodes, so partial stays a strict subset of full replication
   even at n = 3 and the per-write fan-out gap (Theorem 2's control-byte
   gap) is visible at every cluster size. *)
let load ~full ~n ~seed =
  let n_vars = 2 * n in
  let dist =
    if full then Distribution.full ~n_procs:n ~n_vars
    else
      Distribution.random (Rng.create (seed + n)) ~n_procs:n ~n_vars
        ~replicas_per_var:(Stdlib.min 2 n)
  in
  {
    name = (if full then "load-full" else "load");
    n;
    dist;
    programs = Array.make n (fun (_ : Repro_core.Runner.api) -> ());
    differentiated = false;
    final_vars = (fun _ -> []);
    check_finals = (fun _ -> Ok ());
  }

let make ~name ~n ~seed =
  if n < 1 then Error "cluster size must be >= 1"
  else
    match name with
    | "e1" -> Ok (e1 ~n ~seed)
    | "bellman-ford" | "bf" -> Ok (bellman_ford ~n ~seed)
    | "load" -> Ok (load ~full:false ~n ~seed)
    | "load-full" -> Ok (load ~full:true ~n ~seed)
    | other ->
        Error
          (Printf.sprintf "unknown workload %S (known: %s)" other
             (String.concat ", " names))

let fingerprint ?(chaos = "") ?(session = false) t ~protocol ~seed =
  (* chaos plan and session layer change the wire format / traffic shape,
     so mismatched nodes must refuse each other at the Hello barrier *)
  let extras =
    (if chaos = "" then "" else " chaos=" ^ chaos)
    ^ if session then " session=1" else ""
  in
  Printf.sprintf "repro-cluster/1 proto=%s workload=%s n=%d seed=%d%s" protocol
    t.name t.n seed extras

(** The WAL payload format for one recorded operation, and the recovery
    digest oracle.

    A durable node appends one of these records per completed operation:
    the {!Repro_core.Runner.entry} (kind, variable, value, invocation and
    response times) plus the session layer's in-order delivery count at
    record time — the watermark a recovering node must wait for before
    leaving replay, so its first live read never sees state older than the
    logged tail did.

    Both sides of the digest parity check live here: the respawned node
    re-encodes the prefix of its final operation list that recovery seeded
    ({!digest}), and the supervisor decodes the WAL directory it copied at
    respawn time and digests the same shape.  Bit-for-bit equality says the
    replayed history prefix is exactly what survived on disk. *)

type entry = Repro_core.Runner.entry

val encode : entry -> watermark:int -> string

val decode : string -> (entry * int, string) result
(** [Error] on a short or malformed payload (foreign record in the log). *)

val digest : ck:string option -> entries:entry list -> string
(** Hex digest over the raw checkpoint payload and the canonically
    re-encoded tail entries (watermarks excluded — they are transport
    bookkeeping, not history). *)

(** Local cluster harness: fork one OS process per node over loopback
    TCP, run a named workload, reassemble the recorded history, and check
    it with the saturation engine.

    The parent pre-binds every node's listener on 127.0.0.1 (kernel-chosen
    ports) {e before} forking, so no child can race another for an
    address; children inherit their listen socket, run {!Node.run}, and
    marshal their results back over a pipe.  The parent drains all report
    pipes with [select] — never a blocking read per child — so a report
    larger than a pipe buffer cannot deadlock the collection order.

    With a chaos plan the harness becomes a supervisor: it validates the
    plan, keeps every listener open (a peer redialing a crashed node lands
    in the backlog; the respawned child re-inherits the same socket), maps
    exit code 42 ({!Repro_transport.Chaos.Injected_crash}) to a scheduled
    respawn from the node's last checkpoint with [incarnation + 1], and
    accounts the recovery traffic separately from the paper's
    control/payload bytes.

    Forking must precede any OCaml 5 domain creation, so this module
    checks histories with the sequential {!Repro_history.Checker.check} —
    never the domain-pool parallel variant. *)

type outcome = {
  protocol : string;
  workload : string;
  n : int;
  seed : int;
  history : Repro_history.History.t;
      (** All nodes' recorded operations, node [p] as process [p].  A
          restarted node contributes each operation exactly once: the
          checkpointed prefix plus its post-replay continuation. *)
  criterion : Repro_history.Checker.criterion;
      (** The protocol's advertised guarantee, what [verdict] judges. *)
  verdict : Repro_history.Checker.verdict;
  history_checked : bool;
      (** False when the workload's history is not differentiated
          (Bellman-Ford): the checker then answers [Undecidable] by
          construction and [finals] carries the acceptance instead. *)
  finals : (unit, string) result;
      (** The workload's application-level acceptance (e.g. Bellman-Ford
          distances against the reference). *)
  node_results : Node.result array;
  messages_sent : int;  (** Summed over nodes; each node counts its own. *)
  control_bytes : int;
  payload_bytes : int;
  overhead_bytes : int;
      (** Reliability traffic (segment headers, retransmitted copies,
          acks), summed — kept apart from the paper's control bytes. *)
  retransmits : int;
  dups_suppressed : int;
  dropped_frames : int;  (** Injected drops plus broken-link losses. *)
  reconnects : int;  (** Live-link redials that succeeded. *)
  restarts : int;  (** Nodes respawned after an injected crash. *)
  chaos : string;  (** Canonical plan text; [""] when fault-free. *)
  session : bool;
  wall_ms : int;  (** Slowest node, hello to close. *)
  durable : bool;  (** The durability tier (WAL + group commit) ran. *)
  wal_parity : bool;
      (** For every crashed durable node: the supervisor froze the WAL
          files the crash left behind, decoded them independently, and the
          respawned node's {!Node.result.recovered_digest} matched
          bit-for-bit.  Vacuously [true] without crashes or without the
          durability tier; [false] also when a frozen log fails to decode. *)
  wal_dir : string option;
      (** The WAL root kept on disk for post-mortem inspection ([repro
          wal]); [None] when the harness used (and removed) a tmp dir. *)
}

val run :
  n:int ->
  protocol:Repro_core.Registry.spec ->
  workload:string ->
  seed:int ->
  ?hello_timeout_ms:int ->
  ?run_timeout_ms:int ->
  ?quiet_ms:int ->
  ?connect_timeout_ms:int ->
  ?deadline_ms:int ->
  ?chaos:Repro_msgpass.Fault.Plan.t ->
  ?session:bool ->
  ?checkpoint_every_ms:int ->
  ?gc_space_overhead:int ->
  ?durable:Repro_durable.Wal.fsync_policy ->
  ?wal_dir:string ->
  unit ->
  (outcome, string) result
(** [Error] reports node crashes (with each crashed node's message) and
    configuration mistakes (unknown workload, blocking protocol, invalid
    chaos plan); a consistency violation is {e not} an [Error] — it comes
    back as the [verdict] for the caller to judge.  [session] is forced on
    whenever a chaos plan is given (lossy links need the reliable session
    layer); an injected crash whose plan schedules no restart is an
    [Error].  [gc_space_overhead] is forwarded to every node process
    ({!Node.run}).

    [connect_timeout_ms] caps each node's reconnection episodes to a dead
    peer ({!Repro_transport.Live.config}); [deadline_ms] overrides the
    supervisor watchdog (default [run_timeout_ms + 30 s]).  A run the
    watchdog has to put down returns an [Error] prefixed ["wedged: "] —
    the CLI maps it to a distinct exit code.

    [durable] engages the durability tier: each node gets its own WAL
    directory under [wal_dir] (kept afterwards) or a tmp root (removed),
    with the given group-commit policy.  A chaos plan's [dcrash] clauses
    require this tier; after each injected crash the supervisor freezes
    the on-disk log before the respawn and gates [wal_parity] on the
    recovered digest. *)

type baseline = {
  history : Repro_history.History.t;
  metrics : Repro_core.Memory.metrics;
}

val sim_baseline :
  ?chaos:Repro_msgpass.Fault.Plan.t ->
  ?session:bool ->
  n:int ->
  protocol:Repro_core.Registry.spec ->
  workload:string ->
  seed:int ->
  unit ->
  (baseline, string) result
(** The same [(protocol, workload, n, seed)] run whole-instance on the
    deterministic simulator.  Workload scripts are drawn eagerly from the
    seed, and the efficient protocols' per-write fan-out is
    timing-independent, so live message and declared-byte totals must
    equal this baseline's exactly (the parity satellite) — including under
    a chaos plan, since the session layer's protocol-level stats count
    first transmissions only.  With [chaos]/[session] the stack order
    matches a live node (backend → chaos → session → protocol), making a
    plan's simulator run bit-reproducible: same plan, same seed, same
    history and stats every time. *)

(** Local cluster harness: fork one OS process per node over loopback
    TCP, run a named workload, reassemble the recorded history, and check
    it with the saturation engine.

    The parent pre-binds every node's listener on 127.0.0.1 (kernel-chosen
    ports) {e before} forking, so no child can race another for an
    address; children inherit their listen socket, run {!Node.run}, and
    marshal their results back over a pipe.

    Forking must precede any OCaml 5 domain creation, so this module
    checks histories with the sequential {!Repro_history.Checker.check} —
    never the domain-pool parallel variant. *)

type outcome = {
  protocol : string;
  workload : string;
  n : int;
  seed : int;
  history : Repro_history.History.t;
      (** All nodes' recorded operations, node [p] as process [p]. *)
  criterion : Repro_history.Checker.criterion;
      (** The protocol's advertised guarantee, what [verdict] judges. *)
  verdict : Repro_history.Checker.verdict;
  history_checked : bool;
      (** False when the workload's history is not differentiated
          (Bellman-Ford): the checker then answers [Undecidable] by
          construction and [finals] carries the acceptance instead. *)
  finals : (unit, string) result;
      (** The workload's application-level acceptance (e.g. Bellman-Ford
          distances against the reference). *)
  node_results : Node.result array;
  messages_sent : int;  (** Summed over nodes; each node counts its own. *)
  control_bytes : int;
  payload_bytes : int;
  wall_ms : int;  (** Slowest node, hello to close. *)
}

val run :
  n:int ->
  protocol:Repro_core.Registry.spec ->
  workload:string ->
  seed:int ->
  ?hello_timeout_ms:int ->
  ?run_timeout_ms:int ->
  ?quiet_ms:int ->
  unit ->
  (outcome, string) result
(** [Error] reports node crashes (with each crashed node's message) and
    configuration mistakes (unknown workload, blocking protocol); a
    consistency violation is {e not} an [Error] — it comes back as the
    [verdict] for the caller to judge. *)

type baseline = {
  history : Repro_history.History.t;
  metrics : Repro_core.Memory.metrics;
}

val sim_baseline :
  n:int ->
  protocol:Repro_core.Registry.spec ->
  workload:string ->
  seed:int ->
  (baseline, string) result
(** The same [(protocol, workload, n, seed)] run whole-instance on the
    deterministic simulator.  Workload scripts are drawn eagerly from the
    seed, and the efficient protocols' per-write fan-out is
    timing-independent, so live message and declared-byte totals must
    equal this baseline's exactly (the parity satellite). *)
